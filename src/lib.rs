//! Umbrella crate for the GATSPI reproduction workspace: hosts the
//! runnable examples (`examples/`) and the cross-crate integration tests
//! (`tests/`), and re-exports the member crates under one roof.
//!
//! See the workspace `README.md` for the tour, `DESIGN.md` for the system
//! inventory, and `EXPERIMENTS.md` for paper-vs-measured results.

pub use gatspi_core as core;
pub use gatspi_gpu as gpu;
pub use gatspi_graph as graph;
pub use gatspi_netlist as netlist;
pub use gatspi_power as power;
pub use gatspi_refsim as refsim;
pub use gatspi_sdf as sdf;
pub use gatspi_wave as wave;
pub use gatspi_workloads as workloads;
