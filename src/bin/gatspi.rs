//! `gatspi` — command-line driver for the re-simulation flow (Fig. 2):
//!
//! ```sh
//! gatspi sim --netlist design.gv --sdf design.sdf --vcd testbench.vcd \
//!            --duration 100000 --saif out.saif [--cycle 1200] [--gpus 2] \
//!            [--device v100|a100|t4] [--verify] [--out-vcd waves.vcd]
//! gatspi info --netlist design.gv [--sdf design.sdf]
//! ```

use std::collections::HashMap;
use std::fs;
use std::process::ExitCode;
use std::sync::Arc;

use gatspi_core::{RunOptions, Session, SimConfig};
use gatspi_gpu::{DeviceSpec, MultiGpu};
use gatspi_graph::{CircuitGraph, GraphOptions};
use gatspi_netlist::{verilog, CellLibrary};
use gatspi_refsim::{EventSimulator, RefConfig};
use gatspi_sdf::SdfFile;
use gatspi_wave::{vcd, Waveform};

fn main() -> ExitCode {
    match run() {
        Ok(()) => ExitCode::SUCCESS,
        Err(e) => {
            eprintln!("gatspi: error: {e}");
            ExitCode::FAILURE
        }
    }
}

fn run() -> Result<(), Box<dyn std::error::Error>> {
    let mut args = std::env::args().skip(1);
    let cmd = args.next().unwrap_or_default();
    let mut opts: HashMap<String, String> = HashMap::new();
    let mut key: Option<String> = None;
    for a in args {
        if let Some(k) = a.strip_prefix("--") {
            if let Some(prev) = key.take() {
                opts.insert(prev, String::from("true")); // boolean flag
            }
            key = Some(k.to_string());
        } else if let Some(k) = key.take() {
            opts.insert(k, a);
        } else {
            return Err(format!("unexpected argument `{a}`").into());
        }
    }
    if let Some(prev) = key.take() {
        opts.insert(prev, String::from("true"));
    }

    match cmd.as_str() {
        "sim" => sim(&opts),
        "info" => info(&opts),
        _ => {
            eprintln!(
                "usage:\n  gatspi sim  --netlist F.gv --sdf F.sdf --vcd TB.vcd --duration N \\\n              --saif OUT.saif [--cycle N] [--gpus N] [--device v100|a100|t4] \\\n              [--verify] [--out-vcd F.vcd]\n  gatspi info --netlist F.gv [--sdf F.sdf]"
            );
            Err("unknown subcommand".into())
        }
    }
}

fn required<'a>(opts: &'a HashMap<String, String>, k: &str) -> Result<&'a str, String> {
    opts.get(k)
        .map(String::as_str)
        .ok_or_else(|| format!("missing required option --{k}"))
}

fn load_graph(
    opts: &HashMap<String, String>,
) -> Result<Arc<CircuitGraph>, Box<dyn std::error::Error>> {
    let gv = fs::read_to_string(required(opts, "netlist")?)?;
    let netlist = verilog::parse(&gv, CellLibrary::industry_mini())?;
    let sdf = match opts.get("sdf") {
        Some(path) => Some(SdfFile::parse(&fs::read_to_string(path)?)?),
        None => None,
    };
    Ok(Arc::new(CircuitGraph::build(
        &netlist,
        sdf.as_ref(),
        &GraphOptions::default(),
    )?))
}

fn info(opts: &HashMap<String, String>) -> Result<(), Box<dyn std::error::Error>> {
    let graph = load_graph(opts)?;
    let stats = graph.level_stats();
    println!("design:          {}", graph.name());
    println!("gates:           {}", graph.n_gates());
    println!("signals:         {}", graph.n_signals());
    println!("primary inputs:  {}", graph.primary_inputs().len());
    println!("primary outputs: {}", graph.primary_outputs().len());
    println!("logic levels:    {}", stats.n_levels());
    println!("widest level:    {} gates", stats.max_width());
    println!("device bytes:    {}", graph.device_bytes());
    Ok(())
}

fn sim(opts: &HashMap<String, String>) -> Result<(), Box<dyn std::error::Error>> {
    let graph = load_graph(opts)?;
    let duration: i32 = required(opts, "duration")?.parse()?;
    let tb = vcd::parse(&fs::read_to_string(required(opts, "vcd")?)?)?;
    let stimuli: Vec<Waveform> = graph
        .primary_inputs()
        .iter()
        .map(|&s| {
            tb.signals
                .get(graph.signal_name(s))
                .cloned()
                .ok_or_else(|| format!("vcd misses input `{}`", graph.signal_name(s)))
        })
        .collect::<Result<_, _>>()?;

    let device = match opts.get("device").map(String::as_str) {
        None | Some("v100") => DeviceSpec::v100(),
        Some("a100") => DeviceSpec::a100(),
        Some("t4") => DeviceSpec::t4(),
        Some(other) => return Err(format!("unknown device `{other}`").into()),
    };
    let cycle: i32 = opts
        .get("cycle")
        .map(|s| s.parse())
        .transpose()?
        .unwrap_or(1);
    let cfg = SimConfig::default()
        .with_device(device.clone())
        .with_window_align(cycle);

    let sim = Session::new(Arc::clone(&graph), cfg.clone());
    let gpus: usize = opts
        .get("gpus")
        .map(|s| s.parse())
        .transpose()?
        .unwrap_or(1);
    if gpus > 1 && opts.contains_key("out-vcd") {
        // Fail before simulating: multi-GPU results do not retain
        // waveforms (only SAIF/toggles are merged across devices).
        return Err("--out-vcd is not supported with --gpus > 1".into());
    }
    let result = if gpus > 1 {
        let multi = MultiGpu::new(device, gpus, cfg.memory_words);
        sim.run_multi_gpu(&multi, &stimuli, duration)?
    } else {
        // Spill waveforms to host when a VCD dump was requested, so the
        // dump also works if the run segments.
        let mut run_opts = RunOptions::default();
        if opts.contains_key("out-vcd") {
            run_opts = run_opts.with_waveform_spill();
        }
        sim.run_with(&stimuli, duration, &run_opts)?
    };

    eprintln!(
        "simulated {} gates over {} ticks: {} toggles, kernel {:.3} ms measured / {:.3} ms modeled-{}",
        graph.n_gates(),
        duration,
        result.total_toggles(),
        result.kernel_profile.wall_seconds * 1e3,
        result.kernel_profile.modeled_seconds * 1e3,
        sim.config().device.name,
    );

    if opts.contains_key("verify") {
        let r = EventSimulator::new(
            &graph,
            RefConfig {
                record_waveforms: false,
                ..RefConfig::default()
            },
        )
        .run(&stimuli, duration)?;
        let diffs = result.saif.diff(&r.saif);
        if diffs.is_empty() {
            eprintln!("verify: SAIF matches the event-driven reference bit-exactly");
        } else {
            return Err(
                format!("verify FAILED: {} diffs, first: {}", diffs.len(), diffs[0]).into(),
            );
        }
    }

    fs::write(required(opts, "saif")?, result.saif.write())?;
    eprintln!("wrote {}", required(opts, "saif")?);

    if let Some(out_vcd) = opts.get("out-vcd") {
        let names: Vec<String> = graph
            .primary_outputs()
            .iter()
            .map(|&s| graph.signal_name(s).to_string())
            .collect();
        let waves: Vec<Waveform> = graph
            .primary_outputs()
            .iter()
            .map(|&s| result.waveform(s.index()))
            .collect::<gatspi_core::Result<_>>()?;
        fs::write(
            out_vcd,
            vcd::write(
                graph.name(),
                names.iter().map(String::as_str).zip(waves.iter()),
            ),
        )?;
        eprintln!("wrote {out_vcd}");
    }
    Ok(())
}
