//! Workspace automation, invoked as `cargo run -p xtask -- <task>`.
//!
//! # `analyze`
//!
//! The multi-pass static-analysis framework (see [`analysis`]): lexes
//! every workspace source file once into a shared token stream and runs
//! five passes over it —
//!
//! 1. **panic-discipline** — bans `unwrap`/`expect`/`panic!`/
//!    `unreachable!`/indexing-adjacent `assert!` in production code of the
//!    disciplined crates unless annotated `// panic-ok: <reason>`;
//! 2. **unwind-boundary** — every production `catch_unwind` must handle
//!    the full typed-payload registry (`crates/xtask/unwind-manifest.txt`),
//!    and the registry must match the declared `*Panic` structs;
//! 3. **sync-facade** — the atomics facade ban extended to
//!    `std::sync::{Mutex, RwLock, Condvar, mpsc, Barrier}` and
//!    `std::thread::spawn`, with `use … as` renames resolved; plus the
//!    `relaxed-ok:` and `SAFETY:` comment rules;
//! 4. **ordering-xref** — `// anchor:` / `// pairs-with:` annotations on
//!    Acquire/Release sites verified to resolve in both directions;
//! 5. **plan-invariants** — every workloads suite entry compiled to full,
//!    fused, and cone-restricted launch plans and checked structurally
//!    (`gatspi_core::audit`).
//!
//! Findings are gated against `crates/xtask/analyze-baseline.json`:
//! accepted pre-existing findings (by `(file, pass, rule)` count) don't
//! block CI, new ones do. `--json <path>` writes the full diagnostics
//! document; `--update-baseline` regenerates the baseline.
//!
//! # `validate-plans`
//!
//! Pass 5 standalone: compiles every suite entry's plans and runs the
//! structural checker — the CI gate for "static analysis of compiled
//! plans".
//!
//! # `lint-atomics`
//!
//! Thin compatibility alias: runs the source-level passes (the old lint's
//! rules live on as the sync-facade pass) without the plan compile.
//!
//! # `bench-check`
//!
//! Validates the committed `BENCH_*.json` trajectory artifacts (see
//! [`bench`]).

pub mod analysis;
pub mod bench;

use std::path::{Path, PathBuf};

/// The workspace root (two levels up from the xtask manifest).
pub fn workspace_root() -> PathBuf {
    // crates/xtask -> crates -> workspace root
    Path::new(env!("CARGO_MANIFEST_DIR"))
        .parent()
        .and_then(Path::parent)
        .expect("xtask manifest dir has no workspace root")
        .to_path_buf()
}

/// Recursively collects `.rs` files, skipping `target/` and dot-dirs.
pub fn collect_rs_files(dir: &Path, out: &mut Vec<PathBuf>) {
    let Ok(entries) = std::fs::read_dir(dir) else {
        return;
    };
    for entry in entries.flatten() {
        let path = entry.path();
        let name = entry.file_name();
        let name = name.to_string_lossy();
        if path.is_dir() {
            if name == "target" || name.starts_with('.') {
                continue;
            }
            collect_rs_files(&path, out);
        } else if name.ends_with(".rs") {
            out.push(path);
        }
    }
}
