//! Workspace automation tasks, invoked as `cargo run -p xtask -- <task>`.
//!
//! # `lint-atomics`
//!
//! A textual static pass enforcing the workspace's memory-ordering
//! discipline (see README "Concurrency contracts"):
//!
//! 1. **Facade rule** — `std::sync::atomic` / `core::sync::atomic` may only
//!    be named inside the sync facades (`crates/core/src/sync.rs`,
//!    `crates/gpu/src/sync.rs`) and the model checker itself
//!    (`crates/compat/loom/`). Everything else must import atomics through a
//!    facade so `--features model-check` actually swaps them out.
//! 2. **Relaxed rule** — every `Ordering::Relaxed` in production code needs
//!    a `// relaxed-ok: <why>` justification on the same line or within the
//!    three preceding lines. Test code (`tests/`, `benches/`, `examples/`,
//!    or anything after a `#[cfg(test)]`/`#[cfg(all(test` marker in the
//!    file) is exempt; `SeqCst` and the acquire/release orderings are
//!    whitelisted — the lint exists to make *under*-synchronization earn
//!    its keep, not to tax the safe default.
//! 3. **SAFETY rule** — every `unsafe` keyword needs a `SAFETY:` comment on
//!    the same line or within the three preceding lines (the textual twin
//!    of `clippy::undocumented_unsafe_blocks`, which CI also denies).
//!
//! Comments and string/char literals are stripped with a small lexer first,
//! so fixtures inside string literals (like the ones in this file's tests)
//! never trip the rules.
//!
//! # `bench-check`
//!
//! Validates the committed `BENCH_*.json` trajectory artifacts in the
//! repository root: every artifact must parse and pass the schema rules of
//! [`gatspi_bench::artifact::validate`], the known targets must all be
//! present, and per-target tolerance bands must hold (rates in `[0, 1]`,
//! walls positive, fused launches not above unfused, and the speculative
//! single-pass schedule at least [`SPEC_SPEEDUP_FLOOR`]× faster than its
//! pinned two-pass reference on `deep_pipeline_resim`). CI runs this next
//! to `lint-atomics` so a PR cannot silently regress or rot the artifacts.

use std::path::{Path, PathBuf};
use std::process::ExitCode;

use gatspi_bench::artifact::{self, Json};

fn main() -> ExitCode {
    let task = std::env::args().nth(1);
    match task.as_deref() {
        Some("lint-atomics") => lint_atomics(),
        Some("bench-check") => bench_check(),
        _ => {
            eprintln!("usage: cargo run -p xtask -- <lint-atomics|bench-check>");
            ExitCode::from(2)
        }
    }
}

fn workspace_root() -> PathBuf {
    // crates/xtask -> crates -> workspace root
    Path::new(env!("CARGO_MANIFEST_DIR"))
        .parent()
        .and_then(Path::parent)
        .expect("xtask manifest dir has no workspace root")
        .to_path_buf()
}

fn lint_atomics() -> ExitCode {
    let root = workspace_root();
    let mut files = Vec::new();
    collect_rs_files(&root, &mut files);
    files.sort();
    let mut violations = Vec::new();
    for path in &files {
        let source = match std::fs::read_to_string(path) {
            Ok(s) => s,
            Err(e) => {
                eprintln!("lint-atomics: cannot read {}: {e}", path.display());
                return ExitCode::FAILURE;
            }
        };
        let label = path
            .strip_prefix(&root)
            .unwrap_or(path)
            .to_string_lossy()
            .replace('\\', "/");
        violations.extend(lint_source(&label, &source));
    }
    if violations.is_empty() {
        println!("lint-atomics: {} files clean", files.len());
        ExitCode::SUCCESS
    } else {
        for v in &violations {
            eprintln!("{v}");
        }
        eprintln!("lint-atomics: {} violation(s)", violations.len());
        ExitCode::FAILURE
    }
}

/// Lower bound on the `deep_pipeline_resim` two-pass / speculative wall
/// ratio (the launch-bound regime the single-pass protocol targets). The
/// measured margin is well above this; the band only has to catch the
/// optimization being lost, not track its exact size.
const SPEC_SPEEDUP_FLOOR: f64 = 1.3;

/// Artifacts every checkout must carry — the cross-PR trajectory set.
const REQUIRED_ARTIFACTS: &[&str] = &[
    "BENCH_glitch_flow.json",
    "BENCH_kernel_micro.json",
    "BENCH_sink_throughput.json",
];

fn bench_check() -> ExitCode {
    let root = workspace_root();
    let mut errors = Vec::new();
    let mut checked = 0usize;
    for name in REQUIRED_ARTIFACTS {
        let path = root.join(name);
        let text = match std::fs::read_to_string(&path) {
            Ok(t) => t,
            Err(e) => {
                errors.push(format!("{name}: unreadable ({e})"));
                continue;
            }
        };
        checked += 1;
        errors.extend(check_artifact(name, &text));
    }
    // Artifacts beyond the required set still must be well-formed.
    if let Ok(entries) = std::fs::read_dir(&root) {
        for entry in entries.flatten() {
            let file = entry.file_name();
            let file = file.to_string_lossy();
            if file.starts_with("BENCH_")
                && file.ends_with(".json")
                && !REQUIRED_ARTIFACTS.contains(&file.as_ref())
            {
                match std::fs::read_to_string(entry.path()) {
                    Ok(text) => {
                        checked += 1;
                        errors.extend(check_artifact(&file, &text));
                    }
                    Err(e) => errors.push(format!("{file}: unreadable ({e})")),
                }
            }
        }
    }
    if errors.is_empty() {
        println!("bench-check: {checked} artifact(s) within schema and tolerance bands");
        ExitCode::SUCCESS
    } else {
        for e in &errors {
            eprintln!("bench-check: {e}");
        }
        eprintln!("bench-check: {} error(s)", errors.len());
        ExitCode::FAILURE
    }
}

/// Validates one artifact document: schema first, then the per-target
/// tolerance bands. Returns every defect found (empty = clean).
fn check_artifact(name: &str, text: &str) -> Vec<String> {
    let mut errors = Vec::new();
    if let Err(e) = artifact::validate(text) {
        return vec![format!("{name}: {e}")];
    }
    let doc = artifact::parse(text).expect("validated artifact parses");
    // Criterion-style entries: measurements must be strictly positive (the
    // schema only requires non-negative).
    if let Some(Json::Arr(entries)) = doc.get("benchmarks") {
        for e in entries {
            let (Some(Json::Str(id)), Some(Json::Num(ns))) = (e.get("id"), e.get("mean_ns")) else {
                continue; // schema already reported the shape defect
            };
            if *ns <= 0.0 {
                errors.push(format!("{name}: {id}: non-positive mean_ns {ns}"));
            }
        }
    }
    match doc.get("target") {
        Some(Json::Str(t)) if t == "glitch_flow" => check_glitch_flow(name, &doc, &mut errors),
        Some(Json::Str(t)) if t == "kernel_micro" => check_kernel_micro(name, &doc, &mut errors),
        _ => {}
    }
    errors
}

fn num_field(doc: &Json, key: &str) -> Option<f64> {
    match doc.get(key) {
        Some(Json::Num(n)) => Some(*n),
        _ => None,
    }
}

/// Band checks of the flat glitch-flow artifact, including the PR-8
/// speculation telemetry fields.
fn check_glitch_flow(name: &str, doc: &Json, errors: &mut Vec<String>) {
    let mut band = |key: &str, lo: f64, hi: f64| match num_field(doc, key) {
        Some(v) if (lo..=hi).contains(&v) => {}
        Some(v) => errors.push(format!("{name}: {key} = {v} outside [{lo}, {hi}]")),
        None => errors.push(format!("{name}: missing numeric {key}")),
    };
    band("gates", 1.0, f64::MAX);
    band("gatspi_seconds", f64::MIN_POSITIVE, f64::MAX);
    band("saving_pct", -100.0, 100.0);
    band("resim_wall_fused", f64::MIN_POSITIVE, f64::MAX);
    band("resim_wall_unfused", f64::MIN_POSITIVE, f64::MAX);
    band("speculative_hit_rate", 0.0, 1.0);
    band("overflow_repairs", 0.0, f64::MAX);
    band("predicted_waste_words", 0.0, f64::MAX);
    band("oom_retries", 0.0, f64::MAX);
    if let (Some(fused), Some(unfused)) = (
        num_field(doc, "launches_fused"),
        num_field(doc, "launches_unfused"),
    ) {
        if fused > unfused {
            errors.push(format!(
                "{name}: launches_fused {fused} exceeds launches_unfused {unfused}"
            ));
        }
    } else {
        errors.push(format!("{name}: missing launch counts"));
    }
}

/// Structural and tolerance checks of the criterion-style kernel_micro
/// artifact: every bench group present, and the speculative single-pass
/// schedule at least [`SPEC_SPEEDUP_FLOOR`]× faster than the pinned
/// two-pass reference on the launch-bound deep pipeline.
fn check_kernel_micro(name: &str, doc: &Json, errors: &mut Vec<String>) {
    let Some(Json::Arr(entries)) = doc.get("benchmarks") else {
        errors.push(format!("{name}: missing benchmarks array"));
        return;
    };
    let mean_of = |prefix: &str| -> Option<f64> {
        let means: Vec<f64> = entries
            .iter()
            .filter(|e| matches!(e.get("id"), Some(Json::Str(id)) if id.starts_with(prefix)))
            .filter_map(|e| match e.get("mean_ns") {
                Some(Json::Num(ns)) => Some(*ns),
                _ => None,
            })
            .collect();
        (!means.is_empty()).then(|| means.iter().sum::<f64>() / means.len() as f64)
    };
    for group in [
        "algorithm1_kernel/",
        "single_pass/",
        "deep_pipeline_resim/",
        "publish_path/",
        "phase_driver/",
    ] {
        if mean_of(group).is_none() {
            errors.push(format!("{name}: no benchmarks in group {group}"));
        }
    }
    // `unfused/` (trailing slash) does not match `unfused_twopass/...`.
    match (
        mean_of("deep_pipeline_resim/unfused/"),
        mean_of("deep_pipeline_resim/unfused_twopass/"),
    ) {
        (Some(spec), Some(two_pass)) => {
            let ratio = two_pass / spec;
            if ratio < SPEC_SPEEDUP_FLOOR {
                errors.push(format!(
                    "{name}: deep_pipeline_resim speculative speedup {ratio:.3}x \
                     below the {SPEC_SPEEDUP_FLOOR}x floor"
                ));
            }
        }
        _ => errors.push(format!(
            "{name}: missing deep_pipeline_resim unfused/unfused_twopass pair"
        )),
    }
}

fn collect_rs_files(dir: &Path, out: &mut Vec<PathBuf>) {
    let Ok(entries) = std::fs::read_dir(dir) else {
        return;
    };
    for entry in entries.flatten() {
        let path = entry.path();
        let name = entry.file_name();
        let name = name.to_string_lossy();
        if path.is_dir() {
            if name == "target" || name.starts_with('.') {
                continue;
            }
            collect_rs_files(&path, out);
        } else if name.ends_with(".rs") {
            out.push(path);
        }
    }
}

/// One rule violation: formatted as `file:line: message`.
#[derive(Debug, PartialEq, Eq)]
struct Violation {
    file: String,
    line: usize,
    msg: String,
}

impl std::fmt::Display for Violation {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "{}:{}: {}", self.file, self.line, self.msg)
    }
}

/// A source line split into its code and comment text (strings stripped).
#[derive(Default)]
struct LineInfo {
    code: String,
    comment: String,
}

/// Files allowed to name `std::sync::atomic` directly.
fn facade_file(label: &str) -> bool {
    label.ends_with("crates/core/src/sync.rs")
        || label.ends_with("crates/gpu/src/sync.rs")
        || label.contains("crates/compat/loom/")
}

/// Paths whose `Ordering::Relaxed` sites don't need justification (test and
/// bench code — their orderings don't ship).
fn relaxed_exempt_path(label: &str) -> bool {
    let in_dir =
        |dir: &str| label.starts_with(&format!("{dir}/")) || label.contains(&format!("/{dir}/"));
    in_dir("tests")
        || in_dir("benches")
        || in_dir("examples")
        || label.contains("crates/compat/loom/")
}

fn lint_source(label: &str, source: &str) -> Vec<Violation> {
    let lines = split_lines(source);
    let mut violations = Vec::new();
    let mut in_test_cfg = false;
    for (i, line) in lines.iter().enumerate() {
        let lineno = i + 1;
        let code = line.code.as_str();
        if code.contains("#[cfg(test)]") || code.contains("#[cfg(all(test") {
            in_test_cfg = true;
        }
        // Comments attached to this line: its own trailing comment, plus the
        // contiguous comment block above it. The upward walk also crosses
        // continuation lines of the same (multi-line) statement, stopping at
        // a blank line or at code that terminates an earlier item
        // (`;`, `{`, `}`, `,`, or an attribute's `]`).
        let attached_comments = || -> String {
            let mut acc = vec![lines[i].comment.as_str()];
            let mut j = i;
            while j > 0 {
                j -= 1;
                let l = &lines[j];
                let code_t = l.code.trim_end();
                if code_t.trim().is_empty() {
                    if l.comment.trim().is_empty() {
                        break;
                    }
                } else if code_t.ends_with([';', '{', '}', ',', ']']) {
                    break;
                }
                acc.push(l.comment.as_str());
            }
            acc.join("\n")
        };
        if !facade_file(label)
            && (find_token(code, "std::sync::atomic").is_some()
                || find_token(code, "core::sync::atomic").is_some())
        {
            violations.push(Violation {
                file: label.to_string(),
                line: lineno,
                msg: "direct std::sync::atomic use outside the sync facades; import \
                      through gatspi_core::sync / gatspi_gpu::sync so model-check \
                      builds can swap the types"
                    .to_string(),
            });
        }
        if !relaxed_exempt_path(label)
            && !in_test_cfg
            && find_token(code, "Ordering::Relaxed").is_some()
            && !attached_comments().contains("relaxed-ok:")
        {
            violations.push(Violation {
                file: label.to_string(),
                line: lineno,
                msg: "Ordering::Relaxed without a `// relaxed-ok:` justification \
                      (same line or in the comment block above)"
                    .to_string(),
            });
        }
        if find_token(code, "unsafe").is_some() && !attached_comments().contains("SAFETY:") {
            violations.push(Violation {
                file: label.to_string(),
                line: lineno,
                msg: "`unsafe` without a `// SAFETY:` comment (same line or in the \
                      comment block above)"
                    .to_string(),
            });
        }
    }
    violations
}

/// Finds `needle` in `haystack` as a standalone token (not embedded in a
/// longer identifier/path segment like `StdOrdering::Relaxed`).
fn find_token(haystack: &str, needle: &str) -> Option<usize> {
    let ident = |c: char| c.is_ascii_alphanumeric() || c == '_';
    let mut from = 0;
    while let Some(rel) = haystack[from..].find(needle) {
        let at = from + rel;
        let before_ok = haystack[..at].chars().next_back().is_none_or(|c| !ident(c));
        let after_ok = haystack[at + needle.len()..]
            .chars()
            .next()
            .is_none_or(|c| !ident(c));
        if before_ok && after_ok {
            return Some(at);
        }
        from = at + needle.len();
    }
    None
}

/// Lexes the source into per-line code/comment parts, dropping string and
/// char literal contents. Handles line comments, nested block comments,
/// escapes, raw strings (`r"..."`, `r#"..."#`, `br##"..."##`), and char
/// literals vs lifetimes.
fn split_lines(source: &str) -> Vec<LineInfo> {
    #[derive(PartialEq)]
    enum State {
        Code,
        LineComment,
        BlockComment(u32),
        Str,
        RawStr(u32),
    }
    let mut state = State::Code;
    let mut lines = Vec::new();
    let mut cur = LineInfo::default();
    let chars: Vec<char> = source.chars().collect();
    let mut i = 0;
    while i < chars.len() {
        let c = chars[i];
        if c == '\n' {
            if state == State::LineComment {
                state = State::Code;
            }
            lines.push(std::mem::take(&mut cur));
            i += 1;
            continue;
        }
        match state {
            State::Code => {
                let next = chars.get(i + 1).copied();
                match c {
                    '/' if next == Some('/') => {
                        state = State::LineComment;
                        i += 2;
                    }
                    '/' if next == Some('*') => {
                        state = State::BlockComment(1);
                        i += 2;
                    }
                    '"' => {
                        state = State::Str;
                        cur.code.push(' ');
                        i += 1;
                    }
                    'r' | 'b' => {
                        // Possible raw/byte string start: r", r#", br", b".
                        let mut j = i + 1;
                        if c == 'b' && chars.get(j) == Some(&'r') {
                            j += 1;
                        }
                        let mut hashes = 0u32;
                        while chars.get(j) == Some(&'#') {
                            hashes += 1;
                            j += 1;
                        }
                        let is_raw = (c == 'r' || chars.get(i + 1) == Some(&'r') || hashes == 0)
                            && chars.get(j) == Some(&'"');
                        let prev_ident = i
                            .checked_sub(1)
                            .and_then(|p| chars.get(p))
                            .is_some_and(|p| p.is_ascii_alphanumeric() || *p == '_');
                        if is_raw && !prev_ident && (c == 'r' || hashes == 0 || chars[i + 1] == 'r')
                        {
                            if c == 'b' && chars.get(i + 1) != Some(&'r') && hashes == 0 {
                                // b"..." — plain byte string.
                                state = State::Str;
                            } else {
                                state = State::RawStr(hashes);
                            }
                            cur.code.push(' ');
                            i = j + 1;
                        } else {
                            cur.code.push(c);
                            i += 1;
                        }
                    }
                    '\'' => {
                        // Char literal or lifetime. A literal closes within
                        // a few chars; a lifetime has no closing quote.
                        if next == Some('\\') {
                            // Escaped char literal: skip to closing quote.
                            let mut j = i + 2;
                            while j < chars.len() && chars[j] != '\'' {
                                j += 1;
                            }
                            cur.code.push(' ');
                            i = j + 1;
                        } else if chars.get(i + 2) == Some(&'\'') {
                            cur.code.push(' ');
                            i += 3;
                        } else {
                            cur.code.push(c);
                            i += 1;
                        }
                    }
                    _ => {
                        cur.code.push(c);
                        i += 1;
                    }
                }
            }
            State::LineComment => {
                cur.comment.push(c);
                i += 1;
            }
            State::BlockComment(depth) => {
                let next = chars.get(i + 1).copied();
                if c == '*' && next == Some('/') {
                    state = if depth == 1 {
                        State::Code
                    } else {
                        State::BlockComment(depth - 1)
                    };
                    i += 2;
                } else if c == '/' && next == Some('*') {
                    state = State::BlockComment(depth + 1);
                    i += 2;
                } else {
                    cur.comment.push(c);
                    i += 1;
                }
            }
            State::Str => {
                if c == '\\' {
                    i += 2;
                } else if c == '"' {
                    state = State::Code;
                    i += 1;
                } else {
                    i += 1;
                }
            }
            State::RawStr(hashes) => {
                if c == '"' {
                    let mut ok = true;
                    for k in 0..hashes {
                        if chars.get(i + 1 + k as usize) != Some(&'#') {
                            ok = false;
                            break;
                        }
                    }
                    if ok {
                        state = State::Code;
                        i += 1 + hashes as usize;
                        continue;
                    }
                }
                i += 1;
            }
        }
    }
    lines.push(cur);
    lines
}

#[cfg(test)]
mod tests {
    use super::{check_artifact, find_token, lint_source, split_lines};

    #[test]
    fn bench_check_accepts_current_artifact_shapes() {
        let glitch = r#"{
            "target": "glitch_flow", "gates": 3840, "gatspi_seconds": 1.6,
            "saving_pct": 4.28, "resim_wall_fused": 0.16,
            "resim_wall_unfused": 0.17, "launches_fused": 22,
            "launches_unfused": 116, "speculative_hit_rate": 0.98,
            "overflow_repairs": 3, "predicted_waste_words": 120,
            "oom_retries": 0
        }"#;
        assert_eq!(
            check_artifact("BENCH_glitch_flow.json", glitch),
            Vec::<String>::new()
        );
        let micro = r#"{
            "target": "kernel_micro", "unit": "ns_per_iter", "benchmarks": [
                {"id": "algorithm1_kernel/INV_count/16", "mean_ns": 273.0},
                {"id": "single_pass/spec_hit/16", "mean_ns": 300.0},
                {"id": "deep_pipeline_resim/fused/d", "mean_ns": 2.0e6},
                {"id": "deep_pipeline_resim/unfused/d", "mean_ns": 2.0e6},
                {"id": "deep_pipeline_resim/unfused_twopass/d", "mean_ns": 3.2e6},
                {"id": "publish_path/narrow_serial/l", "mean_ns": 1.7e6},
                {"id": "phase_driver/cursor_driver/w", "mean_ns": 9.0e5}
            ]
        }"#;
        assert_eq!(
            check_artifact("BENCH_kernel_micro.json", micro),
            Vec::<String>::new()
        );
    }

    #[test]
    fn bench_check_rejects_band_violations() {
        // Hit rate above 1 and a negative wall are both out of band.
        let glitch = r#"{
            "target": "glitch_flow", "gates": 3840, "gatspi_seconds": 0.0,
            "saving_pct": 4.28, "resim_wall_fused": 0.16,
            "resim_wall_unfused": 0.17, "launches_fused": 200,
            "launches_unfused": 116, "speculative_hit_rate": 1.5,
            "overflow_repairs": 3, "predicted_waste_words": 120,
            "oom_retries": -1
        }"#;
        let errs = check_artifact("g.json", glitch);
        assert_eq!(errs.len(), 4, "{errs:?}");
        assert!(errs.iter().any(|e| e.contains("oom_retries")));
        assert!(errs.iter().any(|e| e.contains("speculative_hit_rate")));
        assert!(errs.iter().any(|e| e.contains("gatspi_seconds")));
        assert!(errs.iter().any(|e| e.contains("launches_fused")));
        // A speculative speedup below the floor trips the tolerance band;
        // so do a missing group and a non-positive measurement.
        let micro = r#"{
            "target": "kernel_micro", "unit": "ns_per_iter", "benchmarks": [
                {"id": "algorithm1_kernel/INV_count/16", "mean_ns": 0.0},
                {"id": "single_pass/spec_hit/16", "mean_ns": 300.0},
                {"id": "deep_pipeline_resim/unfused/d", "mean_ns": 3.0e6},
                {"id": "deep_pipeline_resim/unfused_twopass/d", "mean_ns": 3.2e6},
                {"id": "publish_path/narrow_serial/l", "mean_ns": 1.7e6}
            ]
        }"#;
        let errs = check_artifact("m.json", micro);
        assert!(
            errs.iter().any(|e| e.contains("below the 1.3x floor")),
            "{errs:?}"
        );
        assert!(errs.iter().any(|e| e.contains("phase_driver/")), "{errs:?}");
        assert!(
            errs.iter().any(|e| e.contains("non-positive mean_ns")),
            "{errs:?}"
        );
        // Schema defects short-circuit with the validator's message.
        let errs = check_artifact("b.json", r#"{"unit": "ns"}"#);
        assert_eq!(errs.len(), 1);
        assert!(errs[0].contains("target"));
    }

    #[test]
    fn token_boundaries() {
        assert!(find_token("use std::sync::atomic::AtomicU64;", "std::sync::atomic").is_some());
        assert!(find_token("StdOrdering::Relaxed", "Ordering::Relaxed").is_none());
        assert!(find_token("x.load(Ordering::Relaxed)", "Ordering::Relaxed").is_some());
        assert!(find_token("unsafe_code", "unsafe").is_none());
        assert!(find_token("unsafe impl Sync for X {}", "unsafe").is_some());
    }

    #[test]
    fn strings_and_comments_are_stripped() {
        let src = concat!(
            "let s = \"std::sync::atomic in a string\";\n",
            "// std::sync::atomic in a comment\n",
            "/* Ordering::Relaxed in a block\n",
            "   comment */ let x = 1;\n",
            "let c = '\"'; let r = r#\"Ordering::Relaxed\"#;\n",
        );
        assert!(lint_source("crates/core/src/foo.rs", src).is_empty());
        let lines = split_lines(src);
        assert!(lines[0].code.contains("let s ="));
        assert!(!lines[0].code.contains("atomic"));
        assert!(lines[1].comment.contains("std::sync::atomic"));
        assert!(lines[4].code.contains("let r ="));
        assert!(!lines[4].code.contains("Relaxed"));
    }

    #[test]
    fn out_of_facade_import_is_flagged() {
        let src = "use std::sync::atomic::{AtomicU64, Ordering};\n";
        let v = lint_source("crates/core/src/ring.rs", src);
        assert_eq!(v.len(), 1);
        assert!(v[0].msg.contains("facade"));
        // The same line inside a facade or the model checker is fine.
        assert!(lint_source("crates/core/src/sync.rs", src).is_empty());
        assert!(lint_source("crates/gpu/src/sync.rs", src).is_empty());
        assert!(lint_source("crates/compat/loom/src/rt.rs", src).is_empty());
    }

    #[test]
    fn unjustified_relaxed_is_flagged() {
        let bare = "let v = head.load(Ordering::Relaxed);\n";
        let v = lint_source("crates/core/src/ring.rs", bare);
        assert_eq!(v.len(), 1);
        assert!(v[0].msg.contains("relaxed-ok"));
        let justified = concat!(
            "// relaxed-ok: single-consumer cursor, no payload ordering needed\n",
            "let v = head.load(Ordering::Relaxed);\n",
        );
        assert!(lint_source("crates/core/src/ring.rs", justified).is_empty());
        let inline = "let v = head.load(Ordering::Relaxed); // relaxed-ok: counter only\n";
        assert!(lint_source("crates/core/src/ring.rs", inline).is_empty());
    }

    #[test]
    fn justification_must_be_in_the_attached_comment_block() {
        // A marker separated from the atomic op by other statements does
        // not count, however close it is.
        let detached = concat!(
            "// relaxed-ok: attached to `a`, not to the load\n",
            "let a = 1;\n",
            "let v = head.load(Ordering::Relaxed);\n",
        );
        assert_eq!(lint_source("crates/core/src/ring.rs", detached).len(), 1);
        // A long contiguous comment block directly above does, even when the
        // marker line sits more than a few lines away.
        let long_block = concat!(
            "// relaxed-ok: this justification runs long because the edge\n",
            "// it names is subtle: the publishing store below is ordered\n",
            "// by the phase gate's Release, which the consumer Acquires\n",
            "// before it can observe the cursor at all, so the cursor\n",
            "// itself carries no payload.\n",
            "let v = head.load(Ordering::Relaxed);\n",
        );
        assert!(lint_source("crates/core/src/ring.rs", long_block).is_empty());
        // The walk crosses continuation lines of the same statement.
        let split_stmt = concat!(
            "// relaxed-ok: slot published behind the launch join\n",
            "in_ptrs[k] =\n",
            "    scratch.ptrs[s].load(Ordering::Relaxed);\n",
        );
        assert!(lint_source("crates/core/src/ring.rs", split_stmt).is_empty());
        // A blank line severs the block.
        let severed = concat!(
            "// relaxed-ok: orphaned by the blank line\n",
            "\n",
            "let v = head.load(Ordering::Relaxed);\n",
        );
        assert_eq!(lint_source("crates/core/src/ring.rs", severed).len(), 1);
    }

    #[test]
    fn stronger_orderings_need_no_justification() {
        let src = concat!(
            "let a = x.load(Ordering::Acquire);\n",
            "x.store(1, Ordering::Release);\n",
            "let b = y.fetch_add(1, Ordering::AcqRel);\n",
            "let c = z.load(Ordering::SeqCst);\n",
        );
        assert!(lint_source("crates/core/src/ring.rs", src).is_empty());
    }

    #[test]
    fn test_code_is_exempt_from_relaxed_rule() {
        let in_cfg_test = concat!(
            "fn prod() {}\n",
            "#[cfg(test)]\n",
            "mod tests {\n",
            "    fn t() { let v = x.load(Ordering::Relaxed); }\n",
            "}\n",
        );
        assert!(lint_source("crates/core/src/ring.rs", in_cfg_test).is_empty());
        let bare = "let v = x.load(Ordering::Relaxed);\n";
        assert!(lint_source("crates/core/tests/foo.rs", bare).is_empty());
        assert!(lint_source("crates/bench/benches/kernel_micro.rs", bare).is_empty());
        // ...but the facade rule still applies to test code.
        let import = "use std::sync::atomic::AtomicU64;\n";
        assert_eq!(lint_source("crates/core/tests/foo.rs", import).len(), 1);
    }

    #[test]
    fn undocumented_unsafe_is_flagged() {
        let bare = "unsafe { ptr.read() };\n";
        assert_eq!(lint_source("crates/core/src/ring.rs", bare).len(), 1);
        let documented = concat!(
            "// SAFETY: ptr is valid for reads, checked above\n",
            "unsafe { ptr.read() };\n",
        );
        assert!(lint_source("crates/core/src/ring.rs", documented).is_empty());
    }
}
