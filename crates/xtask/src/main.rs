//! Thin CLI over the [`xtask`] library — see the library docs for what
//! each task does.

use std::process::ExitCode;

use xtask::analysis::{self, AnalyzeOptions};

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    match args.first().map(String::as_str) {
        Some("analyze") => {
            let mut opts = AnalyzeOptions::default();
            let mut rest = args[1..].iter();
            while let Some(flag) = rest.next() {
                match flag.as_str() {
                    "--json" => match rest.next() {
                        Some(path) => opts.json = Some(path.into()),
                        None => return usage("--json needs a path"),
                    },
                    "--update-baseline" => opts.update_baseline = true,
                    other => return usage(&format!("unknown analyze flag `{other}`")),
                }
            }
            analysis::run_analyze(&opts)
        }
        Some("validate-plans") => analysis::run_validate_plans(),
        // Compatibility alias for the pre-framework lint: the old rules
        // live on as the sync-facade pass; run all source passes but skip
        // the plan compile (which the alias's callers never asked for).
        Some("lint-atomics") => analysis::run_analyze(&AnalyzeOptions {
            skip_plans: true,
            ..AnalyzeOptions::default()
        }),
        Some("bench-check") => xtask::bench::bench_check(),
        _ => usage("missing or unknown task"),
    }
}

fn usage(why: &str) -> ExitCode {
    eprintln!("xtask: {why}");
    eprintln!(
        "usage: cargo run -p xtask -- <analyze [--json <path>] [--update-baseline] \
         | validate-plans | lint-atomics | bench-check>"
    );
    ExitCode::from(2)
}
