//! Structured diagnostics: the one currency every pass emits and every
//! consumer (human output, `--json`, the baseline gate) trades in.

use std::collections::BTreeMap;
use std::fmt;

/// How bad a finding is.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Severity {
    /// Blocks CI once it exceeds the baseline.
    Error,
    /// Reported but never gates (stale-baseline notes, advisory findings).
    Warning,
}

impl Severity {
    /// Lowercase name used in both output formats.
    pub fn as_str(self) -> &'static str {
        match self {
            Severity::Error => "error",
            Severity::Warning => "warning",
        }
    }
}

/// One finding: which pass and rule fired, where, and why.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Diagnostic {
    /// Pass name (`panic-discipline`, `unwind-boundary`, …).
    pub pass: &'static str,
    /// Rule name within the pass — the baseline suppression key's third
    /// component, so one noisy rule can be baselined without muting its
    /// siblings.
    pub rule: &'static str,
    /// Workspace-relative file label (or a virtual label like
    /// `workloads:NVDLA_m(small)/convolution` for compiled-plan findings).
    pub file: String,
    /// 1-based line, `0` when the finding has no line anchor.
    pub line: usize,
    /// Severity.
    pub severity: Severity,
    /// Human-readable explanation.
    pub msg: String,
}

impl fmt::Display for Diagnostic {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "{}:{}: {} [{}/{}] {}",
            self.file,
            self.line,
            self.severity.as_str(),
            self.pass,
            self.rule,
            self.msg
        )
    }
}

/// Escapes a string for JSON output.
fn json_escape(s: &str) -> String {
    let mut out = String::with_capacity(s.len() + 2);
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\t' => out.push_str("\\t"),
            '\r' => out.push_str("\\r"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out
}

/// Serializes a diagnostics run to the `gatspi-analyze-diagnostics` JSON
/// document (version 1). The document is self-describing and parses back
/// with [`gatspi_bench::artifact::parse`] — the round-trip unit test keeps
/// the schema honest.
pub fn to_json(diags: &[Diagnostic], files_scanned: usize) -> String {
    let mut out = String::from("{\n");
    out.push_str("  \"schema\": \"gatspi-analyze-diagnostics\",\n");
    out.push_str("  \"version\": 1,\n");
    out.push_str(&format!("  \"files_scanned\": {files_scanned},\n"));
    let errors = diags
        .iter()
        .filter(|d| d.severity == Severity::Error)
        .count();
    out.push_str(&format!(
        "  \"summary\": {{\"total\": {}, \"errors\": {}, \"warnings\": {}}},\n",
        diags.len(),
        errors,
        diags.len() - errors
    ));
    out.push_str("  \"diagnostics\": [");
    for (i, d) in diags.iter().enumerate() {
        if i > 0 {
            out.push(',');
        }
        out.push_str(&format!(
            "\n    {{\"pass\": \"{}\", \"rule\": \"{}\", \"file\": \"{}\", \
             \"line\": {}, \"severity\": \"{}\", \"msg\": \"{}\"}}",
            json_escape(d.pass),
            json_escape(d.rule),
            json_escape(&d.file),
            d.line,
            d.severity.as_str(),
            json_escape(&d.msg)
        ));
    }
    out.push_str("\n  ]\n}\n");
    out
}

/// The checked-in suppression file: counts of accepted pre-existing
/// findings keyed by `(file, pass, rule)`. Line numbers are deliberately
/// not part of the key — unrelated edits move lines constantly, and a
/// baseline that rots on every rebase teaches people to regenerate it
/// blindly. Counts still gate: a *new* finding in an already-baselined
/// file/rule pushes the count past its allowance and fails.
#[derive(Debug, Default, PartialEq, Eq)]
pub struct Baseline {
    /// Accepted finding count per `(file, pass, rule)`.
    pub entries: BTreeMap<(String, String, String), usize>,
}

impl Baseline {
    /// Parses the baseline document (same hand-rolled JSON family as the
    /// bench artifacts: `{"schema": ..., "entries": [{"file", "pass",
    /// "rule", "count"}]}`).
    pub fn parse(text: &str) -> Result<Baseline, String> {
        use gatspi_bench::artifact::{parse, Json};
        let doc = parse(text).map_err(|e| format!("baseline: {e}"))?;
        match doc.get("schema") {
            Some(Json::Str(s)) if s == "gatspi-analyze-baseline" => {}
            _ => return Err("baseline: missing schema gatspi-analyze-baseline".into()),
        }
        let Some(Json::Arr(entries)) = doc.get("entries") else {
            return Err("baseline: missing entries array".into());
        };
        let mut out = Baseline::default();
        for e in entries {
            let (Some(Json::Str(file)), Some(Json::Str(pass)), Some(Json::Str(rule))) =
                (e.get("file"), e.get("pass"), e.get("rule"))
            else {
                return Err("baseline: entry missing file/pass/rule".into());
            };
            let count = match e.get("count") {
                Some(Json::Num(n)) if *n >= 1.0 => *n as usize,
                _ => return Err(format!("baseline: {file}: bad count")),
            };
            if out
                .entries
                .insert((file.clone(), pass.clone(), rule.clone()), count)
                .is_some()
            {
                return Err(format!(
                    "baseline: duplicate entry for {file} {pass}/{rule}"
                ));
            }
        }
        Ok(out)
    }

    /// Builds a baseline accepting exactly the given findings.
    pub fn from_diags<'a>(diags: impl IntoIterator<Item = &'a Diagnostic>) -> Baseline {
        let mut out = Baseline::default();
        for d in diags {
            *out.entries
                .entry((d.file.clone(), d.pass.to_string(), d.rule.to_string()))
                .or_insert(0) += 1;
        }
        out
    }

    /// Serializes back to the baseline document.
    pub fn to_json(&self) -> String {
        let mut out = String::from("{\n  \"schema\": \"gatspi-analyze-baseline\",\n");
        out.push_str("  \"version\": 1,\n  \"entries\": [");
        for (i, ((file, pass, rule), count)) in self.entries.iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            out.push_str(&format!(
                "\n    {{\"file\": \"{}\", \"pass\": \"{}\", \"rule\": \"{}\", \"count\": {}}}",
                json_escape(file),
                json_escape(pass),
                json_escape(rule),
                count
            ));
        }
        out.push_str("\n  ]\n}\n");
        out
    }

    /// Splits findings against the baseline. Per `(file, pass, rule)` key,
    /// the first `count` findings are suppressed; the rest are new. Also
    /// returns a warning per stale baseline entry (its findings are gone —
    /// time to shrink the file), so the allowance can only ratchet down.
    pub fn apply(&self, diags: &[Diagnostic]) -> (Vec<Diagnostic>, Vec<Diagnostic>) {
        let mut new = Vec::new();
        let mut seen: BTreeMap<(String, String, String), usize> = BTreeMap::new();
        for d in diags {
            let key = (d.file.clone(), d.pass.to_string(), d.rule.to_string());
            let allowance = self.entries.get(&key).copied().unwrap_or(0);
            let used = seen.entry(key).or_insert(0);
            *used += 1;
            if *used > allowance {
                new.push(d.clone());
            }
        }
        let mut stale = Vec::new();
        for ((file, pass, rule), count) in &self.entries {
            let have = seen
                .get(&(file.clone(), pass.clone(), rule.clone()))
                .copied()
                .unwrap_or(0);
            if have < *count {
                stale.push(Diagnostic {
                    pass: "baseline",
                    rule: "stale-entry",
                    file: file.clone(),
                    line: 0,
                    severity: Severity::Warning,
                    msg: format!(
                        "baseline allows {count} {pass}/{rule} finding(s) but only {have} \
                         remain — run `cargo run -p xtask -- analyze --update-baseline` \
                         to ratchet the allowance down"
                    ),
                });
            }
        }
        (new, stale)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn d(pass: &'static str, rule: &'static str, file: &str, line: usize) -> Diagnostic {
        Diagnostic {
            pass,
            rule,
            file: file.to_string(),
            line,
            severity: Severity::Error,
            msg: format!("{rule} at {file}:{line}"),
        }
    }

    /// The `--json` document must parse back through the same hand-rolled
    /// parser the bench artifacts use, with every field intact — the
    /// schema's round-trip contract.
    #[test]
    fn json_schema_round_trips() {
        use gatspi_bench::artifact::{parse, Json};
        let diags = vec![
            d(
                "panic-discipline",
                "unwrap",
                "crates/core/src/session.rs",
                42,
            ),
            Diagnostic {
                pass: "ordering-xref",
                rule: "dangling-pair",
                file: "crates/gpu/src/device.rs".to_string(),
                line: 7,
                severity: Severity::Warning,
                msg: "quote \" backslash \\ newline \n tab \t done".to_string(),
            },
        ];
        let text = to_json(&diags, 99);
        let doc = parse(&text).expect("diagnostics JSON parses");
        assert!(
            matches!(doc.get("schema"), Some(Json::Str(s)) if s == "gatspi-analyze-diagnostics")
        );
        assert!(matches!(doc.get("files_scanned"), Some(Json::Num(n)) if *n == 99.0));
        let summary = doc.get("summary").expect("summary");
        assert!(matches!(summary.get("total"), Some(Json::Num(n)) if *n == 2.0));
        assert!(matches!(summary.get("errors"), Some(Json::Num(n)) if *n == 1.0));
        let Some(Json::Arr(arr)) = doc.get("diagnostics") else {
            panic!("diagnostics array");
        };
        assert_eq!(arr.len(), 2);
        for (json, orig) in arr.iter().zip(&diags) {
            assert!(matches!(json.get("pass"), Some(Json::Str(s)) if s == orig.pass));
            assert!(matches!(json.get("rule"), Some(Json::Str(s)) if s == orig.rule));
            assert!(matches!(json.get("file"), Some(Json::Str(s)) if *s == orig.file));
            assert!(matches!(json.get("line"), Some(Json::Num(n)) if *n == orig.line as f64));
            assert!(
                matches!(json.get("severity"), Some(Json::Str(s)) if s == orig.severity.as_str())
            );
            assert!(matches!(json.get("msg"), Some(Json::Str(s)) if *s == orig.msg));
        }
    }

    #[test]
    fn baseline_round_trips_and_gates_by_count() {
        let diags = vec![
            d("panic-discipline", "unwrap", "a.rs", 1),
            d("panic-discipline", "unwrap", "a.rs", 9),
            d("sync-facade", "mutex", "b.rs", 3),
        ];
        let base = Baseline::from_diags(&diags);
        let reparsed = Baseline::parse(&base.to_json()).expect("baseline parses");
        assert_eq!(base, reparsed);

        // Exactly the baselined findings: nothing new, nothing stale.
        let (new, stale) = base.apply(&diags);
        assert!(new.is_empty() && stale.is_empty());

        // One extra finding under an existing key exceeds its allowance —
        // even though the key is baselined.
        let mut more = diags.clone();
        more.push(d("panic-discipline", "unwrap", "a.rs", 77));
        let (new, _) = base.apply(&more);
        assert_eq!(new.len(), 1);
        assert_eq!(new[0].line, 77);

        // A finding under a fresh key is always new.
        let fresh = vec![d("unwind-boundary", "missing-downcast", "c.rs", 5)];
        let (new, stale) = base.apply(&fresh);
        assert_eq!(new.len(), 1);
        assert_eq!(stale.len(), 2, "both baseline keys are now stale");
        assert!(stale.iter().all(|s| s.severity == Severity::Warning));
    }

    #[test]
    fn baseline_rejects_malformed_documents() {
        assert!(Baseline::parse("{}").is_err());
        assert!(Baseline::parse(
            r#"{"schema": "gatspi-analyze-baseline", "entries": [{"file": "a"}]}"#
        )
        .is_err());
        let dup = r#"{"schema": "gatspi-analyze-baseline", "entries": [
            {"file": "a.rs", "pass": "p", "rule": "r", "count": 1},
            {"file": "a.rs", "pass": "p", "rule": "r", "count": 2}
        ]}"#;
        assert!(Baseline::parse(dup).unwrap_err().contains("duplicate"));
    }
}
