//! Pass 3 — sync-facade totality (the `lint-atomics` successor).
//!
//! PR 7's loom model checker can only prove protocols whose sync
//! primitives route through the `gatspi_{core,gpu}::sync` facades — the
//! `--features model-check` switch swaps the facade's re-exports, not
//! arbitrary `std` paths. The original lint banned `std::sync::atomic`
//! only; this pass extends the ban to the blocking primitives
//! (`std::sync::{Mutex, RwLock, Condvar, mpsc, Barrier}`) and
//! `std::thread::spawn` in production code of the disciplined crates, and
//! closes the rename loophole: `use std::sync as s; s::Mutex::new(..)`
//! names no banned token yet creates exactly the un-modelable lock, so
//! `use` statements are parsed into an alias map and usage path chains are
//! canonicalized before matching.
//!
//! The pass also carries the two companion rules from the old lint:
//! `Ordering::Relaxed` needs `// relaxed-ok: <why>` in production code,
//! and every `unsafe` needs an attached `SAFETY:` comment.

use crate::analysis::config::{disciplined_prod, exempt_path, facade_file};
use crate::analysis::diag::{Diagnostic, Severity};
use crate::analysis::lexer::{find_token, SourceFile};
use std::collections::BTreeMap;

/// Blocking `std::sync` items banned in disciplined production code.
const BANNED_SYNC_ITEMS: &[&str] = &["Mutex", "RwLock", "Condvar", "Barrier", "mpsc"];

/// Runs the pass over the lexed workspace.
pub fn run(files: &[SourceFile]) -> Vec<Diagnostic> {
    let mut out = Vec::new();
    for f in files {
        scan_file(f, &mut out);
    }
    out
}

fn scan_file(f: &SourceFile, out: &mut Vec<Diagnostic>) {
    let facade = facade_file(&f.label);
    let prod_scoped = disciplined_prod(&f.label);
    let uses = collect_uses(f);
    let mut aliases: BTreeMap<String, Vec<String>> = BTreeMap::new();

    // `use` statements: flag banned leaves at the declaration, map the
    // rest for usage-site canonicalization. A tree importing two leaves of
    // the same banned namespace is one root cause — report it once.
    let mut reported: Vec<(usize, &'static str)> = Vec::new();
    for u in &uses {
        for leaf in &u.leaves {
            if !facade {
                if let Some(d) = banned(&leaf.path, prod_scoped, f, u.line) {
                    if !reported.contains(&(u.line, d.rule)) {
                        reported.push((u.line, d.rule));
                        out.push(d);
                    }
                    continue; // root cause reported; skip the alias map
                }
            }
            if let Some(binding) = &leaf.binding {
                aliases.insert(binding.clone(), leaf.path.clone());
            } else if !facade
                && ((prod_scoped && starts_with(&leaf.path, &["std", "sync"]))
                    || starts_with(&leaf.path, &["std", "sync", "atomic"]))
            {
                // A glob of a banned namespace defeats alias tracking.
                out.push(Diagnostic {
                    pass: "sync-facade",
                    rule: "use-glob",
                    file: f.label.clone(),
                    line: u.line,
                    severity: Severity::Error,
                    msg: format!(
                        "glob import of `{}` hides which sync primitives are used — \
                         import items explicitly (through the facade)",
                        leaf.path.join("::")
                    ),
                });
            }
        }
    }

    for (i, line) in f.lines.iter().enumerate() {
        let lineno = i + 1;
        let code = line.code.as_str();
        let trimmed = code.trim_start();

        // Usage-site path chains, canonicalized through the alias map.
        if !facade && !trimmed.starts_with("use ") && !trimmed.starts_with("pub use ") {
            for chain in path_chains(code) {
                let canonical: Vec<String> = match aliases.get(&chain[0]) {
                    Some(base) => base.iter().chain(chain[1..].iter()).cloned().collect(),
                    None => chain,
                };
                if let Some(d) = banned(&canonical, prod_scoped && !f.in_test_cfg[i], f, lineno) {
                    out.push(d);
                }
            }
        }

        // Relaxed rule: under-synchronization must earn its keep.
        if !exempt_path(&f.label)
            && !f.in_test_cfg[i]
            && find_token(code, "Ordering::Relaxed").is_some()
            && !f.attached_comments(i).contains("relaxed-ok:")
        {
            out.push(Diagnostic {
                pass: "sync-facade",
                rule: "relaxed",
                file: f.label.clone(),
                line: lineno,
                severity: Severity::Error,
                msg: "Ordering::Relaxed without a `// relaxed-ok:` justification \
                      (same line or in the comment block above)"
                    .to_string(),
            });
        }

        // SAFETY rule: the textual twin of clippy::undocumented_unsafe_blocks.
        if find_token(code, "unsafe").is_some() && !f.attached_comments(i).contains("SAFETY:") {
            out.push(Diagnostic {
                pass: "sync-facade",
                rule: "safety",
                file: f.label.clone(),
                line: lineno,
                severity: Severity::Error,
                msg: "`unsafe` without a `// SAFETY:` comment (same line or in the \
                      comment block above)"
                    .to_string(),
            });
        }
    }
}

/// Checks a canonical path against the banned namespaces.
fn banned(path: &[String], prod_scoped: bool, f: &SourceFile, line: usize) -> Option<Diagnostic> {
    let diag = |rule: &'static str, msg: String| {
        Some(Diagnostic {
            pass: "sync-facade",
            rule,
            file: f.label.clone(),
            line,
            severity: Severity::Error,
            msg,
        })
    };
    if starts_with(path, &["std", "sync", "atomic"])
        || starts_with(path, &["core", "sync", "atomic"])
    {
        return diag(
            "atomic-facade",
            "direct std::sync::atomic use outside the sync facades; import through \
             gatspi_core::sync / gatspi_gpu::sync so model-check builds can swap the types"
                .to_string(),
        );
    }
    if !prod_scoped {
        return None;
    }
    if starts_with(path, &["std", "sync"]) {
        if let Some(item) = path.get(2) {
            if BANNED_SYNC_ITEMS.iter().any(|b| b == item) {
                return diag(
                    "sync-facade",
                    format!(
                        "direct std::sync::{item} use in disciplined production code; \
                         import through the crate's sync facade so everything loom \
                         could model actually routes through it"
                    ),
                );
            }
        }
    }
    if starts_with(path, &["std", "thread", "spawn"]) {
        return diag(
            "thread-spawn",
            "direct std::thread::spawn in disciplined production code; use the sync \
             facade's thread module so model-check builds schedule the thread"
                .to_string(),
        );
    }
    None
}

fn starts_with(path: &[String], prefix: &[&str]) -> bool {
    path.len() >= prefix.len() && path.iter().zip(prefix).all(|(a, b)| a == b)
}

/// One leaf of a `use` tree: the full path and the name it binds (`None`
/// for globs).
struct UseLeaf {
    path: Vec<String>,
    binding: Option<String>,
}

struct UseStmt {
    line: usize,
    leaves: Vec<UseLeaf>,
}

/// Collects `use` statements (possibly spanning lines) and expands their
/// trees into leaves.
fn collect_uses(f: &SourceFile) -> Vec<UseStmt> {
    let mut out = Vec::new();
    let mut i = 0;
    while i < f.lines.len() {
        let trimmed = f.lines[i].code.trim_start();
        let after = if let Some(rest) = trimmed.strip_prefix("pub use ") {
            Some(rest)
        } else {
            trimmed.strip_prefix("use ")
        };
        let Some(first) = after else {
            i += 1;
            continue;
        };
        let mut text = first.to_string();
        let start = i;
        while !text.contains(';') && i + 1 < f.lines.len() {
            i += 1;
            text.push(' ');
            text.push_str(f.lines[i].code.trim());
        }
        let text = text.split(';').next().unwrap_or("").to_string();
        let mut leaves = Vec::new();
        expand_use_tree(&[], &text, &mut leaves);
        out.push(UseStmt {
            line: start + 1,
            leaves,
        });
        i += 1;
    }
    out
}

/// Recursively expands a use-tree string (`a::b::{c as d, e::*, self}`)
/// under `prefix` into leaves.
fn expand_use_tree(prefix: &[String], tree: &str, out: &mut Vec<UseLeaf>) {
    for item in split_top_level(tree) {
        let item = item.trim();
        if item.is_empty() {
            continue;
        }
        if let Some(brace) = item.find('{') {
            let head = &item[..brace];
            let inner = item[brace + 1..].rsplit_once('}').map_or("", |(a, _)| a);
            let mut new_prefix = prefix.to_vec();
            new_prefix.extend(
                head.split("::")
                    .map(str::trim)
                    .filter(|s| !s.is_empty())
                    .map(String::from),
            );
            expand_use_tree(&new_prefix, inner, out);
            continue;
        }
        let (path_text, alias) = match item.split_once(" as ") {
            Some((p, a)) => (p.trim(), Some(a.trim().to_string())),
            None => (item, None),
        };
        let mut path = prefix.to_vec();
        let mut glob = false;
        for seg in path_text.split("::").map(str::trim) {
            match seg {
                "" => {}
                "self" => {} // `self` binds the prefix itself
                "*" => glob = true,
                s => path.push(s.to_string()),
            }
        }
        if path.is_empty() {
            continue;
        }
        let binding = if glob {
            None
        } else {
            Some(alias.unwrap_or_else(|| path[path.len() - 1].clone()))
        };
        out.push(UseLeaf { path, binding });
    }
}

/// Splits a use-tree item list on top-level commas (brace-depth aware).
fn split_top_level(s: &str) -> Vec<&str> {
    let mut out = Vec::new();
    let mut depth = 0usize;
    let mut start = 0;
    for (i, c) in s.char_indices() {
        match c {
            '{' => depth += 1,
            '}' => depth = depth.saturating_sub(1),
            ',' if depth == 0 => {
                out.push(&s[start..i]);
                start = i + 1;
            }
            _ => {}
        }
    }
    out.push(&s[start..]);
    out
}

/// Extracts the `ident(::ident)+` path chains of a code line — the usage
/// sites the alias map canonicalizes.
fn path_chains(code: &str) -> Vec<Vec<String>> {
    let bytes: Vec<char> = code.chars().collect();
    let ident = |c: char| c.is_ascii_alphanumeric() || c == '_';
    let mut out = Vec::new();
    let mut i = 0;
    while i < bytes.len() {
        if !ident(bytes[i]) || (i > 0 && ident(bytes[i - 1])) {
            i += 1;
            continue;
        }
        // A chain starts at an identifier boundary.
        let mut chain = Vec::new();
        let mut j = i;
        loop {
            let seg_start = j;
            while j < bytes.len() && ident(bytes[j]) {
                j += 1;
            }
            chain.push(bytes[seg_start..j].iter().collect::<String>());
            if j + 1 < bytes.len() && bytes[j] == ':' && bytes[j + 1] == ':' && {
                let k = j + 2;
                k < bytes.len() && ident(bytes[k])
            } {
                j += 2;
            } else {
                break;
            }
        }
        if chain.len() > 1 {
            out.push(chain);
        }
        i = j + 1;
    }
    out
}

#[cfg(test)]
mod tests {
    use super::run;
    use crate::analysis::lexer::SourceFile;

    fn rules(label: &str, src: &str) -> Vec<(usize, &'static str)> {
        let f = SourceFile::lex(label, src);
        run(&[f]).into_iter().map(|d| (d.line, d.rule)).collect()
    }

    #[test]
    fn atomics_facade_rule_still_holds() {
        let src = "use std::sync::atomic::{AtomicU64, Ordering};\n";
        assert_eq!(
            rules("crates/core/src/ring.rs", src),
            vec![(1, "atomic-facade")]
        );
        assert!(rules("crates/core/src/sync.rs", src).is_empty());
        assert!(rules("crates/gpu/src/sync.rs", src).is_empty());
        assert!(rules("crates/compat/loom/src/rt.rs", src).is_empty());
        // The facade rule applies to test trees too.
        assert_eq!(rules("crates/core/tests/foo.rs", src).len(), 1);
    }

    /// Regression (satellite 1): `use … as` renames used to slip past the
    /// token ban — `s::atomic::AtomicU64` never names `std::sync::atomic`.
    #[test]
    fn alias_renames_are_canonicalized() {
        let src = concat!(
            "use std::sync as s;\n",
            "static N: s::atomic::AtomicU64 = s::atomic::AtomicU64::new(0);\n",
        );
        let got = rules("crates/core/src/ring.rs", src);
        assert!(
            got.iter().any(|(l, r)| *l == 2 && *r == "atomic-facade"),
            "{got:?}"
        );
        let renamed_item = concat!(
            "use std::sync::atomic as at;\n",
            "static N: at::AtomicU64 = at::AtomicU64::new(0);\n",
        );
        let got = rules("crates/core/src/ring.rs", renamed_item);
        assert_eq!(got, vec![(1, "atomic-facade")], "flagged at the root cause");
    }

    #[test]
    fn blocking_primitives_banned_in_disciplined_prod_only() {
        for item in ["Mutex", "RwLock", "Condvar", "Barrier"] {
            let src = format!("use std::sync::{item};\n");
            assert_eq!(
                rules("crates/core/src/session.rs", &src),
                vec![(1, "sync-facade")],
                "{item}"
            );
            // Other crates keep their std locks.
            assert!(rules("crates/bench/src/lib.rs", &src).is_empty(), "{item}");
        }
        let mpsc = "let (tx, rx) = std::sync::mpsc::channel();\n";
        assert_eq!(
            rules("crates/gpu/src/device.rs", mpsc),
            vec![(1, "sync-facade")]
        );
        // Arc is not a sync primitive the model cares about.
        assert!(rules("crates/core/src/session.rs", "use std::sync::Arc;\n").is_empty());
        // Facade imports are the fix, not a finding.
        assert!(rules("crates/core/src/session.rs", "use crate::sync::Mutex;\n").is_empty());
    }

    #[test]
    fn mixed_use_tree_flags_only_the_banned_leaf() {
        let src = "use std::sync::{Arc, Mutex};\n";
        assert_eq!(
            rules("crates/core/src/session.rs", src),
            vec![(1, "sync-facade")]
        );
    }

    #[test]
    fn thread_spawn_banned_but_scope_and_sleep_allowed() {
        assert_eq!(
            rules(
                "crates/core/src/session.rs",
                "let h = std::thread::spawn(f);\n"
            ),
            vec![(1, "thread-spawn")]
        );
        // Renamed module path still resolves.
        let renamed = "use std::thread as t;\nlet h = t::spawn(f);\n";
        assert_eq!(
            rules("crates/core/src/session.rs", renamed),
            vec![(2, "thread-spawn")]
        );
        assert!(rules(
            "crates/core/src/session.rs",
            "std::thread::scope(|s| ());\n"
        )
        .is_empty());
        assert!(rules("crates/gpu/src/fault.rs", "std::thread::sleep(d);\n").is_empty());
        // Test code may spawn directly.
        let in_test = "#[cfg(test)]\nmod tests { fn t() { std::thread::spawn(f); } }\n";
        assert!(rules("crates/core/src/session.rs", in_test).is_empty());
    }

    #[test]
    fn relaxed_and_safety_rules_ported() {
        let bare = "let v = head.load(Ordering::Relaxed);\n";
        assert_eq!(rules("crates/core/src/ring.rs", bare), vec![(1, "relaxed")]);
        let justified = concat!(
            "// relaxed-ok: single-consumer cursor\n",
            "let v = head.load(Ordering::Relaxed);\n",
        );
        assert!(rules("crates/core/src/ring.rs", justified).is_empty());
        assert!(rules("crates/core/tests/foo.rs", bare).is_empty());

        assert_eq!(
            rules("crates/core/src/ring.rs", "unsafe { ptr.read() };\n"),
            vec![(1, "safety")]
        );
        let documented = concat!(
            "// SAFETY: ptr is valid for reads, checked above\n",
            "unsafe { ptr.read() };\n",
        );
        assert!(rules("crates/core/src/ring.rs", documented).is_empty());
    }

    #[test]
    fn multiline_use_trees_are_parsed() {
        let src = concat!("use std::sync::{\n", "    Arc,\n", "    Mutex,\n", "};\n",);
        assert_eq!(
            rules("crates/core/src/session.rs", src),
            vec![(1, "sync-facade")]
        );
    }

    #[test]
    fn glob_of_banned_namespace_is_flagged() {
        let src = "use std::sync::*;\n";
        let got = rules("crates/core/src/session.rs", src);
        assert_eq!(got, vec![(1, "use-glob")]);
    }
}
