//! Pass 1 — panic discipline.
//!
//! PR 9's retry machinery classifies panic payloads at `catch_unwind`
//! boundaries: a typed payload means a known, recoverable condition, and
//! *anything else* is treated as a real bug and re-raised. An unannotated
//! `unwrap()` on the engine path therefore isn't just sloppy — its payload
//! reaches a boundary that must not mistake it for a retryable fault. This
//! pass bans the panicking idioms in production code of the disciplined
//! crates unless the attached comment block carries `// panic-ok: <reason>`
//! stating why the condition is impossible (or why dying is correct).

use crate::analysis::config::disciplined_prod;
use crate::analysis::diag::{Diagnostic, Severity};
use crate::analysis::lexer::{find_token, SourceFile};

/// Escape hatch marker: `// panic-ok: <reason>`.
const MARKER: &str = "panic-ok:";

/// The banned idioms, as `(rule, needles)` — a needle hits when it appears
/// as a standalone token in the line's code text.
const RULES: &[(&str, &[&str])] = &[
    ("unwrap", &["unwrap"]),
    ("expect", &["expect"]),
    ("panic", &["panic!", "panic_any"]),
    ("unreachable", &["unreachable!", "todo!", "unimplemented!"]),
];

/// Runs the pass over the lexed workspace.
pub fn run(files: &[SourceFile]) -> Vec<Diagnostic> {
    let mut out = Vec::new();
    for f in files {
        if !disciplined_prod(&f.label) {
            continue;
        }
        for (i, line) in f.lines.iter().enumerate() {
            if f.in_test_cfg[i] {
                continue;
            }
            let code = line.code.as_str();
            let mut hits: Vec<&'static str> = Vec::new();
            for (rule, needles) in RULES {
                for needle in *needles {
                    if let Some(at) = find_token(code, needle) {
                        // `unwrap`/`expect` must be calls, not names in a
                        // type or a doc path (`Option::unwrap` in a type
                        // position has no open paren).
                        let is_call = code[at + needle.len()..].trim_start().starts_with('(');
                        if needle.ends_with('!') || is_call {
                            hits.push(rule);
                            break;
                        }
                    }
                }
            }
            // `assert!` adjacent to indexing: the macro's failure is a
            // bounds story the code must own (assert_eq!/debug_assert! are
            // separate tokens and stay allowed).
            if find_token(code, "assert!").is_some()
                && (code.contains('[') || code.contains(".len()"))
            {
                hits.push("assert-indexing");
            }
            if hits.is_empty() {
                continue;
            }
            if f.attached_comments(i).contains(MARKER) {
                continue;
            }
            for rule in hits {
                out.push(Diagnostic {
                    pass: "panic-discipline",
                    rule,
                    file: f.label.clone(),
                    line: i + 1,
                    severity: Severity::Error,
                    msg: format!(
                        "`{rule}` in production code of a disciplined crate without a \
                         `// panic-ok: <reason>` justification — an untyped panic here \
                         reaches a catch_unwind boundary that only understands the \
                         registered payload types"
                    ),
                });
            }
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::run;
    use crate::analysis::lexer::SourceFile;

    fn diags(label: &str, src: &str) -> Vec<(usize, &'static str)> {
        let f = SourceFile::lex(label, src);
        run(&[f]).into_iter().map(|d| (d.line, d.rule)).collect()
    }

    #[test]
    fn bans_the_idioms_in_disciplined_prod_code() {
        let src = concat!(
            "let a = x.unwrap();\n",
            "let b = y.expect(\"reason\");\n",
            "panic!(\"boom\");\n",
            "std::panic::panic_any(Payload);\n",
            "unreachable!();\n",
            "assert!(i < v.len());\n",
        );
        assert_eq!(
            diags("crates/core/src/session.rs", src),
            vec![
                (1, "unwrap"),
                (2, "expect"),
                (3, "panic"),
                (4, "panic"),
                (5, "unreachable"),
                (6, "assert-indexing"),
            ]
        );
    }

    #[test]
    fn panic_ok_annotations_and_test_code_are_exempt() {
        let src = concat!(
            "// panic-ok: the schedule cache always holds this key\n",
            "let a = x.unwrap();\n",
            "let b = y.unwrap(); // panic-ok: inline reason\n",
            "#[cfg(test)]\n",
            "mod tests { fn t() { x.unwrap(); } }\n",
        );
        assert!(diags("crates/core/src/session.rs", src).is_empty());
        // Other crates and test trees are out of scope entirely.
        assert!(diags("crates/bench/src/lib.rs", "x.unwrap();\n").is_empty());
        assert!(diags("crates/core/tests/refsim.rs", "x.unwrap();\n").is_empty());
    }

    #[test]
    fn related_tokens_do_not_trip_the_rules() {
        let src = concat!(
            "let a = x.unwrap_or(0);\n",
            "let b = y.unwrap_or_else(|e| e.into_inner());\n",
            "assert_eq!(v[0], 1);\n", // assert_eq, not assert!
            "debug_assert!(i < v.len());\n",
            "let c = catch_unwind(f);\n",
        );
        assert!(
            diags("crates/core/src/session.rs", src).is_empty(),
            "{:?}",
            diags("crates/core/src/session.rs", src)
        );
    }
}
