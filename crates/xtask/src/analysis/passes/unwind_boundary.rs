//! Pass 2 — unwind-boundary audit.
//!
//! The engine converts typed panic payloads into `CoreError`s at
//! `catch_unwind` boundaries. The payload registry lives in one manifest
//! (`crates/xtask/unwind-manifest.txt`); this pass enforces the contract
//! from both sides:
//!
//! * every production `catch_unwind` in a disciplined crate must handle
//!   the *full* registry — by calling a registered classifier function, by
//!   handing the payload to a registered rethrow helper (deferring to an
//!   enclosing audited boundary), by downcasting every registered payload
//!   type inline, or by carrying an explicit `// unwind-ok: <reason>`
//!   annotation when the handling is genuinely non-local;
//! * every registered classifier's body must downcast every registered
//!   payload (totality), so adding a payload type without teaching the
//!   classifier is an error;
//! * every `struct *Panic` declared in the disciplined crates must be
//!   registered, and every registered payload/classifier must exist — the
//!   manifest can neither lag nor rot.

use crate::analysis::config::{disciplined_prod, UnwindManifest};
use crate::analysis::diag::{Diagnostic, Severity};
use crate::analysis::lexer::{find_token, SourceFile};

/// Lines of code after a `catch_unwind` searched for classifier calls,
/// rethrow helpers, or inline downcasts. Generous enough for a match arm
/// per payload; anything farther away should use `// unwind-ok:`.
const WINDOW: usize = 40;

/// Escape hatch marker for boundaries whose payload handling is non-local.
const MARKER: &str = "unwind-ok:";

/// Runs the pass over the lexed workspace.
pub fn run(files: &[SourceFile], manifest: &UnwindManifest) -> Vec<Diagnostic> {
    let mut out = Vec::new();
    let mut structs_seen: Vec<String> = Vec::new();
    let mut classifiers_seen: Vec<String> = Vec::new();

    for f in files {
        if !disciplined_prod(&f.label) {
            continue;
        }
        for (i, line) in f.lines.iter().enumerate() {
            let code = line.code.as_str();
            // Registry side: every typed-panic struct declaration.
            if let Some(name) = declared_ident(code, "struct") {
                if name.ends_with("Panic") {
                    if !manifest.payloads.contains(&name) {
                        out.push(Diagnostic {
                            pass: "unwind-boundary",
                            rule: "unregistered-payload",
                            file: f.label.clone(),
                            line: i + 1,
                            severity: Severity::Error,
                            msg: format!(
                                "typed panic payload `{name}` is not registered in \
                                 crates/xtask/unwind-manifest.txt — every catch_unwind \
                                 boundary audit depends on the registry being complete"
                            ),
                        });
                    }
                    structs_seen.push(name);
                }
            }
            // Classifier totality: a registered classifier defined here
            // must downcast every registered payload in its body.
            if let Some(name) = declared_ident(code, "fn") {
                if manifest.classifiers.contains(&name) {
                    classifiers_seen.push(name.clone());
                    let body = fn_body(f, i);
                    let missing: Vec<&str> = manifest
                        .payloads
                        .iter()
                        .filter(|p| find_token(&body, p).is_none())
                        .map(String::as_str)
                        .collect();
                    if !missing.is_empty() || !body.contains("downcast") {
                        out.push(Diagnostic {
                            pass: "unwind-boundary",
                            rule: "partial-classifier",
                            file: f.label.clone(),
                            line: i + 1,
                            severity: Severity::Error,
                            msg: format!(
                                "classifier `{name}` does not downcast the full payload \
                                 registry (missing: {})",
                                if missing.is_empty() {
                                    "no downcast calls at all".to_string()
                                } else {
                                    missing.join(", ")
                                }
                            ),
                        });
                    }
                }
            }
            // Boundary side.
            if f.in_test_cfg[i] || find_token(code, "catch_unwind").is_none() {
                continue;
            }
            if code.trim_start().starts_with("use ") || code.trim_start().starts_with("pub use ") {
                continue;
            }
            if f.attached_comments(i).contains(MARKER) {
                continue;
            }
            let window = f.code_window(i, i + WINDOW);
            let classified = manifest
                .classifiers
                .iter()
                .any(|c| find_token(&window, c).is_some());
            let rethrown = manifest
                .rethrows
                .iter()
                .any(|r| find_token(&window, r).is_some());
            if classified || rethrown {
                continue;
            }
            let missing: Vec<&str> = manifest
                .payloads
                .iter()
                .filter(|p| find_token(&window, p).is_none())
                .map(String::as_str)
                .collect();
            if missing.is_empty() && window.contains("downcast") {
                continue;
            }
            out.push(Diagnostic {
                pass: "unwind-boundary",
                rule: "missing-downcast",
                file: f.label.clone(),
                line: i + 1,
                severity: Severity::Error,
                msg: format!(
                    "catch_unwind boundary neither calls a registered classifier nor \
                     downcasts the full payload registry ({}) — a typed panic crossing \
                     it would be misclassified; handle all payloads, call a registered \
                     classifier/rethrow helper, or annotate `// unwind-ok: <reason>`",
                    if missing.is_empty() {
                        "no downcast calls in reach".to_string()
                    } else {
                        format!("unhandled: {}", missing.join(", "))
                    }
                ),
            });
        }
    }

    // Manifest entries must exist in the scanned tree. Skipped when the
    // scan holds no disciplined production files at all (fixture runs that
    // only exercise the boundary side).
    let scanned_prod = files.iter().any(|f| disciplined_prod(&f.label));
    if scanned_prod {
        for p in &manifest.payloads {
            if !structs_seen.iter().any(|s| s == p) {
                out.push(Diagnostic {
                    pass: "unwind-boundary",
                    rule: "missing-payload-struct",
                    file: "crates/xtask/unwind-manifest.txt".to_string(),
                    line: 0,
                    severity: Severity::Error,
                    msg: format!(
                        "manifest registers payload `{p}` but no `struct {p}` exists in \
                         the disciplined crates — remove the stale entry"
                    ),
                });
            }
        }
        for c in &manifest.classifiers {
            if !classifiers_seen.iter().any(|s| s == c) {
                out.push(Diagnostic {
                    pass: "unwind-boundary",
                    rule: "missing-classifier",
                    file: "crates/xtask/unwind-manifest.txt".to_string(),
                    line: 0,
                    severity: Severity::Error,
                    msg: format!(
                        "manifest registers classifier `{c}` but no `fn {c}` exists in \
                         the disciplined crates — remove the stale entry"
                    ),
                });
            }
        }
    }
    out
}

/// The brace-matched code of the function whose declaration starts at
/// line `decl` — from its opening `{` to the matching close (capped at
/// 400 lines; literals are already stripped, so counting braces is exact
/// up to macro pathologies the workspace doesn't have).
fn fn_body(f: &SourceFile, decl: usize) -> String {
    let mut depth = 0usize;
    let mut opened = false;
    let mut body = String::new();
    for line in f.lines.iter().skip(decl).take(400) {
        for c in line.code.chars() {
            match c {
                '{' => {
                    depth += 1;
                    opened = true;
                }
                '}' => depth = depth.saturating_sub(1),
                _ => {}
            }
            if opened {
                body.push(c);
            }
            if opened && depth == 0 {
                return body;
            }
        }
        body.push('\n');
    }
    body
}

/// If `code` declares an item of the given kind (`struct Foo`, `fn bar`),
/// returns the declared identifier.
fn declared_ident(code: &str, kind: &str) -> Option<String> {
    let at = find_token(code, kind)?;
    let rest = code[at + kind.len()..].trim_start();
    let name: String = rest
        .chars()
        .take_while(|c| c.is_ascii_alphanumeric() || *c == '_')
        .collect();
    (!name.is_empty()).then_some(name)
}

#[cfg(test)]
mod tests {
    use super::run;
    use crate::analysis::config::UnwindManifest;
    use crate::analysis::lexer::SourceFile;

    fn manifest() -> UnwindManifest {
        UnwindManifest::parse(
            "payload DeviceFaultPanic\npayload SinkClosedPanic\n\
             classifier panic_to_error\nrethrow resume_unwind\n",
        )
        .expect("test manifest parses")
    }

    fn rules(src: &str) -> Vec<&'static str> {
        let f = SourceFile::lex("crates/core/src/session.rs", src);
        run(&[f], &manifest()).into_iter().map(|d| d.rule).collect()
    }

    // Satisfies the registry-existence checks so boundary-focused tests
    // only see their own findings.
    const REGISTRY: &str = concat!(
        "pub struct DeviceFaultPanic;\n",
        "pub(crate) struct SinkClosedPanic;\n",
        "fn panic_to_error(p: Payload) -> CoreError {\n",
        "    if let Some(f) = p.downcast_ref::<DeviceFaultPanic>() { return f.into(); }\n",
        "    if let Some(s) = p.downcast_ref::<SinkClosedPanic>() { return s.into(); }\n",
        "    resume(p)\n",
        "}\n",
    );

    #[test]
    fn boundary_without_handling_is_flagged() {
        let src = format!(
            "{REGISTRY}fn f() {{\n    let r = catch_unwind(|| work());\n    \
             if let Err(p) = r {{ log(p); }}\n}}\n"
        );
        assert_eq!(rules(&src), vec!["missing-downcast"]);
    }

    #[test]
    fn classifier_rethrow_downcast_and_annotation_all_satisfy() {
        let via_classifier = format!(
            "{REGISTRY}fn f() {{\n    let r = catch_unwind(w);\n    \
             r.map_err(|p| panic_to_error(dev, p))\n}}\n"
        );
        assert!(rules(&via_classifier).is_empty());
        let via_rethrow = format!(
            "{REGISTRY}fn f() {{\n    let r = catch_unwind(w);\n    \
             if let Err(p) = r {{ resume_unwind(p); }}\n}}\n"
        );
        assert!(rules(&via_rethrow).is_empty());
        let inline = format!(
            "{REGISTRY}fn f() {{\n    let r = catch_unwind(w);\n    \
             if let Err(p) = r {{\n        \
             if p.downcast_ref::<DeviceFaultPanic>().is_some() {{}}\n        \
             if p.downcast_ref::<SinkClosedPanic>().is_some() {{}}\n    }}\n}}\n"
        );
        assert!(rules(&inline).is_empty());
        let annotated = format!(
            "{REGISTRY}fn f() {{\n    // unwind-ok: payload re-raised after the \
             publisher joins, classified by the caller\n    \
             let r = catch_unwind(w);\n}}\n"
        );
        assert!(rules(&annotated).is_empty());
    }

    #[test]
    fn partial_inline_downcast_is_flagged() {
        let src = format!(
            "{REGISTRY}fn f() {{\n    let r = catch_unwind(w);\n    \
             if let Err(p) = r {{\n        \
             if p.downcast_ref::<DeviceFaultPanic>().is_some() {{}}\n    }}\n}}\n"
        );
        assert_eq!(rules(&src), vec!["missing-downcast"]);
    }

    #[test]
    fn registry_completeness_cuts_both_ways() {
        // An unregistered *Panic struct.
        let src = format!("{REGISTRY}struct OverflowPanic;\n");
        assert_eq!(rules(&src), vec!["unregistered-payload"]);
        // A registered payload whose struct is gone, and a vanished
        // classifier.
        let src = "struct DeviceFaultPanic;\n";
        let got = rules(src);
        assert!(got.contains(&"missing-payload-struct"), "{got:?}");
        assert!(got.contains(&"missing-classifier"), "{got:?}");
    }

    #[test]
    fn partial_classifier_is_flagged() {
        let src = concat!(
            "pub struct DeviceFaultPanic;\n",
            "pub(crate) struct SinkClosedPanic;\n",
            "fn panic_to_error(p: Payload) -> CoreError {\n",
            "    if let Some(f) = p.downcast_ref::<DeviceFaultPanic>() { return f.into(); }\n",
            "    resume(p)\n",
            "}\n",
        );
        let got = rules(src);
        assert!(got.contains(&"partial-classifier"), "{got:?}");
    }

    #[test]
    fn test_code_boundaries_are_exempt() {
        let src = format!(
            "{REGISTRY}#[cfg(test)]\nmod tests {{\n    fn t() {{ \
             let _ = catch_unwind(w); }}\n}}\n"
        );
        assert!(rules(&src).is_empty());
    }
}
