//! The analysis passes. Each pass is a pure function from the shared
//! lexed token stream (plus static config) to [`Diagnostic`]s, so the
//! golden fixture tests drive them directly on snippet files.
//!
//! [`Diagnostic`]: crate::analysis::diag::Diagnostic

pub mod ordering_xref;
pub mod panic_discipline;
pub mod plan_invariants;
pub mod sync_facade;
pub mod unwind_boundary;
