//! Pass 4 — ordering cross-reference.
//!
//! PR 7's SeqCst audit documented the Acquire/Release edges in prose; this
//! pass upgrades the prose into a checked artifact. A synchronizing site
//! declares a stable name and names its partner:
//!
//! ```text
//! // anchor: commit-store
//! // pairs-with: crates/core/src/ring.rs:consume-load
//! seq.store(next, Ordering::Release);
//! ```
//!
//! The pass parses every annotation and verifies: anchors are unique per
//! file, every `pairs-with` target resolves to an existing anchor, the
//! target's comment block points *back* (both directions of the edge are
//! declared, so deleting one side is a lint error, not silent rot), no
//! site pairs with itself, and an anchored block actually sits on an
//! ordering operation (`Ordering::` / a fence) — a stale anchor left on
//! moved code is caught.

use crate::analysis::config::disciplined_prod;
use crate::analysis::diag::{Diagnostic, Severity};
use crate::analysis::lexer::{find_token, SourceFile};
use std::collections::BTreeMap;

/// One annotated comment block (a maximal run of lines carrying comments).
#[derive(Debug)]
struct Site {
    file: String,
    /// Anchors declared in the block: `(name, line)`.
    anchors: Vec<(String, usize)>,
    /// Pair declarations: `(target file, target anchor, line)`.
    pairs: Vec<(String, String, usize)>,
    /// Whether the block (or the code within 3 lines below it) contains an
    /// ordering operation.
    near_ordering: bool,
}

/// Runs the pass over the lexed workspace. Only the disciplined production
/// crates participate: that is where the Acquire/Release protocols live,
/// and scanning prose elsewhere (docs *describing* the annotation grammar)
/// would manufacture findings.
pub fn run(files: &[SourceFile]) -> Vec<Diagnostic> {
    let sites: Vec<Site> = files
        .iter()
        .filter(|f| disciplined_prod(&f.label))
        .flat_map(collect_sites)
        .collect();
    let mut out = Vec::new();

    // Index: file → anchor name → site index.
    let mut index: BTreeMap<(&str, &str), usize> = BTreeMap::new();
    for (si, site) in sites.iter().enumerate() {
        for (name, line) in &site.anchors {
            if index
                .insert((site.file.as_str(), name.as_str()), si)
                .is_some()
            {
                out.push(diag(
                    "duplicate-anchor",
                    &site.file,
                    *line,
                    format!("anchor `{name}` is declared more than once in this file"),
                ));
            }
        }
    }

    for site in &sites {
        if !site.anchors.is_empty() && !site.near_ordering {
            let (name, line) = &site.anchors[0];
            out.push(diag(
                "anchor-without-ordering",
                &site.file,
                *line,
                format!(
                    "anchor `{name}` is not attached to an ordering operation \
                     (no `Ordering::` or fence within reach) — stale annotation?"
                ),
            ));
        }
        for (tfile, tname, line) in &site.pairs {
            if site.anchors.is_empty() {
                out.push(diag(
                    "unanchored-pair",
                    &site.file,
                    *line,
                    format!(
                        "pairs-with declaration has no `// anchor: <name>` of its own — \
                         the partner at {tfile}:{tname} cannot point back"
                    ),
                ));
                continue;
            }
            let Some(&ti) = index.get(&(tfile.as_str(), tname.as_str())) else {
                out.push(diag(
                    "dangling-pair",
                    &site.file,
                    *line,
                    format!("pairs-with target {tfile}:{tname} does not resolve to any anchor"),
                ));
                continue;
            };
            let target = &sites[ti];
            if std::ptr::eq(target, site) {
                out.push(diag(
                    "self-pair",
                    &site.file,
                    *line,
                    format!("site pairs with its own anchor `{tname}`"),
                ));
                continue;
            }
            let points_back = target
                .pairs
                .iter()
                .any(|(bf, bn, _)| bf == &site.file && site.anchors.iter().any(|(a, _)| a == bn));
            if !points_back {
                out.push(diag(
                    "one-way-pair",
                    &site.file,
                    *line,
                    format!(
                        "pairs-with edge to {tfile}:{tname} is one-way — the target's \
                         block must declare `// pairs-with: {}:{}` back",
                        site.file, site.anchors[0].0
                    ),
                ));
            }
        }
    }
    out
}

fn diag(rule: &'static str, file: &str, line: usize, msg: String) -> Diagnostic {
    Diagnostic {
        pass: "ordering-xref",
        rule,
        file: file.to_string(),
        line,
        severity: Severity::Error,
        msg,
    }
}

/// Groups a file's comment-carrying lines into maximal contiguous blocks
/// and parses the annotations of each.
fn collect_sites(f: &SourceFile) -> Vec<Site> {
    let mut sites = Vec::new();
    let mut i = 0;
    while i < f.lines.len() {
        if f.lines[i].comment.trim().is_empty() {
            i += 1;
            continue;
        }
        let start = i;
        while i < f.lines.len() && !f.lines[i].comment.trim().is_empty() {
            i += 1;
        }
        let mut site = Site {
            file: f.label.clone(),
            anchors: Vec::new(),
            pairs: Vec::new(),
            near_ordering: false,
        };
        for j in start..i {
            let comment = f.lines[j].comment.as_str();
            if let Some(name) = marker_arg(comment, "anchor:") {
                site.anchors.push((name, j + 1));
            }
            if let Some(arg) = marker_arg(comment, "pairs-with:") {
                match arg.rsplit_once(':') {
                    Some((file, name)) if !file.is_empty() && !name.is_empty() => {
                        site.pairs.push((file.to_string(), name.to_string(), j + 1));
                    }
                    // Malformed (`<path>:<anchor>` shape missing): recorded
                    // as a pair that can never resolve → dangling-pair.
                    _ => site.pairs.push(("<malformed>".to_string(), arg, j + 1)),
                }
            }
        }
        if site.anchors.is_empty() && site.pairs.is_empty() {
            continue;
        }
        // The ordering operation may sit on the block's own lines (trailing
        // comments) or just below it.
        site.near_ordering = (start..(i + 3).min(f.lines.len())).any(|j| {
            let code = f.lines[j].code.as_str();
            code.contains("Ordering::") || find_token(code, "fence").is_some()
        });
        sites.push(site);
    }
    sites
}

/// If `comment` carries `<marker> <arg>`, returns the argument token.
/// The marker must start a word (`re-anchor:` does not declare an anchor).
fn marker_arg(comment: &str, marker: &str) -> Option<String> {
    let mut from = 0;
    while let Some(rel) = comment[from..].find(marker) {
        let at = from + rel;
        let before_ok = comment[..at]
            .chars()
            .next_back()
            .is_none_or(|c| c.is_whitespace());
        if before_ok {
            let arg: String = comment[at + marker.len()..]
                .trim_start()
                .chars()
                .take_while(|c| !c.is_whitespace())
                .collect();
            return (!arg.is_empty()).then_some(arg);
        }
        from = at + marker.len();
    }
    None
}

#[cfg(test)]
mod tests {
    use super::run;
    use crate::analysis::lexer::SourceFile;

    fn check(files: &[(&str, &str)]) -> Vec<(String, &'static str)> {
        let lexed: Vec<SourceFile> = files
            .iter()
            .map(|(label, src)| SourceFile::lex(label, src))
            .collect();
        run(&lexed).into_iter().map(|d| (d.file, d.rule)).collect()
    }

    const RING: &str = "crates/core/src/ring.rs";
    const DEV: &str = "crates/gpu/src/device.rs";

    #[test]
    fn bidirectional_pair_is_clean() {
        let ring = concat!(
            "// anchor: commit-store\n",
            "// pairs-with: crates/gpu/src/device.rs:consume-load\n",
            "seq.store(next, Ordering::Release);\n",
        );
        let dev = concat!(
            "// anchor: consume-load\n",
            "// pairs-with: crates/core/src/ring.rs:commit-store\n",
            "let s = seq.load(Ordering::Acquire);\n",
        );
        assert!(check(&[(RING, ring), (DEV, dev)]).is_empty());
    }

    #[test]
    fn one_way_and_dangling_edges_are_flagged() {
        let ring = concat!(
            "// anchor: commit-store\n",
            "// pairs-with: crates/gpu/src/device.rs:consume-load\n",
            "seq.store(next, Ordering::Release);\n",
        );
        // Target anchor exists but does not point back.
        let dev = concat!(
            "// anchor: consume-load\n",
            "let s = seq.load(Ordering::Acquire);\n",
        );
        let got = check(&[(RING, ring), (DEV, dev)]);
        assert_eq!(got, vec![(RING.to_string(), "one-way-pair")]);
        // Target anchor missing entirely.
        let got = check(&[(RING, ring)]);
        assert_eq!(got, vec![(RING.to_string(), "dangling-pair")]);
    }

    #[test]
    fn pair_without_own_anchor_is_flagged() {
        let ring = concat!(
            "// pairs-with: crates/gpu/src/device.rs:consume-load\n",
            "seq.store(next, Ordering::Release);\n",
        );
        let dev = concat!(
            "// anchor: consume-load\n",
            "let s = seq.load(Ordering::Acquire);\n",
        );
        let got = check(&[(RING, ring), (DEV, dev)]);
        assert_eq!(got, vec![(RING.to_string(), "unanchored-pair")]);
    }

    #[test]
    fn duplicate_anchor_and_stale_anchor_are_flagged() {
        let dup = concat!(
            "// anchor: a\n",
            "x.store(1, Ordering::Release);\n",
            "\n",
            "// anchor: a\n",
            "y.store(1, Ordering::Release);\n",
        );
        let got = check(&[(RING, dup)]);
        assert_eq!(got, vec![(RING.to_string(), "duplicate-anchor")]);

        let stale = concat!("// anchor: moved-away\n", "let x = compute();\n",);
        let got = check(&[(RING, stale)]);
        assert_eq!(got, vec![(RING.to_string(), "anchor-without-ordering")]);
    }

    #[test]
    fn same_file_pairs_work_and_self_pair_is_flagged() {
        let ok = concat!(
            "// anchor: publish\n",
            "// pairs-with: crates/core/src/ring.rs:observe\n",
            "x.store(1, Ordering::Release);\n",
            "\n",
            "// anchor: observe\n",
            "// pairs-with: crates/core/src/ring.rs:publish\n",
            "let v = x.load(Ordering::Acquire);\n",
        );
        assert!(check(&[(RING, ok)]).is_empty());

        let selfpair = concat!(
            "// anchor: publish\n",
            "// pairs-with: crates/core/src/ring.rs:publish\n",
            "x.store(1, Ordering::Release);\n",
        );
        let got = check(&[(RING, selfpair)]);
        assert_eq!(got, vec![(RING.to_string(), "self-pair")]);
    }

    #[test]
    fn prose_mentions_do_not_declare_markers() {
        let prose = concat!(
            "// The re-anchor: of this block is prose, not a declaration,\n",
            "// because the marker must start a word.\n",
            "let x = 1;\n",
        );
        assert!(check(&[(RING, prose)]).is_empty());
    }
}
