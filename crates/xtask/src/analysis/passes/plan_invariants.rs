//! Pass 5 — plan-invariant validation: static analysis of *compiled*
//! launch plans.
//!
//! The other passes read source; this one compiles every workloads suite
//! entry into the engine's cached launch schedules — full, fused, and
//! cone-restricted — and runs [`gatspi_core::audit`]'s structural checker
//! over each: levels topologically consistent, `col_off` slab ranges
//! disjoint and in-bounds, thread tables within gate bounds, cone
//! restrictions closed under fanout, LUT offsets valid. A schedule-builder
//! regression that produces a structurally wrong plan fails CI here even
//! if no simulation test happens to execute the broken corner.

use crate::analysis::diag::{Diagnostic, Severity};
use gatspi_core::audit;
use gatspi_workloads::suite::BenchmarkDef;

/// Suite build scale: small enough that all twelve designs compile their
/// plans in seconds, large enough that fusion and multi-level cones occur.
/// Override with `GATSPI_ANALYZE_SCALE`.
pub fn default_scale() -> f64 {
    std::env::var("GATSPI_ANALYZE_SCALE")
        .ok()
        .and_then(|v| v.parse::<f64>().ok())
        .filter(|&s| s > 0.0)
        .unwrap_or(0.05)
}

/// Window counts and fusion thresholds exercised per design: the classic
/// two-pass shape (fusion off) and a threshold that actually fuses the
/// small levels of every scaled-down design.
const PLAN_SHAPES: &[(usize, usize)] = &[(4, 0), (4, 4096)];

/// Validates every suite entry's full, fused, and cone-restricted plans.
/// Returns one diagnostic per structural defect (empty = all plans sound).
pub fn run(suite: &[BenchmarkDef], scale: f64) -> Vec<Diagnostic> {
    let mut out = Vec::new();
    for def in suite {
        let built = def.build_at_scale(scale);
        let label = format!("workloads:{}", built.label());
        let graph = &built.graph;
        // A sparse changed set (every 47th gate) yields a multi-level cone
        // in every design; the empty set checks the degenerate plan.
        let sparse: Vec<bool> = (0..graph.n_gates()).map(|g| g % 47 == 0).collect();
        let empty = vec![false; graph.n_gates()];
        for &(nw, fuse) in PLAN_SHAPES {
            let mut report = |plan: &str, defects: Vec<String>| {
                for d in defects {
                    out.push(Diagnostic {
                        pass: "plan-invariants",
                        rule: "structural",
                        file: label.clone(),
                        line: 0,
                        severity: Severity::Error,
                        msg: format!("{plan} plan (nw={nw}, fuse={fuse}): {d}"),
                    });
                }
            };
            report("full", audit::validate_full_plan(graph, nw, fuse));
            report("cone", audit::validate_cone_plan(graph, nw, fuse, &sparse));
            report(
                "empty-cone",
                audit::validate_cone_plan(graph, nw, fuse, &empty),
            );
        }
    }
    out
}
