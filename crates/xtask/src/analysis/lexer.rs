//! The shared token stream every analysis pass reads.
//!
//! Rust source is lexed once per file into per-line `(code, comment)`
//! halves with string and char literal *contents* dropped, so rule needles
//! appearing inside literals (like this module's own test fixtures) never
//! trip a pass. The lexer handles:
//!
//! * line comments and **nested** block comments (depth-tracked — a
//!   `/* a /* b */ c */` run stays comment to the outer close);
//! * raw identifiers (`r#unsafe` is an identifier named `unsafe`, not the
//!   keyword — [`find_token`] refuses matches preceded by `#`, and the
//!   lexer keeps the `r#` prefix in the code text instead of mis-lexing it
//!   as a raw-string opener);
//! * string, byte-string, raw-string (`r"…"`, `r#"…"#`, `br##"…"##`) and
//!   char literals vs lifetimes;
//! * backslash-newline continuations inside string literals (the escaped
//!   newline still terminates a source *line*, so diagnostics after a
//!   continued string keep their real line numbers).

/// A source line split into its code and comment text (string and char
/// literal contents stripped from the code half).
#[derive(Debug, Default, Clone)]
pub struct LineInfo {
    /// The line's code text, literals blanked.
    pub code: String,
    /// The line's comment text (trailing line comment and/or the slice of
    /// any block comment crossing it).
    pub comment: String,
}

/// A lexed source file plus the per-line facts passes share.
#[derive(Debug)]
pub struct SourceFile {
    /// Workspace-relative path with forward slashes.
    pub label: String,
    /// Per-line code/comment split.
    pub lines: Vec<LineInfo>,
    /// `in_test_cfg[i]` — line `i` sits at or after a `#[cfg(test)]` /
    /// `#[cfg(all(test` marker (the workspace convention keeps test
    /// modules at the bottom of a file, so a sticky flag is exact enough).
    pub in_test_cfg: Vec<bool>,
}

impl SourceFile {
    /// Lexes `source` under the given workspace-relative label.
    pub fn lex(label: &str, source: &str) -> SourceFile {
        let lines = split_lines(source);
        let mut in_test_cfg = Vec::with_capacity(lines.len());
        let mut flag = false;
        for line in &lines {
            if line.code.contains("#[cfg(test)]") || line.code.contains("#[cfg(all(test") {
                flag = true;
            }
            in_test_cfg.push(flag);
        }
        SourceFile {
            label: label.to_string(),
            lines,
            in_test_cfg,
        }
    }

    /// Comments attached to line `i`: its own trailing comment plus the
    /// contiguous comment block above it. The upward walk also crosses
    /// continuation lines of the same (multi-line) statement, stopping at a
    /// blank line or at code that terminates an earlier item (`;`, `{`,
    /// `}`, `,`, or an attribute's `]`).
    pub fn attached_comments(&self, i: usize) -> String {
        let mut acc = vec![self.lines[i].comment.as_str()];
        let mut j = i;
        while j > 0 {
            j -= 1;
            let l = &self.lines[j];
            let code_t = l.code.trim_end();
            if code_t.trim().is_empty() {
                if l.comment.trim().is_empty() {
                    break;
                }
            } else if code_t.ends_with([';', '{', '}', ',', ']']) {
                break;
            }
            acc.push(l.comment.as_str());
        }
        acc.join("\n")
    }

    /// Concatenated code text of lines `[lo, hi)` (clamped), newline
    /// separated — the window passes search for classifier / rethrow
    /// evidence near an unwind boundary.
    pub fn code_window(&self, lo: usize, hi: usize) -> String {
        let hi = hi.min(self.lines.len());
        let lo = lo.min(hi);
        self.lines[lo..hi]
            .iter()
            .map(|l| l.code.as_str())
            .collect::<Vec<_>>()
            .join("\n")
    }
}

/// Finds `needle` in `haystack` as a standalone token: not embedded in a
/// longer identifier or path segment (`StdOrdering::Relaxed` does not
/// contain the token `Ordering::Relaxed`), and not the body of a raw
/// identifier (`r#unsafe` does not contain the token `unsafe`).
pub fn find_token(haystack: &str, needle: &str) -> Option<usize> {
    let ident = |c: char| c.is_ascii_alphanumeric() || c == '_';
    let mut from = 0;
    while let Some(rel) = haystack[from..].find(needle) {
        let at = from + rel;
        let before = haystack[..at].chars().next_back();
        // `#` immediately before the match means a raw identifier
        // (`r#unsafe`): the text is a name, not the keyword.
        let before_ok = before.is_none_or(|c| !ident(c) && c != '#');
        let after_ok = haystack[at + needle.len()..]
            .chars()
            .next()
            .is_none_or(|c| !ident(c));
        if before_ok && after_ok {
            return Some(at);
        }
        from = at + needle.len();
    }
    None
}

/// Lexes the source into per-line code/comment parts. See the module docs
/// for the constructs handled.
pub fn split_lines(source: &str) -> Vec<LineInfo> {
    #[derive(PartialEq)]
    enum State {
        Code,
        LineComment,
        BlockComment(u32),
        Str,
        RawStr(u32),
    }
    let mut state = State::Code;
    let mut lines = Vec::new();
    let mut cur = LineInfo::default();
    let chars: Vec<char> = source.chars().collect();
    let mut i = 0;
    while i < chars.len() {
        let c = chars[i];
        if c == '\n' {
            if state == State::LineComment {
                state = State::Code;
            }
            lines.push(std::mem::take(&mut cur));
            i += 1;
            continue;
        }
        match state {
            State::Code => {
                let next = chars.get(i + 1).copied();
                match c {
                    '/' if next == Some('/') => {
                        state = State::LineComment;
                        i += 2;
                    }
                    '/' if next == Some('*') => {
                        state = State::BlockComment(1);
                        i += 2;
                    }
                    '"' => {
                        state = State::Str;
                        cur.code.push(' ');
                        i += 1;
                    }
                    'r' | 'b' => {
                        // Raw/byte string start (r", r#", br", b", br##")
                        // — or a raw identifier (r#name), which must stay
                        // code verbatim.
                        let mut j = i + 1;
                        if c == 'b' && chars.get(j) == Some(&'r') {
                            j += 1;
                        }
                        let mut hashes = 0u32;
                        while chars.get(j) == Some(&'#') {
                            hashes += 1;
                            j += 1;
                        }
                        let prev_ident = i
                            .checked_sub(1)
                            .and_then(|p| chars.get(p))
                            .is_some_and(|p| p.is_ascii_alphanumeric() || *p == '_');
                        let quote = chars.get(j) == Some(&'"');
                        let is_raw = quote
                            && !prev_ident
                            && (c == 'r' || chars.get(i + 1) == Some(&'r') || hashes == 0);
                        if is_raw {
                            if c == 'b' && chars.get(i + 1) != Some(&'r') && hashes == 0 {
                                // b"..." — plain byte string.
                                state = State::Str;
                            } else {
                                state = State::RawStr(hashes);
                            }
                            cur.code.push(' ');
                            i = j + 1;
                        } else if c == 'r' && !prev_ident && hashes == 1 {
                            // Raw identifier r#name: emit the prefix as
                            // code (find_token treats `#` as a raw-ident
                            // guard) and continue lexing the name normally.
                            cur.code.push('r');
                            cur.code.push('#');
                            i = j;
                        } else {
                            cur.code.push(c);
                            i += 1;
                        }
                    }
                    '\'' => {
                        // Char literal or lifetime. A literal closes within
                        // a few chars; a lifetime has no closing quote.
                        if next == Some('\\') {
                            // Escaped char literal: skip to closing quote.
                            let mut j = i + 2;
                            while j < chars.len() && chars[j] != '\'' {
                                j += 1;
                            }
                            cur.code.push(' ');
                            i = j + 1;
                        } else if chars.get(i + 2) == Some(&'\'') {
                            cur.code.push(' ');
                            i += 3;
                        } else {
                            cur.code.push(c);
                            i += 1;
                        }
                    }
                    _ => {
                        cur.code.push(c);
                        i += 1;
                    }
                }
            }
            State::LineComment => {
                cur.comment.push(c);
                i += 1;
            }
            State::BlockComment(depth) => {
                let next = chars.get(i + 1).copied();
                if c == '*' && next == Some('/') {
                    state = if depth == 1 {
                        State::Code
                    } else {
                        State::BlockComment(depth - 1)
                    };
                    i += 2;
                } else if c == '/' && next == Some('*') {
                    state = State::BlockComment(depth + 1);
                    i += 2;
                } else {
                    cur.comment.push(c);
                    i += 1;
                }
            }
            State::Str => {
                if c == '\\' {
                    // An escaped newline continues the literal but still
                    // ends the source line — swallowing it would shift
                    // every later diagnostic's line number.
                    if chars.get(i + 1) == Some(&'\n') {
                        lines.push(std::mem::take(&mut cur));
                    }
                    i += 2;
                } else if c == '"' {
                    state = State::Code;
                    i += 1;
                } else {
                    i += 1;
                }
            }
            State::RawStr(hashes) => {
                if c == '"' {
                    let closed = (0..hashes).all(|k| chars.get(i + 1 + k as usize) == Some(&'#'));
                    if closed {
                        state = State::Code;
                        i += 1 + hashes as usize;
                        continue;
                    }
                }
                i += 1;
            }
        }
    }
    lines.push(cur);
    lines
}

#[cfg(test)]
mod tests {
    use super::{find_token, split_lines, SourceFile};

    #[test]
    fn token_boundaries() {
        assert!(find_token("use std::sync::atomic::AtomicU64;", "std::sync::atomic").is_some());
        assert!(find_token("StdOrdering::Relaxed", "Ordering::Relaxed").is_none());
        assert!(find_token("x.load(Ordering::Relaxed)", "Ordering::Relaxed").is_some());
        assert!(find_token("unsafe_code", "unsafe").is_none());
        assert!(find_token("unsafe impl Sync for X {}", "unsafe").is_some());
    }

    #[test]
    fn strings_and_comments_are_stripped() {
        let src = concat!(
            "let s = \"std::sync::atomic in a string\";\n",
            "// std::sync::atomic in a comment\n",
            "/* Ordering::Relaxed in a block\n",
            "   comment */ let x = 1;\n",
            "let c = '\"'; let r = r#\"Ordering::Relaxed\"#;\n",
        );
        let lines = split_lines(src);
        assert!(lines[0].code.contains("let s ="));
        assert!(!lines[0].code.contains("atomic"));
        assert!(lines[1].comment.contains("std::sync::atomic"));
        assert!(lines[3].code.contains("let x = 1"));
        assert!(lines[4].code.contains("let r ="));
        assert!(!lines[4].code.contains("Relaxed"));
    }

    /// Regression (satellite 1): nested block comments must stay comment
    /// text to the *outer* close, at any depth, including all-on-one-line
    /// runs and code resuming after the close.
    #[test]
    fn nested_block_comments() {
        let src = concat!(
            "/* depth1 /* depth2 /* depth3 unsafe */ still2 */ still1 */ let a = 1;\n",
            "/* open /* inner\n",
            "unsafe { std::sync::atomic } still inside\n",
            "*/ tail of outer\n",
            "*/ let b = unsafe_name;\n",
        );
        let lines = split_lines(src);
        assert!(lines[0].code.contains("let a = 1"));
        assert!(!lines[0].code.contains("unsafe"));
        assert!(lines[0].comment.contains("depth3"));
        assert!(lines[2].code.is_empty(), "inside depth-2 comment");
        assert!(lines[2].comment.contains("still inside"));
        assert!(
            lines[3].code.is_empty(),
            "depth 1 still open: {:?}",
            lines[3].code
        );
        assert!(lines[4].code.contains("let b"));
        assert!(find_token(&lines[4].code, "unsafe").is_none());
    }

    /// Regression (satellite 1): raw identifiers are names, not keywords,
    /// and must not be mis-lexed as raw-string openers (which would
    /// swallow the rest of the file).
    #[test]
    fn raw_identifiers() {
        let src = concat!(
            "let r#unsafe = 1;\n",
            "let r#match = r#unsafe + 1;\n",
            "let real = r#\"raw unsafe string\"#;\n",
            "unsafe { touch() };\n",
        );
        let lines = split_lines(src);
        // The raw identifier survives as code but never matches the
        // keyword token.
        assert!(lines[0].code.contains("r#unsafe"));
        assert!(find_token(&lines[0].code, "unsafe").is_none());
        assert!(find_token(&lines[1].code, "match").is_none());
        // The raw *string* on line 3 is still stripped...
        assert!(!lines[2].code.contains("raw unsafe string"));
        // ...and the real keyword on line 4 still matches.
        assert!(find_token(&lines[3].code, "unsafe").is_some());
    }

    /// Regression (satellite 1): a backslash-newline continuation inside a
    /// string literal must not swallow the line break — diagnostics after
    /// it would otherwise point one line too early.
    #[test]
    fn escaped_newline_keeps_line_numbers() {
        let src = "let s = \"one \\\n  two\";\nunsafe { x() };\n";
        let lines = split_lines(src);
        assert_eq!(lines.len(), 4, "3 source lines + trailing empty");
        assert!(find_token(&lines[2].code, "unsafe").is_some());
    }

    #[test]
    fn attached_comment_block_walk() {
        let f = SourceFile::lex(
            "crates/core/src/x.rs",
            concat!(
                "// relaxed-ok: block above\n",
                "let v =\n",
                "    head.load(Ordering::Relaxed);\n",
                "\n",
                "let w = head.load(Ordering::Relaxed); // inline note\n",
            ),
        );
        assert!(f.attached_comments(2).contains("relaxed-ok:"));
        assert!(f.attached_comments(4).contains("inline note"));
        assert!(!f.attached_comments(4).contains("relaxed-ok:"));
    }

    #[test]
    fn test_cfg_flag_is_sticky() {
        let f = SourceFile::lex(
            "crates/core/src/x.rs",
            "fn prod() {}\n#[cfg(test)]\nmod tests {\n    fn t() {}\n}\n",
        );
        assert!(!f.in_test_cfg[0]);
        assert!(f.in_test_cfg[1] && f.in_test_cfg[3]);
    }
}
