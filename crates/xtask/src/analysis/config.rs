//! Static configuration shared by the passes: which paths are production
//! code, which files are facades, and the typed-panic-payload manifest the
//! unwind-boundary pass audits against.

use crate::analysis::diag::{Diagnostic, Severity};

/// Crates whose production (non-test) code is held to the panic and sync
/// disciplines — the engine crates whose panics cross `catch_unwind`
/// boundaries and whose sync primitives loom must be able to swap.
pub const DISCIPLINED_ROOTS: &[&str] = &["crates/core/src/", "crates/gpu/src/"];

/// Files allowed to name `std::sync::*` / `std::thread::spawn` directly:
/// the facades themselves and the model checker they switch to.
pub fn facade_file(label: &str) -> bool {
    label.ends_with("crates/core/src/sync.rs")
        || label.ends_with("crates/gpu/src/sync.rs")
        || label.contains("crates/compat/loom/")
        || label.contains("crates/compat/crossbeam/")
}

/// Paths exempt from production-code rules wholesale: test/bench/example
/// trees, the model checker, and the analyzer's own deliberately-bad
/// fixtures.
pub fn exempt_path(label: &str) -> bool {
    let in_dir =
        |dir: &str| label.starts_with(&format!("{dir}/")) || label.contains(&format!("/{dir}/"));
    in_dir("tests")
        || in_dir("benches")
        || in_dir("examples")
        || label.contains("crates/compat/loom/")
        || label.contains("crates/xtask/tests/fixtures/")
}

/// Whether `label` is production code of a disciplined crate.
pub fn disciplined_prod(label: &str) -> bool {
    DISCIPLINED_ROOTS.iter().any(|r| label.starts_with(r)) && !exempt_path(label)
}

/// The typed-panic-payload registry parsed from
/// `crates/xtask/unwind-manifest.txt`.
#[derive(Debug, Default, PartialEq, Eq)]
pub struct UnwindManifest {
    /// Typed payload struct names every boundary must downcast
    /// (`payload <Name>` lines).
    pub payloads: Vec<String>,
    /// Functions that classify a payload on the boundary's behalf — a
    /// `catch_unwind` whose error path calls one is considered total
    /// (`classifier <name>` lines).
    pub classifiers: Vec<String>,
    /// Functions/idioms that re-raise the payload unchanged, deferring
    /// classification to an enclosing audited boundary
    /// (`rethrow <name>` lines).
    pub rethrows: Vec<String>,
}

impl UnwindManifest {
    /// Parses the manifest's line format: `#` comments, blank lines, and
    /// `payload|classifier|rethrow <identifier>` entries.
    pub fn parse(text: &str) -> Result<UnwindManifest, String> {
        let mut m = UnwindManifest::default();
        for (i, raw) in text.lines().enumerate() {
            let line = raw.trim();
            if line.is_empty() || line.starts_with('#') {
                continue;
            }
            let mut parts = line.split_whitespace();
            let (kind, name) = (parts.next(), parts.next());
            let (Some(kind), Some(name)) = (kind, name) else {
                return Err(format!(
                    "unwind-manifest line {}: malformed `{line}`",
                    i + 1
                ));
            };
            if parts.next().is_some() {
                return Err(format!(
                    "unwind-manifest line {}: trailing tokens after `{kind} {name}`",
                    i + 1
                ));
            }
            let dest = match kind {
                "payload" => &mut m.payloads,
                "classifier" => &mut m.classifiers,
                "rethrow" => &mut m.rethrows,
                _ => {
                    return Err(format!(
                        "unwind-manifest line {}: unknown kind `{kind}` \
                         (expected payload|classifier|rethrow)",
                        i + 1
                    ))
                }
            };
            if dest.iter().any(|n| n == name) {
                return Err(format!(
                    "unwind-manifest line {}: duplicate {kind} `{name}`",
                    i + 1
                ));
            }
            dest.push(name.to_string());
        }
        Ok(m)
    }
}

/// A manifest load error as a diagnostic, so the analyze driver reports it
/// uniformly instead of aborting.
pub fn manifest_error(msg: String) -> Diagnostic {
    Diagnostic {
        pass: "unwind-boundary",
        rule: "manifest",
        file: "crates/xtask/unwind-manifest.txt".to_string(),
        line: 0,
        severity: Severity::Error,
        msg,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn manifest_parses_the_line_format() {
        let m = UnwindManifest::parse(
            "# typed panic payloads\npayload DeviceFaultPanic\npayload SinkClosedPanic\n\
             \nclassifier panic_to_error\nrethrow resume_unwind\n",
        )
        .expect("parses");
        assert_eq!(m.payloads, ["DeviceFaultPanic", "SinkClosedPanic"]);
        assert_eq!(m.classifiers, ["panic_to_error"]);
        assert_eq!(m.rethrows, ["resume_unwind"]);
    }

    #[test]
    fn manifest_rejects_bad_lines() {
        assert!(UnwindManifest::parse("payload").is_err());
        assert!(UnwindManifest::parse("widget Foo").is_err());
        assert!(UnwindManifest::parse("payload A\npayload A").is_err());
        assert!(UnwindManifest::parse("payload A extra").is_err());
    }

    #[test]
    fn path_classification() {
        assert!(disciplined_prod("crates/core/src/session.rs"));
        assert!(disciplined_prod("crates/gpu/src/device.rs"));
        assert!(!disciplined_prod("crates/core/tests/refsim.rs"));
        assert!(!disciplined_prod("crates/bench/src/lib.rs"));
        assert!(!disciplined_prod(
            "crates/xtask/tests/fixtures/panic/bad.rs"
        ));
        assert!(facade_file("crates/gpu/src/sync.rs"));
        assert!(facade_file("crates/compat/loom/src/sync.rs"));
        assert!(!facade_file("crates/core/src/ring.rs"));
    }
}
