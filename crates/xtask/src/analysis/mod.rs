//! The multi-pass static-analysis framework behind
//! `cargo run -p xtask -- analyze`.
//!
//! Architecture: [`lexer`] turns every workspace source file into a shared
//! per-line token stream (code/comment split, literals stripped, test-cfg
//! flags); [`config`] holds the path scoping rules and the typed-panic
//! manifest; each pass in [`passes`] is a pure function from that substrate
//! to structured [`diag::Diagnostic`]s; and the driver here applies the
//! checked-in baseline (`crates/xtask/analyze-baseline.json`) so
//! pre-existing accepted findings don't block CI while anything new does.

pub mod config;
pub mod diag;
pub mod lexer;
pub mod passes;

use std::path::Path;
use std::process::ExitCode;

use config::{manifest_error, UnwindManifest};
use diag::{Baseline, Diagnostic, Severity};
use lexer::SourceFile;

/// Relative path of the typed-panic-payload manifest.
pub const MANIFEST_PATH: &str = "crates/xtask/unwind-manifest.txt";

/// Relative path of the baseline/suppression file.
pub const BASELINE_PATH: &str = "crates/xtask/analyze-baseline.json";

/// Options of one `analyze` invocation.
#[derive(Debug, Default)]
pub struct AnalyzeOptions {
    /// Write the full (pre-baseline) diagnostics document here.
    pub json: Option<std::path::PathBuf>,
    /// Regenerate the baseline from the current findings instead of
    /// gating against it.
    pub update_baseline: bool,
    /// Skip the plan-invariants pass (source passes only) — used by the
    /// `lint-atomics` compatibility alias, which predates compiled-plan
    /// checking and must stay cheap.
    pub skip_plans: bool,
}

/// Lexes every workspace `.rs` file (fixtures excluded — they are
/// deliberately bad snippets for the golden tests).
pub fn lex_workspace(root: &Path) -> Result<Vec<SourceFile>, String> {
    let mut paths = Vec::new();
    crate::collect_rs_files(root, &mut paths);
    paths.sort();
    let mut files = Vec::with_capacity(paths.len());
    for path in paths {
        let label = path
            .strip_prefix(root)
            .unwrap_or(&path)
            .to_string_lossy()
            .replace('\\', "/");
        if label.starts_with("crates/xtask/tests/fixtures/") {
            continue;
        }
        let source = std::fs::read_to_string(&path)
            .map_err(|e| format!("cannot read {}: {e}", path.display()))?;
        files.push(SourceFile::lex(&label, &source));
    }
    Ok(files)
}

/// Runs the four source-level passes over a lexed file set. Public so the
/// golden fixture tests drive the exact CI pipeline on snippet files.
pub fn run_source_passes(files: &[SourceFile], manifest: &UnwindManifest) -> Vec<Diagnostic> {
    let mut diags = Vec::new();
    diags.extend(passes::panic_discipline::run(files));
    diags.extend(passes::unwind_boundary::run(files, manifest));
    diags.extend(passes::sync_facade::run(files));
    diags.extend(passes::ordering_xref::run(files));
    diags
}

/// The `analyze` entry point: lex, run the passes, gate against the
/// baseline.
pub fn run_analyze(opts: &AnalyzeOptions) -> ExitCode {
    let root = crate::workspace_root();
    let files = match lex_workspace(&root) {
        Ok(f) => f,
        Err(e) => {
            eprintln!("analyze: {e}");
            return ExitCode::FAILURE;
        }
    };

    let mut diags = Vec::new();
    let manifest = match std::fs::read_to_string(root.join(MANIFEST_PATH)) {
        Ok(text) => match UnwindManifest::parse(&text) {
            Ok(m) => m,
            Err(e) => {
                diags.push(manifest_error(e));
                UnwindManifest::default()
            }
        },
        Err(e) => {
            diags.push(manifest_error(format!("cannot read {MANIFEST_PATH}: {e}")));
            UnwindManifest::default()
        }
    };
    diags.extend(run_source_passes(&files, &manifest));
    if !opts.skip_plans {
        diags.extend(passes::plan_invariants::run(
            &gatspi_workloads::suite::table2_suite(),
            passes::plan_invariants::default_scale(),
        ));
    }
    diags.sort_by(|a, b| {
        (a.file.as_str(), a.line, a.pass, a.rule).cmp(&(b.file.as_str(), b.line, b.pass, b.rule))
    });

    if let Some(path) = &opts.json {
        let doc = diag::to_json(&diags, files.len());
        if let Err(e) = std::fs::write(path, doc) {
            eprintln!("analyze: cannot write {}: {e}", path.display());
            return ExitCode::FAILURE;
        }
    }

    let baseline_path = root.join(BASELINE_PATH);
    if opts.update_baseline {
        let errors: Vec<&Diagnostic> = diags
            .iter()
            .filter(|d| d.severity == Severity::Error)
            .collect();
        let base = Baseline::from_diags(errors.iter().copied());
        if let Err(e) = std::fs::write(&baseline_path, base.to_json()) {
            eprintln!("analyze: cannot write {}: {e}", baseline_path.display());
            return ExitCode::FAILURE;
        }
        println!(
            "analyze: baseline updated with {} accepted finding(s) across {} key(s)",
            errors.len(),
            base.entries.len()
        );
        return ExitCode::SUCCESS;
    }

    let baseline = match std::fs::read_to_string(&baseline_path) {
        Ok(text) => match Baseline::parse(&text) {
            Ok(b) => b,
            Err(e) => {
                eprintln!("analyze: {e}");
                return ExitCode::FAILURE;
            }
        },
        // No baseline file = empty baseline: everything gates.
        Err(_) => Baseline::default(),
    };
    let errors: Vec<Diagnostic> = diags
        .iter()
        .filter(|d| d.severity == Severity::Error)
        .cloned()
        .collect();
    let (new, stale) = baseline.apply(&errors);
    for d in diags.iter().filter(|d| d.severity == Severity::Warning) {
        eprintln!("{d}");
    }
    for d in &stale {
        eprintln!("{d}");
    }
    if new.is_empty() {
        println!(
            "analyze: {} file(s), {} pass finding(s), 0 beyond baseline",
            files.len(),
            errors.len()
        );
        ExitCode::SUCCESS
    } else {
        for d in &new {
            eprintln!("{d}");
        }
        eprintln!(
            "analyze: {} new finding(s) beyond baseline — fix them or (for accepted \
             pre-existing debt) run `cargo run -p xtask -- analyze --update-baseline`",
            new.len()
        );
        ExitCode::FAILURE
    }
}

/// The `validate-plans` entry point: every suite entry, full + fused +
/// cone-restricted, through the structural checker.
pub fn run_validate_plans() -> ExitCode {
    let suite = gatspi_workloads::suite::table2_suite();
    let scale = passes::plan_invariants::default_scale();
    let diags = passes::plan_invariants::run(&suite, scale);
    if diags.is_empty() {
        println!(
            "validate-plans: {} suite entries × {} plan shapes clean at scale {scale}",
            suite.len(),
            3 * 2
        );
        ExitCode::SUCCESS
    } else {
        for d in &diags {
            eprintln!("{d}");
        }
        eprintln!("validate-plans: {} structural defect(s)", diags.len());
        ExitCode::FAILURE
    }
}
