//! The `bench-check` task: validates the committed `BENCH_*.json`
//! trajectory artifacts in the repository root. Every artifact must parse
//! and pass the schema rules of [`gatspi_bench::artifact::validate`], the
//! known targets must all be present, and per-target tolerance bands must
//! hold (rates in `[0, 1]`, walls positive, fused launches not above
//! unfused, and the speculative single-pass schedule at least
//! [`SPEC_SPEEDUP_FLOOR`]× faster than its pinned two-pass reference on
//! `deep_pipeline_resim`). CI runs this next to `analyze` so a PR cannot
//! silently regress or rot the artifacts.

use std::process::ExitCode;

use gatspi_bench::artifact::{self, Json};

/// Lower bound on the `deep_pipeline_resim` two-pass / speculative wall
/// ratio (the launch-bound regime the single-pass protocol targets). The
/// measured margin is well above this; the band only has to catch the
/// optimization being lost, not track its exact size.
const SPEC_SPEEDUP_FLOOR: f64 = 1.3;

/// Artifacts every checkout must carry — the cross-PR trajectory set.
const REQUIRED_ARTIFACTS: &[&str] = &[
    "BENCH_glitch_flow.json",
    "BENCH_kernel_micro.json",
    "BENCH_sink_throughput.json",
];

/// Entry point of the `bench-check` task.
pub fn bench_check() -> ExitCode {
    let root = crate::workspace_root();
    let mut errors = Vec::new();
    let mut checked = 0usize;
    for name in REQUIRED_ARTIFACTS {
        let path = root.join(name);
        let text = match std::fs::read_to_string(&path) {
            Ok(t) => t,
            Err(e) => {
                errors.push(format!("{name}: unreadable ({e})"));
                continue;
            }
        };
        checked += 1;
        errors.extend(check_artifact(name, &text));
    }
    // Artifacts beyond the required set still must be well-formed.
    if let Ok(entries) = std::fs::read_dir(&root) {
        for entry in entries.flatten() {
            let file = entry.file_name();
            let file = file.to_string_lossy();
            if file.starts_with("BENCH_")
                && file.ends_with(".json")
                && !REQUIRED_ARTIFACTS.contains(&file.as_ref())
            {
                match std::fs::read_to_string(entry.path()) {
                    Ok(text) => {
                        checked += 1;
                        errors.extend(check_artifact(&file, &text));
                    }
                    Err(e) => errors.push(format!("{file}: unreadable ({e})")),
                }
            }
        }
    }
    if errors.is_empty() {
        println!("bench-check: {checked} artifact(s) within schema and tolerance bands");
        ExitCode::SUCCESS
    } else {
        for e in &errors {
            eprintln!("bench-check: {e}");
        }
        eprintln!("bench-check: {} error(s)", errors.len());
        ExitCode::FAILURE
    }
}

/// Validates one artifact document: schema first, then the per-target
/// tolerance bands. Returns every defect found (empty = clean).
fn check_artifact(name: &str, text: &str) -> Vec<String> {
    let mut errors = Vec::new();
    if let Err(e) = artifact::validate(text) {
        return vec![format!("{name}: {e}")];
    }
    let doc = artifact::parse(text).expect("validated artifact parses");
    // Criterion-style entries: measurements must be strictly positive (the
    // schema only requires non-negative).
    if let Some(Json::Arr(entries)) = doc.get("benchmarks") {
        for e in entries {
            let (Some(Json::Str(id)), Some(Json::Num(ns))) = (e.get("id"), e.get("mean_ns")) else {
                continue; // schema already reported the shape defect
            };
            if *ns <= 0.0 {
                errors.push(format!("{name}: {id}: non-positive mean_ns {ns}"));
            }
        }
    }
    match doc.get("target") {
        Some(Json::Str(t)) if t == "glitch_flow" => check_glitch_flow(name, &doc, &mut errors),
        Some(Json::Str(t)) if t == "kernel_micro" => check_kernel_micro(name, &doc, &mut errors),
        _ => {}
    }
    errors
}

fn num_field(doc: &Json, key: &str) -> Option<f64> {
    match doc.get(key) {
        Some(Json::Num(n)) => Some(*n),
        _ => None,
    }
}

/// Band checks of the flat glitch-flow artifact, including the PR-8
/// speculation telemetry fields.
fn check_glitch_flow(name: &str, doc: &Json, errors: &mut Vec<String>) {
    let mut band = |key: &str, lo: f64, hi: f64| match num_field(doc, key) {
        Some(v) if (lo..=hi).contains(&v) => {}
        Some(v) => errors.push(format!("{name}: {key} = {v} outside [{lo}, {hi}]")),
        None => errors.push(format!("{name}: missing numeric {key}")),
    };
    band("gates", 1.0, f64::MAX);
    band("gatspi_seconds", f64::MIN_POSITIVE, f64::MAX);
    band("saving_pct", -100.0, 100.0);
    band("resim_wall_fused", f64::MIN_POSITIVE, f64::MAX);
    band("resim_wall_unfused", f64::MIN_POSITIVE, f64::MAX);
    band("speculative_hit_rate", 0.0, 1.0);
    band("overflow_repairs", 0.0, f64::MAX);
    band("predicted_waste_words", 0.0, f64::MAX);
    band("oom_retries", 0.0, f64::MAX);
    if let (Some(fused), Some(unfused)) = (
        num_field(doc, "launches_fused"),
        num_field(doc, "launches_unfused"),
    ) {
        if fused > unfused {
            errors.push(format!(
                "{name}: launches_fused {fused} exceeds launches_unfused {unfused}"
            ));
        }
    } else {
        errors.push(format!("{name}: missing launch counts"));
    }
}

/// Structural and tolerance checks of the criterion-style kernel_micro
/// artifact: every bench group present, and the speculative single-pass
/// schedule at least [`SPEC_SPEEDUP_FLOOR`]× faster than the pinned
/// two-pass reference on the launch-bound deep pipeline.
fn check_kernel_micro(name: &str, doc: &Json, errors: &mut Vec<String>) {
    let Some(Json::Arr(entries)) = doc.get("benchmarks") else {
        errors.push(format!("{name}: missing benchmarks array"));
        return;
    };
    let mean_of = |prefix: &str| -> Option<f64> {
        let means: Vec<f64> = entries
            .iter()
            .filter(|e| matches!(e.get("id"), Some(Json::Str(id)) if id.starts_with(prefix)))
            .filter_map(|e| match e.get("mean_ns") {
                Some(Json::Num(ns)) => Some(*ns),
                _ => None,
            })
            .collect();
        (!means.is_empty()).then(|| means.iter().sum::<f64>() / means.len() as f64)
    };
    for group in [
        "algorithm1_kernel/",
        "single_pass/",
        "deep_pipeline_resim/",
        "publish_path/",
        "phase_driver/",
    ] {
        if mean_of(group).is_none() {
            errors.push(format!("{name}: no benchmarks in group {group}"));
        }
    }
    // `unfused/` (trailing slash) does not match `unfused_twopass/...`.
    match (
        mean_of("deep_pipeline_resim/unfused/"),
        mean_of("deep_pipeline_resim/unfused_twopass/"),
    ) {
        (Some(spec), Some(two_pass)) => {
            let ratio = two_pass / spec;
            if ratio < SPEC_SPEEDUP_FLOOR {
                errors.push(format!(
                    "{name}: deep_pipeline_resim speculative speedup {ratio:.3}x \
                     below the {SPEC_SPEEDUP_FLOOR}x floor"
                ));
            }
        }
        _ => errors.push(format!(
            "{name}: missing deep_pipeline_resim unfused/unfused_twopass pair"
        )),
    }
}

#[cfg(test)]
mod tests {
    use super::check_artifact;

    #[test]
    fn bench_check_accepts_current_artifact_shapes() {
        let glitch = r#"{
            "target": "glitch_flow", "gates": 3840, "gatspi_seconds": 1.6,
            "saving_pct": 4.28, "resim_wall_fused": 0.16,
            "resim_wall_unfused": 0.17, "launches_fused": 22,
            "launches_unfused": 116, "speculative_hit_rate": 0.98,
            "overflow_repairs": 3, "predicted_waste_words": 120,
            "oom_retries": 0
        }"#;
        assert_eq!(
            check_artifact("BENCH_glitch_flow.json", glitch),
            Vec::<String>::new()
        );
        let micro = r#"{
            "target": "kernel_micro", "unit": "ns_per_iter", "benchmarks": [
                {"id": "algorithm1_kernel/INV_count/16", "mean_ns": 273.0},
                {"id": "single_pass/spec_hit/16", "mean_ns": 300.0},
                {"id": "deep_pipeline_resim/fused/d", "mean_ns": 2.0e6},
                {"id": "deep_pipeline_resim/unfused/d", "mean_ns": 2.0e6},
                {"id": "deep_pipeline_resim/unfused_twopass/d", "mean_ns": 3.2e6},
                {"id": "publish_path/narrow_serial/l", "mean_ns": 1.7e6},
                {"id": "phase_driver/cursor_driver/w", "mean_ns": 9.0e5}
            ]
        }"#;
        assert_eq!(
            check_artifact("BENCH_kernel_micro.json", micro),
            Vec::<String>::new()
        );
    }

    #[test]
    fn bench_check_rejects_band_violations() {
        // Hit rate above 1 and a negative wall are both out of band.
        let glitch = r#"{
            "target": "glitch_flow", "gates": 3840, "gatspi_seconds": 0.0,
            "saving_pct": 4.28, "resim_wall_fused": 0.16,
            "resim_wall_unfused": 0.17, "launches_fused": 200,
            "launches_unfused": 116, "speculative_hit_rate": 1.5,
            "overflow_repairs": 3, "predicted_waste_words": 120,
            "oom_retries": -1
        }"#;
        let errs = check_artifact("g.json", glitch);
        assert_eq!(errs.len(), 4, "{errs:?}");
        assert!(errs.iter().any(|e| e.contains("oom_retries")));
        assert!(errs.iter().any(|e| e.contains("speculative_hit_rate")));
        assert!(errs.iter().any(|e| e.contains("gatspi_seconds")));
        assert!(errs.iter().any(|e| e.contains("launches_fused")));
        // A speculative speedup below the floor trips the tolerance band;
        // so do a missing group and a non-positive measurement.
        let micro = r#"{
            "target": "kernel_micro", "unit": "ns_per_iter", "benchmarks": [
                {"id": "algorithm1_kernel/INV_count/16", "mean_ns": 0.0},
                {"id": "single_pass/spec_hit/16", "mean_ns": 300.0},
                {"id": "deep_pipeline_resim/unfused/d", "mean_ns": 3.0e6},
                {"id": "deep_pipeline_resim/unfused_twopass/d", "mean_ns": 3.2e6},
                {"id": "publish_path/narrow_serial/l", "mean_ns": 1.7e6}
            ]
        }"#;
        let errs = check_artifact("m.json", micro);
        assert!(
            errs.iter().any(|e| e.contains("below the 1.3x floor")),
            "{errs:?}"
        );
        assert!(errs.iter().any(|e| e.contains("phase_driver/")), "{errs:?}");
        assert!(
            errs.iter().any(|e| e.contains("non-positive mean_ns")),
            "{errs:?}"
        );
        // Schema defects short-circuit with the validator's message.
        let errs = check_artifact("b.json", r#"{"unit": "ns"}"#);
        assert_eq!(errs.len(), 1);
        assert!(errs[0].contains("target"));
    }
}
