//@ label: crates/core/src/fixture.rs
// Known-good snippet: a bidirectional Release/Acquire edge declared from
// both sides, plus prose that merely mentions the markers.

fn publish(seq: &AtomicU64) {
    // anchor: publish-store
    // pairs-with: crates/core/src/fixture.rs:observe-load
    seq.store(1, Ordering::Release);
}

fn observe(seq: &AtomicU64) -> u64 {
    // anchor: observe-load
    // pairs-with: crates/core/src/fixture.rs:publish-store
    seq.load(Ordering::Acquire)
}

fn prose_only() {
    // The re-anchor: spelling above is prose — markers must start a word,
    // so this block declares nothing.
    let _ = 1;
}
