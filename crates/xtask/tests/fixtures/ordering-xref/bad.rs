//@ label: crates/core/src/fixture.rs
// Known-bad snippet: a stale anchor, a dangling pair, an unanchored pair,
// and a one-way edge.

fn stale_anchor() {
    // anchor: moved-away //~ anchor-without-ordering
    let x = compute();
    consume(x);
}

fn dangling(seq: &AtomicU64) {
    // anchor: commit
    // pairs-with: crates/core/src/fixture.rs:nonexistent //~ dangling-pair
    seq.store(1, Ordering::Release);
}

fn unanchored(seq: &AtomicU64) {
    // pairs-with: crates/core/src/fixture.rs:commit //~ unanchored-pair
    seq.store(2, Ordering::Release);
}

fn one_way(a: &AtomicU64) {
    // anchor: alpha
    // pairs-with: crates/core/src/fixture.rs:beta //~ one-way-pair
    a.store(1, Ordering::Release);
}

fn target_without_backlink(b: &AtomicU64) -> u64 {
    // anchor: beta
    b.load(Ordering::Acquire)
}
