//@ label: crates/core/src/fixture.rs
// Known-bad snippet: direct std sync primitives, the rename loophole, an
// unjustified Relaxed, and an undocumented unsafe.

use std::sync::Mutex; //~ sync-facade
use std::sync::atomic::AtomicU32; //~ atomic-facade
use std::sync as s;
use std::sync::mpsc::channel; //~ sync-facade

fn renamed_alias_is_still_banned() {
    let n = s::atomic::AtomicU64::new(0); //~ atomic-facade
    let _ = n;
}

fn spawns_outside_facade() {
    let h = std::thread::spawn(|| ()); //~ thread-spawn
    h.join().ok();
}

fn underjustified(head: &AtomicU32) -> u32 {
    head.load(Ordering::Relaxed) //~ relaxed
}

fn undocumented(p: *const u32) -> u32 {
    unsafe { *p } //~ safety
}
