//@ label: crates/core/src/fixture.rs
// Known-good snippet: facade imports, Arc, justified Relaxed, documented
// unsafe, and scoped threads are all fine.

use crate::sync::atomic::{AtomicU32, Ordering};
use crate::sync::{mpsc, Mutex};
use std::sync::Arc;

fn facade_primitives(m: &Mutex<u32>) -> u32 {
    let (tx, rx) = mpsc::channel();
    tx.send(*m.lock().unwrap_or_else(|e| e.into_inner())).ok();
    rx.recv().unwrap_or(0)
}

fn justified(head: &AtomicU32) -> u32 {
    // relaxed-ok: single-consumer cursor, no payload rides this load.
    head.load(Ordering::Relaxed)
}

fn documented(p: *const u32) -> u32 {
    // SAFETY: p is valid for reads; the caller checked alignment above.
    unsafe { *p }
}

fn scoped(xs: &mut [u32]) {
    crate::sync::thread::scope(|s| {
        s.spawn(|_| xs.iter_mut().for_each(|x| *x += 1));
    })
    .ok();
    std::thread::yield_now();
}

#[cfg(test)]
mod tests {
    #[test]
    fn tests_may_use_std_sync() {
        let m = std::sync::Mutex::new(1u32);
        let h = std::thread::spawn(move || *m.lock().unwrap());
        assert_eq!(h.join().unwrap(), 1);
    }
}
