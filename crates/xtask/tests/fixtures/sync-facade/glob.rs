//@ label: crates/core/src/fixture.rs
// A glob of a banned namespace defeats alias tracking and is its own rule.

use std::sync::*; //~ use-glob
