//@ label: crates/core/src/fixture.rs
// Known-bad snippet: every panic-discipline rule must fire exactly where
// the trailing markers say. The golden harness compares (line, rule) sets,
// so a pass that silently stops firing breaks this test.

fn lookup(v: &[u32], m: &std::collections::HashMap<u32, u32>) -> u32 {
    let first = v.first().unwrap(); //~ unwrap
    let hit = m.get(first).expect("key present"); //~ expect
    if *hit == 0 {
        panic!("zero hit"); //~ panic
    }
    match hit {
        1 => *hit,
        _ => unreachable!("bounded above"), //~ unreachable
    }
}

fn narrow(v: &[u32], n: usize) -> u32 {
    assert!(n < v.len(), "index in range"); //~ assert-indexing
    v[n]
}

fn boom() {
    std::panic::panic_any(42u32); //~ panic
    todo!() //~ unreachable
}
