//@ label: crates/core/src/fixture.rs
// Known-good snippet: annotated escapes, non-panicking relatives, and
// test-cfg code must all stay clean.

fn lookup(v: &[u32], m: &std::collections::HashMap<u32, u32>) -> u32 {
    // panic-ok: the builder guarantees a non-empty table.
    let first = v.first().unwrap();
    let hit = m.get(first).copied().unwrap_or(0);
    let fallback = m.get(&7).copied().unwrap_or_else(|| v.len() as u32);
    hit + fallback
}

fn checked(v: &[u32], n: usize) -> Option<u32> {
    debug_assert!(!v.is_empty());
    assert_eq!(v.len() % 2, 0);
    v.get(n).copied()
}

fn annotated_inline(v: &[u32]) -> u32 {
    v.last().copied().expect("sealed above") // panic-ok: sealed by caller
}

#[cfg(test)]
mod tests {
    #[test]
    fn test_code_may_panic_freely() {
        let v = vec![1u32];
        assert!(v[0] == v.clone().pop().unwrap());
        if v.is_empty() {
            panic!("empty");
        }
    }
}
