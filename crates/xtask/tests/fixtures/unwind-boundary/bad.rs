//@ label: crates/core/src/fixture.rs
// Known-bad snippet for the unwind-boundary audit: an unhandled boundary
// and an unregistered typed payload.

pub struct StrayPanic; //~ unregistered-payload

fn swallows_typed_payloads() -> u32 {
    let r = std::panic::catch_unwind(|| work()); //~ missing-downcast
    match r {
        Ok(v) => v,
        Err(_) => 0,
    }
}

fn partial_boundary() -> u32 {
    let r = std::panic::catch_unwind(|| work()); //~ missing-downcast
    match r {
        Ok(v) => v,
        Err(p) => {
            if p.downcast_ref::<DeviceFaultPanic>().is_some() {
                return 1;
            }
            0
        }
    }
}
