//@ label: crates/core/src/fixture.rs
// Known-good snippet: the four sanctioned boundary shapes — classifier
// call, rethrow helper, full inline downcast, and `unwind-ok:` annotation.

fn via_classifier(dev: usize) -> Result<u32, CoreError> {
    std::panic::catch_unwind(|| work()).map_err(|p| panic_to_error(dev, p))
}

fn via_rethrow() -> u32 {
    match std::panic::catch_unwind(|| work()) {
        Ok(v) => v,
        Err(p) => std::panic::resume_unwind(p),
    }
}

fn inline_total() -> u32 {
    match std::panic::catch_unwind(|| work()) {
        Ok(v) => v,
        Err(p) => {
            if p.downcast_ref::<DeviceFaultPanic>().is_some() {
                return 1;
            }
            if p.downcast_ref::<SinkClosedPanic>().is_some() {
                return 2;
            }
            0
        }
    }
}

fn deferred() -> u32 {
    // unwind-ok: payload is stashed and re-raised by the caller after the
    // worker scope joins.
    let r = std::panic::catch_unwind(|| work());
    stash(r)
}

#[cfg(test)]
mod tests {
    #[test]
    fn test_boundaries_are_exempt() {
        let _ = std::panic::catch_unwind(|| 1 + 1);
    }
}
