//! Golden-fixture tests for the `xtask analyze` source passes.
//!
//! Each directory under `tests/fixtures/` is named after a pass
//! (`panic-discipline`, `unwind-boundary`, `sync-facade`, `ordering-xref`)
//! and holds standalone `.rs` snippets that are lexed — never compiled —
//! under a *virtual* label taken from their `//@ label:` first line, so the
//! pass scoping rules (disciplined crate roots, facade files, test trees)
//! apply exactly as they do to the real workspace. Expected findings are
//! declared in-place as trailing `//~ <rule>` markers on the flagged line;
//! a fixture with no markers is a known-good snippet that must stay clean.
//!
//! The harness drives [`xtask::analysis::run_source_passes`] — the same
//! entry point `cargo run -p xtask -- analyze` uses — with the checked-in
//! unwind manifest, then filters to the directory's pass and the fixture's
//! own label (the unwind pass also emits registry-existence findings
//! against the manifest file itself whenever a disciplined file is in the
//! scan; those are the real workspace's concern, not the fixture's).
//!
//! The fifth pass, `plan-invariants`, has no source fixtures: its firing
//! proofs are the mutation tests in `gatspi_core::schedule` that corrupt a
//! built `LevelSchedule` and assert `validate()` reports each defect.

use std::collections::BTreeSet;
use std::fs;
use std::path::{Path, PathBuf};

use xtask::analysis::config::UnwindManifest;
use xtask::analysis::lexer::SourceFile;
use xtask::analysis::{run_source_passes, MANIFEST_PATH};

/// Pass name ↔ fixture directory name, exactly.
const SOURCE_PASSES: &[&str] = &[
    "panic-discipline",
    "unwind-boundary",
    "sync-facade",
    "ordering-xref",
];

fn fixtures_root() -> PathBuf {
    xtask::workspace_root().join("crates/xtask/tests/fixtures")
}

fn manifest() -> UnwindManifest {
    let path = xtask::workspace_root().join(MANIFEST_PATH);
    let text = fs::read_to_string(&path).unwrap_or_else(|e| panic!("read {}: {e}", path.display()));
    UnwindManifest::parse(&text).unwrap_or_else(|e| panic!("parse {}: {e}", path.display()))
}

/// A parsed fixture: the virtual label, the source text, and the expected
/// `(line, rule)` findings from `//~` markers.
struct Fixture {
    label: String,
    source: String,
    expected: Vec<(usize, String)>,
}

fn parse_fixture(path: &Path) -> Fixture {
    let source =
        fs::read_to_string(path).unwrap_or_else(|e| panic!("read {}: {e}", path.display()));
    let first = source.lines().next().unwrap_or("");
    let label = first
        .strip_prefix("//@ label:")
        .unwrap_or_else(|| panic!("{}: first line must be `//@ label: <path>`", path.display()))
        .trim()
        .to_string();
    let mut expected = Vec::new();
    for (i, line) in source.lines().enumerate() {
        if let Some(at) = line.find("//~") {
            let rule = line[at + 3..]
                .split_whitespace()
                .next()
                .unwrap_or_else(|| panic!("{}:{}: bare `//~` marker", path.display(), i + 1));
            expected.push((i + 1, rule.to_string()));
        }
    }
    Fixture {
        label,
        source,
        expected,
    }
}

/// Runs the full source-pass pipeline over one fixture and compares the
/// findings of `pass` against the fixture's markers, both ways: a missed
/// marker means the pass went blind, an unmarked finding means it regressed
/// into noise.
fn check_fixture(pass: &str, path: &Path) -> Fixture {
    let fixture = parse_fixture(path);
    let lexed = SourceFile::lex(&fixture.label, &fixture.source);
    let mut got: Vec<(usize, String)> = run_source_passes(&[lexed], &manifest())
        .into_iter()
        .filter(|d| d.pass == pass && d.file == fixture.label)
        .map(|d| (d.line, d.rule.to_string()))
        .collect();
    got.sort();
    let mut want = fixture.expected.clone();
    want.sort();
    assert_eq!(
        got,
        want,
        "fixture {} disagrees with its `//~` markers for pass `{pass}`",
        path.display()
    );
    fixture
}

fn fixture_files(dir: &Path) -> Vec<PathBuf> {
    let mut out: Vec<PathBuf> = fs::read_dir(dir)
        .unwrap_or_else(|e| panic!("read_dir {}: {e}", dir.display()))
        .map(|e| e.expect("dir entry").path())
        .filter(|p| p.extension().is_some_and(|x| x == "rs"))
        .collect();
    out.sort();
    out
}

#[test]
fn golden_fixtures_match_their_markers() {
    let root = fixtures_root();
    let on_disk: BTreeSet<String> = fs::read_dir(&root)
        .unwrap_or_else(|e| panic!("read_dir {}: {e}", root.display()))
        .map(|e| {
            e.expect("dir entry")
                .file_name()
                .to_string_lossy()
                .into_owned()
        })
        .collect();
    let known: BTreeSet<String> = SOURCE_PASSES.iter().map(|s| s.to_string()).collect();
    assert_eq!(
        on_disk, known,
        "fixture directories must map one-to-one onto the source passes"
    );

    for pass in SOURCE_PASSES {
        let files = fixture_files(&root.join(pass));
        assert!(!files.is_empty(), "pass `{pass}` has no fixtures");
        let mut failing = 0usize;
        let mut clean = 0usize;
        for path in &files {
            let fixture = check_fixture(pass, path);
            if fixture.expected.is_empty() {
                clean += 1;
            } else {
                failing += 1;
            }
        }
        assert!(
            failing > 0,
            "pass `{pass}` needs at least one known-bad fixture proving it fires"
        );
        assert!(
            clean > 0,
            "pass `{pass}` needs at least one known-good fixture proving it stays quiet"
        );
    }
}

/// The virtual labels must land inside the disciplined roots — otherwise a
/// scoping change could silently turn every fixture into a no-op that still
/// "passes" because both sides of the comparison are empty.
#[test]
fn fixture_labels_are_in_scope() {
    use xtask::analysis::config::disciplined_prod;
    let root = fixtures_root();
    for pass in SOURCE_PASSES {
        for path in fixture_files(&root.join(pass)) {
            let fixture = parse_fixture(&path);
            assert!(
                disciplined_prod(&fixture.label),
                "{}: label `{}` is outside the disciplined production scope",
                path.display(),
                fixture.label
            );
        }
    }
}
