//! Activity-based power estimation, glitch analysis, and the paper's §4
//! glitch-optimization flow.
//!
//! GATSPI's purpose is ultra-fast *power* estimation: the SAIF it produces
//! feeds a power tool. This crate supplies that downstream consumer:
//!
//! * [`PowerModel`] — a transparent activity-based model: per-net switching
//!   energy (`½·C·V²` with fanout-proportional capacitance), per-cell
//!   internal energy per output toggle (area-scaled), and area-scaled
//!   leakage. Absolute watts are synthetic; *relative* comparisons (the
//!   paper's 1.4% saving) are what the flow measures.
//! * [`sta`] — static max-arrival timing over the simulation graph, used to
//!   locate glitch sources and to size balancing delays.
//! * [`glitch`] — classifies toggles into functional vs glitch transitions
//!   per clock cycle and attributes glitch power.
//! * [`flow`] — the §4 closed loop: re-simulate → analyse glitches → apply
//!   designer-style delay-balancing fixes → re-simulate → confirm savings,
//!   with GATSPI vs baseline turnaround accounting.

#![deny(missing_docs)]

pub mod flow;
pub mod glitch;
mod model;
pub mod sta;

pub use model::{PowerModel, PowerReport};
