//! The §4 glitch-optimization flow: re-simulate → analyse → fix → re-simulate.
//!
//! The paper deploys GATSPI in a glitch-power-reduction loop on a 1.3M-gate
//! design: custom scripts analyse glitch activity, designer-informed fixes
//! are applied to the netlist, and a second re-simulation confirms a 1.4%
//! design-power saving — with GATSPI cutting the loop's re-simulation
//! turnaround 449× versus the commercial simulator.
//!
//! This module reproduces that loop end to end. The "designer-informed
//! glitch fix" is implemented as *glitch absorption by cell slowdown*: the
//! gates whose outputs glitch most are downsized (their arc delays scaled
//! up), widening their inertial filtering window so sub-delay input pulses
//! die at the source instead of propagating — a standard glitch-power
//! technique that also saves the downsized cells' own energy. A static-
//! timing guard keeps every slowdown within the clock period's slack.

use std::sync::Arc;
use std::time::Instant;

use gatspi_core::{RunOptions, Session, SimConfig};
use gatspi_graph::{CircuitGraph, GraphOptions};
use gatspi_netlist::Netlist;
use gatspi_refsim::{EventSimulator, RefConfig};
use gatspi_sdf::{DelayTriple, SdfFile};
use gatspi_wave::{SimTime, Waveform};

use crate::glitch::{classify, GlitchStats};
use crate::{PowerModel, PowerReport};

/// Flow configuration.
#[derive(Debug, Clone)]
pub struct FlowConfig {
    /// How many worst glitch-source gates to fix.
    pub fixes: usize,
    /// Arc-delay scale factor applied to fixed gates (cell downsizing).
    pub slowdown: f64,
    /// Timing guard: after fixing, the critical path must stay below this
    /// fraction of the clock period.
    pub max_path_fraction: f64,
    /// Power model.
    pub power: PowerModel,
    /// GATSPI engine configuration for both re-simulations.
    pub sim: SimConfig,
    /// Also run the event-driven baseline twice to measure the turnaround
    /// speedup (skippable because it dominates the flow's wall time).
    pub compare_baseline: bool,
}

impl Default for FlowConfig {
    fn default() -> Self {
        FlowConfig {
            fixes: 10,
            slowdown: 2.0,
            max_path_fraction: 0.9,
            power: PowerModel::default(),
            sim: SimConfig::default(),
            compare_baseline: true,
        }
    }
}

/// Outcome of one optimization loop.
#[derive(Debug, Clone)]
pub struct FlowReport {
    /// Power before fixing.
    pub power_before: PowerReport,
    /// Power after fixing.
    pub power_after: PowerReport,
    /// Relative saving in percent (positive = improved).
    pub saving_pct: f64,
    /// (functional, glitch) toggle totals before fixing.
    pub glitch_before: (u64, u64),
    /// (functional, glitch) toggle totals after fixing.
    pub glitch_after: (u64, u64),
    /// Instance names of the gates that received balancing fixes.
    pub fixed_gates: Vec<String>,
    /// Wall seconds for the two GATSPI re-simulations.
    pub gatspi_seconds: f64,
    /// Wall seconds for the two baseline re-simulations, if measured.
    pub baseline_seconds: Option<f64>,
}

impl FlowReport {
    /// Turnaround speedup of GATSPI over the baseline, if measured.
    pub fn turnaround_speedup(&self) -> Option<f64> {
        self.baseline_seconds
            .map(|b| b / self.gatspi_seconds.max(1e-12))
    }
}

/// Runs the full glitch-optimization loop.
///
/// # Errors
///
/// Propagates GATSPI engine errors (e.g. arena exhaustion). Both
/// re-simulations run with host waveform spill enabled, so glitch
/// classification works even when the run segments.
///
/// # Panics
///
/// Panics if `cycle_time` is not positive or stimuli don't match the
/// netlist's inputs.
pub fn run_glitch_flow(
    netlist: &Netlist,
    sdf: &SdfFile,
    stimuli: &[Waveform],
    duration: SimTime,
    cycle_time: SimTime,
    cfg: &FlowConfig,
) -> gatspi_core::Result<FlowReport> {
    assert!(cycle_time > 0, "cycle_time must be positive");
    let areas = PowerModel::areas_of(netlist);
    let opts = GraphOptions::default();
    let graph0 = Arc::new(CircuitGraph::build(netlist, Some(sdf), &opts).expect("valid inputs"));

    // --- Pass 1: re-simulate and analyse. Waveform spill keeps glitch
    // classification valid even if the arena forces segmentation.
    let run_opts = RunOptions::default().with_waveform_spill();
    let t0 = Instant::now();
    let sim0 = Session::new(Arc::clone(&graph0), cfg.sim.clone());
    let r0 = sim0.run_with(stimuli, duration, &run_opts)?;
    let mut gatspi_seconds = t0.elapsed().as_secs_f64();
    let power_before = cfg.power.estimate(
        &graph0,
        toggles_of(&r0, &graph0),
        &areas,
        i64::from(duration),
    );
    let waveforms: Vec<Waveform> = (0..graph0.n_signals())
        .map(|s| r0.waveform(s))
        .collect::<gatspi_core::Result<_>>()?;
    let stats0 = classify(&waveforms, cycle_time, duration);

    // --- Fix: slow the worst glitch sources to absorb their pulses.
    let (sdf_fixed, fixed_gates, fixed_ids) =
        apply_slowdown_fixes(netlist, sdf, &graph0, &stats0, cycle_time, cfg);

    // --- Pass 2: incremental re-simulation of the fixed design. Only the
    // resized gates' transitive fan-out cone re-executes; every waveform
    // outside it is reused from pass 1's spill (the fixes change delays,
    // not topology, so out-of-cone activity is provably identical).
    let graph1 =
        Arc::new(CircuitGraph::build(netlist, Some(&sdf_fixed), &opts).expect("valid fixes"));
    let t1 = Instant::now();
    let sim1 = Session::new(Arc::clone(&graph1), cfg.sim.clone());
    let r1 = sim1.run_incremental(&r0, &fixed_ids, stimuli, duration, &run_opts)?;
    gatspi_seconds += t1.elapsed().as_secs_f64();
    let power_after = cfg.power.estimate(
        &graph1,
        toggles_of(&r1, &graph1),
        &areas,
        i64::from(duration),
    );
    let waveforms1: Vec<Waveform> = (0..graph1.n_signals())
        .map(|s| r1.waveform(s))
        .collect::<gatspi_core::Result<_>>()?;
    let stats1 = classify(&waveforms1, cycle_time, duration);

    // --- Baseline turnaround (two event-driven runs), if requested.
    let baseline_seconds = cfg.compare_baseline.then(|| {
        let rc = RefConfig {
            record_waveforms: false,
            ..RefConfig::default()
        };
        let t = Instant::now();
        let _ = EventSimulator::new(&graph0, rc).run(stimuli, duration);
        let _ = EventSimulator::new(&graph1, rc).run(stimuli, duration);
        t.elapsed().as_secs_f64()
    });

    Ok(FlowReport {
        saving_pct: power_after.saving_vs(&power_before),
        power_before,
        power_after,
        glitch_before: (stats0.total_functional(), stats0.total_glitch()),
        glitch_after: (stats1.total_functional(), stats1.total_glitch()),
        fixed_gates,
        gatspi_seconds,
        baseline_seconds,
    })
}

fn toggles_of<'a>(r: &'a gatspi_core::SimResult, graph: &CircuitGraph) -> &'a [u64] {
    // SimResult's toggle_counts cover every signal; expose via slice.
    // (Indexing checked against the graph for safety.)
    let _ = graph;
    // SAFETY of shape: SimResult always sizes toggle_counts to n_signals.
    r.toggle_counts_slice()
}

/// Clones `sdf`, scaling the arc delays of the `fixes` worst glitch-source
/// gates by `cfg.slowdown` (cell downsizing). Every candidate is checked
/// against a static-timing guard: if slowing it would push the critical
/// path past `cfg.max_path_fraction · cycle_time`, the gate is skipped.
/// Returns the patched SDF, the fixed instances' names, and their gate
/// indices — the changed set the incremental re-simulation cones from.
fn apply_slowdown_fixes(
    netlist: &Netlist,
    sdf: &SdfFile,
    graph: &CircuitGraph,
    stats: &GlitchStats,
    cycle_time: SimTime,
    cfg: &FlowConfig,
) -> (SdfFile, Vec<String>, Vec<usize>) {
    let budget = (f64::from(cycle_time) * cfg.max_path_fraction) as i64;
    let mut patched = sdf.clone();
    let mut fixed = Vec::new();
    let mut fixed_ids = Vec::new();
    let mut seen = std::collections::HashSet::new();
    let opts = GraphOptions::default();
    for (sig, _count) in stats.worst_signals() {
        if fixed.len() >= cfg.fixes {
            break;
        }
        let Some(g) = graph.driver(gatspi_graph::SignalId(sig as u32)) else {
            continue;
        };
        if !seen.insert(g) {
            continue;
        }
        let gate = netlist.gate(gatspi_netlist::GateId::from_index(g));
        // Scale this instance's IOPATH delays.
        let mut candidate = patched.clone();
        let mut touched = false;
        for cell in &mut candidate.cells {
            if cell.instance.as_deref() == Some(gate.name()) {
                for p in &mut cell.iopaths {
                    scale_triple(&mut p.rise, cfg.slowdown);
                    scale_triple(&mut p.fall, cfg.slowdown);
                }
                touched = true;
            }
        }
        if !touched {
            continue;
        }
        // Timing guard: reject fixes that eat the cycle's settle margin.
        let trial = CircuitGraph::build(netlist, Some(&candidate), &opts)
            .expect("patched SDF stays well-formed");
        if crate::sta::max_arrivals(&trial).critical_path() > budget {
            continue;
        }
        patched = candidate;
        fixed.push(gate.name().to_string());
        fixed_ids.push(g);
    }
    (patched, fixed, fixed_ids)
}

fn scale_triple(t: &mut DelayTriple, factor: f64) {
    let scale = |v: Option<f64>| v.map(|x| (x * factor).round());
    t.min = scale(t.min);
    t.typ = scale(t.typ);
    t.max = scale(t.max);
}

#[cfg(test)]
mod tests {
    use super::*;
    use gatspi_netlist::{CellLibrary, NetlistBuilder};
    use gatspi_workloads::sdfgen::{attach_sdf, SdfGenConfig};
    use gatspi_workloads::stimuli::{generate, StimulusConfig};

    /// A deliberately skewed XOR tree: classic glitch generator.
    fn glitchy_design() -> (Netlist, SdfFile) {
        let mut b = NetlistBuilder::new("glitchy", CellLibrary::industry_mini());
        let ins: Vec<_> = (0..8)
            .map(|i| b.add_input(&format!("d[{i}]")).unwrap())
            .collect();
        // Linear XOR chain: arrival skew grows along the chain.
        let mut acc = ins[0];
        for (i, &x) in ins.iter().enumerate().skip(1) {
            let out = if i == 7 {
                b.add_output("parity").unwrap()
            } else {
                b.add_net(&format!("x{i}")).unwrap()
            };
            b.add_gate(&format!("ux{i}"), "XOR2", &[acc, x], out)
                .unwrap();
            acc = out;
        }
        let netlist = b.finish().unwrap();
        let sdf = attach_sdf(
            &netlist,
            &SdfGenConfig {
                interconnect_probability: 0.0,
                cond_probability: 0.0,
                ..Default::default()
            },
        );
        (netlist, sdf)
    }

    #[test]
    fn flow_reduces_glitches_and_power() {
        let (netlist, sdf) = glitchy_design();
        let cycle = 400;
        let cycles = 120;
        let stimuli = generate(
            netlist.primary_inputs().len(),
            &StimulusConfig::random(cycles, cycle, 0.9, 13),
        );
        let cfg = FlowConfig {
            fixes: 7,
            sim: SimConfig::small()
                .with_cycle_parallelism(4)
                .with_window_align(cycle),
            compare_baseline: true,
            ..Default::default()
        };
        let report =
            run_glitch_flow(&netlist, &sdf, &stimuli, cycle * cycles as i32, cycle, &cfg).unwrap();
        assert!(!report.fixed_gates.is_empty());
        assert!(
            report.glitch_after.1 < report.glitch_before.1,
            "glitches should drop: {:?} -> {:?}",
            report.glitch_before,
            report.glitch_after
        );
        assert!(
            report.saving_pct > 0.0,
            "power should improve, got {}%",
            report.saving_pct
        );
        assert!(report.turnaround_speedup().is_some());
    }

    #[test]
    fn flow_without_baseline_is_faster_path() {
        let (netlist, sdf) = glitchy_design();
        let cycle = 400;
        let stimuli = generate(
            netlist.primary_inputs().len(),
            &StimulusConfig::random(40, cycle, 0.9, 7),
        );
        let cfg = FlowConfig {
            fixes: 3,
            sim: SimConfig::small().with_window_align(cycle),
            compare_baseline: false,
            ..Default::default()
        };
        let report = run_glitch_flow(&netlist, &sdf, &stimuli, cycle * 40, cycle, &cfg).unwrap();
        assert!(report.baseline_seconds.is_none());
        assert!(report.turnaround_speedup().is_none());
    }
}
