//! Static max-arrival timing analysis over the simulation graph.
//!
//! The glitch flow uses arrival times for two jobs: locating gates whose
//! input cones have large arrival *skew* (the structural cause of glitch
//! pulses) and sizing the balancing delays that fix them.

use gatspi_graph::CircuitGraph;
use gatspi_sdf::NO_ARC;

/// Per-signal worst-case (latest) arrival times, in ticks from the cycle
/// start; primary inputs arrive at 0.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ArrivalTimes {
    arrivals: Vec<i64>,
}

impl ArrivalTimes {
    /// Latest arrival of a signal.
    pub fn of(&self, signal: usize) -> i64 {
        self.arrivals[signal]
    }

    /// The critical-path delay (max over all signals).
    pub fn critical_path(&self) -> i64 {
        self.arrivals.iter().copied().max().unwrap_or(0)
    }

    /// Arrival skew across a gate's input pins: latest minus earliest input
    /// arrival (including interconnect delays).
    pub fn input_skew(&self, graph: &CircuitGraph, gate: usize) -> i64 {
        let base = graph.pin_base(gate);
        let mut lo = i64::MAX;
        let mut hi = i64::MIN;
        for (pin, &sig) in graph.gate_fanin(gate).iter().enumerate() {
            let (ndr, ndf) = graph.net_delays(base + pin);
            let a = self.arrivals[sig as usize] + i64::from(ndr.max(ndf));
            lo = lo.min(a);
            hi = hi.max(a);
        }
        if lo == i64::MAX {
            0
        } else {
            hi - lo
        }
    }
}

/// Computes worst-case arrivals by level order, using each arc's maximum
/// specified delay (fallback delay when the SDF left the arc unannotated).
pub fn max_arrivals(graph: &CircuitGraph) -> ArrivalTimes {
    let mut arrivals = vec![0i64; graph.n_signals()];
    for level in 0..graph.n_levels() {
        for &g in graph.level_gates(level) {
            let g = g as usize;
            let base = graph.pin_base(g);
            let (fb_r, fb_f) = graph.fallback_delay(g);
            let fallback = i64::from(fb_r.max(fb_f));
            let mut out = 0i64;
            for (pin, &sig) in graph.gate_fanin(g).iter().enumerate() {
                let (ndr, ndf) = graph.net_delays(base + pin);
                let lut = graph.delay_lut(g, pin);
                let arc = lut
                    .iter()
                    .copied()
                    .filter(|&d| d != NO_ARC)
                    .max()
                    .map(i64::from)
                    .unwrap_or(fallback);
                let a = arrivals[sig as usize] + i64::from(ndr.max(ndf)) + arc;
                out = out.max(a);
            }
            arrivals[graph.gate_output(g).index()] = out;
        }
    }
    ArrivalTimes { arrivals }
}

#[cfg(test)]
mod tests {
    use super::*;
    use gatspi_graph::GraphOptions;
    use gatspi_netlist::{CellLibrary, NetlistBuilder};
    use gatspi_sdf::SdfFile;

    #[test]
    fn chain_accumulates() {
        let mut b = NetlistBuilder::new("t", CellLibrary::industry_mini());
        let a = b.add_input("a").unwrap();
        let n1 = b.add_net("n1").unwrap();
        let y = b.add_output("y").unwrap();
        b.add_gate("u1", "INV", &[a], n1).unwrap();
        b.add_gate("u2", "INV", &[n1], y).unwrap();
        let sdf = SdfFile::parse(
            r#"(DELAYFILE
  (CELL (CELLTYPE "INV") (INSTANCE u1) (DELAY (ABSOLUTE (IOPATH A Y (3) (5)))))
  (CELL (CELLTYPE "INV") (INSTANCE u2) (DELAY (ABSOLUTE (IOPATH A Y (2) (2))))))"#,
        )
        .unwrap();
        let g = CircuitGraph::build(&b.finish().unwrap(), Some(&sdf), &GraphOptions::default())
            .unwrap();
        let at = max_arrivals(&g);
        assert_eq!(at.of(1), 5); // n1: max(3,5)
        assert_eq!(at.of(2), 7); // y: 5 + 2
        assert_eq!(at.critical_path(), 7);
    }

    #[test]
    fn skew_measures_unbalance() {
        let mut b = NetlistBuilder::new("t", CellLibrary::industry_mini());
        let a = b.add_input("a").unwrap();
        let c = b.add_input("c").unwrap();
        let n1 = b.add_net("n1").unwrap();
        let y = b.add_output("y").unwrap();
        b.add_gate("u1", "INV", &[a], n1).unwrap();
        b.add_gate("u2", "AND2", &[n1, c], y).unwrap();
        let sdf = SdfFile::parse(
            r#"(DELAYFILE
  (CELL (CELLTYPE "INV") (INSTANCE u1) (DELAY (ABSOLUTE (IOPATH A Y (6) (6))))))"#,
        )
        .unwrap();
        let g = CircuitGraph::build(&b.finish().unwrap(), Some(&sdf), &GraphOptions::default())
            .unwrap();
        let at = max_arrivals(&g);
        // Pin A of u2 sees arrival 6, pin B sees 0.
        assert_eq!(at.input_skew(&g, 1), 6);
        assert_eq!(at.input_skew(&g, 0), 0);
    }
}
