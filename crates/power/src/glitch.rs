//! Glitch classification: separating functional transitions from glitch
//! transitions.
//!
//! Within one clock cycle a net makes at most one *functional* transition
//! (its settled value differs between consecutive cycle boundaries); every
//! additional toggle is a glitch — wasted dynamic power that the §4 flow
//! hunts down.

use gatspi_wave::{SimTime, Waveform};

/// Per-signal glitch statistics over a run.
#[derive(Debug, Clone, PartialEq, Eq, Default)]
pub struct GlitchStats {
    /// Functional transitions per signal.
    pub functional: Vec<u64>,
    /// Glitch transitions per signal.
    pub glitch: Vec<u64>,
}

impl GlitchStats {
    /// Total functional toggles.
    pub fn total_functional(&self) -> u64 {
        self.functional.iter().sum()
    }

    /// Total glitch toggles.
    pub fn total_glitch(&self) -> u64 {
        self.glitch.iter().sum()
    }

    /// Glitch fraction of all toggles (0 when nothing toggles).
    pub fn glitch_fraction(&self) -> f64 {
        let g = self.total_glitch() as f64;
        let f = self.total_functional() as f64;
        if g + f == 0.0 {
            0.0
        } else {
            g / (g + f)
        }
    }

    /// Signals ranked by glitch count, worst first, with their counts
    /// (zero-glitch signals omitted).
    pub fn worst_signals(&self) -> Vec<(usize, u64)> {
        let mut v: Vec<(usize, u64)> = self
            .glitch
            .iter()
            .enumerate()
            .filter(|&(_, &g)| g > 0)
            .map(|(s, &g)| (s, g))
            .collect();
        v.sort_by_key(|&(s, g)| (std::cmp::Reverse(g), s));
        v
    }
}

/// Classifies the toggles of each waveform into functional vs glitch
/// transitions, by `cycle_time`-aligned cycles over `[0, duration)`.
///
/// # Panics
///
/// Panics if `cycle_time <= 0`.
pub fn classify(waveforms: &[Waveform], cycle_time: SimTime, duration: SimTime) -> GlitchStats {
    assert!(cycle_time > 0, "cycle_time must be positive");
    let n_cycles = (duration / cycle_time).max(1);
    let mut stats = GlitchStats {
        functional: vec![0; waveforms.len()],
        glitch: vec![0; waveforms.len()],
    };
    for (s, w) in waveforms.iter().enumerate() {
        let mut boundary_val = w.initial_value();
        // Per cycle: count toggles strictly inside (start, end]; the
        // functional transition is the boundary-value change.
        let mut toggles_in_cycle = vec![0u64; n_cycles as usize];
        for (t, _) in w.iter().skip(1) {
            if t >= duration {
                break;
            }
            let c = (t / cycle_time).min(n_cycles - 1) as usize;
            toggles_in_cycle[c] += 1;
        }
        for c in 0..n_cycles {
            let end = ((c + 1) * cycle_time - 1).min(duration - 1);
            let end_val = w.value_at(end);
            let functional = u64::from(end_val != boundary_val);
            let total = toggles_in_cycle[c as usize];
            stats.functional[s] += functional;
            stats.glitch[s] += total.saturating_sub(functional);
            boundary_val = end_val;
        }
    }
    stats
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn clean_transition_is_functional() {
        // One toggle per cycle: all functional.
        let w = Waveform::from_toggles(false, &[10, 110, 210]);
        let s = classify(&[w], 100, 300);
        assert_eq!(s.functional[0], 3);
        assert_eq!(s.glitch[0], 0);
        assert_eq!(s.glitch_fraction(), 0.0);
    }

    #[test]
    fn pulse_within_cycle_is_glitch() {
        // Cycle 0: toggles at 10 and 20 return to the initial value: both
        // are glitches.
        let w = Waveform::from_toggles(false, &[10, 20]);
        let s = classify(&[w], 100, 100);
        assert_eq!(s.functional[0], 0);
        assert_eq!(s.glitch[0], 2);
        assert_eq!(s.glitch_fraction(), 1.0);
    }

    #[test]
    fn settled_change_plus_glitch_pair() {
        // Three toggles in one cycle ending at the opposite value: one
        // functional + two glitches.
        let w = Waveform::from_toggles(false, &[10, 20, 30]);
        let s = classify(&[w], 100, 100);
        assert_eq!(s.functional[0], 1);
        assert_eq!(s.glitch[0], 2);
    }

    #[test]
    fn quiet_signal() {
        let w = Waveform::constant(true);
        let s = classify(&[w], 100, 1000);
        assert_eq!(s.total_functional(), 0);
        assert_eq!(s.total_glitch(), 0);
    }

    #[test]
    fn worst_signals_ranked() {
        let w1 = Waveform::from_toggles(false, &[10, 20]); // 2 glitches
        let w2 = Waveform::from_toggles(false, &[10, 20, 30, 40]); // 4
        let w3 = Waveform::from_toggles(false, &[10]); // functional only
        let s = classify(&[w1, w2, w3], 100, 100);
        assert_eq!(s.worst_signals(), vec![(1, 4), (0, 2)]);
    }

    #[test]
    fn multi_cycle_mixture() {
        // Cycle 0: glitch pair; cycle 1: clean transition.
        let w = Waveform::from_toggles(true, &[10, 20, 150]);
        let s = classify(&[w], 100, 200);
        assert_eq!(s.functional[0], 1);
        assert_eq!(s.glitch[0], 2);
        assert!((s.glitch_fraction() - 2.0 / 3.0).abs() < 1e-12);
    }
}
