use std::collections::BTreeMap;

use gatspi_graph::{CircuitGraph, SignalId};
use gatspi_wave::saif::SaifDocument;

/// Activity-based power model parameters.
///
/// Units are chosen so that one tick = 1 ps and energies come out in
/// femtojoules; the absolute watts are synthetic (the real coefficients are
/// library IP), but the model is linear in activity, so relative deltas —
/// what the glitch flow optimises — are meaningful.
#[derive(Debug, Clone, PartialEq)]
pub struct PowerModel {
    /// Supply voltage in volts.
    pub vdd: f64,
    /// Wire + pin capacitance per fanout, in femtofarads.
    pub cap_per_fanout: f64,
    /// Base output capacitance of any driver, in femtofarads.
    pub cap_base: f64,
    /// Internal (short-circuit + parasitic) energy per output toggle, in
    /// femtojoules per unit of cell area.
    pub internal_fj_per_area: f64,
    /// Leakage in nanowatts per unit of cell area.
    pub leakage_nw_per_area: f64,
}

impl Default for PowerModel {
    fn default() -> Self {
        PowerModel {
            vdd: 0.8,
            cap_per_fanout: 1.5,
            cap_base: 2.0,
            internal_fj_per_area: 0.8,
            leakage_nw_per_area: 1.0,
        }
    }
}

/// Power estimate broken down by component.
#[derive(Debug, Clone, Copy, PartialEq, Default)]
pub struct PowerReport {
    /// Net switching power, watts.
    pub switching_w: f64,
    /// Cell-internal power, watts.
    pub internal_w: f64,
    /// Leakage power, watts.
    pub leakage_w: f64,
}

impl PowerReport {
    /// Total power in watts.
    pub fn total_w(&self) -> f64 {
        self.switching_w + self.internal_w + self.leakage_w
    }

    /// Relative saving of `self` versus a `baseline` report, in percent
    /// (positive = `self` consumes less).
    pub fn saving_vs(&self, baseline: &PowerReport) -> f64 {
        let b = baseline.total_w();
        if b == 0.0 {
            return 0.0;
        }
        (b - self.total_w()) / b * 100.0
    }
}

impl PowerModel {
    /// Estimates power from per-signal toggle counts over a run of
    /// `duration` ticks (1 tick = 1 ps).
    ///
    /// `areas[g]` is gate `g`'s cell area (see
    /// [`CellType::area`](gatspi_netlist::CellType::area)); pass the map
    /// built by [`PowerModel::areas_of`].
    ///
    /// # Panics
    ///
    /// Panics if `toggle_counts.len() != graph.n_signals()` or `duration`
    /// is not positive.
    pub fn estimate(
        &self,
        graph: &CircuitGraph,
        toggle_counts: &[u64],
        areas: &[f64],
        duration: i64,
    ) -> PowerReport {
        assert_eq!(
            toggle_counts.len(),
            graph.n_signals(),
            "toggle count per signal required"
        );
        assert!(duration > 0, "duration must be positive");
        let seconds = duration as f64 * 1e-12;

        // Fanout per signal.
        let mut fanout = vec![0u32; graph.n_signals()];
        for g in 0..graph.n_gates() {
            for &sig in graph.gate_fanin(g) {
                fanout[sig as usize] += 1;
            }
        }

        let mut switching_fj = 0.0;
        for s in 0..graph.n_signals() {
            let c = self.cap_base + self.cap_per_fanout * f64::from(fanout[s]);
            switching_fj += 0.5 * c * self.vdd * self.vdd * toggle_counts[s] as f64;
        }

        let mut internal_fj = 0.0;
        let mut leakage_nw = 0.0;
        for (g, &area) in areas.iter().enumerate() {
            let out = graph.gate_output(g).index();
            internal_fj += self.internal_fj_per_area * area * toggle_counts[out] as f64;
            leakage_nw += self.leakage_nw_per_area * area;
        }

        PowerReport {
            switching_w: switching_fj * 1e-15 / seconds,
            internal_w: internal_fj * 1e-15 / seconds,
            leakage_w: leakage_nw * 1e-9,
        }
    }

    /// Estimates power from a SAIF document (matching nets by name).
    ///
    /// # Panics
    ///
    /// As [`PowerModel::estimate`].
    pub fn estimate_from_saif(
        &self,
        graph: &CircuitGraph,
        saif: &SaifDocument,
        areas: &[f64],
    ) -> PowerReport {
        let by_name: BTreeMap<&str, u64> =
            saif.nets.iter().map(|(n, r)| (n.as_str(), r.tc)).collect();
        let toggles: Vec<u64> = (0..graph.n_signals())
            .map(|s| {
                by_name
                    .get(graph.signal_name(SignalId(s as u32)))
                    .copied()
                    .unwrap_or(0)
            })
            .collect();
        self.estimate(graph, &toggles, areas, saif.duration.max(1))
    }

    /// Collects per-gate areas from the source netlist (gate order matches
    /// the graph's).
    pub fn areas_of(netlist: &gatspi_netlist::Netlist) -> Vec<f64> {
        let lib = netlist.library();
        netlist
            .gates()
            .map(|(_, g)| lib.cell(g.cell()).area())
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use gatspi_graph::GraphOptions;
    use gatspi_netlist::{CellLibrary, NetlistBuilder};

    fn setup() -> (CircuitGraph, Vec<f64>) {
        let mut b = NetlistBuilder::new("p", CellLibrary::industry_mini());
        let a = b.add_input("a").unwrap();
        let n1 = b.add_net("n1").unwrap();
        let y = b.add_output("y").unwrap();
        b.add_gate("u1", "INV", &[a], n1).unwrap();
        b.add_gate("u2", "BUF", &[n1], y).unwrap();
        let netlist = b.finish().unwrap();
        let areas = PowerModel::areas_of(&netlist);
        let g = CircuitGraph::build(&netlist, None, &GraphOptions::default()).unwrap();
        (g, areas)
    }

    #[test]
    fn power_scales_with_activity() {
        let (g, areas) = setup();
        let m = PowerModel::default();
        let low = m.estimate(&g, &[10, 10, 10], &areas, 1_000_000);
        let high = m.estimate(&g, &[100, 100, 100], &areas, 1_000_000);
        assert!(high.switching_w > 9.0 * low.switching_w);
        assert!(high.internal_w > 9.0 * low.internal_w);
        // Leakage is activity-independent.
        assert!((high.leakage_w - low.leakage_w).abs() < 1e-18);
        assert!(high.total_w() > low.total_w());
    }

    #[test]
    fn zero_activity_leaves_leakage() {
        let (g, areas) = setup();
        let m = PowerModel::default();
        let r = m.estimate(&g, &[0, 0, 0], &areas, 1000);
        assert_eq!(r.switching_w, 0.0);
        assert_eq!(r.internal_w, 0.0);
        assert!(r.leakage_w > 0.0);
    }

    #[test]
    fn saving_percentage() {
        let a = PowerReport {
            switching_w: 1.0,
            internal_w: 0.5,
            leakage_w: 0.5,
        };
        let b = PowerReport {
            switching_w: 0.8,
            internal_w: 0.5,
            leakage_w: 0.5,
        };
        assert!((b.saving_vs(&a) - 10.0).abs() < 1e-9);
        assert_eq!(b.saving_vs(&PowerReport::default()), 0.0);
    }

    #[test]
    fn saif_and_counts_agree() {
        let (g, areas) = setup();
        let m = PowerModel::default();
        let mut saif = SaifDocument::new("p", 1_000_000);
        for (s, tc) in [(0usize, 10u64), (1, 20), (2, 30)] {
            saif.nets.insert(
                g.signal_name(SignalId(s as u32)).to_string(),
                gatspi_wave::saif::SaifRecord {
                    tc,
                    ..Default::default()
                },
            );
        }
        let r1 = m.estimate_from_saif(&g, &saif, &areas);
        let r2 = m.estimate(&g, &[10, 20, 30], &areas, 1_000_000);
        assert!((r1.total_w() - r2.total_w()).abs() < 1e-18);
    }
}
