//! Multi-threaded baseline simulation (Table 4's "multi-threaded
//! commercial tool" configuration).
//!
//! Commercial simulators parallelise conservatively and reach modest
//! speedups (2.5–3.5× in the paper's Table 4). This stand-in uses the only
//! parallelism re-simulation legally exposes to an event-driven engine —
//! independent stimulus windows — sharded across host threads, with a
//! final sequential merge. Scaling is sub-linear because windows inherit
//! unequal activity and the merge is serial, which reproduces the modest
//! multi-threaded speedup regime the paper compares against.

use gatspi_graph::CircuitGraph;
use gatspi_wave::saif::SaifDocument;
use gatspi_wave::{SimTime, Waveform};

use crate::{EventSimulator, RefConfig, RefResult, Result};

/// Event-simulates `[0, duration)` using `threads` host threads, each
/// handling a contiguous time window (aligned to `window_align`).
///
/// # Errors
///
/// As [`EventSimulator::run`].
///
/// # Panics
///
/// Panics if `threads == 0`.
pub fn run_parallel(
    graph: &CircuitGraph,
    config: RefConfig,
    stimuli: &[Waveform],
    duration: SimTime,
    threads: usize,
    window_align: SimTime,
) -> Result<RefResult> {
    assert!(threads > 0, "need at least one thread");
    let t_app = std::time::Instant::now();
    if threads == 1 {
        return EventSimulator::new(graph, config).run(stimuli, duration);
    }

    // Window boundaries aligned like the GATSPI engine's.
    let align = i64::from(window_align.max(1));
    let d = i64::from(duration.max(1));
    let units = (d + align - 1) / align;
    let per = ((units + threads as i64 - 1) / threads as i64).max(1) * align;
    let mut windows = Vec::new();
    let mut start = 0i64;
    while start < d {
        let end = (start + per).min(d);
        windows.push((start as SimTime, end as SimTime));
        start = end;
    }

    let mut shard_results: Vec<Option<Result<RefResult>>> = Vec::new();
    shard_results.resize_with(windows.len(), || None);
    let no_waves = RefConfig {
        record_waveforms: false,
        ..config
    };
    let t_kernel = std::time::Instant::now();
    crossbeam::thread::scope(|s| {
        for (slot, &(ws, we)) in shard_results.iter_mut().zip(&windows) {
            s.spawn(move |_| {
                let local: Vec<Waveform> = stimuli.iter().map(|w| w.window(ws, we)).collect();
                let sim = EventSimulator::new(graph, no_waves);
                *slot = Some(sim.run(&local, we - ws));
            });
        }
    })
    .expect("parallel baseline worker panicked");
    let kernel_seconds = t_kernel.elapsed().as_secs_f64();

    // Sequential merge (this serial phase is part of why commercial
    // multi-threaded scaling is modest).
    let n_signals = graph.n_signals();
    let mut toggle_counts = vec![0u64; n_signals];
    let mut saif = SaifDocument::new(graph.name(), i64::from(duration));
    let mut events = 0u64;
    for r in shard_results.into_iter().flatten() {
        let r = r?;
        events += r.events;
        for (s, &c) in r.toggle_counts.iter().enumerate() {
            toggle_counts[s] += c;
        }
        for (name, rec) in r.saif.nets {
            let e = saif.nets.entry(name).or_default();
            e.t0 += rec.t0;
            e.t1 += rec.t1;
            e.tc += rec.tc;
        }
    }
    // Primary-input records come from the unsharded stimulus (window
    // boundaries would otherwise split their toggle counts).
    for (k, &pi) in graph.primary_inputs().iter().enumerate() {
        let w = &stimuli[k];
        let (d0, d1) = w.durations(duration);
        let name = graph.signal_name(pi).to_string();
        let rec = saif.nets.entry(name).or_default();
        rec.t0 = d0;
        rec.t1 = d1;
        rec.tc = w.toggle_count() as u64;
        toggle_counts[pi.index()] = w.toggle_count() as u64;
    }

    Ok(RefResult {
        saif,
        toggle_counts,
        waveforms: None,
        events,
        kernel_seconds,
        wall_seconds: t_app.elapsed().as_secs_f64(),
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use gatspi_graph::GraphOptions;
    use gatspi_netlist::{CellLibrary, NetlistBuilder};

    fn graph() -> CircuitGraph {
        let mut b = NetlistBuilder::new("p", CellLibrary::industry_mini());
        let a = b.add_input("a").unwrap();
        let c = b.add_input("b").unwrap();
        let n1 = b.add_net("n1").unwrap();
        let y = b.add_output("y").unwrap();
        b.add_gate("u1", "XOR2", &[a, c], n1).unwrap();
        b.add_gate("u2", "INV", &[n1], y).unwrap();
        CircuitGraph::build(&b.finish().unwrap(), None, &GraphOptions::default()).unwrap()
    }

    #[test]
    fn parallel_matches_serial() {
        let g = graph();
        let stimuli = vec![
            Waveform::from_toggles(false, &[105, 320, 455, 730]),
            Waveform::from_toggles(true, &[215, 615]),
        ];
        let serial = EventSimulator::new(&g, RefConfig::default())
            .run(&stimuli, 800)
            .unwrap();
        let parallel = run_parallel(&g, RefConfig::default(), &stimuli, 800, 4, 100).unwrap();
        assert!(serial.saif.diff(&parallel.saif).is_empty());
        assert_eq!(serial.total_toggles(), parallel.total_toggles());
    }

    #[test]
    fn single_thread_falls_through() {
        let g = graph();
        let stimuli = vec![Waveform::constant(false), Waveform::constant(true)];
        let r = run_parallel(&g, RefConfig::default(), &stimuli, 100, 1, 10).unwrap();
        assert!(r.waveforms.is_some());
    }
}
