use std::cmp::Reverse;
use std::collections::BinaryHeap;
use std::time::Instant;

use gatspi_graph::CircuitGraph;
use gatspi_sdf::{reduced_column_index, NO_ARC};
use gatspi_wave::saif::{SaifDocument, SaifRecord};
use gatspi_wave::{SimTime, Waveform, WaveformBuilder};

use crate::{RefError, Result};

/// Reference-simulator options (mirrors the GATSPI feature set so both
/// engines compute identical semantics).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct RefConfig {
    /// `PATHPULSEPERCENT` (0–100).
    pub path_pulse_percent: u32,
    /// Inertial pulse filtering on interconnect.
    pub net_delay_filtering: bool,
    /// Keep per-signal waveforms (disable for large benchmark runs where
    /// only SAIF is needed).
    pub record_waveforms: bool,
}

impl Default for RefConfig {
    fn default() -> Self {
        RefConfig {
            path_pulse_percent: 100,
            net_delay_filtering: true,
            record_waveforms: true,
        }
    }
}

/// Result of an event-driven reference run.
#[derive(Debug)]
pub struct RefResult {
    /// SAIF document (same net set as the GATSPI engine produces).
    pub saif: SaifDocument,
    /// Per-signal toggle counts over `[0, duration)`.
    pub toggle_counts: Vec<u64>,
    /// Full per-signal waveforms, if recording was enabled.
    pub waveforms: Option<Vec<Waveform>>,
    /// Events processed by the queue (throughput denominator).
    pub events: u64,
    /// Seconds inside the event loop ("simulation kernel runtime").
    pub kernel_seconds: f64,
    /// Whole-run seconds including SAIF assembly ("application runtime").
    pub wall_seconds: f64,
}

impl RefResult {
    /// Sum of toggles over all signals.
    pub fn total_toggles(&self) -> u64 {
        self.toggle_counts.iter().sum()
    }
}

/// Pin sort key used for arrival events; output edges use `OUT_PIN` so MSI
/// grouping (same time, same gate, pin < `OUT_PIN`) never absorbs them.
const OUT_PIN: u32 = u32::MAX;

/// Queue entry ordering: `(time, kind, gate, pin, event id)`.
///
/// `kind` 0 = output edge, 1 = pin arrival: at any timestamp every signal
/// change fires (and schedules its zero-wire-delay arrivals) before any
/// gate evaluates — matching the kernel's complete-waveform view, where MSI
/// grouping is by arrival *time*, independent of source firing order.
/// Simultaneous arrivals at one gate then pop consecutively (MSI grouping).
type QueueKey = (i64, u8, u32, u32, u64);

#[derive(Debug, Clone, Copy)]
enum Payload {
    /// A value change arriving at a gate input pin.
    PinArrival { value: bool },
    /// A gate-output (or primary-input) signal change.
    OutputEdge { signal: u32, value: bool },
}

/// Single-threaded event-driven gate-level simulator.
///
/// # Example
///
/// ```
/// use gatspi_graph::{CircuitGraph, GraphOptions};
/// use gatspi_netlist::{CellLibrary, NetlistBuilder};
/// use gatspi_refsim::{EventSimulator, RefConfig};
/// use gatspi_wave::Waveform;
///
/// # fn main() -> Result<(), Box<dyn std::error::Error>> {
/// let mut b = NetlistBuilder::new("demo", CellLibrary::industry_mini());
/// let a = b.add_input("a")?;
/// let y = b.add_output("y")?;
/// b.add_gate("u", "INV", &[a], y)?;
/// let graph = CircuitGraph::build(&b.finish()?, None, &GraphOptions::default())?;
/// let sim = EventSimulator::new(&graph, RefConfig::default());
/// let r = sim.run(&[Waveform::from_toggles(false, &[50])], 100)?;
/// assert_eq!(r.toggle_counts[y.index()], 1);
/// # Ok(())
/// # }
/// ```
#[derive(Debug)]
pub struct EventSimulator<'a> {
    graph: &'a CircuitGraph,
    config: RefConfig,
}

struct Queue {
    heap: BinaryHeap<Reverse<QueueKey>>,
    payloads: Vec<Payload>,
    valid: Vec<bool>,
}

impl Queue {
    fn push(&mut self, time: i64, gate: u32, pin: u32, payload: Payload) -> u64 {
        let id = self.payloads.len() as u64;
        let kind = match payload {
            Payload::OutputEdge { .. } => 0u8,
            Payload::PinArrival { .. } => 1u8,
        };
        self.payloads.push(payload);
        self.valid.push(true);
        self.heap.push(Reverse((time, kind, gate, pin, id)));
        id
    }
}

impl<'a> EventSimulator<'a> {
    /// Creates a simulator over `graph`.
    pub fn new(graph: &'a CircuitGraph, config: RefConfig) -> Self {
        EventSimulator { graph, config }
    }

    /// One gate evaluation (Algorithm 1 lines 19–25): compares the new
    /// logic value against the scheduled output value, selects the arc
    /// delay over the switched pins, and applies inertial filtering with
    /// the causality-bounded cancel/emit rule.
    #[allow(clippy::too_many_arguments)]
    fn evaluate_gate(
        &self,
        graph: &CircuitGraph,
        g: usize,
        time: i64,
        switched: u32,
        gate_col: &[u32],
        sched_val: &mut [bool],
        prev_to: &mut [i64],
        pending: &mut [Vec<(u64, i64)>],
        q: &mut Queue,
    ) {
        let tt = graph.truth_table(g);
        let y = tt[gate_col[g] as usize] != 0;
        if y == sched_val[g] {
            return;
        }
        let gd = arc_delay(graph, g, gate_col[g], y, switched);
        let to = time + gd;
        // Zero-width pulses always cancel (threshold floor of one tick),
        // mirroring the kernel.
        let threshold = (gd * i64::from(self.config.path_pulse_percent) / 100).max(1);
        // Inertial rejection: retract the pending previous edge
        // (necessarily still in the future). When no pending edge exists —
        // the previous edge already fired, reachable only through a ghost
        // chain — the new edge is emitted instead, matching the GATSPI
        // kernel's causality-bounded rule.
        let filtered = to - prev_to[g] < threshold;
        let mut popped = false;
        if filtered {
            if let Some((eid, _)) = pending[g].pop() {
                q.valid[eid as usize] = false;
                popped = true;
            }
        }
        if !popped {
            let eid = q.push(
                to,
                g as u32,
                OUT_PIN,
                Payload::OutputEdge {
                    signal: graph.gate_output(g).index() as u32,
                    value: y,
                },
            );
            pending[g].push((eid, to));
        }
        sched_val[g] = y;
        prev_to[g] = to;
    }

    /// Event-simulates the design over `[0, duration)`.
    ///
    /// # Errors
    ///
    /// Returns [`RefError::StimulusMismatch`] if `stimuli` does not supply
    /// one waveform per primary input.
    pub fn run(&self, stimuli: &[Waveform], duration: SimTime) -> Result<RefResult> {
        let t_app = Instant::now();
        let graph = self.graph;
        let n_pis = graph.primary_inputs().len();
        if stimuli.len() != n_pis {
            return Err(RefError::StimulusMismatch {
                expected: n_pis,
                got: stimuli.len(),
            });
        }
        let n_signals = graph.n_signals();
        let n_gates = graph.n_gates();

        // --- Initial steady state.
        let init_pi: Vec<bool> = stimuli.iter().map(Waveform::initial_value).collect();
        let init_vals = graph.eval_zero_delay(&init_pi);
        let mut gate_col = vec![0u32; n_gates];
        for (g, col) in gate_col.iter_mut().enumerate() {
            for (i, &sig) in graph.gate_fanin(g).iter().enumerate() {
                if init_vals[sig as usize] {
                    *col |= 1 << i;
                }
            }
        }

        // Per-gate output scheduling state (mirrors the GATSPI kernel).
        let mut sched_val: Vec<bool> = (0..n_gates)
            .map(|g| init_vals[graph.gate_output(g).index()])
            .collect();
        let mut prev_to = vec![0i64; n_gates];
        let mut pending: Vec<Vec<(u64, i64)>> = vec![Vec::new(); n_gates];

        // Per pin slot: last pending wire delivery (event id, source time).
        let n_slots: usize = (0..n_gates).map(|g| graph.gate_fanin(g).len()).sum();
        let mut pin_last: Vec<Option<(u64, i64)>> = vec![None; n_slots];
        // Per pin slot: latest scheduled arrival time. With interconnect
        // filtering off, rise/fall-asymmetric wire delays can reorder a
        // pin's edges in absolute time; the GATSPI kernel walks each input
        // waveform in order and clamps such arrivals up to the previous
        // event time, so the reference must deliver them monotonized the
        // same way to stay bit-exact. (With filtering on, any surviving
        // pulse is wider than the wire delay, and the clamp is a no-op.)
        let mut pin_arrival = vec![i64::MIN; n_slots];

        // Load map (CSR): signal -> (pin slot, gate, pin index).
        let mut load_offsets = vec![0u32; n_signals + 1];
        for g in 0..n_gates {
            for &sig in graph.gate_fanin(g) {
                load_offsets[sig as usize + 1] += 1;
            }
        }
        for s in 0..n_signals {
            load_offsets[s + 1] += load_offsets[s];
        }
        let mut load_slots = vec![0u32; n_slots];
        let mut load_gates = vec![0u32; n_slots];
        let mut load_pins = vec![0u32; n_slots];
        {
            let mut cursor: Vec<u32> = load_offsets[..n_signals].to_vec();
            for g in 0..n_gates {
                let base = graph.pin_base(g);
                for (i, &sig) in graph.gate_fanin(g).iter().enumerate() {
                    let c = cursor[sig as usize] as usize;
                    load_slots[c] = (base + i) as u32;
                    load_gates[c] = g as u32;
                    load_pins[c] = i as u32;
                    cursor[sig as usize] += 1;
                }
            }
        }

        let mut q = Queue {
            heap: BinaryHeap::new(),
            payloads: Vec::new(),
            valid: Vec::new(),
        };
        // Seed: primary-input edges (the testbench "force").
        for (k, &pi) in graph.primary_inputs().iter().enumerate() {
            for (t, v) in stimuli[k].iter().skip(1) {
                q.push(
                    i64::from(t),
                    u32::MAX,
                    pi.index() as u32,
                    Payload::OutputEdge {
                        signal: pi.index() as u32,
                        value: v,
                    },
                );
            }
        }

        let mut recorders: Vec<WaveformBuilder> = (0..n_signals)
            .map(|s| WaveformBuilder::new(init_vals[s]))
            .collect();
        let mut toggle_counts = vec![0u64; n_signals];
        let mut val = init_vals;

        let t_kernel = Instant::now();
        let mut events = 0u64;

        while let Some(&Reverse((time, _kind, gate_key, _pin_key, id))) = q.heap.peek() {
            q.heap.pop();
            if !q.valid[id as usize] {
                continue;
            }
            events += 1;
            match q.payloads[id as usize] {
                Payload::OutputEdge { signal, value } => {
                    let sig = signal as usize;
                    if gate_key != u32::MAX {
                        // Retire from the gate's pending list.
                        let g = gate_key as usize;
                        if let Some(pos) = pending[g].iter().position(|&(eid, _)| eid == id) {
                            pending[g].remove(pos);
                        }
                    }
                    if val[sig] == value {
                        continue;
                    }
                    val[sig] = value;
                    if time > 0 {
                        if time < i64::from(duration) {
                            toggle_counts[sig] += 1;
                        }
                        let _ = recorders[sig].set_value(time as SimTime, value);
                    }
                    // Fan out with wire delays + interconnect filtering.
                    let a = load_offsets[sig] as usize;
                    let b = load_offsets[sig + 1] as usize;
                    for li in a..b {
                        let slot = load_slots[li] as usize;
                        let (dr, df) = graph.net_delays(slot);
                        let nd = if value { dr } else { df };
                        if self.config.net_delay_filtering {
                            if let Some((prev_id, prev_src)) = pin_last[slot] {
                                if q.valid[prev_id as usize] {
                                    // Previous edge ran the other way.
                                    let prev_nd = if value { df } else { dr };
                                    if time - prev_src < i64::from(prev_nd) {
                                        // Pulse narrower than the wire
                                        // delay: both edges die.
                                        q.valid[prev_id as usize] = false;
                                        pin_last[slot] = None;
                                        continue;
                                    }
                                }
                            }
                        }
                        let arrival = (time + i64::from(nd)).max(pin_arrival[slot]);
                        pin_arrival[slot] = arrival;
                        let eid = q.push(
                            arrival,
                            load_gates[li],
                            load_pins[li],
                            Payload::PinArrival { value },
                        );
                        pin_last[slot] = Some((eid, time));
                    }
                }
                Payload::PinArrival { value } => {
                    let g = gate_key as usize;
                    // MSI: gather every same-time arrival at this gate, then
                    // process in waves of at most one edge per pin — exactly
                    // the kernel's per-`ti` rounds (lines 14–18), which a
                    // pin can enter twice when asymmetric wire delays make
                    // two of its source edges arrive simultaneously.
                    let mut batch: Vec<(u32, bool)> = vec![(_pin_key, value)];
                    while let Some(&Reverse((t2, k2, g2, p2, id2))) = q.heap.peek() {
                        if t2 != time || k2 != 1 || g2 != gate_key || p2 == OUT_PIN {
                            break;
                        }
                        q.heap.pop();
                        if !q.valid[id2 as usize] {
                            continue;
                        }
                        events += 1;
                        if let Payload::PinArrival { value: v2 } = q.payloads[id2 as usize] {
                            batch.push((p2, v2));
                        }
                    }
                    while !batch.is_empty() {
                        let mut applied = 0u32;
                        let mut switched = 0u32;
                        let mut rest = Vec::new();
                        for &(pin, v) in &batch {
                            if applied & (1 << pin) != 0 {
                                rest.push((pin, v));
                                continue;
                            }
                            applied |= 1 << pin;
                            apply_pin(&mut gate_col[g], pin, v, &mut switched);
                        }
                        batch = rest;
                        self.evaluate_gate(
                            graph,
                            g,
                            time,
                            switched,
                            &gate_col,
                            &mut sched_val,
                            &mut prev_to,
                            &mut pending,
                            &mut q,
                        );
                    }
                    continue;
                }
            }
        }
        let kernel_seconds = t_kernel.elapsed().as_secs_f64();

        // --- SAIF assembly (clipped to [0, duration), like GATSPI's scan).
        let waveforms: Vec<Waveform> = recorders.into_iter().map(WaveformBuilder::finish).collect();
        let mut saif = SaifDocument::new(graph.name(), i64::from(duration));
        for (k, &pi) in graph.primary_inputs().iter().enumerate() {
            let w = &stimuli[k];
            let (d0, d1) = w.durations(duration);
            saif.nets.insert(
                graph.signal_name(pi).to_string(),
                SaifRecord {
                    t0: d0,
                    t1: d1,
                    tx: 0,
                    tc: w.toggle_count() as u64,
                    ig: 0,
                },
            );
            toggle_counts[pi.index()] = w.toggle_count() as u64;
        }
        for s in 0..n_signals {
            let sid = gatspi_graph::SignalId(s as u32);
            if graph.driver(sid).is_none() {
                continue;
            }
            let (d0, d1) = waveforms[s].durations(duration);
            saif.nets.insert(
                graph.signal_name(sid).to_string(),
                SaifRecord {
                    t0: d0,
                    t1: d1,
                    tx: 0,
                    tc: toggle_counts[s],
                    ig: 0,
                },
            );
        }

        Ok(RefResult {
            saif,
            toggle_counts,
            waveforms: self.config.record_waveforms.then_some(waveforms),
            events,
            kernel_seconds,
            wall_seconds: t_app.elapsed().as_secs_f64(),
        })
    }
}

#[inline]
fn apply_pin(col: &mut u32, pin: u32, value: bool, switched: &mut u32) {
    let bit = 1u32 << pin;
    if (*col & bit != 0) != value {
        *col ^= bit;
        *switched |= bit;
    }
}

/// Arc-delay selection identical to the GATSPI kernel: minimum over the
/// Fig. 4 LUT entries of the pins that just switched, with the gate-level
/// fallback for unannotated transitions.
fn arc_delay(graph: &CircuitGraph, g: usize, col: u32, y: bool, switched: u32) -> i64 {
    let n = graph.gate_fanin(g).len();
    let mut best = i64::MAX;
    for i in 0..n {
        if switched & (1 << i) == 0 {
            continue;
        }
        let lut = graph.delay_lut(g, i);
        if lut.is_empty() {
            continue;
        }
        let ncols = lut.len() / 4;
        let rcol = reduced_column_index(col, i) as usize;
        let input_rising = (col >> i) & 1 == 1;
        let row = 2 * usize::from(!input_rising) + usize::from(!y);
        let d = lut[row * ncols + rcol];
        if d != NO_ARC && i64::from(d) < best {
            best = i64::from(d);
        }
    }
    if best == i64::MAX {
        let (r, f) = graph.fallback_delay(g);
        best = if y { i64::from(r) } else { i64::from(f) };
    }
    best
}

#[cfg(test)]
mod tests {
    use super::*;
    use gatspi_graph::GraphOptions;
    use gatspi_netlist::{CellLibrary, NetlistBuilder};
    use gatspi_sdf::SdfFile;

    fn build(
        cells: &[(&str, &str, &[&str], &str)],
        ins: &[&str],
        sdf: Option<&str>,
    ) -> CircuitGraph {
        let lib = CellLibrary::industry_mini();
        let mut b = NetlistBuilder::new("t", lib);
        for n in ins {
            b.add_input(n).unwrap();
        }
        // Pre-declare all outputs as nets.
        for (_, _, _, out) in cells {
            if b.find_net(out).is_none() {
                b.add_net(out).unwrap();
            }
        }
        for (name, cell, inputs, out) in cells {
            let input_ids: Vec<_> = inputs.iter().map(|n| b.find_net(n).unwrap()).collect();
            let out_id = b.find_net(out).unwrap();
            b.add_gate(name, cell, &input_ids, out_id).unwrap();
        }
        let netlist = b.finish().unwrap();
        let sdf_file = sdf.map(|s| SdfFile::parse(s).unwrap());
        CircuitGraph::build(&netlist, sdf_file.as_ref(), &GraphOptions::default()).unwrap()
    }

    #[test]
    fn inverter_delay() {
        let sdf = r#"(DELAYFILE (CELL (CELLTYPE "INV") (INSTANCE u)
  (DELAY (ABSOLUTE (IOPATH A Y (3) (5))))))"#;
        let g = build(&[("u", "INV", &["a"], "y")], &["a"], Some(sdf));
        let sim = EventSimulator::new(&g, RefConfig::default());
        let r = sim
            .run(&[Waveform::from_toggles(false, &[100, 200])], 300)
            .unwrap();
        let y = g.primary_inputs().len(); // signal 1 is `y`
        let w = &r.waveforms.as_ref().unwrap()[y];
        assert_eq!(w.raw(), &[-1, 0, 105, 203, gatspi_wave::EOW]);
        assert_eq!(r.toggle_counts[y], 2);
        assert!(r.events > 0);
    }

    #[test]
    fn glitch_filtered_by_inertial_delay() {
        let sdf = r#"(DELAYFILE (CELL (CELLTYPE "NAND2") (INSTANCE u)
  (DELAY (ABSOLUTE (IOPATH A Y (10) (10)) (IOPATH B Y (10) (10))))))"#;
        let g = build(&[("u", "NAND2", &["a", "b"], "y")], &["a", "b"], Some(sdf));
        let sim = EventSimulator::new(&g, RefConfig::default());
        let r = sim
            .run(
                &[
                    Waveform::from_toggles(false, &[100]),
                    Waveform::from_toggles(true, &[103]),
                ],
                300,
            )
            .unwrap();
        let y = 2;
        assert_eq!(r.toggle_counts[y], 0, "narrow pulse filtered");
    }

    #[test]
    fn glitch_kept_when_wide_enough() {
        let g = build(
            &[("u", "NAND2", &["a", "b"], "y")],
            &["a", "b"],
            None, // unit fallback delays
        );
        let sim = EventSimulator::new(&g, RefConfig::default());
        let r = sim
            .run(
                &[
                    Waveform::from_toggles(false, &[100]),
                    Waveform::from_toggles(true, &[103]),
                ],
                300,
            )
            .unwrap();
        assert_eq!(r.toggle_counts[2], 2, "wide pulse survives");
        let w = &r.waveforms.as_ref().unwrap()[2];
        assert_eq!(w.raw(), &[-1, 0, 101, 104, gatspi_wave::EOW]);
    }

    #[test]
    fn msi_no_spurious_glitch() {
        let g = build(&[("u", "XOR2", &["a", "b"], "y")], &["a", "b"], None);
        let sim = EventSimulator::new(&g, RefConfig::default());
        let r = sim
            .run(
                &[
                    Waveform::from_toggles(false, &[100]),
                    Waveform::from_toggles(false, &[100]),
                ],
                300,
            )
            .unwrap();
        assert_eq!(r.toggle_counts[2], 0, "simultaneous flips cancel");
    }

    #[test]
    fn chain_accumulates_delay() {
        let g = build(
            &[
                ("u0", "INV", &["a"], "n0"),
                ("u1", "INV", &["n0"], "n1"),
                ("u2", "BUF", &["n1"], "y"),
            ],
            &["a"],
            None,
        );
        let sim = EventSimulator::new(&g, RefConfig::default());
        let r = sim
            .run(&[Waveform::from_toggles(true, &[50])], 100)
            .unwrap();
        let w = &r.waveforms.as_ref().unwrap()[3]; // y
        assert_eq!(w.raw(), &[-1, 0, 53, gatspi_wave::EOW]);
    }

    #[test]
    fn saif_matches_waveforms() {
        let g = build(&[("u", "AND2", &["a", "b"], "y")], &["a", "b"], None);
        let sim = EventSimulator::new(&g, RefConfig::default());
        let r = sim
            .run(
                &[
                    Waveform::from_toggles(false, &[10, 60]),
                    Waveform::from_toggles(true, &[80]),
                ],
                100,
            )
            .unwrap();
        let rec = &r.saif.nets["y"];
        assert_eq!(rec.t0 + rec.t1, 100);
        assert_eq!(rec.tc, 2);
    }

    #[test]
    fn stimulus_mismatch() {
        let g = build(&[("u", "INV", &["a"], "y")], &["a"], None);
        let sim = EventSimulator::new(&g, RefConfig::default());
        assert!(matches!(
            sim.run(&[], 10),
            Err(RefError::StimulusMismatch { .. })
        ));
    }

    #[test]
    fn tie_cells_produce_constants() {
        let lib = CellLibrary::industry_mini();
        let mut b = NetlistBuilder::new("t", lib);
        let c = b.add_net("c").unwrap();
        let y = b.add_output("y").unwrap();
        b.add_gate("t1", "TIEHI", &[], c).unwrap();
        b.add_gate("u", "INV", &[c], y).unwrap();
        let g = CircuitGraph::build(&b.finish().unwrap(), None, &GraphOptions::default()).unwrap();
        let sim = EventSimulator::new(&g, RefConfig::default());
        let r = sim.run(&[], 50).unwrap();
        assert_eq!(r.toggle_counts[y.index()], 0);
        assert!(!r.waveforms.as_ref().unwrap()[y.index()].initial_value());
    }
}
