//! Baseline event-driven full-timing gate-level simulator — the
//! reproduction's stand-in for the commercial simulator the paper compares
//! against.
//!
//! [`EventSimulator`] implements classic single-threaded event-driven
//! simulation over the same [`CircuitGraph`](gatspi_graph::CircuitGraph)
//! and delay semantics as the GATSPI engine:
//!
//! * a global time-ordered event queue (binary heap) with event
//!   cancellation,
//! * per-pin interconnect delays with inertial pulse filtering,
//! * full conditional-SDF arc delays (Fig. 4 LUT lookup),
//! * MSI resolution (all pins arriving at one timestamp evaluate once),
//! * gate-output inertial filtering with `PATHPULSEPERCENT` and the same
//!   ghost-timestamp rule as the GATSPI kernel,
//! * "force"-style re-simulation: primary/pseudo-primary inputs replay
//!   known waveforms, sequential elements are not simulated.
//!
//! Because the filtering rules are shared, SAIF output is bit-exact against
//! the GATSPI engine on well-formed workloads (the paper's accuracy
//! criterion), while the *runtime* exhibits the activity-dependent
//! event-driven cost profile that GATSPI's speedups are measured against.
//! (One pathological divergence exists: the paper's Algorithm 1 may retract
//! an output edge that an event-driven simulator has already committed when
//! a ghost-filter chain pops more than one level into the past; real
//! stimuli with edge spacing above the gate delay never trigger it.)
//!
//! [`run_parallel`] shards the testbench into independent time windows and
//! event-simulates them on multiple host threads — the multi-threaded
//! baseline configuration of the paper's Table 4.

#![deny(missing_docs)]

mod event_sim;
mod parallel;

pub use event_sim::{EventSimulator, RefConfig, RefResult};
pub use parallel::run_parallel;

/// Result alias used throughout this crate.
pub type Result<T> = std::result::Result<T, RefError>;

use std::fmt;

/// Errors produced by the reference simulator.
#[derive(Debug, Clone, PartialEq, Eq)]
#[non_exhaustive]
pub enum RefError {
    /// Stimulus waveform count does not match the graph's primary inputs.
    StimulusMismatch {
        /// Primary inputs the graph declares.
        expected: usize,
        /// Waveforms supplied.
        got: usize,
    },
}

impl fmt::Display for RefError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            RefError::StimulusMismatch { expected, got } => {
                write!(f, "expected {expected} stimulus waveforms, got {got}")
            }
        }
    }
}

impl std::error::Error for RefError {}
