use std::collections::HashMap;
use std::fmt;

use gatspi_netlist::Netlist;
use gatspi_sdf::{build_delay_lut, SdfFile, TripleSelect, NO_ARC};

use crate::{levelize, GraphError, LevelStats, Result};

/// Index of a signal (waveform slot) in a [`CircuitGraph`]. Signals are the
/// union of primary inputs and gate outputs; the index coincides with the
/// source netlist's net index.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct SignalId(pub u32);

impl SignalId {
    /// The raw index value.
    pub fn index(self) -> usize {
        self.0 as usize
    }
}

impl fmt::Display for SignalId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "sig#{}", self.0)
    }
}

/// Options controlling netlist+SDF translation.
#[derive(Debug, Clone, Copy)]
pub struct GraphOptions {
    /// Which `min:typ:max` corner to simulate.
    pub select: TripleSelect,
    /// Multiplier from SDF units to integer ticks. `None` uses the SDF
    /// file's own timescale (ticks = picoseconds), or 1.0 without an SDF.
    pub scale: Option<f64>,
    /// `(rise, fall)` tick delays used for gates the SDF does not annotate
    /// at all (and as the last-resort fallback for unannotated arcs).
    pub default_delay: (i32, i32),
}

impl Default for GraphOptions {
    fn default() -> Self {
        GraphOptions {
            select: TripleSelect::Typ,
            scale: None,
            default_delay: (1, 1),
        }
    }
}

/// The flat, levelized simulation graph — connectivity, truth tables and
/// delay LUTs as contiguous arrays (the information content of the paper's
/// DGL graph object).
///
/// # Example
///
/// ```
/// use gatspi_netlist::{CellLibrary, NetlistBuilder};
/// use gatspi_graph::{CircuitGraph, GraphOptions};
///
/// # fn main() -> Result<(), Box<dyn std::error::Error>> {
/// let mut b = NetlistBuilder::new("xor_tree", CellLibrary::industry_mini());
/// let a = b.add_input("a")?;
/// let c = b.add_input("b")?;
/// let y = b.add_output("y")?;
/// b.add_gate("u", "XOR2", &[a, c], y)?;
/// let g = CircuitGraph::build(&b.finish()?, None, &GraphOptions::default())?;
/// assert_eq!(g.n_gates(), 1);
/// assert_eq!(g.n_levels(), 1);
/// # Ok(())
/// # }
/// ```
#[derive(Debug, Clone)]
pub struct CircuitGraph {
    name: String,
    n_signals: usize,
    signal_names: Vec<String>,
    primary_inputs: Vec<SignalId>,
    primary_outputs: Vec<SignalId>,
    driver_gate: Vec<i32>,

    // CSR fan-in: pins of gate g live at slots fanin_offsets[g]..fanin_offsets[g+1].
    fanin_offsets: Vec<u32>,
    fanin_signals: Vec<u32>,
    net_delay_rise: Vec<i32>,
    net_delay_fall: Vec<i32>,

    // Node features.
    tt_offsets: Vec<u32>,
    truth_tables: Vec<u8>,
    gate_cell: Vec<u32>,
    gate_names: Vec<String>,

    // Delay LUTs: per pin slot, 4 * 2^(n-1) entries at lut_offsets[slot].
    lut_offsets: Vec<u32>,
    delay_luts: Vec<i32>,
    fallback_rise: Vec<i32>,
    fallback_fall: Vec<i32>,

    gate_output: Vec<u32>,
    gate_level: Vec<u32>,
    level_offsets: Vec<u32>,
    level_gates: Vec<u32>,
}

impl CircuitGraph {
    /// Translates a netlist (plus optional SDF) into the flat graph.
    ///
    /// # Errors
    ///
    /// * [`GraphError::CombinationalLoop`] for cyclic netlists.
    /// * [`GraphError::SdfBinding`] if SDF statements reference unknown
    ///   instances or pins.
    /// * [`GraphError::Sdf`] for delay translation failures.
    pub fn build(netlist: &Netlist, sdf: Option<&SdfFile>, options: &GraphOptions) -> Result<Self> {
        let lib = netlist.library();
        let n_gates = netlist.gate_count();
        let n_signals = netlist.net_count();
        let scale = options
            .scale
            .unwrap_or_else(|| sdf.map(|f| f.timescale_ps).unwrap_or(1.0));

        let gate_level = levelize(netlist)?;

        // CSR fan-in + outputs + functions.
        let mut fanin_offsets = Vec::with_capacity(n_gates + 1);
        let mut fanin_signals = Vec::new();
        let mut tt_offsets = Vec::with_capacity(n_gates);
        let mut truth_tables = Vec::new();
        let mut gate_output = Vec::with_capacity(n_gates);
        let mut gate_cell = Vec::with_capacity(n_gates);
        let mut gate_names = Vec::with_capacity(n_gates);
        let mut driver_gate = vec![-1i32; n_signals];
        fanin_offsets.push(0u32);
        for (gid, gate) in netlist.gates() {
            for &net in gate.inputs() {
                fanin_signals.push(net.index() as u32);
            }
            fanin_offsets.push(fanin_signals.len() as u32);
            let cell = lib.cell(gate.cell());
            tt_offsets.push(truth_tables.len() as u32);
            truth_tables.extend_from_slice(cell.function().values());
            gate_output.push(gate.output().index() as u32);
            gate_cell.push(gate.cell().index() as u32);
            gate_names.push(gate.name().to_string());
            driver_gate[gate.output().index()] = gid.index() as i32;
        }

        let n_pins = fanin_signals.len();
        let mut net_delay_rise = vec![0i32; n_pins];
        let mut net_delay_fall = vec![0i32; n_pins];

        // Delay LUTs.
        let mut lut_offsets = vec![0u32; n_pins];
        let mut delay_luts: Vec<i32> = Vec::new();
        let mut fallback_rise = vec![options.default_delay.0; n_gates];
        let mut fallback_fall = vec![options.default_delay.1; n_gates];

        for (gid, gate) in netlist.gates() {
            let g = gid.index();
            let cell = lib.cell(gate.cell());
            let pin_names = cell.input_pins();
            let iopaths: Vec<gatspi_sdf::IoPath> = match sdf {
                Some(f) => f.iopaths_for(cell.name(), gate.name()).cloned().collect(),
                None => Vec::new(),
            };
            // Validate that every IOPATH pin exists on the cell.
            for p in &iopaths {
                if cell.input_index(&p.input).is_none() {
                    return Err(GraphError::SdfBinding {
                        detail: format!(
                            "IOPATH input `{}` not a pin of cell `{}` (instance `{}`)",
                            p.input,
                            cell.name(),
                            gate.name()
                        ),
                    });
                }
                if p.output != cell.output_pin() {
                    return Err(GraphError::SdfBinding {
                        detail: format!(
                            "IOPATH output `{}` is not `{}` on cell `{}`",
                            p.output,
                            cell.output_pin(),
                            cell.name()
                        ),
                    });
                }
            }
            let base = fanin_offsets[g] as usize;
            let mut gate_max: Option<(i32, i32)> = None;
            for pin in 0..cell.num_inputs() {
                let lut = build_delay_lut(pin_names, pin, &iopaths, options.select, scale)?;
                lut_offsets[base + pin] = delay_luts.len() as u32;
                // Track per-direction maxima for the fallback.
                let ncols = lut.ncols();
                for row in 0..4usize {
                    for c in 0..ncols {
                        let d = lut.data()[row * ncols + c];
                        if d != NO_ARC {
                            let e = gate_max.get_or_insert((-1, -1));
                            if row % 2 == 0 {
                                e.0 = e.0.max(d);
                            } else {
                                e.1 = e.1.max(d);
                            }
                        }
                    }
                }
                delay_luts.extend_from_slice(lut.data());
            }
            if let Some((r, f)) = gate_max {
                // A direction never annotated anywhere falls back to the
                // other direction's maximum (or the default if negative).
                let r = if r >= 0 { r } else { f };
                let f = if f >= 0 { f } else { r };
                fallback_rise[g] = if r >= 0 { r } else { options.default_delay.0 };
                fallback_fall[g] = if f >= 0 { f } else { options.default_delay.1 };
            }
        }

        // Interconnect (wire) delays.
        if let Some(f) = sdf {
            // (instance, pin) -> pin slot.
            let mut pin_slot: HashMap<(&str, &str), usize> = HashMap::new();
            for (gid, gate) in netlist.gates() {
                let cell = lib.cell(gate.cell());
                let base = fanin_offsets[gid.index()] as usize;
                for (pin, name) in cell.input_pins().iter().enumerate() {
                    pin_slot.insert((gate.name(), name.as_str()), base + pin);
                }
            }
            let to_ticks = |v: f64| (v * scale).round() as i32;
            for ic in &f.interconnects {
                let Some(inst) = ic.to.instance.as_deref() else {
                    // Wire delay into a top-level output port: no gate
                    // consumes it, so it cannot affect simulation results.
                    continue;
                };
                let slot = pin_slot
                    .get(&(inst, ic.to.pin.as_str()))
                    .copied()
                    .ok_or_else(|| GraphError::SdfBinding {
                        detail: format!("INTERCONNECT target `{}/{}` not found", inst, ic.to.pin),
                    })?;
                if let Some(v) = ic.rise.select(options.select) {
                    net_delay_rise[slot] = to_ticks(v);
                }
                if let Some(v) = ic.fall.select(options.select) {
                    net_delay_fall[slot] = to_ticks(v);
                }
            }
        }

        // Level CSR, gates ordered by (level, gate id).
        let n_levels = gate_level.iter().map(|&l| l + 1).max().unwrap_or(0) as usize;
        let mut level_counts = vec![0u32; n_levels];
        for &l in &gate_level {
            level_counts[l as usize] += 1;
        }
        let mut level_offsets = Vec::with_capacity(n_levels + 1);
        level_offsets.push(0u32);
        for &c in &level_counts {
            level_offsets.push(level_offsets.last().unwrap() + c);
        }
        let mut cursor = level_offsets[..n_levels].to_vec();
        let mut level_gates = vec![0u32; n_gates];
        for (g, &l) in gate_level.iter().enumerate() {
            let l = l as usize;
            level_gates[cursor[l] as usize] = g as u32;
            cursor[l] += 1;
        }

        Ok(CircuitGraph {
            name: netlist.name().to_string(),
            n_signals,
            signal_names: netlist.nets().map(|(_, n)| n.name().to_string()).collect(),
            primary_inputs: netlist
                .primary_inputs()
                .iter()
                .map(|n| SignalId(n.index() as u32))
                .collect(),
            primary_outputs: netlist
                .primary_outputs()
                .iter()
                .map(|n| SignalId(n.index() as u32))
                .collect(),
            driver_gate,
            fanin_offsets,
            fanin_signals,
            net_delay_rise,
            net_delay_fall,
            tt_offsets,
            truth_tables,
            gate_cell,
            gate_names,
            lut_offsets,
            delay_luts,
            fallback_rise,
            fallback_fall,
            gate_output,
            gate_level,
            level_offsets,
            level_gates,
        })
    }

    /// Design name.
    pub fn name(&self) -> &str {
        &self.name
    }

    /// Number of gates.
    pub fn n_gates(&self) -> usize {
        self.gate_output.len()
    }

    /// Number of signals (primary inputs + all gate outputs + floating nets).
    pub fn n_signals(&self) -> usize {
        self.n_signals
    }

    /// Number of logic levels.
    pub fn n_levels(&self) -> usize {
        self.level_offsets.len() - 1
    }

    /// Gate indices in `level`, ascending.
    ///
    /// # Panics
    ///
    /// Panics if `level >= self.n_levels()`.
    pub fn level_gates(&self, level: usize) -> &[u32] {
        let a = self.level_offsets[level] as usize;
        let b = self.level_offsets[level + 1] as usize;
        &self.level_gates[a..b]
    }

    /// The logic level of gate `g`.
    pub fn gate_level(&self, g: usize) -> u32 {
        self.gate_level[g]
    }

    /// Input signal ids of gate `g`, in pin order.
    pub fn gate_fanin(&self, g: usize) -> &[u32] {
        let a = self.fanin_offsets[g] as usize;
        let b = self.fanin_offsets[g + 1] as usize;
        &self.fanin_signals[a..b]
    }

    /// The flat pin-slot base of gate `g` (pin `p`'s slot is `base + p`).
    pub fn pin_base(&self, g: usize) -> usize {
        self.fanin_offsets[g] as usize
    }

    /// Interconnect `(rise, fall)` delay of a pin slot.
    pub fn net_delays(&self, slot: usize) -> (i32, i32) {
        (self.net_delay_rise[slot], self.net_delay_fall[slot])
    }

    /// The truth-table row array of gate `g` (`2^n` entries).
    pub fn truth_table(&self, g: usize) -> &[u8] {
        let n = self.gate_fanin(g).len();
        let a = self.tt_offsets[g] as usize;
        &self.truth_tables[a..a + (1 << n)]
    }

    /// The Fig. 4 delay LUT of gate `g`, pin `p` (`4 * 2^(n-1)` entries;
    /// empty slice for 0-input gates).
    pub fn delay_lut(&self, g: usize, p: usize) -> &[i32] {
        let n = self.gate_fanin(g).len();
        if n == 0 {
            return &[];
        }
        let slot = self.pin_base(g) + p;
        let a = self.lut_offsets[slot] as usize;
        &self.delay_luts[a..a + 4 * (1 << (n - 1))]
    }

    /// Fallback `(rise, fall)` delay for arcs with no SDF annotation.
    pub fn fallback_delay(&self, g: usize) -> (i32, i32) {
        (self.fallback_rise[g], self.fallback_fall[g])
    }

    /// The flat truth-table pool: gate `g`'s `2^n` rows start at
    /// [`CircuitGraph::truth_table_base`]. Exposed so a compiled schedule
    /// can bake the base offset into a per-gate descriptor and index the
    /// pool directly instead of re-deriving the slice per kernel call.
    pub fn truth_tables_flat(&self) -> &[u8] {
        &self.truth_tables
    }

    /// Offset of gate `g`'s truth table in
    /// [`CircuitGraph::truth_tables_flat`].
    pub fn truth_table_base(&self, g: usize) -> usize {
        self.tt_offsets[g] as usize
    }

    /// The flat delay-LUT pool: a gate's per-pin LUT blocks are contiguous
    /// (`4 * 2^(n-1)` entries per pin, pin order), starting at
    /// [`CircuitGraph::delay_lut_base`].
    pub fn delay_luts_flat(&self) -> &[i32] {
        &self.delay_luts
    }

    /// Offset of gate `g`'s pin-0 LUT block in
    /// [`CircuitGraph::delay_luts_flat`] (0 for 0-input gates). Pin `p`'s
    /// block starts `p * 4 * 2^(n-1)` entries later — the build appends one
    /// gate's pins back to back.
    pub fn delay_lut_base(&self, g: usize) -> usize {
        let n = self.gate_fanin(g).len();
        if n == 0 {
            return 0;
        }
        self.lut_offsets[self.pin_base(g)] as usize
    }

    /// Output signal of gate `g`.
    pub fn gate_output(&self, g: usize) -> SignalId {
        SignalId(self.gate_output[g])
    }

    /// Library cell-type index of gate `g`.
    pub fn gate_cell(&self, g: usize) -> usize {
        self.gate_cell[g] as usize
    }

    /// Instance name of gate `g`.
    pub fn gate_name(&self, g: usize) -> &str {
        &self.gate_names[g]
    }

    /// Name of a signal.
    pub fn signal_name(&self, s: SignalId) -> &str {
        &self.signal_names[s.index()]
    }

    /// The gate driving signal `s`, or `None` for primary inputs and
    /// floating nets.
    pub fn driver(&self, s: SignalId) -> Option<usize> {
        let d = self.driver_gate[s.index()];
        (d >= 0).then_some(d as usize)
    }

    /// Primary (and pseudo-primary) input signals.
    pub fn primary_inputs(&self) -> &[SignalId] {
        &self.primary_inputs
    }

    /// Primary output signals.
    pub fn primary_outputs(&self) -> &[SignalId] {
        &self.primary_outputs
    }

    /// Level-structure statistics (widths drive kernel-launch overhead).
    pub fn level_stats(&self) -> LevelStats {
        LevelStats::from_offsets(&self.level_offsets)
    }

    // --- SoA accessors: the raw flat arrays, for engines that build their
    // own derived schedules (e.g. gatspi-core's `LevelSchedule`) without
    // per-gate accessor calls in hot loops.

    /// Level CSR offsets: gates of level `l` occupy
    /// `level_gates_flat()[level_offsets()[l]..level_offsets()[l + 1]]`.
    pub fn level_offsets(&self) -> &[u32] {
        &self.level_offsets
    }

    /// All gate indices in (level, gate id) order — the flat array behind
    /// [`CircuitGraph::level_gates`].
    pub fn level_gates_flat(&self) -> &[u32] {
        &self.level_gates
    }

    /// Fan-in CSR offsets: pins of gate `g` occupy
    /// `fanin_signals_flat()[fanin_offsets()[g]..fanin_offsets()[g + 1]]`.
    pub fn fanin_offsets(&self) -> &[u32] {
        &self.fanin_offsets
    }

    /// All fan-in signal ids, pin-slot order — the flat array behind
    /// [`CircuitGraph::gate_fanin`].
    pub fn fanin_signals_flat(&self) -> &[u32] {
        &self.fanin_signals
    }

    /// Output signal index per gate — the flat array behind
    /// [`CircuitGraph::gate_output`].
    pub fn gate_outputs_flat(&self) -> &[u32] {
        &self.gate_output
    }

    /// Widest level's gate count (sizes per-level scratch buffers).
    pub fn max_level_width(&self) -> usize {
        (0..self.n_levels())
            .map(|l| (self.level_offsets[l + 1] - self.level_offsets[l]) as usize)
            .max()
            .unwrap_or(0)
    }

    /// Approximate device-resident footprint of the graph arrays in bytes
    /// (connectivity, truth tables, delay LUTs, pointers) — what an engine
    /// must transfer host→device before simulating.
    pub fn device_bytes(&self) -> u64 {
        let words = self.fanin_offsets.len()
            + self.fanin_signals.len()
            + self.net_delay_rise.len()
            + self.net_delay_fall.len()
            + self.tt_offsets.len()
            + self.lut_offsets.len()
            + self.delay_luts.len()
            + self.fallback_rise.len()
            + self.fallback_fall.len()
            + self.gate_output.len()
            + self.gate_level.len()
            + self.level_offsets.len()
            + self.level_gates.len();
        4 * words as u64 + self.truth_tables.len() as u64
    }

    /// Zero-delay functional evaluation: given values for the primary inputs
    /// (in [`CircuitGraph::primary_inputs`] order), computes the steady-state
    /// value of every signal. Floating nets evaluate to 0.
    ///
    /// # Panics
    ///
    /// Panics if `pi_values.len()` differs from the primary-input count.
    pub fn eval_zero_delay(&self, pi_values: &[bool]) -> Vec<bool> {
        assert_eq!(
            pi_values.len(),
            self.primary_inputs.len(),
            "primary input count mismatch"
        );
        let mut values = vec![false; self.n_signals];
        for (s, &v) in self.primary_inputs.iter().zip(pi_values) {
            values[s.index()] = v;
        }
        for level in 0..self.n_levels() {
            for &g in self.level_gates(level) {
                let g = g as usize;
                let mut idx = 0u32;
                for (p, &sig) in self.gate_fanin(g).iter().enumerate() {
                    if values[sig as usize] {
                        idx |= 1 << p;
                    }
                }
                let y = self.truth_table(g)[idx as usize];
                values[self.gate_output[g] as usize] = y != 0;
            }
        }
        values
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use gatspi_netlist::{CellLibrary, NetlistBuilder};

    fn full_adder() -> Netlist {
        let mut b = NetlistBuilder::new("fa", CellLibrary::industry_mini());
        let a = b.add_input("a").unwrap();
        let bb = b.add_input("b").unwrap();
        let cin = b.add_input("cin").unwrap();
        let axb = b.add_net("axb").unwrap();
        let sum = b.add_output("sum").unwrap();
        let cout = b.add_output("cout").unwrap();
        b.add_gate("u_x1", "XOR2", &[a, bb], axb).unwrap();
        b.add_gate("u_x2", "XOR2", &[axb, cin], sum).unwrap();
        b.add_gate("u_maj", "MAJ3", &[a, bb, cin], cout).unwrap();
        b.finish().unwrap()
    }

    #[test]
    fn build_and_shape() {
        let g = CircuitGraph::build(&full_adder(), None, &GraphOptions::default()).unwrap();
        assert_eq!(g.n_gates(), 3);
        assert_eq!(g.n_signals(), 6);
        assert_eq!(g.n_levels(), 2);
        assert_eq!(g.level_gates(0).len(), 2); // u_x1, u_maj
        assert_eq!(g.level_gates(1).len(), 1); // u_x2
        assert_eq!(g.primary_inputs().len(), 3);
        assert_eq!(g.primary_outputs().len(), 2);
    }

    #[test]
    fn soa_accessors_mirror_per_gate_views() {
        let g = CircuitGraph::build(&full_adder(), None, &GraphOptions::default()).unwrap();
        assert_eq!(g.level_offsets().len(), g.n_levels() + 1);
        for level in 0..g.n_levels() {
            let a = g.level_offsets()[level] as usize;
            let b = g.level_offsets()[level + 1] as usize;
            assert_eq!(&g.level_gates_flat()[a..b], g.level_gates(level));
        }
        for gate in 0..g.n_gates() {
            let a = g.fanin_offsets()[gate] as usize;
            let b = g.fanin_offsets()[gate + 1] as usize;
            assert_eq!(&g.fanin_signals_flat()[a..b], g.gate_fanin(gate));
            assert_eq!(g.gate_outputs_flat()[gate], g.gate_output(gate).0);
        }
        assert_eq!(g.max_level_width(), 2);
    }

    #[test]
    fn truth_tables_sliced_correctly() {
        let g = CircuitGraph::build(&full_adder(), None, &GraphOptions::default()).unwrap();
        // Gate 0 is XOR2.
        assert_eq!(g.truth_table(0), &[0, 1, 1, 0]);
        // Gate 2 is MAJ3.
        assert_eq!(g.truth_table(2), &[0, 0, 0, 1, 0, 1, 1, 1]);
    }

    #[test]
    fn eval_zero_delay_adds() {
        let g = CircuitGraph::build(&full_adder(), None, &GraphOptions::default()).unwrap();
        for a in [false, true] {
            for b in [false, true] {
                for c in [false, true] {
                    let v = g.eval_zero_delay(&[a, b, c]);
                    let sum_sig = g.primary_outputs()[0];
                    let cout_sig = g.primary_outputs()[1];
                    let total = u8::from(a) + u8::from(b) + u8::from(c);
                    assert_eq!(v[sum_sig.index()], total % 2 == 1, "sum for {a}{b}{c}");
                    assert_eq!(v[cout_sig.index()], total >= 2, "cout for {a}{b}{c}");
                }
            }
        }
    }

    #[test]
    fn default_delays_without_sdf() {
        let opts = GraphOptions {
            default_delay: (3, 5),
            ..GraphOptions::default()
        };
        let g = CircuitGraph::build(&full_adder(), None, &opts).unwrap();
        assert_eq!(g.fallback_delay(0), (3, 5));
        // All LUT entries are NO_ARC without SDF.
        assert!(g.delay_lut(0, 0).iter().all(|&d| d == NO_ARC));
        assert_eq!(g.net_delays(0), (0, 0));
    }

    #[test]
    fn sdf_annotation_binds() {
        let netlist = full_adder();
        let sdf_text = r#"
(DELAYFILE
  (TIMESCALE 1ps)
  (CELL (CELLTYPE "XOR2") (INSTANCE *)
    (DELAY (ABSOLUTE (IOPATH A Y (10) (12)) (IOPATH B Y (11) (13)))))
  (CELL (CELLTYPE "MAJ3") (INSTANCE u_maj)
    (DELAY (ABSOLUTE (IOPATH A Y (20) (21)))))
  (CELL (CELLTYPE "__wire__") (INSTANCE *)
    (DELAY (ABSOLUTE (INTERCONNECT u_x1/Y u_x2/A (2) (3)))))
)
"#;
        let sdf = SdfFile::parse(sdf_text).unwrap();
        let g = CircuitGraph::build(&netlist, Some(&sdf), &GraphOptions::default()).unwrap();
        // XOR2 pin A lut: both edges rise 10 / fall 12.
        let lut = g.delay_lut(0, 0);
        assert_eq!(lut[0], 10); // pos,rise col0
        assert_eq!(lut[2], 12); // pos,fall col0  (row-major: row1 starts at ncols=2)
                                // Fallback is max annotated.
        assert_eq!(g.fallback_delay(0), (11, 13));
        // MAJ3: only pin A annotated; fallback (20, 21).
        assert_eq!(g.fallback_delay(2), (20, 21));
        // Interconnect on u_x2 pin A (gate 1, pin 0).
        let slot = g.pin_base(1);
        assert_eq!(g.net_delays(slot), (2, 3));
        // Unannotated pin of u_x2 keeps zero wire delay.
        assert_eq!(g.net_delays(slot + 1), (0, 0));
    }

    #[test]
    fn sdf_unknown_instance_rejected() {
        let netlist = full_adder();
        let sdf = SdfFile::parse(
            r#"(DELAYFILE (CELL (CELLTYPE "__wire__") (INSTANCE *)
  (DELAY (ABSOLUTE (INTERCONNECT u_x1/Y nosuch/A (1) (1))))))"#,
        )
        .unwrap();
        let err = CircuitGraph::build(&netlist, Some(&sdf), &GraphOptions::default());
        assert!(matches!(err, Err(GraphError::SdfBinding { .. })));
    }

    #[test]
    fn sdf_unknown_pin_rejected() {
        let netlist = full_adder();
        let sdf = SdfFile::parse(
            r#"(DELAYFILE (CELL (CELLTYPE "XOR2") (INSTANCE u_x1)
  (DELAY (ABSOLUTE (IOPATH Q Y (1) (1))))))"#,
        )
        .unwrap();
        let err = CircuitGraph::build(&netlist, Some(&sdf), &GraphOptions::default());
        assert!(matches!(err, Err(GraphError::SdfBinding { .. })));
    }

    #[test]
    fn interconnect_to_output_port_ignored() {
        let netlist = full_adder();
        let sdf = SdfFile::parse(
            r#"(DELAYFILE (CELL (CELLTYPE "__wire__") (INSTANCE *)
  (DELAY (ABSOLUTE (INTERCONNECT u_x2/Y sum (4) (4))))))"#,
        )
        .unwrap();
        let g = CircuitGraph::build(&netlist, Some(&sdf), &GraphOptions::default()).unwrap();
        assert_eq!(g.n_gates(), 3);
    }

    #[test]
    fn timescale_scaling_applied() {
        let netlist = full_adder();
        let sdf = SdfFile::parse(
            r#"(DELAYFILE (TIMESCALE 1ns) (CELL (CELLTYPE "XOR2") (INSTANCE *)
  (DELAY (ABSOLUTE (IOPATH A Y (0.5) (0.5))))))"#,
        )
        .unwrap();
        // Default scale: ticks = ps, so 0.5ns = 500.
        let g = CircuitGraph::build(&netlist, Some(&sdf), &GraphOptions::default()).unwrap();
        assert_eq!(g.delay_lut(0, 0)[0], 500);
        // Explicit scale override.
        let opts = GraphOptions {
            scale: Some(2.0),
            ..GraphOptions::default()
        };
        let g2 = CircuitGraph::build(&netlist, Some(&sdf), &opts).unwrap();
        assert_eq!(g2.delay_lut(0, 0)[0], 1);
    }

    #[test]
    fn driver_map() {
        let g = CircuitGraph::build(&full_adder(), None, &GraphOptions::default()).unwrap();
        for &pi in g.primary_inputs() {
            assert!(g.driver(pi).is_none());
        }
        let sum = g.primary_outputs()[0];
        assert_eq!(g.driver(sum), Some(1));
    }

    #[test]
    fn names_preserved() {
        let g = CircuitGraph::build(&full_adder(), None, &GraphOptions::default()).unwrap();
        assert_eq!(g.gate_name(2), "u_maj");
        assert_eq!(g.signal_name(g.primary_inputs()[0]), "a");
        assert_eq!(g.name(), "fa");
    }
}
