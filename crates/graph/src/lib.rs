//! Levelized flat simulation graph for the GATSPI reproduction — the
//! equivalent of the paper's PyTorch/DGL graph object.
//!
//! The translator ([`CircuitGraph::build`]) combines three front-end inputs:
//!
//! 1. a gate-level [`Netlist`](gatspi_netlist::Netlist) (`Netlist.gv`),
//! 2. an optional [`SdfFile`](gatspi_sdf::SdfFile) (`Netlist.sdf`), and
//! 3. the cell library's truth tables,
//!
//! into flat arrays a data-parallel kernel can consume directly:
//!
//! * CSR fan-in connectivity (signal ids per gate input pin),
//! * per-pin interconnect rise/fall delays (edge features),
//! * per-pin Fig. 4 conditional delay LUTs, concatenated with offsets,
//! * per-gate truth tables (node features), concatenated with offsets,
//! * logic levelization: gates grouped by level such that a gate's fan-in
//!   cones are fully contained in earlier levels (plus primary inputs).
//!
//! Every *signal* (primary input or gate output) has one slot; gate `g`
//! reads its input signals' waveforms and produces signal
//! [`CircuitGraph::gate_output`]`[g]`.

#![deny(missing_docs)]

mod error;
mod graph;
mod levelize;
mod stats;

pub use error::GraphError;
pub use graph::{CircuitGraph, GraphOptions, SignalId};
pub use levelize::levelize;
pub use stats::LevelStats;

/// Result alias used throughout this crate.
pub type Result<T> = std::result::Result<T, GraphError>;
