//! Logic levelization: partitioning gates into levels such that every gate's
//! fan-in gates sit in strictly earlier levels. Hybrid GPU re-simulators
//! (including GATSPI) use these levels as kernel launch groups — simulation
//! only advances to the next level once the current one completes, which
//! guarantees every input waveform a gate fetches is final.

use gatspi_netlist::Netlist;

use crate::{GraphError, Result};

/// Computes logic levels for every gate by Kahn's algorithm.
///
/// Returns `levels[g]` for each gate index `g`: gates whose inputs are all
/// primary inputs (or that have no inputs, e.g. ties) are level 0; otherwise
/// a gate is one past the maximum level of its driving gates.
///
/// # Errors
///
/// Returns [`GraphError::CombinationalLoop`] (naming a gate on the cycle) if
/// the combinational netlist is cyclic.
///
/// # Example
///
/// ```
/// use gatspi_netlist::{CellLibrary, NetlistBuilder};
/// use gatspi_graph::levelize;
///
/// # fn main() -> Result<(), Box<dyn std::error::Error>> {
/// let mut b = NetlistBuilder::new("chain", CellLibrary::industry_mini());
/// let a = b.add_input("a")?;
/// let n1 = b.add_net("n1")?;
/// let y = b.add_output("y")?;
/// b.add_gate("u1", "INV", &[a], n1)?;
/// b.add_gate("u2", "INV", &[n1], y)?;
/// let levels = levelize(&b.finish()?)?;
/// assert_eq!(levels, vec![0, 1]);
/// # Ok(())
/// # }
/// ```
pub fn levelize(netlist: &Netlist) -> Result<Vec<u32>> {
    let n = netlist.gate_count();
    let mut level = vec![0u32; n];
    let mut indegree = vec![0u32; n];

    // indegree = number of *gate-driven* inputs.
    for (_, gate) in netlist.gates() {
        let mut d = 0;
        for &net in gate.inputs() {
            if netlist.net(net).driver().is_some() {
                d += 1;
            }
        }
        indegree[gate_index(netlist, gate.name())] = d;
    }

    let mut queue: Vec<usize> = indegree
        .iter()
        .enumerate()
        .filter(|(_, &d)| d == 0)
        .map(|(i, _)| i)
        .collect();
    let mut processed = 0usize;
    let mut head = 0usize;
    while head < queue.len() {
        let g = queue[head];
        head += 1;
        processed += 1;
        let gate = netlist.gate(gatspi_netlist::GateId::from_index(g));
        let out = gate.output();
        for load in netlist.net(out).loads() {
            let succ = load.gate.index();
            let cand = level[g] + 1;
            if cand > level[succ] {
                level[succ] = cand;
            }
            indegree[succ] -= 1;
            if indegree[succ] == 0 {
                queue.push(succ);
            }
        }
    }

    if processed != n {
        // Some gate never reached indegree 0: it is on (or downstream of) a
        // cycle. Report one with remaining indegree.
        let g = indegree
            .iter()
            .position(|&d| d > 0)
            .expect("unprocessed gate must have indegree");
        return Err(GraphError::CombinationalLoop {
            gate: netlist
                .gate(gatspi_netlist::GateId::from_index(g))
                .name()
                .to_string(),
        });
    }
    Ok(level)
}

fn gate_index(netlist: &Netlist, name: &str) -> usize {
    netlist.find_gate(name).expect("gate exists").index()
}

#[cfg(test)]
mod tests {
    use super::*;
    use gatspi_netlist::{CellLibrary, NetlistBuilder};

    #[test]
    fn diamond_levels() {
        let mut b = NetlistBuilder::new("d", CellLibrary::industry_mini());
        let a = b.add_input("a").unwrap();
        let n1 = b.add_net("n1").unwrap();
        let n2 = b.add_net("n2").unwrap();
        let y = b.add_output("y").unwrap();
        b.add_gate("u1", "INV", &[a], n1).unwrap();
        b.add_gate("u2", "BUF", &[a], n2).unwrap();
        b.add_gate("u3", "NAND2", &[n1, n2], y).unwrap();
        let lv = levelize(&b.finish().unwrap()).unwrap();
        assert_eq!(lv, vec![0, 0, 1]);
    }

    #[test]
    fn unbalanced_paths_take_max() {
        let mut b = NetlistBuilder::new("u", CellLibrary::industry_mini());
        let a = b.add_input("a").unwrap();
        let n1 = b.add_net("n1").unwrap();
        let n2 = b.add_net("n2").unwrap();
        let y = b.add_output("y").unwrap();
        b.add_gate("u1", "INV", &[a], n1).unwrap();
        b.add_gate("u2", "INV", &[n1], n2).unwrap();
        // u3 sees level-0 input `a` and level-1 input `n2`.
        b.add_gate("u3", "AND2", &[a, n2], y).unwrap();
        let lv = levelize(&b.finish().unwrap()).unwrap();
        assert_eq!(lv[2], 2);
    }

    #[test]
    fn tie_cells_are_level_zero() {
        let mut b = NetlistBuilder::new("t", CellLibrary::industry_mini());
        let c = b.add_net("c").unwrap();
        let y = b.add_output("y").unwrap();
        b.add_gate("t0", "TIEHI", &[], c).unwrap();
        b.add_gate("u1", "INV", &[c], y).unwrap();
        let lv = levelize(&b.finish().unwrap()).unwrap();
        assert_eq!(lv, vec![0, 1]);
    }

    #[test]
    fn loop_detected() {
        // Build a cycle: u1 -> n1 -> u2 -> n2 -> u1.
        let mut b = NetlistBuilder::new("loopy", CellLibrary::industry_mini());
        let a = b.add_input("a").unwrap();
        let n1 = b.add_net("n1").unwrap();
        let n2 = b.add_net("n2").unwrap();
        b.add_gate("u1", "NAND2", &[a, n2], n1).unwrap();
        b.add_gate("u2", "INV", &[n1], n2).unwrap();
        let netlist = b.finish().unwrap();
        let err = levelize(&netlist);
        assert!(matches!(err, Err(GraphError::CombinationalLoop { .. })));
    }

    #[test]
    fn deep_chain() {
        let lib = CellLibrary::industry_mini();
        let mut b = NetlistBuilder::new("chain", lib);
        let mut prev = b.add_input("a").unwrap();
        for i in 0..100 {
            let n = b.add_net(&format!("n{i}")).unwrap();
            b.add_gate(&format!("u{i}"), "INV", &[prev], n).unwrap();
            prev = n;
        }
        b.mark_output(prev);
        let lv = levelize(&b.finish().unwrap()).unwrap();
        assert_eq!(lv[99], 99);
        assert_eq!(lv[0], 0);
    }
}
