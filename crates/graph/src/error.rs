use std::fmt;

/// Errors produced while building the simulation graph.
#[derive(Debug, Clone, PartialEq)]
#[non_exhaustive]
pub enum GraphError {
    /// The netlist contains a combinational cycle, which levelized
    /// re-simulation cannot schedule.
    CombinationalLoop {
        /// Name of one gate on the cycle.
        gate: String,
    },
    /// An SDF statement referenced an instance/pin that does not exist.
    SdfBinding {
        /// Human-readable detail.
        detail: String,
    },
    /// Delay-LUT translation failed.
    Sdf(gatspi_sdf::SdfError),
}

impl fmt::Display for GraphError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            GraphError::CombinationalLoop { gate } => {
                write!(f, "combinational loop through gate `{gate}`")
            }
            GraphError::SdfBinding { detail } => write!(f, "sdf binding error: {detail}"),
            GraphError::Sdf(e) => write!(f, "sdf translation error: {e}"),
        }
    }
}

impl std::error::Error for GraphError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            GraphError::Sdf(e) => Some(e),
            _ => None,
        }
    }
}

impl From<gatspi_sdf::SdfError> for GraphError {
    fn from(e: gatspi_sdf::SdfError) -> Self {
        GraphError::Sdf(e)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_mentions_gate() {
        let e = GraphError::CombinationalLoop { gate: "u9".into() };
        assert!(e.to_string().contains("u9"));
    }

    #[test]
    fn error_is_send_sync() {
        fn assert_send_sync<T: Send + Sync>() {}
        assert_send_sync::<GraphError>();
    }
}
