//! Level-structure statistics.
//!
//! GATSPI launches one kernel (pair) per logic level, so the number of
//! levels fixes the stream-synchronize + launch overhead (Table 5), while
//! level *widths* determine how much design parallelism each launch exposes.

/// Summary of a levelized design's shape.
#[derive(Debug, Clone, PartialEq)]
pub struct LevelStats {
    /// Gates per level.
    pub widths: Vec<u32>,
}

impl LevelStats {
    /// Builds stats from a CSR offset array (`n_levels + 1` entries).
    pub fn from_offsets(offsets: &[u32]) -> Self {
        let widths = offsets.windows(2).map(|w| w[1] - w[0]).collect();
        LevelStats { widths }
    }

    /// Number of levels.
    pub fn n_levels(&self) -> usize {
        self.widths.len()
    }

    /// Total gate count.
    pub fn total_gates(&self) -> u64 {
        self.widths.iter().map(|&w| u64::from(w)).sum()
    }

    /// Widest level (0 for empty designs).
    pub fn max_width(&self) -> u32 {
        self.widths.iter().copied().max().unwrap_or(0)
    }

    /// Mean gates per level (0 for empty designs).
    pub fn mean_width(&self) -> f64 {
        if self.widths.is_empty() {
            return 0.0;
        }
        self.total_gates() as f64 / self.widths.len() as f64
    }

    /// Index of the widest level (0 for empty designs).
    pub fn widest_level(&self) -> usize {
        self.widths
            .iter()
            .enumerate()
            .max_by_key(|(_, &w)| w)
            .map(|(i, _)| i)
            .unwrap_or(0)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn from_offsets() {
        let s = LevelStats::from_offsets(&[0, 2, 5, 6]);
        assert_eq!(s.widths, vec![2, 3, 1]);
        assert_eq!(s.n_levels(), 3);
        assert_eq!(s.total_gates(), 6);
        assert_eq!(s.max_width(), 3);
        assert_eq!(s.widest_level(), 1);
        assert!((s.mean_width() - 2.0).abs() < 1e-12);
    }

    #[test]
    fn empty() {
        let s = LevelStats::from_offsets(&[0]);
        assert_eq!(s.n_levels(), 0);
        assert_eq!(s.max_width(), 0);
        assert_eq!(s.mean_width(), 0.0);
        assert_eq!(s.widest_level(), 0);
    }
}
