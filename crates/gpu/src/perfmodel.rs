//! Cycle-approximate GPU kernel performance model.
//!
//! The model turns the event counters a kernel accumulates while executing
//! functionally on the CPU into the Nsight-style metrics of the paper's
//! Table 6 — modeled latency, occupancy, L1/L2 hit rates, memory throughput,
//! cycles-per-issue and uncoalesced-access percentage — parameterised by the
//! [`DeviceSpec`]. It is a first-order analytical model (roofline over
//! compute vs DRAM traffic with an L2 capacity term), *not* a simulator of a
//! specific microarchitecture; its purpose is to respond to the paper's
//! tuning knobs in the right direction and with plausible magnitude:
//!
//! * more cycle parallelism → larger working set → lower L2 hit rate →
//!   memory-bound latency growth (the Table 6 story);
//! * fewer registers/thread → register spilling → more instructions and L1
//!   misses (the paper's 32-regs experiment);
//! * bigger L2 / higher bandwidth (A100 vs V100 vs T4) → proportional
//!   speedups (Table 8).

use crate::{DeviceSpec, LaunchConfig};

/// Nsight-style profile of one kernel launch: measured wall time plus
/// modeled device metrics.
#[derive(Debug, Clone, PartialEq)]
pub struct KernelProfile {
    /// Kernel name (for reports).
    pub name: String,
    /// Logical threads launched.
    pub threads: usize,
    /// Host wall-clock seconds for the functional execution (measured).
    pub wall_seconds: f64,
    /// Modeled GPU latency in seconds.
    pub modeled_seconds: f64,
    /// Modeled elapsed GPU cycles.
    pub elapsed_cycles: u64,
    /// Achieved occupancy (percent of max resident threads).
    pub occupancy_pct: f64,
    /// Compute throughput as a percent of peak issue rate.
    pub compute_throughput_pct: f64,
    /// Memory throughput as a percent of peak DRAM bandwidth.
    pub memory_throughput_pct: f64,
    /// Modeled DRAM throughput actually achieved, bytes/second.
    pub dram_throughput: f64,
    /// Modeled L1 hit rate, percent.
    pub l1_hit_pct: f64,
    /// Modeled L2 hit rate, percent.
    pub l2_hit_pct: f64,
    /// Modeled scheduler cycles per issued instruction.
    pub cycles_per_issue: f64,
    /// Percent of global accesses that were uncoalesced.
    pub uncoalesced_pct: f64,
    /// Total global memory accesses (loads + stores).
    pub accesses: u64,
    /// Total abstract instructions.
    pub instructions: u64,
}

impl KernelProfile {
    /// A zero/empty profile (used for skipped launches).
    pub fn empty(name: impl Into<String>) -> Self {
        KernelProfile {
            name: name.into(),
            threads: 0,
            wall_seconds: 0.0,
            modeled_seconds: 0.0,
            elapsed_cycles: 0,
            occupancy_pct: 0.0,
            compute_throughput_pct: 0.0,
            memory_throughput_pct: 0.0,
            dram_throughput: 0.0,
            l1_hit_pct: 0.0,
            l2_hit_pct: 0.0,
            cycles_per_issue: 0.0,
            uncoalesced_pct: 0.0,
            accesses: 0,
            instructions: 0,
        }
    }

    /// Accumulates another profile into this one (summing latencies and
    /// traffic, max-ing rates where summing is meaningless). Used to roll
    /// per-level launches up into a whole-simulation kernel profile.
    pub fn accumulate(&mut self, other: &KernelProfile) {
        self.threads = self.threads.max(other.threads);
        self.wall_seconds += other.wall_seconds;
        self.modeled_seconds += other.modeled_seconds;
        self.elapsed_cycles += other.elapsed_cycles;
        self.accesses += other.accesses;
        self.instructions += other.instructions;
        // Rates: keep traffic-weighted blend so big levels dominate.
        let w = other.accesses as f64;
        let total = (self.accesses as f64).max(1.0);
        let blend = |a: f64, b: f64| a + (b - a) * (w / total);
        self.occupancy_pct = blend(self.occupancy_pct, other.occupancy_pct);
        self.compute_throughput_pct =
            blend(self.compute_throughput_pct, other.compute_throughput_pct);
        self.memory_throughput_pct = blend(self.memory_throughput_pct, other.memory_throughput_pct);
        self.dram_throughput = blend(self.dram_throughput, other.dram_throughput);
        self.l1_hit_pct = blend(self.l1_hit_pct, other.l1_hit_pct);
        self.l2_hit_pct = blend(self.l2_hit_pct, other.l2_hit_pct);
        self.cycles_per_issue = blend(self.cycles_per_issue, other.cycles_per_issue);
        self.uncoalesced_pct = blend(self.uncoalesced_pct, other.uncoalesced_pct);
    }
}

/// Computes the modeled profile for one launch.
///
/// `counters` is `(loads, stores, uncoalesced, instructions)` as produced by
/// [`crate::KernelCounters::snapshot`].
pub(crate) fn model_launch(
    spec: &DeviceSpec,
    cfg: &LaunchConfig,
    counters: (u64, u64, u64, u64),
    wall_seconds: f64,
    name: &str,
) -> KernelProfile {
    let (loads, stores, uncoalesced, mut instructions) = counters;
    let accesses = loads + stores;
    if cfg.threads == 0 {
        return KernelProfile::empty(name);
    }

    let occupancy = spec.theoretical_occupancy(cfg.threads_per_block, cfg.regs_per_thread);
    // Achieved occupancy is capped by how many threads exist at all.
    let resident_capacity =
        f64::from(spec.sm_count) * f64::from(spec.max_threads_per_sm) * occupancy;
    let achieved_occ = occupancy * (cfg.threads as f64 / resident_capacity).min(1.0);

    // Register pressure below ~40 regs forces spills: more instructions and
    // poor L1 behaviour (the paper's 32-reg experiment).
    let spill_factor = if cfg.regs_per_thread < 40 { 1.9 } else { 1.0 };
    instructions = (instructions as f64 * spill_factor) as u64;
    let l1_hit = if cfg.regs_per_thread < 40 { 0.66 } else { 0.91 };

    // L2 capacity model: fraction of the working set resident in L2.
    let ws = cfg.working_set_bytes.max(1) as f64;
    let l2_ratio = spec.l2_bytes as f64 / ws;
    let l2_hit = (0.30 + 0.68 * l2_ratio.min(1.0)).clamp(0.05, 0.98);

    // DRAM traffic: every L1-missing access moves a 32-byte sector when
    // uncoalesced, 8 bytes effective when coalesced; L2 hits stay on chip.
    let unc_frac = if accesses > 0 {
        uncoalesced as f64 / accesses as f64
    } else {
        0.0
    };
    let bytes_per_access = 32.0 * unc_frac + 8.0 * (1.0 - unc_frac);
    let l2_traffic = accesses as f64 * (1.0 - l1_hit) * bytes_per_access;
    let dram_traffic = l2_traffic * (1.0 - l2_hit);

    // DRAM bandwidth time.
    let mem_time = dram_traffic / spec.memory_bw;
    // Issue model: each SM issues ~1 instruction/cycle once enough warps are
    // resident; below ~50% occupancy the issue slots cannot be filled.
    let issue_eff = (achieved_occ * 2.0).clamp(0.04, 1.0);
    let issue_rate = f64::from(spec.sm_count) * spec.clock_hz * issue_eff;
    let compute_time = instructions as f64 / issue_rate.max(1.0);
    // Latency exposure: each L2 miss costs ~400 cycles, hidden by the warps
    // in flight per SM (scales with occupancy).
    let miss_latency_cycles = 400.0;
    let misses = dram_traffic / bytes_per_access.max(1.0);
    let hiding = (achieved_occ * 16.0).clamp(1.0, 16.0);
    let latency_time =
        misses * miss_latency_cycles / (spec.clock_hz * f64::from(spec.sm_count) * hiding);

    // Additive composition (overlap pessimism): GATSPI's kernel is a
    // pointer-chasing loop whose memory and compute phases serialize within
    // a thread, so the phases overlap poorly across warps too.
    let modeled = mem_time + compute_time + latency_time + spec.launch_overhead;
    let elapsed_cycles = (modeled * spec.clock_hz) as u64;

    let peak_issue = f64::from(spec.sm_count) * spec.clock_hz;
    let compute_pct = (instructions as f64 / (modeled * peak_issue) * 100.0).min(100.0);
    let mem_pct = (dram_traffic / (modeled * spec.memory_bw) * 100.0).min(100.0);
    let cpi = if instructions > 0 {
        elapsed_cycles as f64 * f64::from(spec.sm_count) / instructions as f64
    } else {
        0.0
    };

    KernelProfile {
        name: name.to_string(),
        threads: cfg.threads,
        wall_seconds,
        modeled_seconds: modeled,
        elapsed_cycles,
        occupancy_pct: achieved_occ * 100.0,
        compute_throughput_pct: compute_pct,
        memory_throughput_pct: mem_pct,
        dram_throughput: dram_traffic / modeled.max(1e-12),
        l1_hit_pct: l1_hit * 100.0,
        l2_hit_pct: l2_hit * 100.0,
        cycles_per_issue: cpi,
        uncoalesced_pct: unc_frac * 100.0,
        accesses,
        instructions,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn base_cfg(threads: usize, ws: u64) -> LaunchConfig {
        LaunchConfig {
            threads,
            threads_per_block: 512,
            regs_per_thread: 64,
            working_set_bytes: ws,
        }
    }

    #[test]
    fn bigger_working_set_lowers_l2_and_raises_latency() {
        let v = DeviceSpec::v100();
        let counters = (1_000_000, 200_000, 900_000, 5_000_000);
        let small = model_launch(&v, &base_cfg(100_000, 1 << 20), counters, 0.0, "k");
        let large = model_launch(&v, &base_cfg(100_000, 1 << 30), counters, 0.0, "k");
        assert!(large.l2_hit_pct < small.l2_hit_pct);
        assert!(large.modeled_seconds > small.modeled_seconds);
    }

    #[test]
    fn fewer_registers_spill() {
        let v = DeviceSpec::v100();
        let counters = (1_000_000, 200_000, 900_000, 5_000_000);
        let r64 = model_launch(&v, &base_cfg(4_000_000, 1 << 28), counters, 0.0, "k");
        let mut cfg32 = base_cfg(4_000_000, 1 << 28);
        cfg32.regs_per_thread = 32;
        let r32 = model_launch(&v, &cfg32, counters, 0.0, "k");
        // Spilling: occupancy doubles but L1 craters and latency worsens.
        assert!(r32.occupancy_pct > r64.occupancy_pct);
        assert!(r32.l1_hit_pct < r64.l1_hit_pct);
        assert!(r32.modeled_seconds > r64.modeled_seconds);
    }

    #[test]
    fn faster_device_is_faster() {
        let counters = (10_000_000, 2_000_000, 9_000_000, 50_000_000);
        let cfg = base_cfg(4_000_000, 1 << 30);
        let t4 = model_launch(&DeviceSpec::t4(), &cfg, counters, 0.0, "k");
        let v100 = model_launch(&DeviceSpec::v100(), &cfg, counters, 0.0, "k");
        let a100 = model_launch(&DeviceSpec::a100(), &cfg, counters, 0.0, "k");
        assert!(t4.modeled_seconds > v100.modeled_seconds);
        assert!(v100.modeled_seconds > a100.modeled_seconds);
    }

    #[test]
    fn empty_launch() {
        let p = model_launch(
            &DeviceSpec::v100(),
            &base_cfg(0, 0),
            (0, 0, 0, 0),
            0.0,
            "empty",
        );
        assert_eq!(p.threads, 0);
        assert_eq!(p.modeled_seconds, 0.0);
    }

    #[test]
    fn accumulate_sums_latency() {
        let v = DeviceSpec::v100();
        let counters = (1_000_000, 200_000, 900_000, 5_000_000);
        let p1 = model_launch(&v, &base_cfg(100_000, 1 << 24), counters, 0.1, "k");
        let mut total = KernelProfile::empty("sum");
        total.accumulate(&p1);
        total.accumulate(&p1);
        assert!((total.modeled_seconds - 2.0 * p1.modeled_seconds).abs() < 1e-12);
        assert!((total.wall_seconds - 0.2).abs() < 1e-12);
        assert_eq!(total.accesses, 2 * p1.accesses);
    }
}
