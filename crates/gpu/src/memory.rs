use crate::sync::atomic::{AtomicI32, AtomicU64, Ordering};

/// Simulated GPU global memory: a pre-allocated flat `i32` word arena.
///
/// Words are stored as relaxed atomics so that concurrently running kernel
/// threads (and the asynchronous SAIF dumper) can share the buffer safely;
/// on x86-64 relaxed atomic loads/stores compile to plain `mov`s, so the
/// functional cost is negligible. Correctness of concurrent access follows
/// from the simulator's two-pass design: every thread writes only its own
/// pre-assigned output region.
///
/// Host↔device transfers are explicit ([`DeviceMemory::h2d`],
/// [`DeviceMemory::d2h`]) and accounted in bytes, so the engine can model
/// PCIe transfer time for the application-phase profile (Table 5).
#[derive(Debug)]
pub struct DeviceMemory {
    words: Vec<AtomicI32>,
    h2d_bytes: AtomicU64,
    d2h_bytes: AtomicU64,
    /// Arena recycling generation: bumped by each run that reuses the
    /// arena, so results holding live device pointers can detect that
    /// their data has been overwritten instead of silently reading the
    /// next run's waveforms.
    epoch: AtomicU64,
    /// Armed fault injector, if any (`Device::arm_faults`). The lock is
    /// taken only at the bulk-transfer entry points, never per word.
    #[cfg(feature = "fault-inject")]
    injector: crate::sync::Mutex<Option<std::sync::Arc<crate::fault::FaultInjector>>>,
}

impl DeviceMemory {
    /// Allocates an arena of `words` i32 slots, zero-initialised.
    pub fn new(words: usize) -> Self {
        let mut v = Vec::with_capacity(words);
        v.resize_with(words, || AtomicI32::new(0));
        DeviceMemory {
            words: v,
            h2d_bytes: AtomicU64::new(0),
            d2h_bytes: AtomicU64::new(0),
            epoch: AtomicU64::new(0),
            #[cfg(feature = "fault-inject")]
            injector: crate::sync::Mutex::new(None),
        }
    }

    /// Replaces (or clears, with `None`) the armed fault injector.
    #[cfg(feature = "fault-inject")]
    pub(crate) fn arm_faults(&self, injector: Option<std::sync::Arc<crate::fault::FaultInjector>>) {
        *self.injector.lock().unwrap_or_else(|e| e.into_inner()) = injector;
    }

    /// The armed fault injector, if any.
    #[cfg(feature = "fault-inject")]
    pub(crate) fn fault_injector(&self) -> Option<std::sync::Arc<crate::fault::FaultInjector>> {
        self.injector
            .lock()
            .unwrap_or_else(|e| e.into_inner())
            .clone()
    }

    /// Runs the injection check for `site` if an injector is armed.
    #[cfg(feature = "fault-inject")]
    pub(crate) fn fault_point(&self, site: crate::fault::FaultSite) {
        if let Some(inj) = self.fault_injector() {
            inj.check(site);
        }
    }

    /// The current arena-recycling generation.
    pub fn epoch(&self) -> u64 {
        self.epoch.load(Ordering::Acquire)
    }

    /// Starts a new arena generation (a run is about to overwrite the
    /// arena); returns the new generation.
    pub fn advance_epoch(&self) -> u64 {
        self.epoch.fetch_add(1, Ordering::AcqRel) + 1
    }

    /// Capacity in words.
    pub fn len(&self) -> usize {
        self.words.len()
    }

    /// Whether the arena has zero capacity.
    pub fn is_empty(&self) -> bool {
        self.words.is_empty()
    }

    /// Reads one word (relaxed).
    ///
    /// # Panics
    ///
    /// Panics if `idx` is out of bounds.
    #[inline]
    pub fn load(&self, idx: usize) -> i32 {
        // relaxed-ok: arena words carry no cross-thread ordering themselves;
        // every writer owns a disjoint pre-assigned region and cross-phase
        // visibility rides the launch barrier (see Device::launch_phased).
        self.words[idx].load(Ordering::Relaxed)
    }

    /// Writes one word (relaxed).
    ///
    /// # Panics
    ///
    /// Panics if `idx` is out of bounds.
    #[inline]
    pub fn store(&self, idx: usize, value: i32) {
        // relaxed-ok: see `load` — per-thread disjoint regions, ordering via
        // the launch barrier.
        self.words[idx].store(value, Ordering::Relaxed);
    }

    /// Host→device copy of `src` into the arena at `offset`, with byte
    /// accounting.
    ///
    /// # Panics
    ///
    /// Panics if the destination range is out of bounds.
    pub fn h2d(&self, offset: usize, src: &[i32]) {
        #[cfg(feature = "fault-inject")]
        self.fault_point(crate::fault::FaultSite::Alloc);
        // panic-ok: documented bounds contract of this API.
        assert!(offset + src.len() <= self.words.len(), "h2d out of bounds");
        for (i, &v) in src.iter().enumerate() {
            // relaxed-ok: see `store`.
            self.words[offset + i].store(v, Ordering::Relaxed);
        }
        // relaxed-ok: monotonic telemetry counter, read only for reports.
        self.h2d_bytes
            .fetch_add(4 * src.len() as u64, Ordering::Relaxed);
    }

    /// Device→host copy of `len` words starting at `offset`, with byte
    /// accounting.
    ///
    /// # Panics
    ///
    /// Panics if the source range is out of bounds.
    pub fn d2h(&self, offset: usize, len: usize) -> Vec<i32> {
        #[cfg(feature = "fault-inject")]
        self.fault_point(crate::fault::FaultSite::Transfer);
        // panic-ok: documented bounds contract of this API.
        assert!(offset + len <= self.words.len(), "d2h out of bounds");
        let out: Vec<i32> = (0..len)
            // relaxed-ok: see `load`.
            .map(|i| self.words[offset + i].load(Ordering::Relaxed))
            .collect();
        // relaxed-ok: monotonic telemetry counter, read only for reports.
        self.d2h_bytes.fetch_add(4 * len as u64, Ordering::Relaxed);
        out
    }

    /// Total bytes copied host→device so far.
    pub fn h2d_bytes(&self) -> u64 {
        // relaxed-ok: telemetry read, no payload depends on it.
        self.h2d_bytes.load(Ordering::Relaxed)
    }

    /// Total bytes copied device→host so far.
    pub fn d2h_bytes(&self) -> u64 {
        // relaxed-ok: telemetry read, no payload depends on it.
        self.d2h_bytes.load(Ordering::Relaxed)
    }

    /// Resets the transfer counters (not the memory contents).
    pub fn reset_counters(&self) {
        // relaxed-ok: telemetry reset between runs, single-threaded caller.
        self.h2d_bytes.store(0, Ordering::Relaxed);
        // relaxed-ok: telemetry reset between runs, single-threaded caller.
        self.d2h_bytes.store(0, Ordering::Relaxed);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn store_load_roundtrip() {
        let m = DeviceMemory::new(8);
        m.store(3, -7);
        assert_eq!(m.load(3), -7);
        assert_eq!(m.load(0), 0);
        assert_eq!(m.len(), 8);
        assert!(!m.is_empty());
    }

    #[test]
    fn h2d_d2h_with_accounting() {
        let m = DeviceMemory::new(16);
        m.h2d(4, &[1, 2, 3]);
        assert_eq!(m.load(4), 1);
        assert_eq!(m.load(6), 3);
        assert_eq!(m.h2d_bytes(), 12);
        let back = m.d2h(4, 3);
        assert_eq!(back, vec![1, 2, 3]);
        assert_eq!(m.d2h_bytes(), 12);
        m.reset_counters();
        assert_eq!(m.h2d_bytes(), 0);
    }

    #[test]
    #[should_panic(expected = "h2d out of bounds")]
    fn h2d_bounds_checked() {
        let m = DeviceMemory::new(2);
        m.h2d(1, &[1, 2]);
    }

    #[test]
    fn concurrent_access_is_safe() {
        let m = DeviceMemory::new(1024);
        std::thread::scope(|s| {
            for t in 0..4 {
                let m = &m;
                s.spawn(move || {
                    for i in 0..256 {
                        m.store(t * 256 + i, (t * 256 + i) as i32);
                    }
                });
            }
        });
        for i in 0..1024 {
            assert_eq!(m.load(i), i as i32);
        }
    }
}

#[cfg(all(test, feature = "model-check"))]
mod model_tests {
    use super::*;

    /// The arena epoch as a hand-off: a writer that stores a word and then
    /// advances the epoch (`AcqRel`) publishes the word to any reader that
    /// observes the new epoch (`Acquire`) — weakening either ordering to
    /// `Relaxed` yields a schedule where the reader sees the new epoch but
    /// the old word.
    #[test]
    fn epoch_advance_publishes_arena_writes() {
        loom::model(|| {
            let m = DeviceMemory::new(1);
            crate::sync::thread::scope(|s| {
                let m = &m;
                s.spawn(move |_| {
                    m.store(0, 42);
                    m.advance_epoch();
                });
                if m.epoch() == 1 {
                    assert_eq!(m.load(0), 42, "epoch visible but its write is not");
                }
            })
            .expect("model worker panicked");
        });
    }
}
