use std::fmt;

/// Application-phase breakdown in the style of the paper's Table 5 Nsight
/// profile: host→device transfer, stream-synchronize + kernel-launch
/// overhead, and kernel execution.
#[derive(Debug, Clone, Copy, PartialEq, Default)]
pub struct AppPhaseProfile {
    /// Seconds spent copying stimulus/graph data host→device (modeled from
    /// bytes over PCIe bandwidth).
    pub h2d_seconds: f64,
    /// Seconds spent reading waveforms back device→host (modeled from
    /// bytes over PCIe bandwidth) — the cost of waveform spill and
    /// streaming sinks.
    pub readback_seconds: f64,
    /// Seconds of stream synchronisation + kernel launch overhead (modeled
    /// as launches × per-launch cost).
    pub sync_launch_seconds: f64,
    /// Seconds of kernel execution (modeled GPU time).
    pub kernel_seconds: f64,
    /// Host-side preprocessing (waveform restructuring for cycle
    /// parallelism), measured.
    pub restructure_seconds: f64,
    /// Result collection + SAIF dump, measured.
    pub dump_seconds: f64,
    /// Seconds the simulation hot path spent stalled on a full SAIF dump
    /// ring waiting for the asynchronous scanner to drain it (measured).
    /// This time overlaps the other phases (the producer stalls *inside*
    /// launch bookkeeping), so it is reported as a visibility signal for
    /// dump-bound runs and excluded from [`AppPhaseProfile::total_seconds`].
    pub dump_stall_seconds: f64,
    /// Measured host seconds spent draining finished segments to the
    /// waveform sinks (spill/streaming readback + sink dispatch). The
    /// *modeled* transfer cost of the same bytes is already
    /// [`AppPhaseProfile::readback_seconds`], so this measured wall time is
    /// reported for visibility and excluded from
    /// [`AppPhaseProfile::total_seconds`].
    pub drain_seconds: f64,
    /// Device→host readback batches the spill drain issued: adjacent
    /// waveform allocations coalesce into one transfer, so this counts the
    /// actual D2H ranges, not the (window, signal) waveforms moved.
    pub d2h_batches: u64,
    /// Number of kernel launches issued.
    pub launches: u64,
    /// How many of those launches were fused multi-level phased launches
    /// (each replaces two launches per covered level).
    pub fused_launches: u64,
    /// Bytes moved host→device.
    pub h2d_bytes: u64,
    /// Bytes read back device→host (waveform spill / streaming sinks).
    pub d2h_bytes: u64,
    /// Fraction of speculative store threads whose reservation fit the
    /// true output (`0.0` when the run never speculated). A hit retires
    /// that thread's count pass entirely.
    pub speculative_hit_rate: f64,
    /// Speculative threads that overflowed their reservation and were
    /// re-run by an exact count+store repair launch.
    pub overflow_repairs: u64,
    /// Arena words reserved by speculative budgets beyond what the stored
    /// waveforms actually needed (the prediction slack paid for skipping
    /// the count pass).
    pub predicted_waste_words: u64,
    /// Device faults observed during the run (injected or real): every
    /// transient fault that triggered a retry plus every fault that killed
    /// a device or exhausted its retries. `0` on a fault-free run.
    pub faults_injected: u64,
    /// Segment executions re-attempted after a transient device fault.
    pub segment_retries: u64,
    /// Window shards redistributed from a permanently-failed device to the
    /// surviving devices of a multi-GPU run (degraded mode).
    pub failovers: u64,
    /// Seconds slept in retry backoff (`RetryPolicy` exponential delays).
    /// Real idle time, but fault-recovery overhead rather than an
    /// application phase — reported for visibility and excluded from
    /// [`AppPhaseProfile::total_seconds`].
    pub backoff_seconds: f64,
    /// Segment re-executions forced by arena exhaustion: each out-of-memory
    /// segment is split in half and retried (the pre-existing OOM halving
    /// path, now surfaced).
    pub oom_retries: u64,
}

impl AppPhaseProfile {
    /// Total modeled application seconds (sum of all phases).
    pub fn total_seconds(&self) -> f64 {
        self.h2d_seconds
            + self.readback_seconds
            + self.sync_launch_seconds
            + self.kernel_seconds
            + self.restructure_seconds
            + self.dump_seconds
    }
}

impl fmt::Display for AppPhaseProfile {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "h2d {:.3}s | readback {:.3}s | sync+launch {:.3}s | kernel {:.3}s | restructure {:.3}s | dump {:.3}s | dump-stall {:.3}s | drain {:.3}s/{} batches | spec-hit {:.1}% | repairs {} | waste {}w | faults {} | retries {} | failovers {} | backoff {:.3}s | oom-retries {}",
            self.h2d_seconds,
            self.readback_seconds,
            self.sync_launch_seconds,
            self.kernel_seconds,
            self.restructure_seconds,
            self.dump_seconds,
            self.dump_stall_seconds,
            self.drain_seconds,
            self.d2h_batches,
            self.speculative_hit_rate * 100.0,
            self.overflow_repairs,
            self.predicted_waste_words,
            self.faults_injected,
            self.segment_retries,
            self.failovers,
            self.backoff_seconds,
            self.oom_retries
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn total_sums_phases() {
        let p = AppPhaseProfile {
            h2d_seconds: 1.0,
            readback_seconds: 0.5,
            sync_launch_seconds: 2.0,
            kernel_seconds: 3.0,
            restructure_seconds: 0.5,
            dump_seconds: 0.25,
            dump_stall_seconds: 0.125,
            drain_seconds: 0.0625,
            d2h_batches: 3,
            launches: 10,
            fused_launches: 2,
            h2d_bytes: 100,
            d2h_bytes: 40,
            speculative_hit_rate: 0.975,
            overflow_repairs: 4,
            predicted_waste_words: 128,
            faults_injected: 2,
            segment_retries: 2,
            failovers: 1,
            backoff_seconds: 0.003,
            oom_retries: 1,
        };
        // Stall, measured-drain, and backoff time overlap/duplicate other
        // phases or are recovery overhead: reported, not summed.
        // Speculation and fault telemetry are counters, not time.
        assert!((p.total_seconds() - 7.25).abs() < 1e-12);
        let s = p.to_string();
        assert!(s.contains("kernel 3.000s"));
        assert!(s.contains("readback 0.500s"));
        assert!(s.contains("dump-stall 0.125s"));
        assert!(s.contains("drain 0.062s/3 batches"));
        assert!(s.contains("spec-hit 97.5%"));
        assert!(s.contains("repairs 4"));
        assert!(s.contains("waste 128w"));
        assert!(s.contains("faults 2"));
        assert!(s.contains("retries 2"));
        assert!(s.contains("failovers 1"));
        assert!(s.contains("backoff 0.003s"));
        assert!(s.contains("oom-retries 1"));
    }
}
