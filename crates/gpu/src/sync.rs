//! The workspace's sync facade: every lock-free structure imports its
//! atomics, spin hints, and scoped threads from here instead of `std`.
//!
//! Normally (`--features model-check` off) this re-exports plain
//! `std::sync::atomic`, `std::hint`, and the crossbeam-shaped scoped-thread
//! shim — zero-cost. With `model-check` on, the same paths resolve to the
//! `loom` compat crate's instrumented types, so the in-crate model tests can
//! exhaustively explore the protocols' interleavings while ordinary tests
//! keep running on the types' out-of-model fallback behavior.
//!
//! `gatspi_core::sync` re-exports this module, giving the workspace one
//! canonical facade. The `xtask lint-atomics` pass (run in CI) bans
//! `std::sync::atomic` imports anywhere else, which is what keeps the
//! model-checked types and the shipped types from drifting apart.
//!
//! `std::sync::Mutex` is deliberately *not* routed through the model: the
//! lock-free paths only use locks that a single thread can hold across a
//! schedule point (e.g. the phase driver's boundary callback, taken only by
//! the unique leader), so modeling them would add states without adding
//! coverage.

/// Atomic types for the lock-free protocols. `AtomicBool`, `AtomicI32`,
/// `AtomicU32`, `AtomicU64`, `AtomicUsize`, and `Ordering`.
#[cfg(not(feature = "model-check"))]
pub mod atomic {
    pub use std::sync::atomic::{
        AtomicBool, AtomicI32, AtomicU32, AtomicU64, AtomicUsize, Ordering,
    };
}

#[cfg(feature = "model-check")]
pub use loom::sync::atomic;

/// Spin hints for bounded busy-waits.
#[cfg(not(feature = "model-check"))]
pub mod hint {
    pub use std::hint::spin_loop;
}

#[cfg(feature = "model-check")]
pub use loom::hint;

/// Thread primitives: `scope` (crossbeam-shaped), `sleep`, `yield_now`.
#[cfg(not(feature = "model-check"))]
pub mod thread {
    pub use crossbeam::thread::{scope, Scope, ScopedJoinHandle};
    pub use std::thread::{sleep, yield_now};
}

#[cfg(feature = "model-check")]
pub use loom::thread;
