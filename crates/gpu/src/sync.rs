//! The workspace's sync facade: every lock-free structure imports its
//! atomics, spin hints, and scoped threads from here instead of `std`.
//!
//! Normally (`--features model-check` off) this re-exports plain
//! `std::sync::atomic`, `std::hint`, and the crossbeam-shaped scoped-thread
//! shim — zero-cost. With `model-check` on, the same paths resolve to the
//! `loom` compat crate's instrumented types, so the in-crate model tests can
//! exhaustively explore the protocols' interleavings while ordinary tests
//! keep running on the types' out-of-model fallback behavior.
//!
//! `gatspi_core::sync` re-exports this module, giving the workspace one
//! canonical facade. The `xtask analyze` sync-facade pass (run in CI) bans
//! `std::sync::atomic` anywhere else — and, in the disciplined production
//! crates, the blocking primitives (`Mutex`, `RwLock`, `Condvar`, `mpsc`,
//! `Barrier`) and bare `std::thread::spawn` too — which is what keeps the
//! model-checked types and the shipped types from drifting apart.
//!
//! The blocking primitives re-exported here resolve to plain `std` under
//! *both* cfgs: the loom shim deliberately models only the atomics, because
//! the lock-free paths hold locks only where a single thread can own them
//! across a schedule point (e.g. the phase driver's boundary callback,
//! taken only by the unique leader), so modeling them would add states
//! without adding coverage. Routing them through the facade anyway gives
//! the workspace one choke point: if a lock ever migrates into a modeled
//! protocol, this is the one line that changes — and the static analysis
//! already guarantees every production lock goes through it.

/// Atomic types for the lock-free protocols. `AtomicBool`, `AtomicI32`,
/// `AtomicU32`, `AtomicU64`, `AtomicUsize`, and `Ordering`.
#[cfg(not(feature = "model-check"))]
pub mod atomic {
    pub use std::sync::atomic::{
        AtomicBool, AtomicI32, AtomicU32, AtomicU64, AtomicUsize, Ordering,
    };
}

#[cfg(feature = "model-check")]
pub use loom::sync::atomic;

/// Spin hints for bounded busy-waits.
#[cfg(not(feature = "model-check"))]
pub mod hint {
    pub use std::hint::spin_loop;
}

#[cfg(feature = "model-check")]
pub use loom::hint;

/// Thread primitives: `scope` (crossbeam-shaped), `spawn`, `sleep`,
/// `yield_now`.
#[cfg(not(feature = "model-check"))]
pub mod thread {
    pub use crossbeam::thread::{scope, Scope, ScopedJoinHandle};
    pub use std::thread::{sleep, spawn, yield_now, JoinHandle};
}

#[cfg(feature = "model-check")]
pub use loom::thread;

/// Blocking primitives, `std` under both cfgs (see the module docs for why
/// they are not modeled): `Mutex`, `RwLock`, `Condvar`, `Barrier` and their
/// guards.
pub use std::sync::{
    Barrier, Condvar, Mutex, MutexGuard, RwLock, RwLockReadGuard, RwLockWriteGuard,
};

/// Channels, `std` under both cfgs — the multi-GPU shard fan-in and the
/// sink hand-off use them strictly for ownership transfer, never as part of
/// a lock-free protocol.
pub mod mpsc {
    pub use std::sync::mpsc::*;
}
