use crate::{Device, DeviceSpec, KernelProfile};

/// A multi-GPU system: `n` simulated devices sharing the host's cores.
///
/// The paper's multi-GPU strategy distributes *cycle parallelism*: with `n`
/// GPUs the cycle-parallel slots are split evenly, each device simulates its
/// share independently, and kernel time follows `t = t₁/n + ovr` where `ovr`
/// is the per-launch stream-synchronize overhead (Fig. 6).
#[derive(Debug)]
pub struct MultiGpu {
    devices: Vec<Device>,
}

impl MultiGpu {
    /// Creates `n` devices of the same spec, each with `memory_words` words,
    /// dividing the host's worker threads between them.
    pub fn new(spec: DeviceSpec, n: usize, memory_words: usize) -> Self {
        assert!(n > 0, "need at least one device");
        let host = std::thread::available_parallelism()
            .map(|p| p.get())
            .unwrap_or(4);
        let per_dev = (host / n).max(1);
        let devices = (0..n)
            .map(|_| Device::with_workers(spec.clone(), memory_words, per_dev))
            .collect();
        MultiGpu { devices }
    }

    /// Number of devices.
    pub fn len(&self) -> usize {
        self.devices.len()
    }

    /// Whether there are no devices (never true; see [`MultiGpu::new`]).
    pub fn is_empty(&self) -> bool {
        self.devices.is_empty()
    }

    /// Access to device `i`.
    ///
    /// # Panics
    ///
    /// Panics if `i` is out of range.
    pub fn device(&self, i: usize) -> &Device {
        &self.devices[i]
    }

    /// Iterates over the devices.
    pub fn iter(&self) -> impl Iterator<Item = &Device> {
        self.devices.iter()
    }

    /// Runs `f(device_index, device)` concurrently on every device (the
    /// per-device work must be embarrassingly parallel, as GATSPI's
    /// cycle-sharded simulation is), then combines the per-device profiles
    /// into a system profile: modeled time is the slowest device (plus
    /// nothing — each device already includes its launch overhead), wall
    /// time is the actual concurrent wall time.
    pub fn run_sharded<F>(&self, f: F) -> KernelProfile
    where
        F: Fn(usize, &Device) -> KernelProfile + Sync,
    {
        let t0 = std::time::Instant::now();
        let mut profiles: Vec<Option<KernelProfile>> = Vec::new();
        profiles.resize_with(self.devices.len(), || None);
        crate::sync::thread::scope(|s| {
            for (slot, (i, dev)) in profiles.iter_mut().zip(self.devices.iter().enumerate()) {
                let f = &f;
                s.spawn(move |_| {
                    *slot = Some(f(i, dev));
                });
            }
        })
        // panic-ok: scope join — re-raises a device worker's panic to
        // the caller's per-shard boundary.
        .expect("device worker panicked");
        let wall = t0.elapsed().as_secs_f64();

        let mut combined = KernelProfile::empty("multi-gpu");
        let mut slowest = 0.0f64;
        for p in profiles.into_iter().flatten() {
            slowest = slowest.max(p.modeled_seconds);
            combined.accumulate(&p);
        }
        // Across devices the modeled time is a max, not a sum.
        combined.modeled_seconds = slowest;
        combined.wall_seconds = wall;
        combined
    }

    /// The paper's multi-GPU scaling law `t = t₁/n + ovr`, exposed for
    /// reporting: given a single-device modeled time and the per-level
    /// launch count, predicts the n-device time.
    pub fn predicted_scaling(&self, t1: f64, launches: u64) -> f64 {
        let ovr = self.devices[0].spec().launch_overhead * launches as f64;
        t1 / self.devices.len() as f64 + ovr
    }
}

/// Splits `total` cycle-parallel slots across `n` devices as evenly as
/// possible, returning per-device `(start, count)`.
pub fn shard_slots(total: usize, n: usize) -> Vec<(usize, usize)> {
    assert!(n > 0, "need at least one shard");
    let base = total / n;
    let rem = total % n;
    let mut out = Vec::with_capacity(n);
    let mut start = 0;
    for i in 0..n {
        let count = base + usize::from(i < rem);
        out.push((start, count));
        start += count;
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::LaunchConfig as Cfg;

    #[test]
    fn shard_slots_even_and_uneven() {
        assert_eq!(shard_slots(8, 4), vec![(0, 2), (2, 2), (4, 2), (6, 2)]);
        assert_eq!(shard_slots(7, 3), vec![(0, 3), (3, 2), (5, 2)]);
        assert_eq!(shard_slots(2, 4), vec![(0, 1), (1, 1), (2, 0), (2, 0)]);
    }

    #[test]
    fn run_sharded_executes_all_devices() {
        let mg = MultiGpu::new(DeviceSpec::v100(), 2, 128);
        let p = mg.run_sharded(|i, dev| {
            dev.memory().store(0, i as i32 + 1);
            dev.launch("w", &Cfg::for_threads(64), |_t, lane| lane.ops(1))
        });
        assert_eq!(mg.device(0).memory().load(0), 1);
        assert_eq!(mg.device(1).memory().load(0), 2);
        assert!(p.modeled_seconds > 0.0);
    }

    #[test]
    fn modeled_time_is_max_across_devices() {
        let mg = MultiGpu::new(DeviceSpec::v100(), 2, 0);
        let p = mg.run_sharded(|i, dev| {
            let threads = if i == 0 { 64 } else { 50_000 };
            dev.launch("w", &Cfg::for_threads(threads), |_t, lane| {
                lane.scattered_load();
                lane.ops(100)
            })
        });
        let solo = mg
            .device(1)
            .launch("w", &Cfg::for_threads(50_000), |_t, lane| {
                lane.scattered_load();
                lane.ops(100)
            });
        // Combined time tracks the big shard, not the sum.
        assert!(p.modeled_seconds <= solo.modeled_seconds * 1.5);
    }

    #[test]
    fn predicted_scaling_follows_t1_over_n() {
        let mg = MultiGpu::new(DeviceSpec::v100(), 4, 0);
        let t1 = 40.0;
        let t4 = mg.predicted_scaling(t1, 1000);
        assert!(t4 > 10.0 && t4 < 10.2, "got {t4}");
    }

    #[test]
    #[should_panic(expected = "at least one device")]
    fn zero_devices_rejected() {
        let _ = MultiGpu::new(DeviceSpec::t4(), 0, 0);
    }
}
