use std::panic::AssertUnwindSafe;

use crate::sync::Mutex;
use std::time::Instant;

use crate::sync::atomic::{AtomicBool, AtomicU64, AtomicUsize, Ordering};

use crate::perfmodel::model_launch;
use crate::{DeviceMemory, DeviceSpec, KernelCounters, KernelProfile, LaneCounters, LaunchConfig};

/// A simulated GPU: a [`DeviceSpec`], its global [`DeviceMemory`], and a
/// kernel-launch engine that executes logical threads on the host CPU with
/// CUDA-like grid/block/warp structure.
///
/// # Example
///
/// ```
/// use gatspi_gpu::{Device, DeviceSpec, LaunchConfig};
///
/// let dev = Device::new(DeviceSpec::v100(), 1024);
/// dev.memory().h2d(0, &[1, 2, 3, 4]);
/// let cfg = LaunchConfig::for_threads(4);
/// let profile = dev.launch("double", &cfg, |tid, lane| {
///     let v = dev.memory().load(tid);
///     dev.memory().store(tid, v * 2);
///     lane.scattered_load();
///     lane.scattered_store();
///     lane.ops(2);
/// });
/// assert_eq!(dev.memory().d2h(0, 4), vec![2, 4, 6, 8]);
/// assert!(profile.modeled_seconds > 0.0);
/// ```
#[derive(Debug)]
pub struct Device {
    spec: DeviceSpec,
    memory: DeviceMemory,
    workers: usize,
}

/// Launches (or phases) narrower than this run inline on the calling
/// thread: spawning host workers would dominate, and a real GPU absorbs
/// such launches in its fixed launch overhead.
const INLINE_LAUNCH_THREADS: usize = 4096;

/// Wait strategy for the phase driver's gate spins: busy-spin first (phase
/// hand-offs usually land within tens of nanoseconds), then yield, then
/// sleep in short slices so a long phase boundary (e.g. a publish stalled
/// on downstream backpressure) does not burn every worker's core.
fn spin_wait(spins: &mut u32) {
    if *spins < 128 {
        crate::sync::hint::spin_loop();
    } else if *spins < 1024 {
        crate::sync::thread::yield_now();
    } else {
        crate::sync::thread::sleep(std::time::Duration::from_micros(50));
    }
    *spins = spins.saturating_add(1);
}

impl Device {
    /// Creates a device with `memory_words` words of global memory.
    ///
    /// The host worker count defaults to the machine's available
    /// parallelism.
    pub fn new(spec: DeviceSpec, memory_words: usize) -> Self {
        let workers = std::thread::available_parallelism()
            .map(|n| n.get())
            .unwrap_or(4);
        Device {
            spec,
            memory: DeviceMemory::new(memory_words),
            workers,
        }
    }

    /// Like [`Device::new`] but with an explicit host worker count (used by
    /// tests and by multi-GPU setups dividing host cores between devices).
    pub fn with_workers(spec: DeviceSpec, memory_words: usize, workers: usize) -> Self {
        Device {
            spec,
            memory: DeviceMemory::new(memory_words),
            workers: workers.max(1),
        }
    }

    /// The device's hardware parameters.
    pub fn spec(&self) -> &DeviceSpec {
        &self.spec
    }

    /// The device's global memory.
    pub fn memory(&self) -> &DeviceMemory {
        &self.memory
    }

    /// Host workers used to execute kernels.
    pub fn workers(&self) -> usize {
        self.workers
    }

    /// Arms `injector` on this device (or disarms with `None`): every
    /// subsequent launch, `h2d`, and `d2h` runs the injector's
    /// deterministic fault check. Disarming never un-latches a permanent
    /// fault — it removes the injector entirely, which is how tests verify
    /// a faulted [`crate::fault::FaultPlan`] left the device (and the
    /// session above it) reusable.
    #[cfg(feature = "fault-inject")]
    pub fn arm_faults(&self, injector: Option<std::sync::Arc<crate::fault::FaultInjector>>) {
        self.memory.arm_faults(injector);
    }

    /// The armed fault injector, if any.
    #[cfg(feature = "fault-inject")]
    pub fn fault_injector(&self) -> Option<std::sync::Arc<crate::fault::FaultInjector>> {
        self.memory.fault_injector()
    }

    /// Launches a kernel: `f(thread_id, lane_counters)` is invoked once per
    /// logical thread in `0..cfg.threads`. Threads are grouped into blocks
    /// of `cfg.threads_per_block`; blocks are the scheduling unit across
    /// host workers (like blocks across SMs). Returns the launch's
    /// measured-plus-modeled [`KernelProfile`].
    ///
    /// Kernel code must write disjoint memory regions per thread (GATSPI
    /// guarantees this by pre-assigning output waveform pointers).
    pub fn launch<F>(&self, name: &str, cfg: &LaunchConfig, f: F) -> KernelProfile
    where
        F: Fn(usize, &mut LaneCounters) + Sync,
    {
        #[cfg(feature = "fault-inject")]
        self.memory.fault_point(crate::fault::FaultSite::Launch);
        let t0 = Instant::now();
        let counters = KernelCounters::default();
        let n = cfg.threads;
        let block = cfg.threads_per_block.max(1) as usize;
        let n_blocks = n.div_ceil(block.max(1));

        // Small launches run inline: spawning host threads would dominate,
        // and a real GPU absorbs these in its fixed launch overhead.
        if n_blocks <= 1 || n < INLINE_LAUNCH_THREADS || self.workers == 1 {
            let mut lane = LaneCounters::default();
            for t in 0..n {
                f(t, &mut lane);
            }
            counters.merge(&lane);
        } else {
            let next = AtomicUsize::new(0);
            let workers = self.workers.min(n_blocks);
            crate::sync::thread::scope(|s| {
                for _ in 0..workers {
                    s.spawn(|_| {
                        let mut lane = LaneCounters::default();
                        loop {
                            // relaxed-ok: the cursor only partitions blocks
                            // (each worker gets a unique `b`); the scope
                            // join publishes the kernel's writes.
                            let b = next.fetch_add(1, Ordering::Relaxed);
                            if b >= n_blocks {
                                break;
                            }
                            let start = b * block;
                            let end = (start + block).min(n);
                            for t in start..end {
                                f(t, &mut lane);
                            }
                        }
                        counters.merge(&lane);
                    });
                }
            })
            // panic-ok: scope join — re-raises a kernel worker's panic
            // (fault payloads cross it typed).
            .expect("kernel worker panicked");
        }

        let wall = t0.elapsed().as_secs_f64();
        model_launch(&self.spec, cfg, counters.snapshot(), wall, name)
    }

    /// Launches a *phased* kernel: `phases[p]` logical threads execute
    /// `f(p, tid, lane)` for phase `p`, with an internal synchronization
    /// point between phases — every thread of phase `p` completes before
    /// any thread of phase `p + 1` starts. All-narrow phase lists take a
    /// specialized serial fast path on the calling thread; wide launches
    /// run on a persistent per-launch worker pool driven by a
    /// chase-the-cursor protocol (arrive-counter + phase gate, one atomic
    /// round-trip per phase instead of two full barrier rounds). Between
    /// phases, `on_phase_end(p)` runs exactly once (host-side serial work
    /// such as a prefix-sum); returning `None`
    /// aborts the remaining phases, `Some(bytes)` continues and grows the
    /// launch's modeled working set by `bytes` — this is how a fused batch
    /// of dependent levels reports the output waveforms it allocates
    /// *inside* the launch, so the L2-capacity model sees the true footprint
    /// instead of the launch-time lower bound.
    ///
    /// This is the launch-fusion primitive: a run of small dependent levels
    /// executes as one launch (one modeled launch overhead, one
    /// `KernelProfile`) instead of one launch per pass per level. Kernel
    /// code must write disjoint memory regions per (phase, thread), and
    /// cross-phase visibility is guaranteed by the barrier.
    ///
    /// **Publication contract.** Phase threads may additionally publish
    /// per-thread results into shared *atomic* tables (the engine's store
    /// pass writes each output's pointer/length this way — folded
    /// publication), provided no thread of the same phase reads a slot a
    /// peer writes; later phases read them behind the barrier. Likewise,
    /// `on_phase_end` may hand work to host threads *outside* the launch
    /// (the engine's overlapped publish tickets): the callback runs
    /// exactly once per phase on one thread (the last worker arriving at
    /// the phase's end — not necessarily the same thread each phase), so a
    /// release-store there is a sound hand-off point, but any such
    /// external work that later phases depend on must be fenced by the
    /// callback itself before it returns.
    pub fn launch_phased<F, G>(
        &self,
        name: &str,
        cfg: &LaunchConfig,
        phases: &[usize],
        f: F,
        on_phase_end: G,
    ) -> KernelProfile
    where
        F: Fn(usize, usize, &mut LaneCounters) + Sync,
        G: FnMut(usize) -> Option<u64> + Send,
    {
        self.launch_phased_impl(name, cfg, phases, f, on_phase_end, false)
    }

    /// Like [`Device::launch_phased`] but always drives the pooled
    /// chase-the-cursor protocol, even for phases narrower than the inline
    /// threshold. This exists so the `model-check` tests can exhaustively
    /// explore the driver's interleavings with model-scale phases (a few
    /// threads), where production sizing would take the serial fast path.
    #[doc(hidden)]
    pub fn launch_phased_pooled<F, G>(
        &self,
        name: &str,
        cfg: &LaunchConfig,
        phases: &[usize],
        f: F,
        on_phase_end: G,
    ) -> KernelProfile
    where
        F: Fn(usize, usize, &mut LaneCounters) + Sync,
        G: FnMut(usize) -> Option<u64> + Send,
    {
        self.launch_phased_impl(name, cfg, phases, f, on_phase_end, true)
    }

    fn launch_phased_impl<F, G>(
        &self,
        name: &str,
        cfg: &LaunchConfig,
        phases: &[usize],
        f: F,
        mut on_phase_end: G,
        force_pool: bool,
    ) -> KernelProfile
    where
        F: Fn(usize, usize, &mut LaneCounters) + Sync,
        G: FnMut(usize) -> Option<u64> + Send,
    {
        #[cfg(feature = "fault-inject")]
        self.memory.fault_point(crate::fault::FaultSite::Launch);
        let t0 = Instant::now();
        let counters = KernelCounters::default();
        let total: usize = phases.iter().sum();
        let block = cfg.threads_per_block.max(1) as usize;
        // Working-set growth reported by the phase boundaries (bytes).
        let ws_growth = AtomicU64::new(0);

        // The serial fast path for all-narrow groups: the decision looks
        // at the *widest phase*, not the total — a deep fused group of
        // tiny levels would pay a cross-worker phase hand-off for a
        // handful of gate simulations. Sequential execution trivially
        // satisfies the inter-phase ordering, exactly as [`Device::launch`]
        // absorbs small launches.
        let widest = phases.iter().copied().max().unwrap_or(0);
        if !force_pool && (widest < INLINE_LAUNCH_THREADS || self.workers == 1) {
            let mut lane = LaneCounters::default();
            for (p, &n) in phases.iter().enumerate() {
                for t in 0..n {
                    f(p, t, &mut lane);
                }
                match on_phase_end(p) {
                    Some(bytes) => {
                        // relaxed-ok: serial fast path, single thread.
                        ws_growth.fetch_add(bytes, Ordering::Relaxed);
                    }
                    None => break,
                }
            }
            counters.merge(&lane);
        } else {
            let workers = self.workers;
            // The lean phase driver: a chase-the-cursor protocol instead of
            // two full `Barrier` rounds per phase. Workers spin on `gate`
            // (the index of the currently open phase), claim blocks through
            // the phase's cursor, and *arrive* by incrementing one shared
            // counter; the last arriver becomes the phase leader — it runs
            // the host-side boundary callback, resets the counter and opens
            // the next phase with a single release store. A tiny phase thus
            // costs each worker one atomic RMW (the arrival) plus an
            // acquire spin, instead of two mutex/condvar barrier rounds
            // across every worker.
            //
            // Ordering: the workers' `arrived.fetch_add(AcqRel)` RMWs chain
            // on one location, so the last arriver happens-after every
            // earlier worker's phase-`p` writes; the leader's
            // `gate.store(Release)` then publishes the boundary's effects
            // (and the counter reset) to workers resuming through their
            // acquire loads of `gate`.
            let gate = AtomicUsize::new(0);
            let arrived = AtomicUsize::new(0);
            let abort = AtomicBool::new(false);
            let cursors: Vec<AtomicUsize> = phases.iter().map(|_| AtomicUsize::new(0)).collect();
            let callback = Mutex::new(&mut on_phase_end);
            // A panicking worker must keep arriving at every remaining
            // phase or the gate never opens and the other workers spin
            // forever; panics are caught, the launch aborts, and the first
            // payload is re-raised after the scope joins.
            let panic_payload: Mutex<Option<Box<dyn std::any::Any + Send>>> = Mutex::new(None);
            let record_panic = |payload: Box<dyn std::any::Any + Send>| {
                abort.store(true, Ordering::Release);
                let mut slot = panic_payload.lock().unwrap_or_else(|e| e.into_inner());
                slot.get_or_insert(payload);
            };
            crate::sync::thread::scope(|s| {
                for _ in 0..workers {
                    s.spawn(|_| {
                        let mut lane = LaneCounters::default();
                        for (p, &n) in phases.iter().enumerate() {
                            let mut spins = 0u32;
                            // anchor: phase-gate-wait
                            // pairs-with: crates/gpu/src/device.rs:phase-gate-open
                            while gate.load(Ordering::Acquire) < p {
                                spin_wait(&mut spins);
                            }
                            if !abort.load(Ordering::Acquire) {
                                let n_blocks = n.div_ceil(block);
                                let run = std::panic::catch_unwind(AssertUnwindSafe(|| loop {
                                    // relaxed-ok: the phase cursor only
                                    // partitions blocks among workers of the
                                    // same phase; cross-phase visibility is
                                    // the gate's Release/Acquire edge (model
                                    // test `phase_boundary_is_a_barrier`).
                                    let b = cursors[p].fetch_add(1, Ordering::Relaxed);
                                    if b >= n_blocks {
                                        break;
                                    }
                                    let start = b * block;
                                    let end = (start + block).min(n);
                                    for t in start..end {
                                        f(p, t, &mut lane);
                                    }
                                }));
                                if let Err(payload) = run {
                                    record_panic(payload);
                                }
                            }
                            // Arrive. The last worker in is the leader: all
                            // phase-p threads are done, so it runs the
                            // host-side phase boundary and opens phase p+1.
                            if arrived.fetch_add(1, Ordering::AcqRel) + 1 == workers {
                                if !abort.load(Ordering::Acquire) {
                                    let boundary =
                                        std::panic::catch_unwind(AssertUnwindSafe(|| {
                                            // panic-ok: leader-only lock —
                                            // exactly one worker reaches the
                                            // boundary per phase, so it cannot
                                            // be poisoned while held.
                                            (callback.lock().expect("phase callback"))(p)
                                        }));
                                    match boundary {
                                        Ok(Some(bytes)) => {
                                            // relaxed-ok: only the unique
                                            // leader writes it this phase;
                                            // read after the scope joins.
                                            ws_growth.fetch_add(bytes, Ordering::Relaxed);
                                        }
                                        Ok(None) => abort.store(true, Ordering::Release),
                                        Err(payload) => record_panic(payload),
                                    }
                                }
                                // relaxed-ok: the reset looks racy (workers
                                // of phase p+1 must not observe the stale
                                // pre-reset count) but is safe: it is
                                // sequenced before the leader's
                                // `gate.store(Release)` below, and every
                                // other worker's next `arrived` RMW happens
                                // only after its `gate` Acquire load sees
                                // p+1 — which orders the reset before it.
                                // Model test `leader_reset_is_not_lost`
                                // explores all interleavings of this reset.
                                arrived.store(0, Ordering::Relaxed);
                                // anchor: phase-gate-open
                                // pairs-with: crates/gpu/src/device.rs:phase-gate-wait
                                gate.store(p + 1, Ordering::Release);
                            }
                        }
                        counters.merge(&lane);
                    });
                }
            })
            // panic-ok: scope join — worker panics are stashed in
            // `panic_payload` first; this re-raises only scope-level ones.
            .expect("phased kernel worker panicked");
            let payload = panic_payload
                .into_inner()
                .unwrap_or_else(|e| e.into_inner());
            if let Some(payload) = payload {
                std::panic::resume_unwind(payload);
            }
        }

        let wall = t0.elapsed().as_secs_f64();
        let model_cfg = LaunchConfig {
            threads: total,
            // relaxed-ok: read after the worker scope joins.
            working_set_bytes: cfg.working_set_bytes + ws_growth.load(Ordering::Relaxed),
            ..*cfg
        };
        model_launch(&self.spec, &model_cfg, counters.snapshot(), wall, name)
    }

    /// The classic two-pass schedule (count launch, host prefix-sum, store
    /// launch) driven on the *pooled* phase machinery: both passes execute
    /// as phases of one [`Device::launch_phased`] call, so one worker scope
    /// serves the whole level instead of being spawned and joined once per
    /// pass. `f(store, tid, lane)` runs every thread of the count pass
    /// (`store == false`) and then of the store pass (`store == true`);
    /// `between()` runs exactly once at the pass boundary — the host
    /// prefix-sum — and returns the store pass's working-set growth in
    /// bytes, or `None` to abort the store pass (allocation failure).
    ///
    /// The returned profile models **two** kernel launches: on real
    /// hardware the passes are separate launches (the host must read the
    /// count results between them), and only the host-side worker pool is
    /// shared. `launch_phased` models a single launch overhead, so this
    /// wrapper adds the second one to the modeled time.
    pub fn launch_two_pass<F, G>(
        &self,
        name: &str,
        cfg: &LaunchConfig,
        f: F,
        mut between: G,
    ) -> KernelProfile
    where
        F: Fn(bool, usize, &mut LaneCounters) + Sync,
        G: FnMut() -> Option<u64> + Send,
    {
        let phases = [cfg.threads, cfg.threads];
        let mut p = self.launch_phased(
            name,
            cfg,
            &phases,
            |phase, tid, lane| f(phase == 1, tid, lane),
            |phase| if phase == 0 { between() } else { Some(0) },
        );
        p.modeled_seconds += self.spec.launch_overhead;
        p.elapsed_cycles = (p.modeled_seconds * self.spec.clock_hz) as u64;
        p
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::sync::atomic::AtomicU64;

    #[test]
    fn all_threads_execute_exactly_once() {
        let dev = Device::with_workers(DeviceSpec::v100(), 0, 4);
        let hits = AtomicU64::new(0);
        let cfg = LaunchConfig::for_threads(10_000);
        dev.launch("count", &cfg, |_tid, _lane| {
            hits.fetch_add(1, Ordering::Relaxed);
        });
        assert_eq!(hits.load(Ordering::Relaxed), 10_000);
    }

    #[test]
    fn thread_ids_cover_range() {
        let dev = Device::with_workers(DeviceSpec::v100(), 0, 3);
        let n = 5000usize;
        let seen: Vec<AtomicU64> = (0..n).map(|_| AtomicU64::new(0)).collect();
        let cfg = LaunchConfig::for_threads(n);
        dev.launch("cover", &cfg, |tid, _| {
            seen[tid].fetch_add(1, Ordering::Relaxed);
        });
        assert!(seen.iter().all(|c| c.load(Ordering::Relaxed) == 1));
    }

    #[test]
    fn counters_flow_into_profile() {
        let dev = Device::with_workers(DeviceSpec::v100(), 0, 2);
        let cfg = LaunchConfig {
            threads: 6000,
            working_set_bytes: 1 << 20,
            ..Default::default()
        };
        let p = dev.launch("c", &cfg, |_tid, lane| {
            lane.scattered_load();
            lane.ops(3);
        });
        assert_eq!(p.accesses, 6000);
        assert_eq!(p.instructions, 18_000);
        assert_eq!(p.uncoalesced_pct, 100.0);
        assert!(p.modeled_seconds >= dev.spec().launch_overhead);
    }

    #[test]
    fn zero_thread_launch_is_empty() {
        let dev = Device::with_workers(DeviceSpec::t4(), 0, 2);
        let p = dev.launch("none", &LaunchConfig::for_threads(0), |_, _| {
            panic!("must not run")
        });
        assert_eq!(p.threads, 0);
    }

    #[test]
    fn phased_launch_barriers_between_phases() {
        // Phase 1 threads must observe every phase-0 write (16k threads
        // forces the parallel path).
        let n = 16_384usize;
        let dev = Device::with_workers(DeviceSpec::v100(), n, 4);
        let boundary_seen = AtomicU64::new(0);
        let p = dev.launch_phased(
            "phased",
            &LaunchConfig::for_threads(2 * n),
            &[n, n],
            |phase, tid, _lane| {
                if phase == 0 {
                    dev.memory().store(tid, tid as i32 + 1);
                } else {
                    assert_eq!(dev.memory().load(tid), tid as i32 + 1, "phase-0 write lost");
                }
            },
            |phase| {
                boundary_seen.fetch_add(phase as u64 + 1, Ordering::Relaxed);
                Some(0)
            },
        );
        assert_eq!(
            boundary_seen.load(Ordering::Relaxed),
            3,
            "both boundaries ran once"
        );
        assert_eq!(p.threads, 2 * n);
        assert!(p.modeled_seconds > 0.0);
    }

    #[test]
    fn phased_launch_abort_skips_rest() {
        let dev = Device::with_workers(DeviceSpec::t4(), 0, 3);
        let ran = AtomicU64::new(0);
        dev.launch_phased(
            "abort",
            &LaunchConfig::for_threads(30),
            &[10, 10, 10],
            |phase, _tid, _| {
                assert!(phase < 2, "phase 2 must not run");
                ran.fetch_add(1, Ordering::Relaxed);
            },
            |phase| (phase == 0).then_some(0),
        );
        assert_eq!(ran.load(Ordering::Relaxed), 20);
    }

    #[test]
    fn phased_launch_ws_growth_feeds_model() {
        // Working-set bytes reported at phase boundaries must reach the
        // L2-capacity model: growing past L2 size lowers the hit rate vs
        // the same launch reporting no growth.
        let dev = Device::with_workers(DeviceSpec::v100(), 0, 2);
        let run = |growth: u64| {
            dev.launch_phased(
                "grow",
                &LaunchConfig {
                    threads: 8,
                    working_set_bytes: 1 << 10,
                    ..Default::default()
                },
                &[4, 4],
                |_, _, lane| {
                    lane.scattered_load();
                    lane.ops(1);
                },
                |_| Some(growth),
            )
        };
        let flat = run(0);
        let grown = run(1 << 30);
        assert!(
            grown.l2_hit_pct < flat.l2_hit_pct,
            "in-launch growth must shrink the modeled L2 hit rate: {} vs {}",
            grown.l2_hit_pct,
            flat.l2_hit_pct
        );
        assert!(grown.modeled_seconds > flat.modeled_seconds);
    }

    #[test]
    fn phased_launch_propagates_worker_panic() {
        // A panicking kernel thread must not deadlock the barrier; the
        // panic surfaces to the caller after the scope joins.
        let dev = Device::with_workers(DeviceSpec::v100(), 0, 3);
        let result = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
            dev.launch_phased(
                "boom",
                &LaunchConfig::for_threads(16_384),
                &[8192, 8192],
                |phase, tid, _| {
                    assert!(!(phase == 0 && tid == 1234), "kernel bug");
                },
                |_| Some(0),
            )
        }));
        assert!(result.is_err(), "worker panic must propagate");
    }

    #[test]
    fn phased_launch_propagates_boundary_panic() {
        // A panicking phase-boundary callback must abort the remaining
        // phases and surface after the scope joins. The leader is just the
        // last-arriving worker, so the gate must still open for every
        // later phase or the other workers would spin forever.
        let dev = Device::with_workers(DeviceSpec::v100(), 0, 3);
        let ran = AtomicU64::new(0);
        let result = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
            dev.launch_phased(
                "boundary-boom",
                &LaunchConfig::for_threads(3 * 8192),
                &[8192, 8192, 8192],
                |phase, _tid, _| {
                    assert!(phase < 2, "phase after the panicking boundary must not run");
                    ran.fetch_add(1, Ordering::Relaxed);
                },
                |phase| {
                    assert!(phase == 0, "boundary bug");
                    Some(0)
                },
            )
        }));
        assert!(result.is_err(), "boundary panic must propagate");
        assert_eq!(
            ran.load(Ordering::Relaxed),
            2 * 8192,
            "exactly the phases before the abort ran"
        );
    }

    #[test]
    fn phased_launch_single_overhead() {
        // A phased launch models one launch overhead regardless of phases.
        let dev = Device::with_workers(DeviceSpec::v100(), 0, 2);
        let p = dev.launch_phased(
            "one",
            &LaunchConfig::for_threads(8),
            &[4, 4],
            |_, _, lane| lane.ops(1),
            |_| Some(0),
        );
        assert!(p.modeled_seconds >= dev.spec().launch_overhead);
        assert!(p.modeled_seconds < 2.0 * dev.spec().launch_overhead);
    }

    #[test]
    fn two_pass_launch_runs_both_passes_and_models_two_overheads() {
        // Orderings: the launch's phase gate (Release store / Acquire loads,
        // proven by the model test `phase_boundary_is_a_barrier`) is the
        // synchronization edge these counters actually ride, so none of
        // them needs SeqCst; Release on the writes and Acquire on the
        // cross-thread reads documents each counter's intended reads-from
        // relation on its own.
        let dev = Device::with_workers(DeviceSpec::v100(), 0, 2);
        let count = AtomicU64::new(0);
        let store = AtomicU64::new(0);
        let boundary = AtomicU64::new(0);
        let p = dev.launch_two_pass(
            "two",
            &LaunchConfig::for_threads(8),
            |is_store, _tid, lane| {
                lane.ops(1);
                if is_store {
                    // The prefix-sum boundary ran before any store thread.
                    assert_eq!(boundary.load(Ordering::Acquire), 1);
                    store.fetch_add(1, Ordering::Release);
                } else {
                    count.fetch_add(1, Ordering::Release);
                }
            },
            || {
                assert_eq!(count.load(Ordering::Acquire), 8, "count pass done");
                boundary.fetch_add(1, Ordering::Release);
                Some(0)
            },
        );
        // After the launch returns the worker scope has joined; Acquire is
        // already stronger than the joins require.
        assert_eq!(count.load(Ordering::Acquire), 8);
        assert_eq!(store.load(Ordering::Acquire), 8);
        assert_eq!(boundary.load(Ordering::Acquire), 1);
        // Two real kernel launches are modeled even though one pooled
        // worker scope drove both passes.
        assert!(p.modeled_seconds >= 2.0 * dev.spec().launch_overhead);
        assert!(p.modeled_seconds < 3.0 * dev.spec().launch_overhead);
    }

    #[test]
    fn two_pass_launch_aborts_store_on_none() {
        let dev = Device::with_workers(DeviceSpec::v100(), 0, 2);
        let store = AtomicU64::new(0);
        dev.launch_two_pass(
            "abort",
            &LaunchConfig::for_threads(8),
            |is_store, _tid, _lane| {
                if is_store {
                    // Release/Acquire (not SeqCst): the scope join already
                    // orders this against the final read; see the ordering
                    // note on the two-pass test above.
                    store.fetch_add(1, Ordering::Release);
                }
            },
            || None,
        );
        assert_eq!(store.load(Ordering::Acquire), 0, "store pass skipped");
    }

    #[test]
    fn memory_attached() {
        let dev = Device::new(DeviceSpec::t4(), 64);
        dev.memory().store(1, 42);
        assert_eq!(dev.memory().load(1), 42);
        assert_eq!(dev.spec().name, "T4");
    }
}

/// Exhaustive interleaving tests of the pooled phase driver on the loom
/// model types (`cargo test --features model-check`). The pooled path is
/// forced via [`Device::launch_phased_pooled`] so model-scale phases (one
/// thread each) still exercise the chase-the-cursor protocol.
#[cfg(all(test, feature = "model-check"))]
mod model_tests {
    use super::*;
    use crate::DeviceSpec;

    /// ISSUE invariant: every phase-`p` write is visible to every
    /// phase-`p+1` thread. The edge is the leader's
    /// `gate.store(p + 1, Release)` paired with the workers' Acquire spin;
    /// weakening either it or the `arrived.fetch_add(AcqRel)` arrival to
    /// `Relaxed` fails this test with a counterexample schedule.
    #[test]
    fn phase_boundary_is_a_barrier() {
        loom::model(|| {
            let dev = Device::with_workers(DeviceSpec::v100(), 0, 2);
            let data = AtomicU64::new(0);
            dev.launch_phased_pooled(
                "model-barrier",
                &LaunchConfig::for_threads(2),
                &[1, 1],
                |phase, _tid, _lane| {
                    if phase == 0 {
                        // relaxed-ok: the phase gate is the ordering under
                        // test — this payload must ride it unaided.
                        data.store(7, Ordering::Relaxed);
                    } else {
                        assert_eq!(
                            // relaxed-ok: see above.
                            data.load(Ordering::Relaxed),
                            7,
                            "leader missed a result: phase-0 write invisible \
                             behind the gate"
                        );
                    }
                },
                |_| Some(0),
            );
        });
    }

    /// ISSUE invariant: exactly one boundary leader per phase, across the
    /// `arrived.store(0, Relaxed)` counter reset — the reset is ordered by
    /// the leader's subsequent `gate` Release store, and every other
    /// worker's next arrival happens after its `gate` Acquire load, so no
    /// interleaving can double-run or lose a boundary.
    #[test]
    fn leader_reset_is_not_lost() {
        loom::model(|| {
            let dev = Device::with_workers(DeviceSpec::v100(), 0, 2);
            let boundaries = AtomicU64::new(0);
            dev.launch_phased_pooled(
                "model-reset",
                &LaunchConfig::for_threads(2),
                &[1, 1],
                |_, _, _| {},
                |_| {
                    // relaxed-ok: only the unique leader runs the boundary;
                    // uniqueness is what this test proves.
                    boundaries.fetch_add(1, Ordering::Relaxed);
                    Some(0)
                },
            );
            assert_eq!(
                // relaxed-ok: read after the launch (scope joined).
                boundaries.load(Ordering::Relaxed),
                2,
                "each phase boundary must run exactly once"
            );
        });
    }
}
