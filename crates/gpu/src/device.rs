use std::sync::atomic::{AtomicUsize, Ordering};
use std::time::Instant;

use crate::perfmodel::model_launch;
use crate::{DeviceMemory, DeviceSpec, KernelCounters, KernelProfile, LaneCounters, LaunchConfig};

/// A simulated GPU: a [`DeviceSpec`], its global [`DeviceMemory`], and a
/// kernel-launch engine that executes logical threads on the host CPU with
/// CUDA-like grid/block/warp structure.
///
/// # Example
///
/// ```
/// use gatspi_gpu::{Device, DeviceSpec, LaunchConfig};
///
/// let dev = Device::new(DeviceSpec::v100(), 1024);
/// dev.memory().h2d(0, &[1, 2, 3, 4]);
/// let cfg = LaunchConfig::for_threads(4);
/// let profile = dev.launch("double", &cfg, |tid, lane| {
///     let v = dev.memory().load(tid);
///     dev.memory().store(tid, v * 2);
///     lane.scattered_load();
///     lane.scattered_store();
///     lane.ops(2);
/// });
/// assert_eq!(dev.memory().d2h(0, 4), vec![2, 4, 6, 8]);
/// assert!(profile.modeled_seconds > 0.0);
/// ```
#[derive(Debug)]
pub struct Device {
    spec: DeviceSpec,
    memory: DeviceMemory,
    workers: usize,
}

impl Device {
    /// Creates a device with `memory_words` words of global memory.
    ///
    /// The host worker count defaults to the machine's available
    /// parallelism.
    pub fn new(spec: DeviceSpec, memory_words: usize) -> Self {
        let workers = std::thread::available_parallelism()
            .map(|n| n.get())
            .unwrap_or(4);
        Device {
            spec,
            memory: DeviceMemory::new(memory_words),
            workers,
        }
    }

    /// Like [`Device::new`] but with an explicit host worker count (used by
    /// tests and by multi-GPU setups dividing host cores between devices).
    pub fn with_workers(spec: DeviceSpec, memory_words: usize, workers: usize) -> Self {
        Device {
            spec,
            memory: DeviceMemory::new(memory_words),
            workers: workers.max(1),
        }
    }

    /// The device's hardware parameters.
    pub fn spec(&self) -> &DeviceSpec {
        &self.spec
    }

    /// The device's global memory.
    pub fn memory(&self) -> &DeviceMemory {
        &self.memory
    }

    /// Host workers used to execute kernels.
    pub fn workers(&self) -> usize {
        self.workers
    }

    /// Launches a kernel: `f(thread_id, lane_counters)` is invoked once per
    /// logical thread in `0..cfg.threads`. Threads are grouped into blocks
    /// of `cfg.threads_per_block`; blocks are the scheduling unit across
    /// host workers (like blocks across SMs). Returns the launch's
    /// measured-plus-modeled [`KernelProfile`].
    ///
    /// Kernel code must write disjoint memory regions per thread (GATSPI
    /// guarantees this by pre-assigning output waveform pointers).
    pub fn launch<F>(&self, name: &str, cfg: &LaunchConfig, f: F) -> KernelProfile
    where
        F: Fn(usize, &mut LaneCounters) + Sync,
    {
        let t0 = Instant::now();
        let counters = KernelCounters::default();
        let n = cfg.threads;
        let block = cfg.threads_per_block.max(1) as usize;
        let n_blocks = n.div_ceil(block.max(1));

        // Small launches run inline: spawning host threads would dominate,
        // and a real GPU absorbs these in its fixed launch overhead.
        if n_blocks <= 1 || n < 4096 || self.workers == 1 {
            let mut lane = LaneCounters::default();
            for t in 0..n {
                f(t, &mut lane);
            }
            counters.merge(&lane);
        } else {
            let next = AtomicUsize::new(0);
            let workers = self.workers.min(n_blocks);
            crossbeam::thread::scope(|s| {
                for _ in 0..workers {
                    s.spawn(|_| {
                        let mut lane = LaneCounters::default();
                        loop {
                            let b = next.fetch_add(1, Ordering::Relaxed);
                            if b >= n_blocks {
                                break;
                            }
                            let start = b * block;
                            let end = (start + block).min(n);
                            for t in start..end {
                                f(t, &mut lane);
                            }
                        }
                        counters.merge(&lane);
                    });
                }
            })
            .expect("kernel worker panicked");
        }

        let wall = t0.elapsed().as_secs_f64();
        model_launch(&self.spec, cfg, counters.snapshot(), wall, name)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::AtomicU64;

    #[test]
    fn all_threads_execute_exactly_once() {
        let dev = Device::with_workers(DeviceSpec::v100(), 0, 4);
        let hits = AtomicU64::new(0);
        let cfg = LaunchConfig::for_threads(10_000);
        dev.launch("count", &cfg, |_tid, _lane| {
            hits.fetch_add(1, Ordering::Relaxed);
        });
        assert_eq!(hits.load(Ordering::Relaxed), 10_000);
    }

    #[test]
    fn thread_ids_cover_range() {
        let dev = Device::with_workers(DeviceSpec::v100(), 0, 3);
        let n = 5000usize;
        let seen: Vec<AtomicU64> = (0..n).map(|_| AtomicU64::new(0)).collect();
        let cfg = LaunchConfig::for_threads(n);
        dev.launch("cover", &cfg, |tid, _| {
            seen[tid].fetch_add(1, Ordering::Relaxed);
        });
        assert!(seen.iter().all(|c| c.load(Ordering::Relaxed) == 1));
    }

    #[test]
    fn counters_flow_into_profile() {
        let dev = Device::with_workers(DeviceSpec::v100(), 0, 2);
        let cfg = LaunchConfig {
            threads: 6000,
            working_set_bytes: 1 << 20,
            ..Default::default()
        };
        let p = dev.launch("c", &cfg, |_tid, lane| {
            lane.scattered_load();
            lane.ops(3);
        });
        assert_eq!(p.accesses, 6000);
        assert_eq!(p.instructions, 18_000);
        assert_eq!(p.uncoalesced_pct, 100.0);
        assert!(p.modeled_seconds >= dev.spec().launch_overhead);
    }

    #[test]
    fn zero_thread_launch_is_empty() {
        let dev = Device::with_workers(DeviceSpec::t4(), 0, 2);
        let p = dev.launch("none", &LaunchConfig::for_threads(0), |_, _| {
            panic!("must not run")
        });
        assert_eq!(p.threads, 0);
    }

    #[test]
    fn memory_attached() {
        let dev = Device::new(DeviceSpec::t4(), 64);
        dev.memory().store(1, 42);
        assert_eq!(dev.memory().load(1), 42);
        assert_eq!(dev.spec().name, "T4");
    }
}
