use std::fmt;

/// Hardware parameters of a simulated GPU, mirroring the paper's Table 1
/// plus the microarchitectural constants the performance model needs.
#[derive(Debug, Clone, PartialEq)]
pub struct DeviceSpec {
    /// Marketing name ("V100", ...).
    pub name: String,
    /// Number of streaming multiprocessors.
    pub sm_count: u32,
    /// Global memory capacity in bytes.
    pub memory_bytes: u64,
    /// Global memory bandwidth in bytes/second.
    pub memory_bw: f64,
    /// L2 cache capacity in bytes.
    pub l2_bytes: u64,
    /// Boost clock in Hz.
    pub clock_hz: f64,
    /// Maximum resident threads per SM.
    pub max_threads_per_sm: u32,
    /// 32-bit registers per SM.
    pub registers_per_sm: u32,
    /// Maximum resident blocks per SM.
    pub max_blocks_per_sm: u32,
    /// Fixed cost per kernel launch + stream synchronisation, in seconds.
    pub launch_overhead: f64,
    /// Host↔device interconnect bandwidth in bytes/second (PCIe).
    pub pcie_bw: f64,
}

impl DeviceSpec {
    /// NVIDIA T4 (Turing): 40 SMs, 16 GB @ 320 GB/s, 4 MB L2.
    pub fn t4() -> Self {
        DeviceSpec {
            name: "T4".into(),
            sm_count: 40,
            memory_bytes: 16 * GB,
            memory_bw: 320.0 * GB as f64,
            l2_bytes: 4 * MB,
            clock_hz: 1.59e9,
            max_threads_per_sm: 1024,
            registers_per_sm: 65_536,
            max_blocks_per_sm: 16,
            launch_overhead: 8e-6,
            pcie_bw: 12.0 * GB as f64,
        }
    }

    /// NVIDIA V100 (Volta): 80 SMs, 32 GB @ 900 GB/s, 6 MB L2 — the paper's
    /// primary experimental platform (Quadro GV100 variant).
    pub fn v100() -> Self {
        DeviceSpec {
            name: "V100".into(),
            sm_count: 80,
            memory_bytes: 32 * GB,
            memory_bw: 900.0 * GB as f64,
            l2_bytes: 6 * MB,
            clock_hz: 1.53e9,
            max_threads_per_sm: 2048,
            registers_per_sm: 65_536,
            max_blocks_per_sm: 32,
            launch_overhead: 8e-6,
            pcie_bw: 12.0 * GB as f64,
        }
    }

    /// NVIDIA A100 (Ampere): 108 SMs, 40 GB @ 1.6 TB/s, 40 MB L2.
    pub fn a100() -> Self {
        DeviceSpec {
            name: "A100".into(),
            sm_count: 108,
            memory_bytes: 40 * GB,
            memory_bw: 1_600.0 * GB as f64,
            l2_bytes: 40 * MB,
            clock_hz: 1.41e9,
            max_threads_per_sm: 2048,
            registers_per_sm: 65_536,
            max_blocks_per_sm: 32,
            launch_overhead: 8e-6,
            pcie_bw: 24.0 * GB as f64,
        }
    }

    /// The three Table 1 presets in the paper's column order.
    pub fn table1() -> [DeviceSpec; 3] {
        [Self::t4(), Self::v100(), Self::a100()]
    }

    /// Theoretical occupancy (fraction of `max_threads_per_sm` resident) for
    /// a launch with the given block size and register usage — the quantity
    /// the paper discusses when noting GATSPI's kernels cap at 50%.
    ///
    /// # Example
    ///
    /// ```
    /// use gatspi_gpu::DeviceSpec;
    ///
    /// let v100 = DeviceSpec::v100();
    /// // 512 threads/block at 64 regs/thread: register file limits us to
    /// // 2 blocks per SM = 1024 threads of 2048 -> 50%.
    /// assert_eq!(v100.theoretical_occupancy(512, 64), 0.5);
    /// // Halving register usage doubles resident blocks -> 100%.
    /// assert_eq!(v100.theoretical_occupancy(512, 32), 1.0);
    /// ```
    pub fn theoretical_occupancy(&self, threads_per_block: u32, regs_per_thread: u32) -> f64 {
        if threads_per_block == 0 {
            return 0.0;
        }
        let regs_per_block = u64::from(regs_per_thread.max(16)) * u64::from(threads_per_block);
        let blocks_by_regs = (u64::from(self.registers_per_sm) / regs_per_block.max(1)) as u32;
        let blocks_by_threads = self.max_threads_per_sm / threads_per_block;
        let blocks = blocks_by_regs
            .min(blocks_by_threads)
            .min(self.max_blocks_per_sm);
        f64::from(blocks * threads_per_block) / f64::from(self.max_threads_per_sm)
    }
}

impl fmt::Display for DeviceSpec {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "{}: {} SMs, {:.0} GB, {:.0} GB/s, {} MB L2",
            self.name,
            self.sm_count,
            self.memory_bytes as f64 / GB as f64,
            self.memory_bw / GB as f64,
            self.l2_bytes / MB
        )
    }
}

/// One gibi-ish (10^9-style binary) unit constants used by the presets.
const GB: u64 = 1_073_741_824;
const MB: u64 = 1_048_576;

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn table1_matches_paper() {
        let [t4, v100, a100] = DeviceSpec::table1();
        assert_eq!(t4.sm_count, 40);
        assert_eq!(v100.sm_count, 80);
        assert_eq!(a100.sm_count, 108);
        assert!(a100.memory_bw > v100.memory_bw && v100.memory_bw > t4.memory_bw);
        assert!(a100.l2_bytes > v100.l2_bytes && v100.l2_bytes > t4.l2_bytes);
    }

    #[test]
    fn occupancy_paper_example() {
        let v = DeviceSpec::v100();
        // The paper: ">32 regs/thread caps occupancy at 50%".
        assert_eq!(v.theoretical_occupancy(512, 64), 0.5);
        assert_eq!(v.theoretical_occupancy(1024, 64), 0.5);
        assert_eq!(v.theoretical_occupancy(512, 32), 1.0);
    }

    #[test]
    fn occupancy_edge_cases() {
        let v = DeviceSpec::v100();
        assert_eq!(v.theoretical_occupancy(0, 64), 0.0);
        // Huge register usage still yields at least 0 blocks.
        assert_eq!(v.theoretical_occupancy(2048, 255), 0.0);
    }

    #[test]
    fn display_mentions_name() {
        assert!(DeviceSpec::a100().to_string().contains("A100"));
    }
}
