//! Deterministic fault injection for chaos testing.
//!
//! The fault model mirrors how real GPU fleets fail: a kernel launch errors
//! or wedges, an allocation (host→device staging) fails, a device→host
//! readback hits a transient bus error, or a device simply runs slow. Each
//! injected fault is classified **transient** (the same operation succeeds
//! when retried) or **permanent** (the device is gone for the rest of the
//! run). The injection points are the existing choke points every
//! simulation already goes through — [`crate::Device::launch`],
//! [`crate::Device::launch_phased`], [`crate::DeviceMemory::h2d`], and
//! [`crate::DeviceMemory::d2h`] — so no separate "chaos build" of the
//! engine exists: the `fault-inject` feature only arms the checks.
//!
//! Faults fire by index, not by time: a `FaultPlan` names the *n*-th call
//! at a `FaultSite` (counted from when the plan is armed; both types exist
//! only under `fault-inject`), which makes every fault schedule
//! deterministic and replayable from a seed. A fault manifests as a panic
//! carrying a typed [`DeviceFaultPanic`] payload; the session layer
//! catches it at the segment boundary, converts it into a structured
//! error, and retries or fails over. A permanent fault additionally
//! latches the device's `DeviceHealth` flag so every later operation on
//! that device fails fast with `retryable: false`.
//!
//! The always-compiled types ([`FaultKind`], [`DeviceFaultPanic`],
//! `DeviceHealth`) cost nothing when the feature is off — no check sites
//! reference them — but keep the session layer's recovery code free of
//! feature gates.

use crate::sync::atomic::{AtomicBool, AtomicU32, Ordering};

#[cfg(feature = "fault-inject")]
use crate::sync::atomic::AtomicU64;

/// What failed on the device. Carried by [`DeviceFaultPanic`] and by the
/// session layer's `CoreError::DeviceFault`.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
#[non_exhaustive]
pub enum FaultKind {
    /// A kernel launch failed or wedged.
    Launch,
    /// A device allocation / host→device staging copy failed.
    Alloc,
    /// A device→host readback failed.
    Transfer,
    /// A host worker thread servicing the device panicked (any panic that
    /// is not one of the injected classes above is reported as this).
    Worker,
}

// Without `fault-inject` nothing arms the latch, but the type stays
// compiled so the session layer's recovery code is feature-free.
#[cfg_attr(not(feature = "fault-inject"), allow(dead_code))]
impl FaultKind {
    fn as_u32(self) -> u32 {
        match self {
            FaultKind::Launch => 0,
            FaultKind::Alloc => 1,
            FaultKind::Transfer => 2,
            FaultKind::Worker => 3,
        }
    }

    fn from_u32(v: u32) -> FaultKind {
        match v {
            0 => FaultKind::Launch,
            1 => FaultKind::Alloc,
            2 => FaultKind::Transfer,
            _ => FaultKind::Worker,
        }
    }
}

impl std::fmt::Display for FaultKind {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            FaultKind::Launch => write!(f, "launch"),
            FaultKind::Alloc => write!(f, "alloc"),
            FaultKind::Transfer => write!(f, "transfer"),
            FaultKind::Worker => write!(f, "worker"),
        }
    }
}

/// The typed panic payload an injected fault unwinds with.
///
/// The session layer downcasts unwind payloads to this type at the segment
/// boundary (`catch_unwind`) and converts them into
/// `CoreError::DeviceFault { device, kind, retryable }`; `retryable: false`
/// means the device has permanently failed and its work must fail over.
#[derive(Debug, Clone, Copy)]
pub struct DeviceFaultPanic {
    /// Index of the faulted device in its fleet (0 for single-device runs).
    pub device: usize,
    /// What failed.
    pub kind: FaultKind,
    /// `true` for transient faults (retry the segment on the same device),
    /// `false` for permanent ones (the device is dead).
    pub retryable: bool,
}

/// Permanent-failure latch for one device.
///
/// A permanent fault stores its [`FaultKind`] and then raises the `failed`
/// flag with a `Release` store; readers check the flag with `Acquire` and,
/// only behind it, read the kind `Relaxed` — the flag's edge is what
/// publishes the kind (model test `fault_latch_publishes_kind`). This is
/// the one piece of fault state that outlives a single injected panic, so
/// it is the piece that must be safe to read from any worker thread.
#[derive(Debug)]
#[cfg_attr(not(feature = "fault-inject"), allow(dead_code))]
pub(crate) struct DeviceHealth {
    failed: AtomicBool,
    kind: AtomicU32,
}

#[cfg_attr(not(feature = "fault-inject"), allow(dead_code))]
impl DeviceHealth {
    pub(crate) fn new() -> Self {
        DeviceHealth {
            failed: AtomicBool::new(false),
            kind: AtomicU32::new(FaultKind::Worker.as_u32()),
        }
    }

    /// Latches the device as permanently failed with `kind`.
    pub(crate) fn mark_failed(&self, kind: FaultKind) {
        // relaxed-ok: the kind rides the `failed` Release store below; no
        // reader looks at it before observing `failed` with Acquire.
        self.kind.store(kind.as_u32(), Ordering::Relaxed);
        // anchor: fault-latch-store
        // pairs-with: crates/gpu/src/fault.rs:fault-latch-load
        self.failed.store(true, Ordering::Release);
    }

    /// Returns the latched [`FaultKind`] if the device has permanently
    /// failed.
    pub(crate) fn failed_kind(&self) -> Option<FaultKind> {
        // anchor: fault-latch-load
        // pairs-with: crates/gpu/src/fault.rs:fault-latch-store
        if self.failed.load(Ordering::Acquire) {
            // relaxed-ok: the Acquire load above synchronizes with
            // `mark_failed`'s Release store, which the kind store is
            // sequenced before.
            Some(FaultKind::from_u32(self.kind.load(Ordering::Relaxed)))
        } else {
            None
        }
    }
}

/// Where a fault fires. Each site has its own deterministic call counter
/// in the armed [`FaultInjector`].
#[cfg(feature = "fault-inject")]
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
#[non_exhaustive]
pub enum FaultSite {
    /// Entry of `Device::launch` / `Device::launch_phased` (and everything
    /// layered on them, e.g. `launch_two_pass`).
    Launch,
    /// Entry of `DeviceMemory::h2d` — models a failed device allocation or
    /// staging copy.
    Alloc,
    /// Entry of `DeviceMemory::d2h` — models a failed readback.
    Transfer,
    /// A slow-device stall: the launch call sleeps instead of failing.
    Stall,
}

#[cfg(feature = "fault-inject")]
impl FaultSite {
    const COUNT: usize = 4;

    fn index(self) -> usize {
        match self {
            FaultSite::Launch => 0,
            FaultSite::Alloc => 1,
            FaultSite::Transfer => 2,
            FaultSite::Stall => 3,
        }
    }

    fn kind(self) -> FaultKind {
        match self {
            FaultSite::Launch | FaultSite::Stall => FaultKind::Launch,
            FaultSite::Alloc => FaultKind::Alloc,
            FaultSite::Transfer => FaultKind::Transfer,
        }
    }
}

#[cfg(feature = "fault-inject")]
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum FaultAction {
    Transient,
    Permanent,
    StallMillis(u64),
}

/// A deterministic, replayable schedule of faults for one device.
///
/// Every entry names a [`FaultSite`] and the zero-based occurrence index at
/// which the fault fires, counted from the moment the plan is armed on a
/// device (see `Device::arm_faults`). Because injection is by call index —
/// not wall clock — the same plan against the same workload always faults
/// at the same operation, which is what lets the chaos suite assert
/// bit-identical outputs under retry and failover.
///
/// ```
/// use gatspi_gpu::{FaultPlan, FaultSite};
///
/// // The third kernel launch fails transiently; the first readback after
/// // that (index counts all d2h calls since arming) kills the device.
/// let plan = FaultPlan::new()
///     .with_fault(FaultSite::Launch, 2, false)
///     .with_fault(FaultSite::Transfer, 9, true);
/// # let _ = plan;
/// ```
#[cfg(feature = "fault-inject")]
#[derive(Debug, Clone, Default)]
pub struct FaultPlan {
    events: Vec<(FaultSite, u64, FaultAction)>,
}

#[cfg(feature = "fault-inject")]
impl FaultPlan {
    /// An empty plan (no faults).
    pub fn new() -> Self {
        FaultPlan::default()
    }

    /// Adds a fault at the `at`-th call (zero-based, counted from arming)
    /// of `site`. `permanent: true` latches the device dead; `false`
    /// injects a transient fault that succeeds on retry.
    pub fn with_fault(mut self, site: FaultSite, at: u64, permanent: bool) -> Self {
        let action = if permanent {
            FaultAction::Permanent
        } else {
            FaultAction::Transient
        };
        self.events.push((site, at, action));
        self
    }

    /// Adds a slow-device stall of `millis` milliseconds at the `at`-th
    /// launch.
    pub fn with_stall(mut self, at: u64, millis: u64) -> Self {
        self.events
            .push((FaultSite::Stall, at, FaultAction::StallMillis(millis)));
        self
    }

    /// A seeded random plan of **transient-only** faults (plus possibly a
    /// short stall): up to two faults per site at call indices below
    /// `horizon`. Transient-only means a retried run always completes, so
    /// seeded plans are what the randomized equivalence suite feeds through
    /// every execution mode. The stream is deterministic per seed.
    pub fn seeded(seed: u64, horizon: u64) -> Self {
        use rand::{Rng, SeedableRng};
        let mut rng = rand::rngs::StdRng::seed_from_u64(seed);
        let horizon = horizon.max(1);
        let mut plan = FaultPlan::new();
        for site in [FaultSite::Launch, FaultSite::Alloc, FaultSite::Transfer] {
            for _ in 0..rng.gen_range(0u32..3) {
                plan = plan.with_fault(site, rng.gen_range(0..horizon), false);
            }
        }
        if rng.gen_bool(0.25) {
            plan = plan.with_stall(rng.gen_range(0..horizon), rng.gen_range(1u64..5));
        }
        plan
    }

    /// Number of scheduled fault events.
    pub fn len(&self) -> usize {
        self.events.len()
    }

    /// Whether the plan schedules no faults.
    pub fn is_empty(&self) -> bool {
        self.events.is_empty()
    }
}

/// Armed per-device fault state: the plan's events plus one call counter
/// per [`FaultSite`] and the permanent-failure latch.
///
/// Counters keep counting across segment retries, so a transient fault at
/// occurrence `n` fires exactly once — the retry's calls land at indices
/// past `n`. The counters are `Relaxed`: launches and uploads happen on the
/// engine thread (deterministic indices), and readbacks may race across
/// drain workers, in which case *which* call observes the fault index is
/// schedule-dependent but the set of injected faults — and therefore the
/// retried, bit-identical output — is not.
#[cfg(feature = "fault-inject")]
#[derive(Debug)]
pub struct FaultInjector {
    device: usize,
    events: std::collections::HashMap<(usize, u64), FaultAction>,
    counters: [AtomicU64; FaultSite::COUNT],
    health: DeviceHealth,
    injected: AtomicU64,
}

#[cfg(feature = "fault-inject")]
impl FaultInjector {
    /// Arms `plan` for device index `device` (the index reported in
    /// [`DeviceFaultPanic::device`]).
    pub fn new(plan: &FaultPlan, device: usize) -> Self {
        let mut events = std::collections::HashMap::new();
        for &(site, at, action) in &plan.events {
            events.insert((site.index(), at), action);
        }
        FaultInjector {
            device,
            events,
            counters: std::array::from_fn(|_| AtomicU64::new(0)),
            health: DeviceHealth::new(),
            injected: AtomicU64::new(0),
        }
    }

    /// Number of faults (and stalls) injected so far.
    pub fn injected(&self) -> u64 {
        // relaxed-ok: monotonic telemetry counter, read only for reports.
        self.injected.load(Ordering::Relaxed)
    }

    /// Whether a permanent fault has latched the device dead.
    pub fn is_failed(&self) -> bool {
        self.health.failed_kind().is_some()
    }

    /// The injection check compiled into each choke point: panics with a
    /// [`DeviceFaultPanic`] if the device is latched dead or the plan
    /// schedules a fault at this call's occurrence index; stalls sleep and
    /// return.
    pub fn check(&self, site: FaultSite) {
        if let Some(kind) = self.health.failed_kind() {
            // panic-ok: typed payload, registered in the unwind manifest.
            std::panic::panic_any(DeviceFaultPanic {
                device: self.device,
                kind,
                retryable: false,
            });
        }
        // relaxed-ok: per-site occurrence counter; see the type docs for
        // why partition order does not affect the injected fault set.
        let n = self.counters[site.index()].fetch_add(1, Ordering::Relaxed);
        // Stalls share the launch call stream: a slow device is observed at
        // its launches.
        let lookup = if site == FaultSite::Launch {
            self.events
                .get(&(site.index(), n))
                .or_else(|| self.events.get(&(FaultSite::Stall.index(), n)))
        } else {
            self.events.get(&(site.index(), n))
        };
        match lookup {
            None => {}
            Some(FaultAction::StallMillis(ms)) => {
                // relaxed-ok: monotonic telemetry counter.
                self.injected.fetch_add(1, Ordering::Relaxed);
                std::thread::sleep(std::time::Duration::from_millis(*ms));
            }
            Some(FaultAction::Transient) => {
                // relaxed-ok: monotonic telemetry counter.
                self.injected.fetch_add(1, Ordering::Relaxed);
                // panic-ok: typed payload, registered in the unwind manifest.
                std::panic::panic_any(DeviceFaultPanic {
                    device: self.device,
                    kind: site.kind(),
                    retryable: true,
                });
            }
            Some(FaultAction::Permanent) => {
                // relaxed-ok: monotonic telemetry counter.
                self.injected.fetch_add(1, Ordering::Relaxed);
                self.health.mark_failed(site.kind());
                // panic-ok: typed payload, registered in the unwind manifest.
                std::panic::panic_any(DeviceFaultPanic {
                    device: self.device,
                    kind: site.kind(),
                    retryable: false,
                });
            }
        }
    }
}

#[cfg(all(test, feature = "fault-inject"))]
mod tests {
    use super::*;

    #[test]
    fn transient_fault_fires_exactly_once() {
        let plan = FaultPlan::new().with_fault(FaultSite::Launch, 1, false);
        let inj = FaultInjector::new(&plan, 3);
        inj.check(FaultSite::Launch); // call 0: clean
        let err = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
            inj.check(FaultSite::Launch) // call 1: faults
        }))
        .expect_err("fault must fire");
        let fault = err.downcast::<DeviceFaultPanic>().expect("typed payload");
        assert_eq!(fault.device, 3);
        assert_eq!(fault.kind, FaultKind::Launch);
        assert!(fault.retryable);
        inj.check(FaultSite::Launch); // call 2: clean again (transient)
        assert_eq!(inj.injected(), 1);
        assert!(!inj.is_failed());
    }

    #[test]
    fn permanent_fault_latches_the_device() {
        let plan = FaultPlan::new().with_fault(FaultSite::Transfer, 0, true);
        let inj = FaultInjector::new(&plan, 0);
        let err = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
            inj.check(FaultSite::Transfer)
        }))
        .expect_err("fault must fire");
        let fault = err.downcast::<DeviceFaultPanic>().expect("typed payload");
        assert!(!fault.retryable);
        assert!(inj.is_failed());
        // Every later operation — any site — fails fast with the latched
        // kind.
        let err = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
            inj.check(FaultSite::Launch)
        }))
        .expect_err("latched device must keep failing");
        let fault = err.downcast::<DeviceFaultPanic>().expect("typed payload");
        assert_eq!(fault.kind, FaultKind::Transfer);
        assert!(!fault.retryable);
    }

    #[test]
    fn seeded_plans_are_deterministic_and_transient() {
        let a = FaultPlan::seeded(42, 100);
        let b = FaultPlan::seeded(42, 100);
        assert_eq!(a.len(), b.len());
        for (x, y) in a.events.iter().zip(b.events.iter()) {
            assert_eq!(x, y);
        }
        assert!(a
            .events
            .iter()
            .all(|&(_, _, action)| action != FaultAction::Permanent));
        // Different seeds eventually differ.
        assert!((0..20).any(|s| FaultPlan::seeded(s, 100).events != a.events));
    }

    #[test]
    fn stall_delays_but_does_not_fail() {
        let plan = FaultPlan::new().with_stall(0, 1);
        let inj = FaultInjector::new(&plan, 0);
        inj.check(FaultSite::Launch); // sleeps 1ms, no panic
        assert_eq!(inj.injected(), 1);
        assert!(!inj.is_failed());
    }
}

/// Exhaustive interleaving test of the permanent-failure latch
/// (`cargo test --features model-check`).
#[cfg(all(test, feature = "model-check"))]
mod model_tests {
    use super::*;

    /// ISSUE invariant (fault-flag publication): a worker that observes the
    /// `failed` flag must also observe the [`FaultKind`] stored before it —
    /// the kind store rides `mark_failed`'s Release edge. Weakening the
    /// flag's orderings to `Relaxed` yields a schedule where the reader
    /// sees `failed` but the pre-latch default kind.
    #[test]
    fn fault_latch_publishes_kind() {
        loom::model(|| {
            let health = std::sync::Arc::new(DeviceHealth::new());
            let h = std::sync::Arc::clone(&health);
            let t = loom::thread::spawn(move || {
                h.mark_failed(FaultKind::Transfer);
            });
            if let Some(kind) = health.failed_kind() {
                assert_eq!(
                    kind,
                    FaultKind::Transfer,
                    "failed flag visible but its kind is not"
                );
            }
            t.join().unwrap();
        });
    }
}
