use crate::sync::atomic::{AtomicU64, Ordering};

/// Kernel launch geometry and resource configuration.
///
/// Mirrors the paper's tuning "hyperparameters": total logical threads
/// (design parallelism × cycle parallelism), threads per block, and
/// registers per thread (which bounds occupancy).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct LaunchConfig {
    /// Total logical threads (one per gate × cycle-slot in GATSPI).
    pub threads: usize,
    /// Threads per block (paper default: 512).
    pub threads_per_block: u32,
    /// Registers per thread (paper default: 64).
    pub regs_per_thread: u32,
    /// Approximate bytes of device memory this launch actively touches;
    /// drives the L2 hit-rate model. 0 means "unknown / tiny".
    pub working_set_bytes: u64,
}

impl Default for LaunchConfig {
    fn default() -> Self {
        LaunchConfig {
            threads: 0,
            threads_per_block: 512,
            regs_per_thread: 64,
            working_set_bytes: 0,
        }
    }
}

impl LaunchConfig {
    /// Config for `threads` logical threads with the paper's default
    /// {512 threads/block, 64 regs/thread}.
    pub fn for_threads(threads: usize) -> Self {
        LaunchConfig {
            threads,
            ..Default::default()
        }
    }

    /// Number of blocks in the grid.
    pub fn blocks(&self) -> usize {
        if self.threads == 0 {
            0
        } else {
            self.threads.div_ceil(self.threads_per_block as usize)
        }
    }
}

/// Per-thread (lane) event counters, accumulated locally by kernel code and
/// merged into [`KernelCounters`] per worker — the raw material for the
/// performance model and the Table 6 profile metrics.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct LaneCounters {
    /// 4-byte global-memory reads.
    pub loads: u64,
    /// 4-byte global-memory writes.
    pub stores: u64,
    /// Loads/stores that are warp-scattered (each consumes a full 32-byte
    /// sector): waveform fetches in GATSPI are inherently scattered because
    /// lanes walk unrelated waveforms.
    pub uncoalesced: u64,
    /// Abstract executed instructions (loop iterations × working factor).
    pub instructions: u64,
}

impl LaneCounters {
    /// Records a scattered global read.
    #[inline]
    pub fn scattered_load(&mut self) {
        self.loads += 1;
        self.uncoalesced += 1;
    }

    /// Records a scattered global write.
    #[inline]
    pub fn scattered_store(&mut self) {
        self.stores += 1;
        self.uncoalesced += 1;
    }

    /// Records `n` executed instructions.
    #[inline]
    pub fn ops(&mut self, n: u64) {
        self.instructions += n;
    }
}

/// Whole-launch counters (atomic so workers can merge concurrently).
#[derive(Debug, Default)]
pub struct KernelCounters {
    /// Total global loads.
    pub loads: AtomicU64,
    /// Total global stores.
    pub stores: AtomicU64,
    /// Total uncoalesced accesses.
    pub uncoalesced: AtomicU64,
    /// Total abstract instructions.
    pub instructions: AtomicU64,
}

impl KernelCounters {
    /// Merges one worker's accumulated lane counters.
    pub fn merge(&self, lane: &LaneCounters) {
        // relaxed-ok: commutative counter accumulation; `snapshot` only
        // runs after the launch scope joins every worker.
        self.loads.fetch_add(lane.loads, Ordering::Relaxed);
        // relaxed-ok: see above.
        self.stores.fetch_add(lane.stores, Ordering::Relaxed);
        // relaxed-ok: see above.
        self.uncoalesced
            .fetch_add(lane.uncoalesced, Ordering::Relaxed);
        // relaxed-ok: see above.
        self.instructions
            .fetch_add(lane.instructions, Ordering::Relaxed);
    }

    /// Snapshot as plain values `(loads, stores, uncoalesced, instructions)`.
    pub fn snapshot(&self) -> (u64, u64, u64, u64) {
        (
            // relaxed-ok: called after the worker scope joins (the join is
            // the synchronization edge); model test `counters_merge_visible`
            // pins this.
            self.loads.load(Ordering::Relaxed),
            // relaxed-ok: see above.
            self.stores.load(Ordering::Relaxed),
            // relaxed-ok: see above.
            self.uncoalesced.load(Ordering::Relaxed),
            // relaxed-ok: see above.
            self.instructions.load(Ordering::Relaxed),
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn blocks_rounding() {
        let mut c = LaunchConfig::for_threads(1025);
        assert_eq!(c.blocks(), 3);
        c.threads = 512;
        assert_eq!(c.blocks(), 1);
        c.threads = 0;
        assert_eq!(c.blocks(), 0);
    }

    #[test]
    fn lane_counter_helpers() {
        let mut l = LaneCounters::default();
        l.scattered_load();
        l.scattered_load();
        l.scattered_store();
        l.ops(10);
        assert_eq!(l.loads, 2);
        assert_eq!(l.stores, 1);
        assert_eq!(l.uncoalesced, 3);
        assert_eq!(l.instructions, 10);
    }

    #[test]
    fn merge_accumulates() {
        let k = KernelCounters::default();
        let mut l = LaneCounters::default();
        l.scattered_load();
        l.ops(5);
        k.merge(&l);
        k.merge(&l);
        assert_eq!(k.snapshot(), (2, 0, 2, 10));
    }

    #[test]
    fn default_matches_paper_tuning() {
        let c = LaunchConfig::default();
        assert_eq!(c.threads_per_block, 512);
        assert_eq!(c.regs_per_thread, 64);
    }
}

#[cfg(all(test, feature = "model-check"))]
mod model_tests {
    use super::*;

    /// The `relaxed-ok` claim on [`KernelCounters`]: worker merges with
    /// Relaxed adds are fully visible to a post-join snapshot in every
    /// interleaving — the scope join is the synchronization edge.
    #[test]
    fn counters_merge_visible() {
        loom::model(|| {
            let k = KernelCounters::default();
            crate::sync::thread::scope(|s| {
                for _ in 0..2 {
                    let k = &k;
                    s.spawn(move |_| {
                        let mut lane = LaneCounters::default();
                        lane.scattered_load();
                        lane.ops(3);
                        k.merge(&lane);
                    });
                }
            })
            .expect("model worker panicked");
            assert_eq!(k.snapshot(), (2, 0, 2, 6), "a merge was lost");
        });
    }
}
