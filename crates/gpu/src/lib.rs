//! Software-simulated GPU substrate for the GATSPI reproduction.
//!
//! The paper runs its re-simulation kernels as CUDA on NVIDIA T4/V100/A100
//! devices. This environment has no GPU, so — per the reproduction's
//! substitution rule — this crate provides the closest synthetic equivalent
//! that exercises the same code paths:
//!
//! * [`DeviceSpec`] — the Table 1 device presets (SM count, memory size and
//!   bandwidth, L2 capacity) plus clock and register-file parameters.
//! * [`DeviceMemory`] — a pre-allocated "global memory" word arena with
//!   host↔device transfer accounting (PCIe model), shared-safely accessible
//!   from concurrent kernel threads via relaxed atomics.
//! * [`Device::launch`] — a CUDA-style kernel launch: a grid of blocks of
//!   logical threads (warp size 32), executed functionally on a CPU worker
//!   pool, with per-launch wall-clock measurement **and** a cycle-approximate
//!   performance model ([`KernelProfile`]) that responds to the same tuning
//!   knobs the paper studies (threads/block, registers/thread, working-set
//!   vs L2 capacity, coalescing).
//! * [`MultiGpu`] — an n-device wrapper implementing the paper's
//!   cycle-parallel workload distribution with `t = t₁/n + ovr` behaviour.
//!
//! Numbers derived from the model are clearly labelled *modeled*; wall-clock
//! numbers are labelled *measured*. Benchmarks report both.

#![deny(missing_docs)]

mod device;
pub mod fault;
mod launch;
mod memory;
mod multi;
mod perfmodel;
mod profiler;
mod spec;
pub mod sync;

pub use device::Device;
pub use fault::{DeviceFaultPanic, FaultKind};
#[cfg(feature = "fault-inject")]
pub use fault::{FaultInjector, FaultPlan, FaultSite};
pub use launch::{KernelCounters, LaneCounters, LaunchConfig};
pub use memory::DeviceMemory;
pub use multi::{shard_slots, MultiGpu};
pub use perfmodel::KernelProfile;
pub use profiler::AppPhaseProfile;
pub use spec::DeviceSpec;

/// Threads per warp — fixed at 32, as on all NVIDIA architectures.
pub const WARP_SIZE: usize = 32;
