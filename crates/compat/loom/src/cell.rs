//! An `UnsafeCell` wrapper that turns unsynchronized concurrent access into
//! a model-check failure instead of silent undefined behavior.

use std::sync::atomic::AtomicU64;

/// Instrumented `UnsafeCell`.
///
/// Inside a [`crate::model`] execution, every access is checked against all
/// prior accesses with vector clocks: a write must happen-after every earlier
/// access, a read must happen-after every earlier *write*. A violation panics
/// with a data-race counterexample (and its replay schedule). Outside a model
/// the wrapper is free.
#[derive(Debug, Default)]
pub struct UnsafeCell<T> {
    data: std::cell::UnsafeCell<T>,
    tag: AtomicU64,
}

impl<T> UnsafeCell<T> {
    /// Wraps a value.
    pub const fn new(data: T) -> UnsafeCell<T> {
        UnsafeCell {
            data: std::cell::UnsafeCell::new(data),
            tag: AtomicU64::new(0),
        }
    }

    /// Immutable access: `f` receives the raw pointer (loom's signature).
    /// Panics in a model if this read races an unordered write.
    pub fn with<R>(&self, f: impl FnOnce(*const T) -> R) -> R {
        crate::rt::cell_access(&self.tag, false);
        f(self.data.get())
    }

    /// Mutable access: `f` receives the raw pointer (loom's signature).
    /// Panics in a model if this write races any unordered access.
    pub fn with_mut<R>(&self, f: impl FnOnce(*mut T) -> R) -> R {
        crate::rt::cell_access(&self.tag, true);
        f(self.data.get())
    }

    /// Unwraps the value.
    pub fn into_inner(self) -> T {
        self.data.into_inner()
    }
}

// SAFETY: the std UnsafeCell is the only non-Sync field; sharing it across
// model threads is exactly what this wrapper exists to police — every access
// goes through `with`/`with_mut`, whose vector-clock check fails the model
// whenever two accesses (at least one a write) are not ordered by
// happens-before. Callers remain responsible for pointer discipline inside
// the closures, as with std's UnsafeCell.
unsafe impl<T: Send> Sync for UnsafeCell<T> {}
