//! Offline mini model checker for the workspace's lock-free protocols,
//! API-shaped after the `loom` crate (the build container has no crates.io
//! access, so like the other `crates/compat` shims this is a from-scratch
//! implementation of the subset the workspace needs).
//!
//! [`model`] runs a closure under every interleaving (within configurable
//! bounds) of the threads it spawns through [`thread`], with every
//! [`sync::atomic`] operation modeled under C11-style Acquire/Release vs
//! Relaxed visibility: a `Relaxed` load may legitimately observe a stale
//! value unless a happens-before edge forbids it, so an ordering that is too
//! weak produces a concrete failing execution — not a lucky pass. Failures
//! panic with a replay string that [`Builder::replay`] re-executes
//! deterministically.
//!
//! ```
//! use loom::sync::atomic::{AtomicU64, AtomicUsize, Ordering};
//!
//! loom::model(|| {
//!     let data = std::sync::Arc::new(AtomicU64::new(0));
//!     let flag = std::sync::Arc::new(AtomicUsize::new(0));
//!     let (d, f) = (data.clone(), flag.clone());
//!     let t = loom::thread::spawn(move || {
//!         d.store(42, Ordering::Relaxed);
//!         f.store(1, Ordering::Release); // Relaxed here would fail the model
//!     });
//!     if flag.load(Ordering::Acquire) == 1 {
//!         assert_eq!(data.load(Ordering::Relaxed), 42);
//!     }
//!     t.join().unwrap();
//! });
//! ```
//!
//! # What is modeled
//!
//! * `AtomicBool`/`AtomicU32`/`AtomicU64`/`AtomicUsize`/`AtomicI32`: full
//!   modification-order + vector-clock semantics per [`sync::atomic`].
//! * [`cell::UnsafeCell`]: concurrent-access (data-race) detection.
//! * [`thread`]: `spawn`/`join`, crossbeam-shaped `scope`, `yield_now`
//!   (descheduled until another thread stores), `sleep` (same as yield).
//! * [`hint::spin_loop`]: a yield, making spin loops explorable.
//!
//! `Mutex`/`Condvar` are *not* modeled; the workspace's lock-free paths only
//! use locks where a single thread can hold them across schedule points.
//!
//! # Bounds
//!
//! Exploration is bounded exhaustive: depth-first over schedule and
//! stale-read choices, with a preemption bound (default 2 — the bugs these
//! protocols can have show up within two forced context switches) and
//! iteration/branch ceilings. [`Builder::check`] reports whether the space
//! was exhausted. Outside a model, every instrumented type falls back to
//! plain `std` behavior, so the same code path serves ordinary tests.

#![deny(missing_docs)]

mod rt;

pub mod cell;
pub mod hint;
pub mod sync;
pub mod thread;

pub use rt::Report;

/// Configures and runs a model check; [`model`] is the default-everything
/// shortcut.
#[derive(Clone, Debug)]
pub struct Builder {
    /// Maximum threads alive at once in one execution (default 8).
    pub max_threads: usize,
    /// Maximum branch points in a single execution (default 20 000).
    pub max_branches: usize,
    /// Maximum executions explored before giving up on exhausting the
    /// schedule space (default 400 000; a warning is printed if hit).
    pub max_iterations: u64,
    /// Preemption bound: how many times a runnable thread may be switched
    /// away from involuntarily, per execution. `None` = unbounded (full
    /// exhaustive). Default `Some(2)`.
    pub preemption_bound: Option<usize>,
    /// Seed permuting DFS exploration order (0 = canonical order). Distinct
    /// seeds visit the same space in a different order, which surfaces
    /// shallow bugs faster when a run is iteration-capped.
    pub seed: u64,
    /// A failing schedule string (`"t1.r0.t0"` — as printed by a failure)
    /// to replay as the only execution.
    pub replay: Option<String>,
}

impl Default for Builder {
    fn default() -> Builder {
        Builder::new()
    }
}

impl Builder {
    /// A builder with the default bounds.
    #[must_use]
    pub fn new() -> Builder {
        let d = rt::Config::default();
        Builder {
            max_threads: d.max_threads,
            max_branches: d.max_branches,
            max_iterations: d.max_iterations,
            preemption_bound: d.preemption_bound,
            seed: d.seed,
            replay: None,
        }
    }

    /// Explores `f` under every interleaving within the bounds, panicking
    /// with a replay schedule on the first failing execution. Returns how
    /// much was explored.
    ///
    /// # Panics
    ///
    /// Panics (after printing the failing schedule's replay string) when any
    /// execution fails: an assertion in `f`, a detected data race, a
    /// deadlock/livelock, or a replay mismatch.
    pub fn check<F: Fn()>(&self, f: F) -> Report {
        rt::check(
            rt::Config {
                max_threads: self.max_threads,
                max_branches: self.max_branches,
                max_iterations: self.max_iterations,
                preemption_bound: self.preemption_bound,
                seed: self.seed,
                replay: self.replay.as_deref().map(rt::parse_replay),
            },
            f,
        )
    }
}

/// Checks `f` under the default [`Builder`] bounds.
///
/// # Panics
///
/// Panics with a replay schedule on the first failing execution (see
/// [`Builder::check`]).
pub fn model<F: Fn()>(f: F) {
    Builder::new().check(f);
}

#[cfg(test)]
mod tests {
    use super::sync::atomic::{AtomicU64, AtomicUsize, Ordering};
    use std::panic::{catch_unwind, AssertUnwindSafe};
    use std::sync::Arc;

    /// Runs a model and returns its failure message, asserting it fails.
    fn must_fail(f: impl Fn() + Send + 'static) -> String {
        let err = catch_unwind(AssertUnwindSafe(|| super::model(f)))
            .expect_err("model unexpectedly passed: the checker has lost its teeth");
        err.downcast_ref::<String>()
            .cloned()
            .or_else(|| err.downcast_ref::<&str>().map(|s| (*s).to_string()))
            .unwrap_or_default()
    }

    #[test]
    fn message_passing_release_acquire_passes() {
        let report = super::Builder::new().check(|| {
            let data = Arc::new(AtomicU64::new(0));
            let flag = Arc::new(AtomicUsize::new(0));
            let (d, f) = (Arc::clone(&data), Arc::clone(&flag));
            let t = super::thread::spawn(move || {
                d.store(42, Ordering::Relaxed);
                f.store(1, Ordering::Release);
            });
            if flag.load(Ordering::Acquire) == 1 {
                assert_eq!(data.load(Ordering::Relaxed), 42);
            }
            t.join().unwrap();
        });
        assert!(report.exhausted, "bounded space should be exhaustible");
        assert!(report.iterations > 1, "should explore multiple schedules");
    }

    #[test]
    fn message_passing_relaxed_flag_is_caught() {
        let msg = must_fail(|| {
            let data = Arc::new(AtomicU64::new(0));
            let flag = Arc::new(AtomicUsize::new(0));
            let (d, f) = (Arc::clone(&data), Arc::clone(&flag));
            let t = super::thread::spawn(move || {
                d.store(42, Ordering::Relaxed);
                // Too weak: nothing orders the data store before the flag.
                f.store(1, Ordering::Relaxed);
            });
            if flag.load(Ordering::Acquire) == 1 {
                assert_eq!(data.load(Ordering::Relaxed), 42);
            }
            t.join().unwrap();
        });
        assert!(
            msg.contains("replay schedule"),
            "failure should carry a replay string, got: {msg}"
        );
    }

    /// Miniature of the `DumpRing` commit protocol: producer fills a slot,
    /// then publishes it by advancing `tail`. With a `Release` publish the
    /// consumer can never observe an uncommitted slot.
    fn mini_ring(commit: Ordering) {
        let slot = Arc::new(AtomicU64::new(0));
        let tail = Arc::new(AtomicUsize::new(0));
        let (s, t) = (Arc::clone(&slot), Arc::clone(&tail));
        let producer = super::thread::spawn(move || {
            s.store(7, Ordering::Relaxed);
            t.store(1, commit);
        });
        while tail.load(Ordering::Acquire) < 1 {
            super::hint::spin_loop();
        }
        assert_eq!(
            slot.load(Ordering::Relaxed),
            7,
            "consumer read an uncommitted slot"
        );
        producer.join().unwrap();
    }

    #[test]
    fn ring_commit_release_passes() {
        super::model(|| mini_ring(Ordering::Release));
    }

    /// Mutation teeth: weakening the commit to `Relaxed` must produce a
    /// concrete stale-slot counterexample.
    #[test]
    fn ring_commit_relaxed_is_caught() {
        let msg = must_fail(|| mini_ring(Ordering::Relaxed));
        assert!(msg.contains("uncommitted slot"), "wrong failure: {msg}");
    }

    /// Miniature of the phase driver's arrive protocol: each worker writes
    /// its result, then arrives on a shared counter; the last arriver (the
    /// leader) reads every result. The arrive RMW chain must be `AcqRel` so
    /// the leader inherits all earlier arrivers' writes through the release
    /// sequence — both workers run concurrently, so no spawn/join edge can
    /// smuggle the visibility in.
    fn mini_arrive(arrive: Ordering) {
        let out_a = Arc::new(AtomicU64::new(0));
        let out_b = Arc::new(AtomicU64::new(0));
        let arrived = Arc::new(AtomicUsize::new(0));
        let handles: Vec<_> = [Arc::clone(&out_a), Arc::clone(&out_b)]
            .into_iter()
            .enumerate()
            .map(|(i, out)| {
                let arrived = Arc::clone(&arrived);
                let (a, b) = (Arc::clone(&out_a), Arc::clone(&out_b));
                super::thread::spawn(move || {
                    out.store(i as u64 + 1, Ordering::Relaxed);
                    if arrived.fetch_add(1, arrive) + 1 == 2 {
                        // Leader: every worker's write must be visible.
                        assert_eq!(a.load(Ordering::Relaxed), 1, "leader missed a result");
                        assert_eq!(b.load(Ordering::Relaxed), 2, "leader missed a result");
                    }
                })
            })
            .collect();
        for h in handles {
            h.join().unwrap();
        }
    }

    #[test]
    fn arrive_acqrel_passes() {
        super::model(|| mini_arrive(Ordering::AcqRel));
    }

    /// Mutation teeth: a `Relaxed` arrive breaks the release chain and the
    /// leader can read a worker's result slot before the worker's write.
    #[test]
    fn arrive_relaxed_is_caught() {
        let msg = must_fail(|| mini_arrive(Ordering::Relaxed));
        assert!(
            msg.contains("leader missed a result"),
            "wrong failure: {msg}"
        );
    }

    #[test]
    fn rmw_is_atomic() {
        super::model(|| {
            let n = Arc::new(AtomicU64::new(0));
            let (a, b) = (Arc::clone(&n), Arc::clone(&n));
            let t1 = super::thread::spawn(move || a.fetch_add(1, Ordering::Relaxed));
            let t2 = super::thread::spawn(move || b.fetch_add(1, Ordering::Relaxed));
            t1.join().unwrap();
            t2.join().unwrap();
            assert_eq!(n.load(Ordering::Relaxed), 2, "lost update");
        });
    }

    #[test]
    fn seqcst_forbids_store_buffer_anomaly() {
        super::model(|| {
            let x = Arc::new(AtomicU64::new(0));
            let y = Arc::new(AtomicU64::new(0));
            let (x1, y1) = (Arc::clone(&x), Arc::clone(&y));
            let t = super::thread::spawn(move || {
                x1.store(1, Ordering::SeqCst);
                y1.load(Ordering::SeqCst)
            });
            y.store(1, Ordering::SeqCst);
            let r_main = x.load(Ordering::SeqCst);
            let r_t = t.join().unwrap();
            assert!(
                r_main == 1 || r_t == 1,
                "both SeqCst loads read 0: total order violated"
            );
        });
    }

    #[test]
    fn replay_reproduces_the_same_failure() {
        let msg = must_fail(|| mini_ring(Ordering::Relaxed));
        let schedule = msg
            .lines()
            .find_map(|l| l.strip_prefix("replay schedule: "))
            .expect("failure should print a replay line")
            .trim_matches('"')
            .to_string();
        let mut b = super::Builder::new();
        b.replay = Some(schedule);
        let replay_err = catch_unwind(AssertUnwindSafe(|| {
            b.check(|| mini_ring(Ordering::Relaxed));
        }))
        .expect_err("replaying a failing schedule must fail again");
        let replay_msg = replay_err
            .downcast_ref::<String>()
            .cloned()
            .unwrap_or_default();
        assert!(
            replay_msg.contains("execution 1"),
            "replay must fail on the first (only) execution: {replay_msg}"
        );
        assert!(replay_msg.contains("uncommitted slot"), "{replay_msg}");
    }

    #[test]
    fn unsafe_cell_race_is_caught() {
        let msg = must_fail(|| {
            let cell = Arc::new(super::cell::UnsafeCell::new(0u64));
            let c = Arc::clone(&cell);
            // SAFETY: deliberately racy pointer accesses — the wrapper's
            // whole job is to flag them before they could dereference
            // concurrently (the model fails the execution at the access
            // check, not after a real race).
            let t = super::thread::spawn(move || c.with_mut(|p| unsafe { *p = 1 }));
            // SAFETY: see above — the unordered read is the race under test.
            cell.with(|p| unsafe { *p });
            t.join().unwrap();
        });
        assert!(msg.contains("data race"), "wrong failure: {msg}");
    }

    #[test]
    fn unsafe_cell_ordered_access_passes() {
        super::model(|| {
            let cell = Arc::new(super::cell::UnsafeCell::new(0u64));
            let flag = Arc::new(AtomicUsize::new(0));
            let (c, f) = (Arc::clone(&cell), Arc::clone(&flag));
            let t = super::thread::spawn(move || {
                // SAFETY: exclusive access — the reader only dereferences
                // after observing the Release store below.
                c.with_mut(|p| unsafe { *p = 9 });
                f.store(1, Ordering::Release);
            });
            while flag.load(Ordering::Acquire) == 0 {
                super::hint::spin_loop();
            }
            // SAFETY: the Release/Acquire pair orders the write before this
            // read; the model's race check verifies exactly that.
            assert_eq!(cell.with(|p| unsafe { *p }), 9);
            t.join().unwrap();
        });
    }

    #[test]
    fn crossbeam_shaped_scope_works_in_model() {
        super::model(|| {
            let total = Arc::new(AtomicU64::new(0));
            super::thread::scope(|s| {
                for _ in 0..2 {
                    let total = Arc::clone(&total);
                    s.spawn(move |_| {
                        total.fetch_add(1, Ordering::AcqRel);
                    });
                }
            })
            .unwrap();
            // Scope exit joins both workers (with synchronization edges).
            assert_eq!(total.load(Ordering::Relaxed), 2);
        });
    }

    #[test]
    fn fallback_outside_model_behaves_like_std() {
        let n = AtomicU64::new(5);
        assert_eq!(n.fetch_add(2, Ordering::SeqCst), 5);
        assert_eq!(n.load(Ordering::Acquire), 7);
        n.store(1, Ordering::Release);
        assert_eq!(n.swap(3, Ordering::AcqRel), 1);
        assert_eq!(
            n.compare_exchange(3, 4, Ordering::SeqCst, Ordering::SeqCst),
            Ok(3)
        );
        let cell = super::cell::UnsafeCell::new(11u32);
        // SAFETY: single-threaded access to a local cell.
        assert_eq!(cell.with(|p| unsafe { *p }), 11);
    }

    #[test]
    fn deadlock_is_reported() {
        let msg = must_fail(|| {
            let flag = Arc::new(AtomicUsize::new(0));
            // Nobody ever stores: the spin can never be released.
            while flag.load(Ordering::Acquire) == 0 {
                super::hint::spin_loop();
            }
        });
        assert!(msg.contains("deadlock/livelock"), "wrong failure: {msg}");
    }

    #[test]
    fn seeded_exploration_finds_the_same_bug() {
        for seed in [1u64, 42, 1234] {
            let mut b = super::Builder::new();
            b.seed = seed;
            let err = catch_unwind(AssertUnwindSafe(|| {
                b.check(|| mini_ring(Ordering::Relaxed));
            }))
            .expect_err("seeded run must still find the stale-slot bug");
            drop(err);
        }
    }
}
