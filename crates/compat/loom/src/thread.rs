//! Model-aware threads: `spawn`/`yield_now`/`sleep` plus a scoped-spawn API
//! shaped exactly like the workspace's `crossbeam::thread` shim, so the sync
//! facades can swap it in without touching call sites.
//!
//! Inside a [`crate::model`] execution, spawned threads are real OS threads
//! registered with the scheduler: they run under the execution token, their
//! spawn/join edges carry vector-clock synchronization, and `yield_now`
//! deschedules the caller until another thread makes progress. Outside a
//! model everything delegates to `std`.

use std::panic::{catch_unwind, resume_unwind, AssertUnwindSafe};
use std::sync::{Arc, Mutex};

use crate::rt;

/// Model-aware `std::thread::yield_now`.
pub fn yield_now() {
    rt::yield_now();
}

/// Model-aware sleep: inside a model, sleeping is indistinguishable from
/// yielding (the scheduler owns time); outside, a real sleep.
pub fn sleep(dur: std::time::Duration) {
    if rt::in_model() {
        rt::yield_now();
    } else {
        std::thread::sleep(dur);
    }
}

/// Join handle of a [`spawn`]ed thread.
pub struct JoinHandle<T> {
    inner: std::thread::JoinHandle<T>,
    tid: Option<usize>,
}

impl<T> JoinHandle<T> {
    /// Waits for the thread to finish, returning its result.
    ///
    /// # Errors
    ///
    /// Returns the thread's panic payload if it panicked.
    pub fn join(self) -> std::thread::Result<T> {
        if let (Some(tid), Some(ctx)) = (self.tid, rt::current()) {
            rt::block_on_children(&ctx, &[tid]);
        }
        self.inner.join()
    }
}

/// Model-aware `std::thread::spawn`. Inside a model the new thread is a
/// scheduled model thread; it must be joined before the model closure
/// returns (enforced by the checker).
pub fn spawn<F, T>(f: F) -> JoinHandle<T>
where
    F: FnOnce() -> T + Send + 'static,
    T: Send + 'static,
{
    match rt::current() {
        None => JoinHandle {
            inner: std::thread::spawn(f),
            tid: None,
        },
        Some(ctx) => {
            let tid = rt::register_child(&ctx);
            let exec = Arc::clone(&ctx.exec);
            JoinHandle {
                inner: std::thread::spawn(move || rt::run_child(exec, tid, f)),
                tid: Some(tid),
            }
        }
    }
}

/// Model bookkeeping shared by a scope and every handle it spawns.
struct ScopeModel {
    exec: Arc<rt::Execution>,
    children: Mutex<Vec<usize>>,
}

/// Handle passed to the [`scope`] closure and to every spawned thread
/// (crossbeam's shape).
pub struct Scope<'scope, 'env: 'scope> {
    inner: &'scope std::thread::Scope<'scope, 'env>,
    model: Option<Arc<ScopeModel>>,
}

/// Join handle of a scoped thread.
pub struct ScopedJoinHandle<'scope, T> {
    inner: std::thread::ScopedJoinHandle<'scope, T>,
    tid: Option<usize>,
}

impl<T> ScopedJoinHandle<'_, T> {
    /// Waits for the thread to finish, returning its result.
    ///
    /// # Errors
    ///
    /// Returns the thread's panic payload if it panicked.
    pub fn join(self) -> std::thread::Result<T> {
        if let (Some(tid), Some(ctx)) = (self.tid, rt::current()) {
            rt::block_on_children(&ctx, &[tid]);
        }
        self.inner.join()
    }
}

impl<'scope, 'env> Scope<'scope, 'env> {
    /// Spawns a scoped thread; the closure receives the scope handle so it
    /// can spawn further threads (crossbeam's signature).
    pub fn spawn<F, T>(&self, f: F) -> ScopedJoinHandle<'scope, T>
    where
        F: for<'a> FnOnce(&'a Scope<'scope, 'env>) -> T + Send + 'scope,
        T: Send + 'scope,
    {
        let inner = self.inner;
        match &self.model {
            None => ScopedJoinHandle {
                inner: inner.spawn(move || f(&Scope { inner, model: None })),
                tid: None,
            },
            Some(model) => {
                let ctx =
                    rt::current().expect("scoped spawn on a model scope from outside the model");
                let tid = rt::register_child(&ctx);
                model
                    .children
                    .lock()
                    .unwrap_or_else(|e| e.into_inner())
                    .push(tid);
                let exec = Arc::clone(&model.exec);
                let model = Arc::clone(model);
                ScopedJoinHandle {
                    inner: inner.spawn(move || {
                        rt::run_child(exec, tid, || {
                            f(&Scope {
                                inner,
                                model: Some(model),
                            })
                        })
                    }),
                    tid: Some(tid),
                }
            }
        }
    }
}

/// Creates a scope for spawning scoped threads, waiting for all of them
/// before returning — crossbeam's `Result`-returning signature.
///
/// Inside a model, the scope blocks on its children *through the scheduler*
/// (a join-synchronization edge per child) before `std`'s implicit join, and
/// a panicking closure aborts the execution so children tear down instead of
/// deadlocking on the schedule token.
///
/// # Errors
///
/// Like the workspace's crossbeam shim: a child panic propagates by unwind
/// rather than through the `Result`, which exists for signature
/// compatibility and is always `Ok`.
pub fn scope<'env, F, R>(f: F) -> std::thread::Result<R>
where
    F: for<'scope> FnOnce(&Scope<'scope, 'env>) -> R,
{
    match rt::current() {
        None => Ok(std::thread::scope(|s| {
            f(&Scope {
                inner: s,
                model: None,
            })
        })),
        Some(ctx) => {
            let model = Arc::new(ScopeModel {
                exec: Arc::clone(&ctx.exec),
                children: Mutex::new(Vec::new()),
            });
            Ok(std::thread::scope(|s| {
                let scope_ref = Scope {
                    inner: s,
                    model: Some(Arc::clone(&model)),
                };
                let result = catch_unwind(AssertUnwindSafe(|| f(&scope_ref)));
                match result {
                    Ok(r) => {
                        // Join children (including any spawned by other
                        // children after our first look) before std's
                        // implicit join, which knows nothing of the token.
                        let mut joined = 0;
                        loop {
                            let snapshot = model
                                .children
                                .lock()
                                .unwrap_or_else(|e| e.into_inner())
                                .clone();
                            if snapshot.len() == joined {
                                break;
                            }
                            rt::block_on_children(&ctx, &snapshot[joined..]);
                            joined = snapshot.len();
                        }
                        r
                    }
                    Err(payload) => {
                        rt::abort_execution(&ctx.exec);
                        resume_unwind(payload);
                    }
                }
            }))
        }
    }
}
