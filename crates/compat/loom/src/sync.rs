//! Instrumented drop-ins for `std::sync` types used by the workspace's
//! lock-free protocols.
//!
//! Only the atomic types are modeled. `Mutex`/`Condvar` are deliberately
//! *not* re-exported here: the workspace's lock-free paths never contend a
//! lock across a schedule point (the phase driver's callback mutex is only
//! taken by the single boundary leader), so plain `std` locks are used
//! unchanged via the facades.

/// Instrumented atomic integers and `AtomicBool`.
///
/// Inside a [`crate::model`] execution every operation is a scheduling
/// point, stores append to the location's modification order, and loads may
/// observe any store that coherence + happens-before allow for the given
/// [`atomic::Ordering`]. Outside a model the types behave like plain `std` atomics
/// (backed by an inner `std::sync::atomic::AtomicU64`), so code ported onto
/// the facade keeps working in ordinary `--features model-check` test runs.
pub mod atomic {
    pub use std::sync::atomic::Ordering;

    use crate::rt::ModelAtomic;

    macro_rules! int_atomic {
        ($(#[$meta:meta])* $name:ident, $ty:ty) => {
            $(#[$meta])*
            pub struct $name {
                inner: ModelAtomic,
            }

            impl $name {
                /// Creates a new atomic with the given initial value.
                #[must_use]
                pub const fn new(v: $ty) -> $name {
                    $name {
                        inner: ModelAtomic::new(v as u64),
                    }
                }

                /// Loads the value with the given ordering.
                pub fn load(&self, ord: Ordering) -> $ty {
                    self.inner.load(ord) as $ty
                }

                /// Stores `val` with the given ordering.
                pub fn store(&self, val: $ty, ord: Ordering) {
                    self.inner.store(val as u64, ord);
                }

                /// Swaps in `val`, returning the previous value.
                pub fn swap(&self, val: $ty, ord: Ordering) -> $ty {
                    self.inner.rmw(ord, |_| Some(val as u64)).0 as $ty
                }

                /// Adds `val` (wrapping), returning the previous value.
                pub fn fetch_add(&self, val: $ty, ord: Ordering) -> $ty {
                    self.inner
                        .rmw(ord, |old| Some((old as $ty).wrapping_add(val) as u64))
                        .0 as $ty
                }

                /// Subtracts `val` (wrapping), returning the previous value.
                pub fn fetch_sub(&self, val: $ty, ord: Ordering) -> $ty {
                    self.inner
                        .rmw(ord, |old| Some((old as $ty).wrapping_sub(val) as u64))
                        .0 as $ty
                }

                /// Bitwise-ors in `val`, returning the previous value.
                pub fn fetch_or(&self, val: $ty, ord: Ordering) -> $ty {
                    self.inner
                        .rmw(ord, |old| Some(((old as $ty) | val) as u64))
                        .0 as $ty
                }

                /// Bitwise-ands in `val`, returning the previous value.
                pub fn fetch_and(&self, val: $ty, ord: Ordering) -> $ty {
                    self.inner
                        .rmw(ord, |old| Some(((old as $ty) & val) as u64))
                        .0 as $ty
                }

                /// Stores the maximum of the current value and `val`,
                /// returning the previous value.
                pub fn fetch_max(&self, val: $ty, ord: Ordering) -> $ty {
                    self.inner
                        .rmw(ord, |old| Some((old as $ty).max(val) as u64))
                        .0 as $ty
                }

                /// Compare-and-exchange: replaces `current` with `new`.
                ///
                /// # Errors
                ///
                /// Returns the actual value when it differs from `current`.
                /// The `success` ordering models both halves; `_failure` is
                /// treated conservatively (the failed load still acquires
                /// when `success` does).
                pub fn compare_exchange(
                    &self,
                    current: $ty,
                    new: $ty,
                    success: Ordering,
                    _failure: Ordering,
                ) -> Result<$ty, $ty> {
                    let (old, wrote) = self.inner.rmw(success, |old| {
                        (old as $ty == current).then_some(new as u64)
                    });
                    if wrote {
                        Ok(old as $ty)
                    } else {
                        Err(old as $ty)
                    }
                }

                /// Same as [`Self::compare_exchange`] (the model never fails
                /// spuriously).
                ///
                /// # Errors
                ///
                /// Returns the actual value when it differs from `current`.
                pub fn compare_exchange_weak(
                    &self,
                    current: $ty,
                    new: $ty,
                    success: Ordering,
                    failure: Ordering,
                ) -> Result<$ty, $ty> {
                    self.compare_exchange(current, new, success, failure)
                }
            }

            impl Default for $name {
                fn default() -> $name {
                    $name::new(0 as $ty)
                }
            }

            impl std::fmt::Debug for $name {
                fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
                    write!(f, "{:?}", self.inner)
                }
            }

            impl From<$ty> for $name {
                fn from(v: $ty) -> $name {
                    $name::new(v)
                }
            }
        };
    }

    int_atomic!(
        /// Instrumented `AtomicUsize`.
        AtomicUsize,
        usize
    );
    int_atomic!(
        /// Instrumented `AtomicU64`.
        AtomicU64,
        u64
    );
    int_atomic!(
        /// Instrumented `AtomicU32`.
        AtomicU32,
        u32
    );
    int_atomic!(
        /// Instrumented `AtomicI32`.
        AtomicI32,
        i32
    );

    /// Instrumented `AtomicBool`.
    pub struct AtomicBool {
        inner: ModelAtomic,
    }

    impl AtomicBool {
        /// Creates a new atomic with the given initial value.
        #[must_use]
        pub const fn new(v: bool) -> AtomicBool {
            AtomicBool {
                inner: ModelAtomic::new(v as u64),
            }
        }

        /// Loads the value with the given ordering.
        pub fn load(&self, ord: Ordering) -> bool {
            self.inner.load(ord) != 0
        }

        /// Stores `val` with the given ordering.
        pub fn store(&self, val: bool, ord: Ordering) {
            self.inner.store(val as u64, ord);
        }

        /// Swaps in `val`, returning the previous value.
        pub fn swap(&self, val: bool, ord: Ordering) -> bool {
            self.inner.rmw(ord, |_| Some(val as u64)).0 != 0
        }

        /// Compare-and-exchange: replaces `current` with `new`.
        ///
        /// # Errors
        ///
        /// Returns the actual value when it differs from `current`.
        pub fn compare_exchange(
            &self,
            current: bool,
            new: bool,
            success: Ordering,
            _failure: Ordering,
        ) -> Result<bool, bool> {
            let (old, wrote) = self
                .inner
                .rmw(success, |old| ((old != 0) == current).then_some(new as u64));
            if wrote {
                Ok(old != 0)
            } else {
                Err(old != 0)
            }
        }
    }

    impl Default for AtomicBool {
        fn default() -> AtomicBool {
            AtomicBool::new(false)
        }
    }

    impl std::fmt::Debug for AtomicBool {
        fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
            write!(f, "{}", self.inner.fallback_value() != 0)
        }
    }
}
