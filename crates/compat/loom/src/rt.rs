//! The model-checking runtime: a deterministic bounded-exhaustive scheduler
//! over token-serialized real threads, with C11-lite memory-order modeling.
//!
//! # Execution model
//!
//! A [`crate::model`] run repeatedly executes the user closure, exploring one
//! interleaving per execution. Model threads are real OS threads, but exactly
//! one holds the *token* at a time; every instrumented operation (atomic
//! access, [`crate::cell::UnsafeCell`] access, yield, spawn, join, finish)
//! waits for the token, performs its effect under the runtime lock, then picks
//! the next thread to run. Which thread runs next — and, for atomic loads,
//! *which store the load observes* — are branch points recorded on a path;
//! depth-first backtracking over that path enumerates every interleaving
//! within the configured bounds.
//!
//! # Memory-order modeling
//!
//! Every atomic location keeps its full modification order (the list of
//! stores) for the execution. Threads carry vector clocks:
//!
//! * a `Release` store snapshots the storer's clock into the store event;
//!   RMWs extend a release sequence by inheriting the clock already on the
//!   store they displace (C++20 semantics);
//! * an `Acquire` load that observes a store joins that snapshot into the
//!   loader's clock;
//! * a `Relaxed` operation does neither;
//! * `SeqCst` additionally joins through a global clock shared by all
//!   `SeqCst` operations (single-total-order visibility, approximated).
//!
//! A load may observe *any* store in the modification order that coherence
//! and happens-before do not rule out — so reading a too-weak ordering shows
//! up as a load observing a stale value, exactly the counterexample a real
//! weakly-ordered machine could produce. RMWs always observe the latest
//! store (atomicity). One fairness refinement keeps spin loops finite: a
//! thread re-reading a location no one has stored to since its previous read
//! must observe a *strictly newer* store if one exists (bounded staleness —
//! real hardware's eventual visibility).
//!
//! # Schedules and replay
//!
//! Every branch decision is recorded; a failing execution panics with a
//! replay string like `t1.r0.t0` (thread choices `t<id>`, read choices
//! `r<store index>`). [`crate::Builder::replay`] re-runs exactly that
//! schedule for debugging.

use std::collections::HashMap;
use std::panic::{catch_unwind, AssertUnwindSafe};
use std::sync::atomic::{AtomicU64, Ordering as StdOrdering};
use std::sync::{Arc, Condvar, Mutex, MutexGuard};

/// Sentinel thread id for a location's initial value (visible to everyone).
const INIT_TID: usize = usize::MAX;

/// Sentinel for "no thread holds the token" (only once all have finished).
const NO_THREAD: usize = usize::MAX - 1;

/// Monotonic generation counter: one per execution, across every model run
/// in the process. Atomics cache their location id tagged with the
/// generation that created it, so a stale object re-registers lazily.
static GENERATION: AtomicU64 = AtomicU64::new(1);

/// Serializes whole model runs: the test harness runs tests on several
/// threads, and two concurrently exploring models would interleave real
/// threads through each other's token machinery.
static MODEL_MUTEX: Mutex<()> = Mutex::new(());

thread_local! {
    /// The executing model thread's identity, if any. `None` means the
    /// thread is outside any model: instrumented types fall back to plain
    /// `std` semantics.
    static CURRENT: std::cell::RefCell<Option<Ctx>> = const { std::cell::RefCell::new(None) };
}

/// A model thread's handle to the shared execution.
#[derive(Clone)]
pub(crate) struct Ctx {
    pub(crate) exec: Arc<Execution>,
    pub(crate) tid: usize,
}

/// Restores the previous `CURRENT` binding on drop (including unwinds).
struct CtxGuard {
    prev: Option<Ctx>,
}

impl CtxGuard {
    fn set(ctx: Ctx) -> CtxGuard {
        let prev = CURRENT.with(|c| c.borrow_mut().replace(ctx));
        CtxGuard { prev }
    }
}

impl Drop for CtxGuard {
    fn drop(&mut self) {
        let prev = self.prev.take();
        CURRENT.with(|c| *c.borrow_mut() = prev);
    }
}

/// Returns the calling thread's model context, if it is a model thread.
pub(crate) fn current() -> Option<Ctx> {
    CURRENT.with(|c| c.borrow().clone())
}

/// Whether the calling thread is executing inside a model.
pub(crate) fn in_model() -> bool {
    CURRENT.with(|c| c.borrow().is_some())
}

// ---------------------------------------------------------------------------
// Vector clocks
// ---------------------------------------------------------------------------

/// A vector clock: per-thread logical timestamps.
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub(crate) struct VClock(Vec<u64>);

impl VClock {
    fn get(&self, t: usize) -> u64 {
        self.0.get(t).copied().unwrap_or(0)
    }

    fn set(&mut self, t: usize, v: u64) {
        if self.0.len() <= t {
            self.0.resize(t + 1, 0);
        }
        self.0[t] = v;
    }

    fn tick(&mut self, t: usize) -> u64 {
        let v = self.get(t) + 1;
        self.set(t, v);
        v
    }

    fn join(&mut self, other: &VClock) {
        for (i, &v) in other.0.iter().enumerate() {
            if self.get(i) < v {
                self.set(i, v);
            }
        }
    }

    /// `self ≤ other` componentwise: everything recorded in `self`
    /// happens-before a thread whose clock is `other`.
    fn dominated_by(&self, other: &VClock) -> bool {
        self.0.iter().enumerate().all(|(i, &v)| v <= other.get(i))
    }
}

// ---------------------------------------------------------------------------
// Execution state
// ---------------------------------------------------------------------------

/// One store event in a location's modification order.
struct StoreEv {
    val: u64,
    tid: usize,
    ts: u64,
    /// Synchronization payload carried by the store: the storer's clock for
    /// `Release`-or-stronger stores; inherited by RMWs (release sequences);
    /// `None` for plain relaxed stores.
    rel: Option<VClock>,
}

impl StoreEv {
    fn happens_before(&self, clock: &VClock) -> bool {
        self.tid == INIT_TID || clock.get(self.tid) >= self.ts
    }
}

/// An atomic location's model state.
struct Location {
    stores: Vec<StoreEv>,
}

/// An [`crate::cell::UnsafeCell`]'s race-detection state.
struct CellState {
    /// Per-thread timestamp of the last write access.
    writes: VClock,
    /// Per-thread timestamp of the last read access.
    reads: VClock,
}

#[derive(Clone, Copy, PartialEq, Eq, Debug)]
enum Status {
    Runnable,
    /// Spinning: not scheduled again until some thread performs a store.
    Yielded,
    /// Waiting for child threads to finish.
    Blocked,
    Finished,
}

struct ThreadSt {
    status: Status,
    clock: VClock,
    /// Locations this thread loaded since its previous `yield_now` — the
    /// observable spin condition. A yield parks only when none of them has
    /// an unobserved newer store.
    recent_reads: Vec<usize>,
    /// Whether any read since the previous `yield_now` observed a store this
    /// thread had never seen before. A loop body that just learned something
    /// new may act on it next iteration without any further store, so the
    /// yield must not park.
    observed_new: bool,
    /// Coherence floor per location: the store index this thread last
    /// observed (it may never again observe an earlier one).
    last_seen: HashMap<usize, usize>,
    /// Bounded-staleness bookkeeping: `(store index, store count)` at this
    /// thread's previous read of the location.
    last_read: HashMap<usize, (usize, usize)>,
    /// Unfinished children this thread is blocked on.
    blocked_on: Vec<usize>,
}

impl ThreadSt {
    fn new(clock: VClock) -> ThreadSt {
        ThreadSt {
            status: Status::Runnable,
            clock,
            recent_reads: Vec::new(),
            observed_new: false,
            last_seen: HashMap::new(),
            last_read: HashMap::new(),
            blocked_on: Vec::new(),
        }
    }
}

#[derive(Clone, Copy, PartialEq, Eq, Debug)]
enum ChoiceKind {
    Schedule,
    Read,
}

impl ChoiceKind {
    fn letter(self) -> char {
        match self {
            ChoiceKind::Schedule => 't',
            ChoiceKind::Read => 'r',
        }
    }
}

/// One recorded branch point: the concrete options available (thread ids or
/// store indices) and which of them the current depth-first pass explores.
struct Choice {
    kind: ChoiceKind,
    options: Vec<usize>,
    cursor: usize,
}

/// Everything mutable about the in-flight execution, behind one mutex.
struct ExecState {
    gen: u64,
    threads: Vec<ThreadSt>,
    active: usize,
    locations: Vec<Location>,
    cells: Vec<CellState>,
    /// The exploration path. Persists across executions of one model run;
    /// `pos` is the cursor within the current execution.
    path: Vec<Choice>,
    pos: usize,
    preemptions: usize,
    /// Global `SeqCst` clock (single-total-order approximation).
    sc: VClock,
    /// Set on failure or teardown: instrumented operations bypass the
    /// scheduler (free-run) so unwinding guards and spin loops can finish.
    aborting: bool,
    failure: Option<String>,
    trace: Vec<String>,
    cfg: Config,
}

pub(crate) struct Execution {
    state: Mutex<ExecState>,
    cv: Condvar,
}

#[derive(Clone, Debug)]
pub(crate) struct Config {
    pub max_threads: usize,
    pub max_branches: usize,
    pub max_iterations: u64,
    pub preemption_bound: Option<usize>,
    pub seed: u64,
    pub replay: Option<Vec<(char, usize)>>,
}

impl Default for Config {
    fn default() -> Config {
        Config {
            max_threads: 8,
            max_branches: 20_000,
            max_iterations: 400_000,
            preemption_bound: Some(2),
            seed: 0,
            replay: None,
        }
    }
}

/// Outcome of a model run: how much was explored.
#[derive(Clone, Debug)]
pub struct Report {
    /// Executions (interleavings) explored.
    pub iterations: u64,
    /// Whether the bounded search space was fully enumerated (`false` when
    /// the run stopped at `max_iterations`).
    pub exhausted: bool,
}

fn lock(exec: &Execution) -> MutexGuard<'_, ExecState> {
    exec.state.lock().unwrap_or_else(|e| e.into_inner())
}

impl Execution {
    fn new(cfg: Config) -> Execution {
        Execution {
            state: Mutex::new(ExecState {
                gen: 0,
                threads: Vec::new(),
                active: 0,
                locations: Vec::new(),
                cells: Vec::new(),
                path: Vec::new(),
                pos: 0,
                preemptions: 0,
                sc: VClock::default(),
                aborting: false,
                failure: None,
                trace: Vec::new(),
                cfg,
            }),
            cv: Condvar::new(),
        }
    }

    fn begin_iteration(&self) {
        let mut st = lock(self);
        st.gen = GENERATION.fetch_add(1, StdOrdering::Relaxed);
        st.threads.clear();
        st.threads.push(ThreadSt::new({
            let mut c = VClock::default();
            c.tick(0);
            c
        }));
        st.active = 0;
        st.locations.clear();
        st.cells.clear();
        st.pos = 0;
        st.preemptions = 0;
        st.sc = VClock::default();
        st.aborting = false;
        st.failure = None;
        st.trace.clear();
    }

    /// Advances the depth-first path to the next unexplored schedule.
    /// Returns `false` once the whole bounded space has been enumerated.
    fn backtrack(&self) -> bool {
        let mut st = lock(self);
        while let Some(c) = st.path.last_mut() {
            if c.cursor + 1 < c.options.len() {
                c.cursor += 1;
                return true;
            }
            st.path.pop();
        }
        false
    }

    fn replay_string(&self) -> String {
        let st = lock(self);
        st.path[..st.pos]
            .iter()
            .map(|c| format!("{}{}", c.kind.letter(), c.options[c.cursor]))
            .collect::<Vec<_>>()
            .join(".")
    }

    fn trace_tail(&self) -> String {
        let st = lock(self);
        st.trace.join("\n")
    }
}

// ---------------------------------------------------------------------------
// Scheduling primitives (all called with the state lock held)
// ---------------------------------------------------------------------------

/// Deterministic seed-permutation of a branch's options.
fn permute(options: &mut [usize], seed: u64, depth: u64) {
    if seed == 0 || options.len() < 2 {
        return;
    }
    let mut x = (seed ^ depth.wrapping_mul(0x9E37_79B9_7F4A_7C15)) | 1;
    for i in (1..options.len()).rev() {
        // xorshift64
        x ^= x << 13;
        x ^= x >> 7;
        x ^= x << 17;
        options.swap(i, (x as usize) % (i + 1));
    }
}

/// Records (or replays) a branch point and returns the chosen option.
fn branch(st: &mut ExecState, kind: ChoiceKind, mut options: Vec<usize>) -> Result<usize, String> {
    debug_assert!(!options.is_empty());
    let depth = st.pos as u64;
    permute(&mut options, st.cfg.seed, depth);
    if let Some(replay) = &st.cfg.replay {
        // Forced schedule: follow the recorded decisions, defaulting to the
        // first option once the recording runs out.
        let chosen = match replay.get(st.pos) {
            Some(&(letter, value)) => {
                if letter != kind.letter() || !options.contains(&value) {
                    return Err(format!(
                        "replay mismatch at step {}: recorded {}{} but options are {}{:?}",
                        st.pos,
                        letter,
                        value,
                        kind.letter(),
                        options
                    ));
                }
                value
            }
            None => options[0],
        };
        st.path.push(Choice {
            kind,
            options: vec![chosen],
            cursor: 0,
        });
        st.pos += 1;
        return Ok(chosen);
    }
    if st.pos < st.path.len() {
        let c = &st.path[st.pos];
        if c.kind != kind || c.options != options {
            return Err(format!(
                "non-deterministic model closure: branch {} changed between executions \
                 (was {}{:?}, now {}{:?}); model closures must not branch on real time \
                 or external state",
                st.pos,
                c.kind.letter(),
                c.options,
                kind.letter(),
                options
            ));
        }
        let v = c.options[c.cursor];
        st.pos += 1;
        return Ok(v);
    }
    if st.path.len() >= st.cfg.max_branches {
        return Err(format!(
            "execution exceeded max_branches = {} (deepen the bound or shrink the model)",
            st.cfg.max_branches
        ));
    }
    let v = options[0];
    st.path.push(Choice {
        kind,
        options,
        cursor: 0,
    });
    st.pos += 1;
    Ok(v)
}

/// Picks the thread that executes the next operation. Preemption-bounded:
/// once the budget is spent, the current thread keeps running while it can.
fn choose_next(st: &mut ExecState, current: usize) -> Result<(), String> {
    let runnable: Vec<usize> = st
        .threads
        .iter()
        .enumerate()
        .filter(|(_, t)| t.status == Status::Runnable)
        .map(|(i, _)| i)
        .collect();
    if runnable.is_empty() {
        if st.threads.iter().all(|t| t.status == Status::Finished) {
            st.active = NO_THREAD;
            return Ok(());
        }
        let stuck: Vec<String> = st
            .threads
            .iter()
            .enumerate()
            .map(|(i, t)| format!("t{i}:{:?}", t.status))
            .collect();
        return Err(format!(
            "deadlock/livelock: no runnable thread ({}) — every unfinished thread is \
             spinning or blocked with nothing left to wake it",
            stuck.join(", ")
        ));
    }
    let current_runnable = runnable.contains(&current);
    let bounded = st.cfg.preemption_bound.is_some_and(|b| st.preemptions >= b);
    let options = if bounded && current_runnable {
        vec![current]
    } else {
        runnable
    };
    let chosen = if options.len() == 1 {
        options[0]
    } else {
        branch(st, ChoiceKind::Schedule, options)?
    };
    if chosen != current && current_runnable {
        st.preemptions += 1;
    }
    st.active = chosen;
    Ok(())
}

/// Updates `tid`'s coherence floor for `loc` after reading store `idx`,
/// flagging the read as observation progress if the thread had never seen
/// that store before (which keeps its next yield from parking).
fn note_observation(st: &mut ExecState, tid: usize, loc: usize, idx: usize) {
    let th = &mut st.threads[tid];
    if th.last_seen.get(&loc).is_none_or(|&p| idx > p) {
        th.observed_new = true;
    }
    th.last_seen.insert(loc, idx);
}

/// Any store wakes every spinning thread: its next spin iteration may now
/// observe something new.
fn wake_yielded(st: &mut ExecState) {
    for t in st.threads.iter_mut() {
        if t.status == Status::Yielded {
            t.status = Status::Runnable;
        }
    }
}

fn push_trace(st: &mut ExecState, line: String) {
    if st.trace.len() >= 64 {
        st.trace.remove(0);
    }
    st.trace.push(line);
}

// ---------------------------------------------------------------------------
// The per-operation entry point
// ---------------------------------------------------------------------------

/// Runs `op` as one scheduled step of the model: waits for the token,
/// applies the operation under the lock, schedules the next thread. During
/// teardown (`aborting`), runs `op` in free-run mode instead. Panics (after
/// releasing the lock) if the operation or the scheduler reports a failure,
/// which unwinds the model thread through its cleanup guards.
fn step<R>(
    ctx: &Ctx,
    op: impl FnOnce(&mut ExecState, usize) -> Result<R, String>,
    freerun: impl FnOnce(&mut ExecState, usize) -> R,
) -> R {
    let exec = &ctx.exec;
    let mut st = lock(exec);
    loop {
        if st.aborting {
            let r = freerun(&mut st, ctx.tid);
            drop(st);
            exec.cv.notify_all();
            return r;
        }
        if st.active == ctx.tid {
            break;
        }
        st = exec.cv.wait(st).unwrap_or_else(|e| e.into_inner());
    }
    let result = op(&mut st, ctx.tid).and_then(|r| choose_next(&mut st, ctx.tid).map(|()| r));
    match result {
        Ok(r) => {
            drop(st);
            exec.cv.notify_all();
            r
        }
        Err(msg) => {
            st.aborting = true;
            if st.failure.is_none() {
                st.failure = Some(msg.clone());
            }
            drop(st);
            exec.cv.notify_all();
            panic!("model check failure: {msg}");
        }
    }
}

/// Blocks the calling model thread until its status is `Runnable` and it
/// holds the token again (or the execution is aborting).
fn wait_until_scheduled(ctx: &Ctx) {
    let exec = &ctx.exec;
    let mut st = lock(exec);
    while !st.aborting && st.active != ctx.tid {
        st = exec.cv.wait(st).unwrap_or_else(|e| e.into_inner());
    }
}

// ---------------------------------------------------------------------------
// Atomic location modeling
// ---------------------------------------------------------------------------

/// Instrumented atomic storage shared by every [`crate::sync::atomic`] type:
/// a plain fallback value for use outside models, plus a lazily-registered
/// model location tagged with the execution generation that created it.
pub(crate) struct ModelAtomic {
    fallback: AtomicU64,
    /// `(generation << 24) | (location id + 1)`; 0 = unregistered.
    tag: AtomicU64,
}

const TAG_LOC_BITS: u64 = 24;
const TAG_LOC_MASK: u64 = (1 << TAG_LOC_BITS) - 1;

impl ModelAtomic {
    pub(crate) const fn new(v: u64) -> ModelAtomic {
        ModelAtomic {
            fallback: AtomicU64::new(v),
            tag: AtomicU64::new(0),
        }
    }

    pub(crate) fn fallback_value(&self) -> u64 {
        self.fallback.load(StdOrdering::Relaxed)
    }

    /// Resolves (registering if needed) this atomic's location id within the
    /// active execution. Called with the state lock held.
    fn loc(&self, st: &mut ExecState) -> usize {
        let tag = self.tag.load(StdOrdering::Relaxed);
        if tag >> TAG_LOC_BITS == st.gen && tag & TAG_LOC_MASK != 0 {
            return ((tag & TAG_LOC_MASK) - 1) as usize;
        }
        let id = st.locations.len();
        assert!((id as u64) < TAG_LOC_MASK - 1, "model location id overflow");
        st.locations.push(Location {
            stores: vec![StoreEv {
                val: self.fallback_value(),
                tid: INIT_TID,
                ts: 0,
                rel: None,
            }],
        });
        self.tag.store(
            (st.gen << TAG_LOC_BITS) | (id as u64 + 1),
            StdOrdering::Relaxed,
        );
        id
    }

    pub(crate) fn load(&self, ord: crate::sync::atomic::Ordering) -> u64 {
        match current() {
            None => self.fallback.load(StdOrdering::Relaxed),
            Some(ctx) => step(
                &ctx,
                |st, tid| {
                    let loc = self.loc(st);
                    do_load(st, tid, loc, ord)
                },
                |st, _| {
                    let loc = self.loc(st);
                    st.locations[loc].stores.last().map_or(0, |s| s.val)
                },
            ),
        }
    }

    pub(crate) fn store(&self, val: u64, ord: crate::sync::atomic::Ordering) {
        match current() {
            None => self.fallback.store(val, StdOrdering::Relaxed),
            Some(ctx) => {
                step(
                    &ctx,
                    |st, tid| {
                        let loc = self.loc(st);
                        do_store(st, tid, loc, val, ord);
                        Ok(())
                    },
                    |st, tid| {
                        let loc = self.loc(st);
                        free_store(st, tid, loc, val);
                    },
                );
                self.fallback.store(val, StdOrdering::Relaxed);
            }
        }
    }

    /// Read-modify-write: applies `f` to the latest value; `None` means
    /// "fail the exchange" (the comparison part of `compare_exchange`).
    /// Returns the previous value and whether the write happened. `Fn`
    /// because the out-of-model fallback is a CAS retry loop.
    pub(crate) fn rmw(
        &self,
        ord: crate::sync::atomic::Ordering,
        f: impl Fn(u64) -> Option<u64>,
    ) -> (u64, bool) {
        match current() {
            None => {
                // Outside a model: emulate with a CAS loop over the fallback.
                let mut old = self.fallback.load(StdOrdering::SeqCst);
                loop {
                    match f(old) {
                        None => return (old, false),
                        Some(new) => match self.fallback.compare_exchange(
                            old,
                            new,
                            StdOrdering::SeqCst,
                            StdOrdering::SeqCst,
                        ) {
                            Ok(_) => return (old, true),
                            Err(v) => old = v,
                        },
                    }
                }
            }
            Some(ctx) => {
                let (old, wrote) = step(
                    &ctx,
                    |st, tid| {
                        let loc = self.loc(st);
                        Ok(do_rmw(st, tid, loc, ord, &f))
                    },
                    |st, tid| {
                        let loc = self.loc(st);
                        let old = st.locations[loc].stores.last().map_or(0, |s| s.val);
                        match f(old) {
                            None => (old, false),
                            Some(new) => {
                                free_store(st, tid, loc, new);
                                (old, true)
                            }
                        }
                    },
                );
                if wrote {
                    // Mirror the latest model value for post-model readers.
                    let mut st = lock(&ctx.exec);
                    let loc = self.loc(&mut st);
                    let latest = st.locations[loc].stores.last().map_or(0, |s| s.val);
                    drop(st);
                    self.fallback.store(latest, StdOrdering::Relaxed);
                }
                (old, wrote)
            }
        }
    }
}

impl std::fmt::Debug for ModelAtomic {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "{}", self.fallback_value())
    }
}

use crate::sync::atomic::Ordering;

fn is_acquire(ord: Ordering) -> bool {
    matches!(ord, Ordering::Acquire | Ordering::AcqRel | Ordering::SeqCst)
}

fn is_release(ord: Ordering) -> bool {
    matches!(ord, Ordering::Release | Ordering::AcqRel | Ordering::SeqCst)
}

fn do_load(st: &mut ExecState, tid: usize, loc: usize, ord: Ordering) -> Result<u64, String> {
    st.threads[tid].clock.tick(tid);
    if ord == Ordering::SeqCst {
        let sc = st.sc.clone();
        st.threads[tid].clock.join(&sc);
    }
    let n = st.locations[loc].stores.len();
    let mut floor = st.threads[tid].last_seen.get(&loc).copied().unwrap_or(0);
    // Happens-before: a load may not observe a store older than the newest
    // store already ordered before this thread's current point.
    for i in (floor..n).rev() {
        let clock = &st.threads[tid].clock;
        if st.locations[loc].stores[i].happens_before(clock) {
            floor = floor.max(i);
            break;
        }
    }
    // Bounded staleness: re-reading with no intervening store must make
    // progress toward the latest value, so model spin loops terminate.
    if let Some(&(idx, count)) = st.threads[tid].last_read.get(&loc) {
        if count == n && idx + 1 < n {
            floor = floor.max(idx + 1);
        } else {
            floor = floor.max(idx);
        }
    }
    let chosen = if floor + 1 >= n {
        n - 1
    } else {
        branch(st, ChoiceKind::Read, (floor..n).collect())?
    };
    if is_acquire(ord) {
        if let Some(rel) = st.locations[loc].stores[chosen].rel.clone() {
            st.threads[tid].clock.join(&rel);
        }
    }
    if ord == Ordering::SeqCst {
        let clock = st.threads[tid].clock.clone();
        st.sc.join(&clock);
    }
    note_observation(st, tid, loc, chosen);
    st.threads[tid].last_read.insert(loc, (chosen, n));
    if !st.threads[tid].recent_reads.contains(&loc) {
        st.threads[tid].recent_reads.push(loc);
    }
    let val = st.locations[loc].stores[chosen].val;
    push_trace(
        st,
        format!("t{tid} load  loc{loc}[{chosen}] -> {val} ({ord:?})"),
    );
    Ok(val)
}

fn do_store(st: &mut ExecState, tid: usize, loc: usize, val: u64, ord: Ordering) {
    let ts = st.threads[tid].clock.tick(tid);
    if ord == Ordering::SeqCst {
        let sc = st.sc.clone();
        st.threads[tid].clock.join(&sc);
    }
    let rel = is_release(ord).then(|| st.threads[tid].clock.clone());
    if ord == Ordering::SeqCst {
        let clock = st.threads[tid].clock.clone();
        st.sc.join(&clock);
    }
    st.locations[loc].stores.push(StoreEv { val, tid, ts, rel });
    let idx = st.locations[loc].stores.len() - 1;
    st.threads[tid].last_seen.insert(loc, idx);
    st.threads[tid].last_read.insert(loc, (idx, idx + 1));
    push_trace(
        st,
        format!("t{tid} store loc{loc}[{idx}] <- {val} ({ord:?})"),
    );
    wake_yielded(st);
}

fn do_rmw(
    st: &mut ExecState,
    tid: usize,
    loc: usize,
    ord: Ordering,
    f: impl Fn(u64) -> Option<u64>,
) -> (u64, bool) {
    let ts = st.threads[tid].clock.tick(tid);
    if ord == Ordering::SeqCst {
        let sc = st.sc.clone();
        st.threads[tid].clock.join(&sc);
    }
    // Atomicity: an RMW always observes the latest store.
    let last = st.locations[loc].stores.len() - 1;
    let old = st.locations[loc].stores[last].val;
    let new = f(old);
    if is_acquire(ord) {
        if let Some(rel) = st.locations[loc].stores[last].rel.clone() {
            st.threads[tid].clock.join(&rel);
        }
    }
    match new {
        None => {
            note_observation(st, tid, loc, last);
            st.threads[tid].last_read.insert(loc, (last, last + 1));
            push_trace(st, format!("t{tid} rmw   loc{loc} fail at {old} ({ord:?})"));
            (old, false)
        }
        Some(new) => {
            // Release-sequence carry: the new store inherits the displaced
            // store's synchronization payload, extended by our own clock if
            // this RMW releases.
            let mut rel = st.locations[loc].stores[last].rel.clone();
            if is_release(ord) {
                let clock = st.threads[tid].clock.clone();
                match &mut rel {
                    Some(r) => r.join(&clock),
                    None => rel = Some(clock),
                }
            }
            if ord == Ordering::SeqCst {
                let clock = st.threads[tid].clock.clone();
                st.sc.join(&clock);
            }
            st.locations[loc].stores.push(StoreEv {
                val: new,
                tid,
                ts,
                rel,
            });
            let idx = st.locations[loc].stores.len() - 1;
            // The RMW *read* store `last`; the self-authored store at `idx`
            // is not an observation, only the new coherence floor.
            note_observation(st, tid, loc, last);
            st.threads[tid].last_seen.insert(loc, idx);
            st.threads[tid].last_read.insert(loc, (idx, idx + 1));
            push_trace(
                st,
                format!("t{tid} rmw   loc{loc}[{idx}] {old} -> {new} ({ord:?})"),
            );
            wake_yielded(st);
            (old, true)
        }
    }
}

/// Teardown-mode store: latest-value semantics, no scheduling.
fn free_store(st: &mut ExecState, tid: usize, loc: usize, val: u64) {
    let tid = if tid < st.threads.len() { tid } else { 0 };
    let ts = st.threads[tid].clock.tick(tid);
    st.locations[loc].stores.push(StoreEv {
        val,
        tid,
        ts,
        rel: None,
    });
    wake_yielded(st);
}

// ---------------------------------------------------------------------------
// Cells
// ---------------------------------------------------------------------------

/// Registers/validates an [`crate::cell::UnsafeCell`] access; panics with a
/// data-race counterexample when the access is not ordered against every
/// conflicting one.
pub(crate) fn cell_access(tag: &AtomicU64, write: bool) {
    let Some(ctx) = current() else { return };
    step(
        &ctx,
        |st, tid| {
            let id = {
                let t = tag.load(StdOrdering::Relaxed);
                if t >> TAG_LOC_BITS == st.gen && t & TAG_LOC_MASK != 0 {
                    ((t & TAG_LOC_MASK) - 1) as usize
                } else {
                    let id = st.cells.len();
                    st.cells.push(CellState {
                        writes: VClock::default(),
                        reads: VClock::default(),
                    });
                    tag.store(
                        (st.gen << TAG_LOC_BITS) | (id as u64 + 1),
                        StdOrdering::Relaxed,
                    );
                    id
                }
            };
            let ts = st.threads[tid].clock.tick(tid);
            let clock = st.threads[tid].clock.clone();
            let cell = &mut st.cells[id];
            let ordered = if write {
                cell.writes.dominated_by(&clock) && cell.reads.dominated_by(&clock)
            } else {
                cell.writes.dominated_by(&clock)
            };
            if !ordered {
                return Err(format!(
                    "data race: t{tid} {} an UnsafeCell concurrently with an unordered {}",
                    if write { "writes" } else { "reads" },
                    if write { "access" } else { "write" },
                ));
            }
            if write {
                cell.writes.set(tid, ts);
            } else {
                cell.reads.set(tid, ts);
            }
            Ok(())
        },
        |_, _| (),
    );
}

// ---------------------------------------------------------------------------
// Thread events
// ---------------------------------------------------------------------------

/// Model `yield_now`: deschedules the thread until another thread stores.
///
/// Progress rule: the spin condition is whatever the thread *loaded since
/// its previous yield* ([`ThreadSt::recent_reads`]). The yield keeps the
/// thread runnable if either
///
/// 1. one of those locations has an unobserved newer store — the
///    bounded-staleness rule in [`do_load`] forces the next read of it to
///    advance, or
/// 2. some read this window observed a store the thread had never seen
///    ([`ThreadSt::observed_new`]) — the loop body may act on the new value
///    next iteration without any further store (e.g. a drain loop that
///    re-checks a cursor *after* its yield point).
///
/// Otherwise it parks until some store wakes it ([`wake_yielded`]). Scoping
/// the check to recent reads (not everything the thread ever read) is what
/// lets a phase-gate spinner park even while unrelated locations it touched
/// earlier (block cursors, arrival counters) still hold stores it will
/// never re-read. Both escape clauses are bounded by the finite store count,
/// so yields cannot stay runnable forever.
pub(crate) fn yield_now() {
    match current() {
        None => std::thread::yield_now(),
        Some(ctx) => {
            step(
                &ctx,
                |st, tid| {
                    let th = &st.threads[tid];
                    let has_unseen = th.recent_reads.iter().any(|&loc| {
                        th.last_read
                            .get(&loc)
                            .is_some_and(|&(idx, _)| idx + 1 < st.locations[loc].stores.len())
                    });
                    let progressed = th.observed_new;
                    st.threads[tid].recent_reads.clear();
                    st.threads[tid].observed_new = false;
                    if !has_unseen && !progressed {
                        st.threads[tid].status = Status::Yielded;
                        push_trace(st, format!("t{tid} yield (parked)"));
                    } else {
                        push_trace(st, format!("t{tid} yield"));
                    }
                    Ok(())
                },
                |_, _| (),
            );
            wait_until_scheduled(&ctx);
        }
    }
}

/// Registers a child thread; returns its model thread id.
pub(crate) fn register_child(ctx: &Ctx) -> usize {
    step(
        ctx,
        |st, tid| {
            if st.threads.len() >= st.cfg.max_threads {
                return Err(format!(
                    "model thread limit exceeded (max_threads = {})",
                    st.cfg.max_threads
                ));
            }
            let child = st.threads.len();
            st.threads[tid].clock.tick(tid);
            let mut clock = st.threads[tid].clock.clone();
            clock.tick(child);
            st.threads.push(ThreadSt::new(clock));
            push_trace(st, format!("t{tid} spawn t{child}"));
            Ok(child)
        },
        |st, _| {
            // Teardown spawn: register unscheduled so clocks stay indexable.
            let child = st.threads.len();
            st.threads.push(ThreadSt::new(VClock::default()));
            child
        },
    )
}

/// Extracts a printable message from a panic payload.
pub(crate) fn payload_msg(payload: &(dyn std::any::Any + Send)) -> String {
    payload
        .downcast_ref::<String>()
        .cloned()
        .or_else(|| payload.downcast_ref::<&str>().map(|s| (*s).to_string()))
        .unwrap_or_else(|| "non-string panic payload".to_string())
}

/// Runs `f` as the body of model thread `tid`, converting panics into an
/// execution abort so sibling threads tear down instead of deadlocking. The
/// panic message is recorded as the execution's failure: the payload itself
/// gets swallowed by whatever join machinery sits between this thread and
/// the checker.
pub(crate) fn run_child<R>(exec: Arc<Execution>, tid: usize, f: impl FnOnce() -> R) -> R {
    let ctx = Ctx { exec, tid };
    let _guard = CtxGuard::set(ctx.clone());
    let result = catch_unwind(AssertUnwindSafe(f));
    finish_thread(&ctx);
    match result {
        Ok(r) => r,
        Err(payload) => {
            {
                let mut st = lock(&ctx.exec);
                if st.failure.is_none() {
                    st.failure = Some(payload_msg(payload.as_ref()));
                }
            }
            abort_execution(&ctx.exec);
            std::panic::resume_unwind(payload);
        }
    }
}

/// Marks the calling model thread finished and wakes any joiner.
pub(crate) fn finish_thread(ctx: &Ctx) {
    step(
        ctx,
        |st, tid| {
            st.threads[tid].status = Status::Finished;
            // Joiners pick up this thread's clock in `block_on_children`
            // (the join-synchronization edge); here we only unblock them.
            for i in 0..st.threads.len() {
                if st.threads[i].status == Status::Blocked {
                    st.threads[i].blocked_on.retain(|&c| c != tid);
                    if st.threads[i].blocked_on.is_empty() {
                        st.threads[i].status = Status::Runnable;
                    }
                }
            }
            push_trace(st, format!("t{tid} finish"));
            Ok(())
        },
        |st, tid| {
            if tid < st.threads.len() {
                st.threads[tid].status = Status::Finished;
                for i in 0..st.threads.len() {
                    if st.threads[i].status == Status::Blocked {
                        st.threads[i].blocked_on.retain(|&c| c != tid);
                        if st.threads[i].blocked_on.is_empty() {
                            st.threads[i].status = Status::Runnable;
                        }
                    }
                }
            }
        },
    );
}

/// Blocks the calling model thread until every thread in `children` has
/// finished, then joins their clocks (the join-synchronization edge).
pub(crate) fn block_on_children(ctx: &Ctx, children: &[usize]) {
    let must_wait = step(
        ctx,
        |st, tid| {
            let remaining: Vec<usize> = children
                .iter()
                .copied()
                .filter(|&c| st.threads[c].status != Status::Finished)
                .collect();
            let wait = !remaining.is_empty();
            if wait {
                st.threads[tid].status = Status::Blocked;
                st.threads[tid].blocked_on = remaining;
                push_trace(st, format!("t{tid} join-wait"));
            }
            Ok(wait)
        },
        |_, _| false,
    );
    if must_wait {
        wait_until_scheduled(ctx);
    }
    // Join-synchronization: the children's effects happen-before the joiner.
    let mut st = lock(&ctx.exec);
    for &c in children {
        if c < st.threads.len() {
            let child_clock = st.threads[c].clock.clone();
            st.threads[ctx.tid].clock.join(&child_clock);
        }
    }
}

/// Flags the execution as aborting and wakes everything: instrumented
/// operations switch to free-run teardown semantics.
pub(crate) fn abort_execution(exec: &Execution) {
    let mut st = lock(exec);
    st.aborting = true;
    drop(st);
    exec.cv.notify_all();
}

// ---------------------------------------------------------------------------
// Model entry point
// ---------------------------------------------------------------------------

/// Runs the bounded-exhaustive exploration of `f`. See [`crate::Builder`].
pub(crate) fn check(cfg: Config, f: impl Fn()) -> Report {
    let _serial = MODEL_MUTEX.lock().unwrap_or_else(|e| e.into_inner());
    let replay_mode = cfg.replay.is_some();
    let max_iterations = cfg.max_iterations;
    let exec = Arc::new(Execution::new(cfg));
    let mut iterations = 0u64;
    loop {
        iterations += 1;
        exec.begin_iteration();
        let ctx = Ctx {
            exec: Arc::clone(&exec),
            tid: 0,
        };
        let result = {
            let _guard = CtxGuard::set(ctx.clone());
            let r = catch_unwind(AssertUnwindSafe(&f));
            if r.is_ok() {
                finish_thread(&ctx);
            } else {
                abort_execution(&exec);
            }
            r
        };
        if result.is_ok() {
            let unjoined = lock(&exec)
                .threads
                .iter()
                .any(|t| t.status != Status::Finished);
            if unjoined {
                abort_execution(&exec);
                panic!(
                    "model closure returned with unjoined model threads; join every \
                     spawned thread (or use thread::scope) before returning"
                );
            }
        }
        let failure = lock(&exec).failure.clone();
        if let Err(payload) = result {
            let replay = exec.replay_string();
            let trace = exec.trace_tail();
            // Prefer the recorded failure: panics that crossed a join came
            // out the other side as an opaque `Any` unwrap message.
            let msg = failure.unwrap_or_else(|| payload_msg(payload.as_ref()));
            panic!(
                "model check failed on execution {iterations}: {msg}\n\
                 replay schedule: \"{replay}\"\n\
                 recent operations:\n{trace}\n"
            );
        }
        if let Some(msg) = failure {
            let replay = exec.replay_string();
            panic!(
                "model check failed on execution {iterations}: {msg}\n\
                 replay schedule: \"{replay}\"\n"
            );
        }
        if replay_mode {
            return Report {
                iterations,
                exhausted: false,
            };
        }
        if !exec.backtrack() {
            return Report {
                iterations,
                exhausted: true,
            };
        }
        if iterations >= max_iterations {
            eprintln!(
                "loom: stopping after {iterations} executions without exhausting the \
                 schedule space (raise max_iterations for a complete proof)"
            );
            return Report {
                iterations,
                exhausted: false,
            };
        }
    }
}

/// Parses a replay string (`"t1.r0.t0"`) into forced branch decisions.
pub(crate) fn parse_replay(s: &str) -> Vec<(char, usize)> {
    s.split('.')
        .filter(|p| !p.is_empty())
        .map(|p| {
            let letter = p.chars().next().expect("empty replay step");
            let value: usize = p[1..]
                .parse()
                .unwrap_or_else(|_| panic!("bad replay step {p:?}: expected t<id> or r<index>"));
            (letter, value)
        })
        .collect()
}
