//! Model-aware `std::hint` subset.

/// Spin-loop hint. Inside a model this is a yield — the scheduler
/// deprioritizes the spinner until another thread stores something — which
/// is what makes unbounded spin loops explorable instead of divergent.
pub fn spin_loop() {
    if crate::rt::in_model() {
        crate::rt::yield_now();
    } else {
        std::hint::spin_loop();
    }
}
