//! Offline stand-in for the `criterion` crate.
//!
//! The build environment has no access to crates.io, so this shim provides
//! the subset the bench crate uses — groups, `bench_with_input`,
//! `Bencher::iter`, the `criterion_group!`/`criterion_main!` macros — with a
//! real calibrated timing loop. On exit every run also writes a
//! machine-readable `BENCH_<target>.json` artifact (override the directory
//! with `GATSPI_BENCH_DIR`) so successive PRs can compare measurements.

#![deny(missing_docs)]

use std::fmt::Display;
use std::hint::black_box as std_black_box;
use std::time::{Duration, Instant};

/// Re-export of `std::hint::black_box` under criterion's name.
pub fn black_box<T>(x: T) -> T {
    std_black_box(x)
}

/// One finished measurement.
#[derive(Debug, Clone)]
pub struct Measurement {
    /// `group/function/parameter` label.
    pub id: String,
    /// Mean wall time per iteration, nanoseconds.
    pub mean_ns: f64,
    /// Samples taken.
    pub samples: usize,
    /// Iterations per sample.
    pub iters_per_sample: u64,
}

/// Benchmark driver: holds configuration and collects measurements.
#[derive(Debug)]
pub struct Criterion {
    sample_size: usize,
    measurement_time: Duration,
    results: Vec<Measurement>,
}

impl Default for Criterion {
    fn default() -> Self {
        Criterion {
            sample_size: 10,
            measurement_time: Duration::from_secs(1),
            results: Vec::new(),
        }
    }
}

impl Criterion {
    /// Sets how many samples each benchmark takes.
    #[must_use]
    pub fn sample_size(mut self, n: usize) -> Self {
        self.sample_size = n.max(2);
        self
    }

    /// Sets the per-benchmark measurement budget.
    #[must_use]
    pub fn measurement_time(mut self, t: Duration) -> Self {
        self.measurement_time = t;
        self
    }

    /// Opens a named benchmark group.
    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup<'_> {
        BenchmarkGroup {
            name: name.into(),
            parent: self,
        }
    }

    /// Prints a summary and writes the JSON artifact. Called by
    /// `criterion_main!` after all groups ran.
    pub fn final_summary(&self) {
        let target = bench_target_name();
        for m in &self.results {
            println!(
                "{:<48} {:>12.1} ns/iter  ({} samples x {} iters)",
                m.id, m.mean_ns, m.samples, m.iters_per_sample
            );
        }
        let dir = std::env::var("GATSPI_BENCH_DIR").unwrap_or_else(|_| ".".into());
        let path = format!("{dir}/BENCH_{target}.json");
        let mut json = String::from("{\n");
        json.push_str(&format!("  \"target\": \"{target}\",\n"));
        json.push_str("  \"unit\": \"ns_per_iter\",\n  \"benchmarks\": [\n");
        for (i, m) in self.results.iter().enumerate() {
            json.push_str(&format!(
                "    {{\"id\": \"{}\", \"mean_ns\": {:.3}, \"samples\": {}, \"iters_per_sample\": {}}}{}\n",
                m.id.replace('"', "'"),
                m.mean_ns,
                m.samples,
                m.iters_per_sample,
                if i + 1 == self.results.len() { "" } else { "," }
            ));
        }
        json.push_str("  ]\n}\n");
        if let Err(e) = std::fs::write(&path, json) {
            eprintln!("criterion shim: could not write {path}: {e}");
        } else {
            println!("wrote {path}");
        }
    }
}

/// Derives the bench target name from argv[0], stripping cargo's `-<hash>`
/// suffix.
fn bench_target_name() -> String {
    let arg0 = std::env::args().next().unwrap_or_default();
    let stem = std::path::Path::new(&arg0)
        .file_stem()
        .and_then(|s| s.to_str())
        .unwrap_or("bench")
        .to_string();
    match stem.rsplit_once('-') {
        Some((base, hash)) if hash.len() >= 8 && hash.bytes().all(|b| b.is_ascii_hexdigit()) => {
            base.to_string()
        }
        _ => stem,
    }
}

/// A named set of related benchmarks.
pub struct BenchmarkGroup<'a> {
    name: String,
    parent: &'a mut Criterion,
}

impl BenchmarkGroup<'_> {
    /// Runs one parameterised benchmark.
    pub fn bench_with_input<I, F>(&mut self, id: BenchmarkId, input: &I, mut f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher, &I),
    {
        let mut bencher = Bencher {
            sample_size: self.parent.sample_size,
            measurement_time: self.parent.measurement_time,
            result: None,
        };
        f(&mut bencher, input);
        if let Some(mut m) = bencher.result {
            m.id = format!("{}/{}", self.name, m.id.replacen("?", &id.label, 1));
            self.parent.results.push(m);
        }
        self
    }

    /// Ends the group (kept for API compatibility; results are recorded as
    /// they finish).
    pub fn finish(&mut self) {}
}

/// Identifier of one benchmark within a group.
pub struct BenchmarkId {
    label: String,
}

impl BenchmarkId {
    /// `function_name/parameter` identifier.
    pub fn new(function: impl Into<String>, parameter: impl Display) -> Self {
        BenchmarkId {
            label: format!("{}/{}", function.into(), parameter),
        }
    }
}

/// Timing harness handed to each benchmark closure.
pub struct Bencher {
    sample_size: usize,
    measurement_time: Duration,
    result: Option<Measurement>,
}

impl Bencher {
    /// Measures `f`: calibrates an iteration count, then takes
    /// `sample_size` timed samples within the measurement budget.
    pub fn iter<R, F: FnMut() -> R>(&mut self, mut f: F) {
        // Calibration: find iters such that one sample takes >= budget/samples.
        let per_sample = self.measurement_time.as_secs_f64() / self.sample_size as f64;
        let mut iters = 1u64;
        let iter_ns = loop {
            let t0 = Instant::now();
            for _ in 0..iters {
                std_black_box(f());
            }
            let dt = t0.elapsed().as_secs_f64();
            if dt >= per_sample.min(0.01) || iters >= 1 << 24 {
                break dt * 1e9 / iters as f64;
            }
            iters *= 4;
        };
        let iters_per_sample =
            ((per_sample * 1e9 / iter_ns.max(0.1)).ceil() as u64).clamp(1, 1 << 26);
        let mut total_ns = 0.0f64;
        for _ in 0..self.sample_size {
            let t0 = Instant::now();
            for _ in 0..iters_per_sample {
                std_black_box(f());
            }
            total_ns += t0.elapsed().as_secs_f64() * 1e9;
        }
        self.result = Some(Measurement {
            id: "?".to_string(),
            mean_ns: total_ns / (self.sample_size as u64 * iters_per_sample) as f64,
            samples: self.sample_size,
            iters_per_sample,
        });
    }
}

/// Declares a group of benchmark functions, criterion-style.
#[macro_export]
macro_rules! criterion_group {
    (name = $name:ident; config = $config:expr; targets = $($target:path),* $(,)?) => {
        pub fn $name() {
            let mut criterion: $crate::Criterion = $config;
            $( $target(&mut criterion); )*
            criterion.final_summary();
        }
    };
    ($name:ident, $($target:path),* $(,)?) => {
        $crate::criterion_group! {
            name = $name;
            config = $crate::Criterion::default();
            targets = $($target),*
        }
    };
}

/// Declares the bench `main` running each group.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),* $(,)?) => {
        fn main() {
            $( $group(); )*
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bencher_measures_something() {
        let mut c = Criterion::default()
            .sample_size(3)
            .measurement_time(Duration::from_millis(30));
        let mut g = c.benchmark_group("g");
        g.bench_with_input(BenchmarkId::new("f", 1), &1u32, |b, &x| {
            b.iter(|| x.wrapping_mul(3))
        });
        g.finish();
        assert_eq!(c.results.len(), 1);
        assert!(c.results[0].mean_ns > 0.0);
        assert_eq!(c.results[0].id, "g/f/1");
    }

    #[test]
    fn target_name_strips_hash() {
        // Indirect check of the suffix logic via rsplit_once behaviour.
        assert_eq!(
            match "kernel_micro-0a1b2c3d4e5f6789".rsplit_once('-') {
                Some((base, h)) if h.len() >= 8 && h.bytes().all(|b| b.is_ascii_hexdigit()) => base,
                _ => "kernel_micro-0a1b2c3d4e5f6789",
            },
            "kernel_micro"
        );
    }
}
