//! Offline stand-in for the `rand` crate.
//!
//! The build environment has no access to crates.io, so this shim provides
//! the subset the workloads crate uses: a deterministic seeded generator
//! ([`rngs::StdRng`], here xoshiro256++ seeded via SplitMix64) behind the
//! [`Rng`] / [`SeedableRng`] trait split, with `gen_bool` and `gen_range`
//! over integer and float ranges. The streams are *not* bit-compatible with
//! upstream `rand`; workloads only require determinism per seed.

#![deny(missing_docs)]

use std::ops::{Range, RangeInclusive};

/// Types that can sample ranges and booleans.
pub trait Rng {
    /// The next 64 uniformly random bits.
    fn next_u64(&mut self) -> u64;

    /// Returns `true` with probability `p`.
    ///
    /// # Panics
    ///
    /// Panics if `p` is not in `[0, 1]`.
    fn gen_bool(&mut self, p: f64) -> bool {
        assert!((0.0..=1.0).contains(&p), "gen_bool p out of range: {p}");
        self.next_f64() < p
    }

    /// A uniform `f64` in `[0, 1)`.
    fn next_f64(&mut self) -> f64 {
        // 53 random mantissa bits.
        (self.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }

    /// Samples uniformly from a range (`a..b`, `a..=b`, integer or float).
    ///
    /// # Panics
    ///
    /// Panics on empty ranges.
    fn gen_range<T, R>(&mut self, range: R) -> T
    where
        R: SampleRange<T>,
        Self: Sized,
    {
        range.sample(self)
    }
}

/// Ranges that can be sampled by an [`Rng`].
pub trait SampleRange<T> {
    /// Draws one uniform sample.
    fn sample<R: Rng>(self, rng: &mut R) -> T;
}

macro_rules! impl_int_range {
    ($($t:ty),*) => {$(
        impl SampleRange<$t> for Range<$t> {
            fn sample<R: Rng>(self, rng: &mut R) -> $t {
                assert!(self.start < self.end, "empty range");
                let span = (self.end as i128 - self.start as i128) as u128;
                let v = (u128::from(rng.next_u64()) % span) as i128;
                (self.start as i128 + v) as $t
            }
        }
        impl SampleRange<$t> for RangeInclusive<$t> {
            fn sample<R: Rng>(self, rng: &mut R) -> $t {
                let (a, b) = (*self.start(), *self.end());
                assert!(a <= b, "empty range");
                let span = (b as i128 - a as i128 + 1) as u128;
                let v = (u128::from(rng.next_u64()) % span) as i128;
                (a as i128 + v) as $t
            }
        }
    )*};
}

impl_int_range!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl SampleRange<f64> for Range<f64> {
    fn sample<R: Rng>(self, rng: &mut R) -> f64 {
        assert!(self.start < self.end, "empty range");
        self.start + (self.end - self.start) * rng.next_f64()
    }
}

/// Generators constructible from a seed.
pub trait SeedableRng: Sized {
    /// Builds a generator whose stream is a deterministic function of
    /// `seed`.
    fn seed_from_u64(seed: u64) -> Self;
}

/// Named generator types, mirroring `rand::rngs`.
pub mod rngs {
    use super::{Rng, SeedableRng};

    /// The workspace's standard PRNG: xoshiro256++ with SplitMix64 seeding.
    #[derive(Debug, Clone)]
    pub struct StdRng {
        s: [u64; 4],
    }

    impl SeedableRng for StdRng {
        fn seed_from_u64(seed: u64) -> Self {
            // SplitMix64 expansion, the reference seeding for xoshiro.
            let mut x = seed;
            let mut next = || {
                x = x.wrapping_add(0x9E37_79B9_7F4A_7C15);
                let mut z = x;
                z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
                z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
                z ^ (z >> 31)
            };
            StdRng {
                s: [next(), next(), next(), next()],
            }
        }
    }

    impl Rng for StdRng {
        fn next_u64(&mut self) -> u64 {
            let result = self.s[0]
                .wrapping_add(self.s[3])
                .rotate_left(23)
                .wrapping_add(self.s[0]);
            let t = self.s[1] << 17;
            self.s[2] ^= self.s[0];
            self.s[3] ^= self.s[1];
            self.s[1] ^= self.s[2];
            self.s[0] ^= self.s[3];
            self.s[2] ^= t;
            self.s[3] = self.s[3].rotate_left(45);
            result
        }
    }
}

#[cfg(test)]
mod tests {
    use super::rngs::StdRng;
    use super::{Rng, SeedableRng};

    #[test]
    fn deterministic_per_seed() {
        let mut a = StdRng::seed_from_u64(7);
        let mut b = StdRng::seed_from_u64(7);
        for _ in 0..100 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
        let mut c = StdRng::seed_from_u64(8);
        assert_ne!(a.next_u64(), c.next_u64());
    }

    #[test]
    fn ranges_in_bounds() {
        let mut r = StdRng::seed_from_u64(1);
        for _ in 0..1000 {
            let v = r.gen_range(3usize..10);
            assert!((3..10).contains(&v));
            let w = r.gen_range(-5i32..=5);
            assert!((-5..=5).contains(&w));
            let f = r.gen_range(0.25f64..0.75);
            assert!((0.25..0.75).contains(&f));
        }
    }

    #[test]
    fn gen_bool_extremes_and_balance() {
        let mut r = StdRng::seed_from_u64(2);
        assert!(!r.gen_bool(0.0));
        assert!(r.gen_bool(1.0));
        let hits = (0..10_000).filter(|_| r.gen_bool(0.3)).count();
        assert!((2_500..3_500).contains(&hits), "hits={hits}");
    }
}
