//! Offline stand-in for the `crossbeam` crate, implemented over `std`.
//!
//! The build environment has no access to crates.io, so this shim provides
//! the exact subset the workspace uses — [`thread::scope`] (scoped spawning
//! with crossbeam's `Result`-returning signature) and
//! [`channel::unbounded`] (MPSC channel with a blocking receiver iterator).
//! Both delegate to their `std` equivalents, which cover the same
//! guarantees on modern Rust.

#![deny(missing_docs)]

/// Scoped threads with crossbeam's API shape (`scope(|s| ...)` returning
/// `thread::Result`, spawn closures receiving the scope handle).
pub mod thread {
    /// Handle passed to the `scope` closure and to every spawned thread.
    pub struct Scope<'scope, 'env: 'scope> {
        inner: &'scope std::thread::Scope<'scope, 'env>,
    }

    /// Join handle of a scoped thread.
    pub struct ScopedJoinHandle<'scope, T> {
        inner: std::thread::ScopedJoinHandle<'scope, T>,
    }

    impl<T> ScopedJoinHandle<'_, T> {
        /// Waits for the thread to finish, returning its result.
        ///
        /// # Errors
        ///
        /// Returns the thread's panic payload if it panicked.
        pub fn join(self) -> std::thread::Result<T> {
            self.inner.join()
        }
    }

    impl<'scope, 'env> Scope<'scope, 'env> {
        /// Spawns a scoped thread; the closure receives the scope handle so
        /// it can spawn further threads (crossbeam's signature).
        pub fn spawn<F, T>(&self, f: F) -> ScopedJoinHandle<'scope, T>
        where
            F: for<'a> FnOnce(&'a Scope<'scope, 'env>) -> T + Send + 'scope,
            T: Send + 'scope,
        {
            let inner = self.inner;
            ScopedJoinHandle {
                inner: inner.spawn(move || f(&Scope { inner })),
            }
        }
    }

    /// Creates a scope for spawning scoped threads, waiting for all of them
    /// before returning.
    ///
    /// # Errors
    ///
    /// Unlike crossbeam (which collects child panics), a child panic
    /// propagates out of `std::thread::scope` and unwinds here; the `Result`
    /// wrapper exists for signature compatibility and is always `Ok`.
    pub fn scope<'env, F, R>(f: F) -> std::thread::Result<R>
    where
        F: for<'scope> FnOnce(&Scope<'scope, 'env>) -> R,
    {
        Ok(std::thread::scope(|s| f(&Scope { inner: s })))
    }
}

/// Multi-producer channels with crossbeam's constructor names.
pub mod channel {
    /// Sending half of an unbounded channel.
    pub struct Sender<T>(std::sync::mpsc::Sender<T>);

    /// Receiving half of an unbounded channel.
    pub struct Receiver<T>(std::sync::mpsc::Receiver<T>);

    /// Error returned when sending on a channel with no live receiver.
    pub type SendError<T> = std::sync::mpsc::SendError<T>;

    impl<T> Clone for Sender<T> {
        fn clone(&self) -> Self {
            Sender(self.0.clone())
        }
    }

    impl<T> Sender<T> {
        /// Sends a message.
        ///
        /// # Errors
        ///
        /// Fails if the receiving half was dropped.
        pub fn send(&self, value: T) -> Result<(), SendError<T>> {
            self.0.send(value)
        }
    }

    impl<T> Receiver<T> {
        /// Blocking iterator over received messages; ends when every sender
        /// is dropped.
        pub fn iter(&self) -> std::sync::mpsc::Iter<'_, T> {
            self.0.iter()
        }
    }

    /// Creates an unbounded MPSC channel.
    pub fn unbounded<T>() -> (Sender<T>, Receiver<T>) {
        let (tx, rx) = std::sync::mpsc::channel();
        (Sender(tx), Receiver(rx))
    }
}

#[cfg(test)]
mod tests {
    #[test]
    fn scope_spawn_join() {
        let data = [1, 2, 3];
        let sum = crate::thread::scope(|s| {
            let h = s.spawn(|_| data.iter().sum::<i32>());
            h.join().unwrap()
        })
        .unwrap();
        assert_eq!(sum, 6);
    }

    #[test]
    fn nested_spawn_receives_scope() {
        let n = crate::thread::scope(|s| {
            s.spawn(|inner| inner.spawn(|_| 41).join().unwrap() + 1)
                .join()
                .unwrap()
        })
        .unwrap();
        assert_eq!(n, 42);
    }

    #[test]
    fn channel_roundtrip() {
        let (tx, rx) = crate::channel::unbounded();
        let tx2 = tx.clone();
        tx.send(1).unwrap();
        tx2.send(2).unwrap();
        drop(tx);
        drop(tx2);
        let got: Vec<i32> = rx.iter().collect();
        assert_eq!(got, vec![1, 2]);
    }
}
