//! Offline stand-in for the `proptest` crate.
//!
//! The build environment has no access to crates.io, so this shim provides
//! the subset the workspace's property tests use: the [`proptest!`] macro
//! (deterministically seeded case loop), range and `any::<bool>()`
//! strategies, [`collection::vec`], and the `prop_assert*` macros. Unlike
//! upstream proptest there is no shrinking — a failing case reports its
//! inputs and seed instead.

#![deny(missing_docs)]

/// Re-export for the [`proptest!`] macro's seeded generator.
pub use rand;

use std::fmt;
use std::ops::Range;

use rand::rngs::StdRng;
use rand::Rng;

/// Run-loop configuration consumed by [`proptest!`].
#[derive(Debug, Clone)]
pub struct ProptestConfig {
    /// Number of random cases each test executes.
    pub cases: u32,
    /// Accepted for upstream-proptest compatibility; this shim does not
    /// shrink failing cases (it reports the seed and inputs instead).
    pub max_shrink_iters: u32,
}

impl Default for ProptestConfig {
    fn default() -> Self {
        ProptestConfig {
            cases: 64,
            max_shrink_iters: 0,
        }
    }
}

/// Failure raised by the `prop_assert*` macros.
#[derive(Debug)]
pub struct TestCaseError {
    message: String,
}

impl TestCaseError {
    /// Creates a failure with the given message.
    pub fn fail(message: impl Into<String>) -> Self {
        TestCaseError {
            message: message.into(),
        }
    }
}

impl fmt::Display for TestCaseError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&self.message)
    }
}

/// A source of random values of one type.
pub trait Strategy {
    /// The generated type.
    type Value;

    /// Draws one value.
    fn sample(&self, rng: &mut StdRng) -> Self::Value;
}

impl<T: Copy> Strategy for Range<T>
where
    Range<T>: rand::SampleRange<T>,
{
    type Value = T;

    fn sample(&self, rng: &mut StdRng) -> T {
        rng.gen_range(self.clone())
    }
}

/// Types with a canonical "any value" strategy.
pub trait Arbitrary: Sized {
    /// Draws one arbitrary value.
    fn arbitrary(rng: &mut StdRng) -> Self;
}

impl Arbitrary for bool {
    fn arbitrary(rng: &mut StdRng) -> bool {
        rng.gen_bool(0.5)
    }
}

/// Strategy returned by [`any`].
#[derive(Debug, Clone, Copy)]
pub struct Any<T>(std::marker::PhantomData<T>);

impl<T: Arbitrary> Strategy for Any<T> {
    type Value = T;

    fn sample(&self, rng: &mut StdRng) -> T {
        T::arbitrary(rng)
    }
}

/// The canonical strategy for `T` (only `bool` is supported by this shim).
pub fn any<T: Arbitrary>() -> Any<T> {
    Any(std::marker::PhantomData)
}

/// Collection strategies.
pub mod collection {
    use super::{Range, Rng, StdRng, Strategy};

    /// Strategy returned by [`vec()`].
    #[derive(Debug, Clone)]
    pub struct VecStrategy<S> {
        elem: S,
        size: Range<usize>,
    }

    /// A `Vec` of `elem`-generated values with a length drawn from `size`.
    pub fn vec<S: Strategy>(elem: S, size: Range<usize>) -> VecStrategy<S> {
        VecStrategy { elem, size }
    }

    impl<S: Strategy> Strategy for VecStrategy<S> {
        type Value = Vec<S::Value>;

        fn sample(&self, rng: &mut StdRng) -> Vec<S::Value> {
            let n = if self.size.start + 1 >= self.size.end {
                self.size.start
            } else {
                rng.gen_range(self.size.clone())
            };
            (0..n).map(|_| self.elem.sample(rng)).collect()
        }
    }
}

/// Everything a property-test file needs in scope.
pub mod prelude {
    pub use crate::{
        any, prop_assert, prop_assert_eq, proptest, ProptestConfig, Strategy, TestCaseError,
    };

    /// Alias of the crate root, mirroring `proptest::prelude::prop`.
    pub mod prop {
        pub use crate::collection;
    }
}

/// Seed for case `case` of the named test: stable across runs (override the
/// base with `PROPTEST_SEED`) so failures reproduce.
pub fn case_seed(test_name: &str, case: u32) -> u64 {
    let base: u64 = std::env::var("PROPTEST_SEED")
        .ok()
        .and_then(|s| s.parse().ok())
        .unwrap_or(0x5EED_CAFE);
    let mut h = base ^ 0x9E37_79B9_7F4A_7C15;
    for b in test_name.bytes() {
        h = (h ^ u64::from(b)).wrapping_mul(0x100_0000_01B3);
    }
    h ^ u64::from(case).wrapping_mul(0xA24B_AED4_963E_E407)
}

/// Defines property tests: each `fn name(pat in strategy, ...) { body }`
/// becomes a `#[test]` that runs `cases` deterministically-seeded samples.
#[macro_export]
macro_rules! proptest {
    (
        #![proptest_config($cfg:expr)]
        $(
            $(#[$meta:meta])*
            fn $name:ident( $($pat:ident in $strat:expr),* $(,)? ) $body:block
        )*
    ) => {
        $(
            $(#[$meta])*
            fn $name() {
                let config: $crate::ProptestConfig = $cfg;
                for __case in 0..config.cases {
                    let mut __rng = <$crate::rand::rngs::StdRng as $crate::rand::SeedableRng>::seed_from_u64(
                        $crate::case_seed(stringify!($name), __case),
                    );
                    $(let $pat = $crate::Strategy::sample(&($strat), &mut __rng);)*
                    let __inputs = {
                        let mut s = String::new();
                        $(
                            s.push_str(concat!(stringify!($pat), " = "));
                            s.push_str(&format!("{:?}, ", $pat));
                        )*
                        s
                    };
                    let __result: ::std::result::Result<(), $crate::TestCaseError> =
                        (|| { $body Ok(()) })();
                    if let Err(e) = __result {
                        panic!(
                            "proptest {} failed at case {}/{}: {}\n  inputs: {}",
                            stringify!($name), __case, config.cases, e, __inputs,
                        );
                    }
                }
            }
        )*
    };
    ( $($rest:tt)* ) => {
        $crate::proptest! {
            #![proptest_config($crate::ProptestConfig::default())]
            $($rest)*
        }
    };
}

/// `assert!` that reports through the proptest case runner.
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr) => {
        $crate::prop_assert!($cond, concat!("assertion failed: ", stringify!($cond)))
    };
    ($cond:expr, $($fmt:tt)*) => {
        if !$cond {
            return Err($crate::TestCaseError::fail(format!($($fmt)*)));
        }
    };
}

/// `assert_eq!` that reports through the proptest case runner.
#[macro_export]
macro_rules! prop_assert_eq {
    ($a:expr, $b:expr) => {{
        let (a, b) = (&$a, &$b);
        $crate::prop_assert!(
            a == b,
            "assertion failed: {} == {}\n  left: {:?}\n  right: {:?}",
            stringify!($a), stringify!($b), a, b
        );
    }};
    ($a:expr, $b:expr, $($fmt:tt)*) => {{
        let (a, b) = (&$a, &$b);
        if !(a == b) {
            return Err($crate::TestCaseError::fail(format!(
                "{}\n  left: {:?}\n  right: {:?}",
                format!($($fmt)*), a, b
            )));
        }
    }};
}

#[cfg(test)]
mod tests {
    use crate::prelude::*;

    proptest! {
        #![proptest_config(ProptestConfig { cases: 16, ..ProptestConfig::default() })]

        #[test]
        fn ranges_sample_in_bounds(x in 3usize..10, f in 0.25f64..0.75) {
            prop_assert!((3..10).contains(&x));
            prop_assert!((0.25..0.75).contains(&f), "f was {}", f);
        }

        #[test]
        fn vec_strategy_respects_size(v in prop::collection::vec(1i32..50, 0..40)) {
            prop_assert!(v.len() < 40);
            for e in &v {
                prop_assert!((1..50).contains(e));
            }
            prop_assert_eq!(v.len(), v.len());
        }

        #[test]
        fn any_bool_samples(b in any::<bool>(), x in 0u64..10) {
            prop_assert!(x < 10, "b was {}", b);
        }
    }

    #[test]
    fn seeds_stable_and_distinct() {
        assert_eq!(crate::case_seed("t", 0), crate::case_seed("t", 0));
        assert_ne!(crate::case_seed("t", 0), crate::case_seed("t", 1));
        assert_ne!(crate::case_seed("t", 0), crate::case_seed("u", 0));
    }
}
