//! Structural-Verilog subset reader and writer (the paper's `Netlist.gv`).
//!
//! The supported subset is what gate-level netlists emitted by synthesis
//! tools actually use:
//!
//! * one `module` per file, scalar or vector ports (`input [31:0] a;`),
//! * `wire` declarations (scalar or vector),
//! * cell instantiations with named (`.A(n1)`) or positional connections,
//! * `1'b0` / `1'b1` literals on input pins (tied via TIELO/TIEHI),
//! * `//` line comments and `/* */` block comments.
//!
//! Vector declarations are bit-blasted into scalar nets named `bus[i]`,
//! matching how the flat simulator addresses signals.

use std::collections::HashMap;
use std::fmt::Write as _;
use std::sync::Arc;

use crate::{CellLibrary, NetId, Netlist, NetlistBuilder, NetlistError, Result};

/// Parses a structural Verilog module into a [`Netlist`].
///
/// # Errors
///
/// Returns [`NetlistError::VerilogParse`] (with a line number) on syntax the
/// subset does not cover, and the usual builder errors for semantic issues
/// (unknown cells, double drivers, ...).
///
/// # Example
///
/// ```
/// use gatspi_netlist::{verilog, CellLibrary};
///
/// # fn main() -> Result<(), gatspi_netlist::NetlistError> {
/// let src = r#"
/// module tiny (a, b, y);
///   input a, b;
///   output y;
///   wire n1;
///   NAND2 u1 (.A(a), .B(b), .Y(n1));
///   INV u2 (.A(n1), .Y(y));
/// endmodule
/// "#;
/// let netlist = verilog::parse(src, CellLibrary::industry_mini())?;
/// assert_eq!(netlist.gate_count(), 2);
/// # Ok(())
/// # }
/// ```
pub fn parse(src: &str, library: impl Into<Arc<CellLibrary>>) -> Result<Netlist> {
    Parser::new(src, library.into())?.run()
}

/// Serialises a netlist back to structural Verilog.
///
/// Round-trips with [`parse`] (scalar nets; vectors are emitted bit-blasted,
/// with bracketed names escaped Verilog-style).
pub fn write(netlist: &Netlist) -> String {
    let mut out = String::new();
    let escape = |name: &str| -> String {
        if name
            .chars()
            .all(|c| c.is_ascii_alphanumeric() || c == '_' || c == '$')
            && !name.chars().next().is_some_and(|c| c.is_ascii_digit())
        {
            name.to_string()
        } else {
            // Verilog escaped identifier: backslash prefix, space terminator.
            format!("\\{name} ")
        }
    };
    let ports: Vec<String> = netlist
        .primary_inputs()
        .iter()
        .chain(netlist.primary_outputs().iter())
        .map(|&n| escape(netlist.net(n).name()))
        .collect();
    let _ = writeln!(out, "module {} ({});", netlist.name(), ports.join(", "));
    for &n in netlist.primary_inputs() {
        let _ = writeln!(out, "  input {};", escape(netlist.net(n).name()));
    }
    for &n in netlist.primary_outputs() {
        let _ = writeln!(out, "  output {};", escape(netlist.net(n).name()));
    }
    for (_, net) in netlist.nets() {
        if !net.is_primary_input() && !net.is_primary_output() {
            let _ = writeln!(out, "  wire {};", escape(net.name()));
        }
    }
    for (_, gate) in netlist.gates() {
        let cell = netlist.library().cell(gate.cell());
        let mut conns: Vec<String> = gate
            .inputs()
            .iter()
            .zip(cell.input_pins())
            .map(|(&net, pin)| format!(".{}({})", pin, escape(netlist.net(net).name())))
            .collect();
        conns.push(format!(
            ".{}({})",
            cell.output_pin(),
            escape(netlist.net(gate.output()).name())
        ));
        let _ = writeln!(
            out,
            "  {} {} ({});",
            cell.name(),
            escape(gate.name()),
            conns.join(", ")
        );
    }
    let _ = writeln!(out, "endmodule");
    out
}

#[derive(Debug, Clone, PartialEq)]
enum Tok {
    Ident(String),
    Sym(char),
    Number(u64),
    /// `1'b0` / `1'b1` style literal (value of the single bit).
    BitLiteral(bool),
}

struct Parser {
    toks: Vec<(Tok, usize)>,
    pos: usize,
    library: Arc<CellLibrary>,
    src_lines: usize,
}

impl Parser {
    fn new(src: &str, library: Arc<CellLibrary>) -> Result<Self> {
        let toks = lex(src)?;
        Ok(Parser {
            toks,
            pos: 0,
            library,
            src_lines: src.lines().count().max(1),
        })
    }

    fn line(&self) -> usize {
        self.toks
            .get(self.pos)
            .map(|(_, l)| *l)
            .unwrap_or(self.src_lines)
    }

    fn err(&self, detail: impl Into<String>) -> NetlistError {
        NetlistError::VerilogParse {
            line: self.line(),
            detail: detail.into(),
        }
    }

    fn peek(&self) -> Option<&Tok> {
        self.toks.get(self.pos).map(|(t, _)| t)
    }

    fn next(&mut self) -> Option<Tok> {
        let t = self.toks.get(self.pos).map(|(t, _)| t.clone());
        if t.is_some() {
            self.pos += 1;
        }
        t
    }

    fn expect_sym(&mut self, c: char) -> Result<()> {
        match self.next() {
            Some(Tok::Sym(s)) if s == c => Ok(()),
            other => Err(self.err(format!("expected `{c}`, found {other:?}"))),
        }
    }

    fn expect_ident(&mut self) -> Result<String> {
        match self.next() {
            Some(Tok::Ident(s)) => Ok(s),
            other => Err(self.err(format!("expected identifier, found {other:?}"))),
        }
    }

    fn expect_keyword(&mut self, kw: &str) -> Result<()> {
        match self.next() {
            Some(Tok::Ident(s)) if s == kw => Ok(()),
            other => Err(self.err(format!("expected `{kw}`, found {other:?}"))),
        }
    }

    /// Parses a declaration range `[msb:lsb]` if present (before names).
    fn opt_range(&mut self) -> Result<Option<(i64, i64)>> {
        if self.peek() != Some(&Tok::Sym('[')) {
            return Ok(None);
        }
        self.next();
        let msb = match self.next() {
            Some(Tok::Number(n)) => n as i64,
            other => return Err(self.err(format!("expected msb number, found {other:?}"))),
        };
        self.expect_sym(':')?;
        let lsb = match self.next() {
            Some(Tok::Number(n)) => n as i64,
            other => return Err(self.err(format!("expected lsb number, found {other:?}"))),
        };
        self.expect_sym(']')?;
        Ok(Some((msb, lsb)))
    }

    /// Expands a declared name + optional range into scalar net names.
    fn expand(range: Option<(i64, i64)>, name: &str) -> Vec<String> {
        match range {
            None => vec![name.to_string()],
            Some((msb, lsb)) => {
                let (lo, hi) = if msb >= lsb { (lsb, msb) } else { (msb, lsb) };
                // Emit msb-first to match typical tool output ordering.
                let mut v: Vec<String> = (lo..=hi).map(|i| format!("{name}[{i}]")).collect();
                if msb >= lsb {
                    v.reverse();
                }
                v
            }
        }
    }

    /// Parses a net reference: `name` or `name[idx]` or `1'b0/1`.
    fn net_ref(&mut self) -> Result<NetRef> {
        match self.next() {
            Some(Tok::BitLiteral(v)) => Ok(NetRef::Const(v)),
            Some(Tok::Ident(name)) => {
                if self.peek() == Some(&Tok::Sym('[')) {
                    self.next();
                    let idx = match self.next() {
                        Some(Tok::Number(n)) => n,
                        other => {
                            return Err(self.err(format!("expected bit index, found {other:?}")))
                        }
                    };
                    self.expect_sym(']')?;
                    Ok(NetRef::Name(format!("{name}[{idx}]")))
                } else {
                    Ok(NetRef::Name(name))
                }
            }
            other => Err(self.err(format!("expected net reference, found {other:?}"))),
        }
    }

    fn run(mut self) -> Result<Netlist> {
        self.expect_keyword("module")?;
        let mod_name = self.expect_ident()?;
        // Port list: names only; direction comes from the declarations.
        self.expect_sym('(')?;
        let mut port_order = Vec::new();
        if self.peek() != Some(&Tok::Sym(')')) {
            loop {
                // Tolerate ANSI-style `input [3:0] a` in the port list.
                let mut dir: Option<String> = None;
                if let Some(Tok::Ident(w)) = self.peek() {
                    if w == "input" || w == "output" || w == "wire" {
                        dir = Some(w.clone());
                        self.next();
                    }
                }
                let range = self.opt_range()?;
                let name = self.expect_ident()?;
                port_order.push((name, dir, range));
                match self.next() {
                    Some(Tok::Sym(',')) => continue,
                    Some(Tok::Sym(')')) => break,
                    other => return Err(self.err(format!("expected `,` or `)`, found {other:?}"))),
                }
            }
        } else {
            self.next();
        }
        self.expect_sym(';')?;

        let mut builder = NetlistBuilder::new(mod_name, Arc::clone(&self.library));
        let mut pending_inputs: Vec<String> = Vec::new();
        let mut pending_outputs: Vec<String> = Vec::new();
        let mut pending_wires: Vec<String> = Vec::new();

        // ANSI port declarations.
        for (name, dir, range) in &port_order {
            if let Some(d) = dir {
                let bits = Self::expand(*range, name);
                match d.as_str() {
                    "input" => pending_inputs.extend(bits),
                    "output" => pending_outputs.extend(bits),
                    _ => pending_wires.extend(bits),
                }
            }
        }

        #[derive(Debug)]
        enum Stmt {
            Decl(&'static str, Vec<String>),
            Inst {
                cell: String,
                inst: String,
                named: Vec<(String, NetRef)>,
                positional: Vec<NetRef>,
            },
        }

        let mut stmts = Vec::new();
        loop {
            let kw = match self.peek() {
                Some(Tok::Ident(s)) => s.clone(),
                other => return Err(self.err(format!("expected statement, found {other:?}"))),
            };
            if kw == "endmodule" {
                self.next();
                break;
            }
            if kw == "input" || kw == "output" || kw == "wire" {
                self.next();
                let range = self.opt_range()?;
                let mut names = Vec::new();
                loop {
                    let n = self.expect_ident()?;
                    names.extend(Self::expand(range, &n));
                    match self.next() {
                        Some(Tok::Sym(',')) => continue,
                        Some(Tok::Sym(';')) => break,
                        other => {
                            return Err(self.err(format!("expected `,` or `;`, found {other:?}")))
                        }
                    }
                }
                let dir = match kw.as_str() {
                    "input" => "input",
                    "output" => "output",
                    _ => "wire",
                };
                stmts.push(Stmt::Decl(dir, names));
                continue;
            }
            // Cell instantiation.
            let cell = kw;
            self.next();
            let inst = self.expect_ident()?;
            self.expect_sym('(')?;
            let mut named = Vec::new();
            let mut positional = Vec::new();
            if self.peek() != Some(&Tok::Sym(')')) {
                loop {
                    if self.peek() == Some(&Tok::Sym('.')) {
                        self.next();
                        let pin = self.expect_ident()?;
                        self.expect_sym('(')?;
                        let net = self.net_ref()?;
                        self.expect_sym(')')?;
                        named.push((pin, net));
                    } else {
                        positional.push(self.net_ref()?);
                    }
                    match self.next() {
                        Some(Tok::Sym(',')) => continue,
                        Some(Tok::Sym(')')) => break,
                        other => {
                            return Err(self.err(format!("expected `,` or `)`, found {other:?}")))
                        }
                    }
                }
            } else {
                self.next();
            }
            self.expect_sym(';')?;
            stmts.push(Stmt::Inst {
                cell,
                inst,
                named,
                positional,
            });
        }

        // Pass 1: declarations.
        for s in &stmts {
            if let Stmt::Decl(dir, names) = s {
                match *dir {
                    "input" => pending_inputs.extend(names.iter().cloned()),
                    "output" => pending_outputs.extend(names.iter().cloned()),
                    _ => pending_wires.extend(names.iter().cloned()),
                }
            }
        }
        for n in &pending_inputs {
            builder.add_input(n)?;
        }
        for n in &pending_outputs {
            builder.add_output(n)?;
        }
        for n in &pending_wires {
            if builder.find_net(n).is_none() {
                builder.add_net(n)?;
            }
        }

        // Constant literals are tied through shared TIELO/TIEHI cells.
        let mut tie_nets: HashMap<bool, NetId> = HashMap::new();
        let mut tie_count = 0usize;

        // Pass 2: instances.
        for s in &stmts {
            let Stmt::Inst {
                cell,
                inst,
                named,
                positional,
            } = s
            else {
                continue;
            };
            let cell_id = self
                .library
                .find(cell)
                .ok_or_else(|| NetlistError::UnknownName {
                    kind: "cell",
                    name: cell.clone(),
                })?;
            let cell_def = self.library.cell(cell_id);
            let npins = cell_def.num_inputs() + 1;

            let mut conns: Vec<Option<NetRef>> = vec![None; npins];
            if !named.is_empty() {
                if !positional.is_empty() {
                    return Err(self.err(format!(
                        "instance `{inst}` mixes named and positional connections"
                    )));
                }
                for (pin, net) in named {
                    let slot = if pin == cell_def.output_pin() {
                        cell_def.num_inputs()
                    } else {
                        cell_def
                            .input_index(pin)
                            .ok_or_else(|| NetlistError::PinMismatch {
                                gate: inst.clone(),
                                cell: cell.clone(),
                                detail: format!("no pin `{pin}`"),
                            })?
                    };
                    if conns[slot].is_some() {
                        return Err(NetlistError::PinMismatch {
                            gate: inst.clone(),
                            cell: cell.clone(),
                            detail: format!("pin `{pin}` connected twice"),
                        });
                    }
                    conns[slot] = Some(net.clone());
                }
            } else {
                if positional.len() != npins {
                    return Err(NetlistError::PinMismatch {
                        gate: inst.clone(),
                        cell: cell.clone(),
                        detail: format!("{} connections for {} pins", positional.len(), npins),
                    });
                }
                // Positional order: inputs in pin order, then output? Tool
                // netlists normally use (output, inputs...) for primitives,
                // but for library cells the declared order is inputs-then-
                // output in our CellType; we follow the cell definition.
                for (i, r) in positional.iter().enumerate() {
                    conns[i] = Some(r.clone());
                }
            }

            let mut input_ids = Vec::with_capacity(cell_def.num_inputs());
            for (i, c) in conns.iter().take(cell_def.num_inputs()).enumerate() {
                let r = c.as_ref().ok_or_else(|| NetlistError::PinMismatch {
                    gate: inst.clone(),
                    cell: cell.clone(),
                    detail: format!("input pin `{}` unconnected", cell_def.input_pins()[i]),
                })?;
                let id = match r {
                    NetRef::Name(n) => {
                        builder
                            .find_net(n)
                            .ok_or_else(|| NetlistError::UnknownName {
                                kind: "net",
                                name: n.clone(),
                            })?
                    }
                    NetRef::Const(v) => {
                        if let Some(&id) = tie_nets.get(v) {
                            id
                        } else {
                            let name = format!("__tie{}__{tie_count}", u8::from(*v));
                            tie_count += 1;
                            let id = builder.add_net(&name)?;
                            let cell = if *v { "TIEHI" } else { "TIELO" };
                            builder.add_gate(&format!("__u_{name}"), cell, &[], id)?;
                            tie_nets.insert(*v, id);
                            id
                        }
                    }
                };
                input_ids.push(id);
            }
            let out_ref =
                conns[cell_def.num_inputs()]
                    .as_ref()
                    .ok_or_else(|| NetlistError::PinMismatch {
                        gate: inst.clone(),
                        cell: cell.clone(),
                        detail: "output pin unconnected".to_string(),
                    })?;
            let out_id = match out_ref {
                NetRef::Name(n) => {
                    builder
                        .find_net(n)
                        .ok_or_else(|| NetlistError::UnknownName {
                            kind: "net",
                            name: n.clone(),
                        })?
                }
                NetRef::Const(_) => {
                    return Err(NetlistError::PinMismatch {
                        gate: inst.clone(),
                        cell: cell.clone(),
                        detail: "output pin tied to a constant".to_string(),
                    })
                }
            };
            builder.add_gate_by_id(inst, cell_id, &input_ids, out_id)?;
        }

        builder.finish()
    }
}

#[derive(Debug, Clone, PartialEq)]
enum NetRef {
    Name(String),
    Const(bool),
}

fn lex(src: &str) -> Result<Vec<(Tok, usize)>> {
    let b = src.as_bytes();
    let mut toks = Vec::new();
    let mut i = 0;
    let mut line = 1usize;
    while i < b.len() {
        let c = b[i];
        match c {
            b'\n' => {
                line += 1;
                i += 1;
            }
            _ if c.is_ascii_whitespace() => i += 1,
            b'/' if b.get(i + 1) == Some(&b'/') => {
                while i < b.len() && b[i] != b'\n' {
                    i += 1;
                }
            }
            b'/' if b.get(i + 1) == Some(&b'*') => {
                i += 2;
                while i + 1 < b.len() && !(b[i] == b'*' && b[i + 1] == b'/') {
                    if b[i] == b'\n' {
                        line += 1;
                    }
                    i += 1;
                }
                i = (i + 2).min(b.len());
            }
            b'\\' => {
                // Escaped identifier: up to whitespace.
                let start = i + 1;
                i += 1;
                while i < b.len() && !b[i].is_ascii_whitespace() {
                    i += 1;
                }
                let name = std::str::from_utf8(&b[start..i])
                    .map_err(|_| NetlistError::VerilogParse {
                        line,
                        detail: "non-utf8 escaped identifier".into(),
                    })?
                    .to_string();
                toks.push((Tok::Ident(name), line));
            }
            _ if c.is_ascii_alphabetic() || c == b'_' || c == b'$' => {
                let start = i;
                while i < b.len() && (b[i].is_ascii_alphanumeric() || b[i] == b'_' || b[i] == b'$')
                {
                    i += 1;
                }
                toks.push((
                    Tok::Ident(
                        std::str::from_utf8(&b[start..i])
                            .expect("ascii")
                            .to_string(),
                    ),
                    line,
                ));
            }
            _ if c.is_ascii_digit() => {
                let start = i;
                while i < b.len() && b[i].is_ascii_digit() {
                    i += 1;
                }
                // Sized literal? e.g. 1'b0 / 1'b1.
                if i < b.len() && b[i] == b'\'' {
                    i += 1;
                    if i < b.len() && (b[i] | 0x20) == b'b' {
                        i += 1;
                        let v = match b.get(i) {
                            Some(b'0') => false,
                            Some(b'1') => true,
                            _ => {
                                return Err(NetlistError::VerilogParse {
                                    line,
                                    detail: "only 1'b0 / 1'b1 literals supported".into(),
                                })
                            }
                        };
                        i += 1;
                        toks.push((Tok::BitLiteral(v), line));
                        continue;
                    }
                    return Err(NetlistError::VerilogParse {
                        line,
                        detail: "unsupported sized literal base".into(),
                    });
                }
                let n: u64 = std::str::from_utf8(&b[start..i])
                    .expect("ascii")
                    .parse()
                    .map_err(|_| NetlistError::VerilogParse {
                        line,
                        detail: "number too large".into(),
                    })?;
                toks.push((Tok::Number(n), line));
            }
            b'(' | b')' | b'[' | b']' | b',' | b';' | b'.' | b':' => {
                toks.push((Tok::Sym(c as char), line));
                i += 1;
            }
            _ => {
                return Err(NetlistError::VerilogParse {
                    line,
                    detail: format!("unexpected character `{}`", c as char),
                })
            }
        }
    }
    Ok(toks)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::CellLibrary;

    fn lib() -> CellLibrary {
        CellLibrary::industry_mini()
    }

    #[test]
    fn parse_simple_module() {
        let src = r#"
// A tiny design.
module tiny (a, b, y);
  input a, b;
  output y;
  wire n1;
  NAND2 u1 (.A(a), .B(b), .Y(n1));
  INV u2 (.A(n1), .Y(y));
endmodule
"#;
        let n = parse(src, lib()).unwrap();
        assert_eq!(n.name(), "tiny");
        assert_eq!(n.gate_count(), 2);
        assert_eq!(n.primary_inputs().len(), 2);
        assert_eq!(n.primary_outputs().len(), 1);
        n.validate().unwrap();
    }

    #[test]
    fn parse_vector_ports() {
        let src = r#"
module vec (input [1:0] a, output [1:0] y);
  INV u0 (.A(a[0]), .Y(y[0]));
  INV u1 (.A(a[1]), .Y(y[1]));
endmodule
"#;
        let n = parse(src, lib()).unwrap();
        assert_eq!(n.primary_inputs().len(), 2);
        assert!(n.find_net("a[0]").is_some());
        assert!(n.find_net("y[1]").is_some());
    }

    #[test]
    fn parse_vector_wire_decl() {
        let src = r#"
module vw (a, y);
  input a;
  output y;
  wire [1:0] t;
  INV u0 (.A(a), .Y(t[0]));
  BUF u1 (.A(t[0]), .Y(t[1]));
  BUF u2 (.A(t[1]), .Y(y));
endmodule
"#;
        let n = parse(src, lib()).unwrap();
        assert_eq!(n.gate_count(), 3);
        n.validate().unwrap();
    }

    #[test]
    fn parse_constants_create_ties() {
        let src = r#"
module c (a, y);
  input a;
  output y;
  AND2 u1 (.A(a), .B(1'b1), .Y(y));
endmodule
"#;
        let n = parse(src, lib()).unwrap();
        // AND2 plus a TIEHI.
        assert_eq!(n.gate_count(), 2);
        n.validate().unwrap();
    }

    #[test]
    fn shared_tie_nets() {
        let src = r#"
module c2 (a, y, z);
  input a;
  output y, z;
  AND2 u1 (.A(a), .B(1'b1), .Y(y));
  OR2 u2 (.A(a), .B(1'b1), .Y(z));
endmodule
"#;
        let n = parse(src, lib()).unwrap();
        // Two logic gates + exactly one shared TIEHI.
        assert_eq!(n.gate_count(), 3);
    }

    #[test]
    fn block_comments_and_escaped_ids() {
        let src = "module m (a, y); /* ports\n  across lines */ input a; output y;\n  INV \\u$1! (.A(a), .Y(y));\nendmodule\n";
        let n = parse(src, lib()).unwrap();
        assert!(n.find_gate("u$1!").is_some());
    }

    #[test]
    fn unknown_cell_reported() {
        let src = "module m (a, y); input a; output y; BOGUS u (.A(a), .Y(y)); endmodule";
        assert!(matches!(
            parse(src, lib()),
            Err(NetlistError::UnknownName { .. })
        ));
    }

    #[test]
    fn unknown_pin_reported() {
        let src = "module m (a, y); input a; output y; INV u (.Q(a), .Y(y)); endmodule";
        assert!(matches!(
            parse(src, lib()),
            Err(NetlistError::PinMismatch { .. })
        ));
    }

    #[test]
    fn syntax_error_has_line_number() {
        let src = "module m (a y);\nendmodule";
        match parse(src, lib()) {
            Err(NetlistError::VerilogParse { line, .. }) => assert_eq!(line, 1),
            other => panic!("expected parse error, got {other:?}"),
        }
    }

    #[test]
    fn roundtrip_write_parse() {
        let src = r#"
module rt (a, b, y);
  input a, b;
  output y;
  wire n1, n2;
  XOR2 u1 (.A(a), .B(b), .Y(n1));
  AOI21 u2 (.A1(a), .A2(b), .B(n1), .Y(n2));
  INV u3 (.A(n2), .Y(y));
endmodule
"#;
        let n1 = parse(src, lib()).unwrap();
        let text = write(&n1);
        let n2 = parse(&text, lib()).unwrap();
        assert_eq!(n1.gate_count(), n2.gate_count());
        assert_eq!(n1.net_count(), n2.net_count());
        for (_, g) in n1.gates() {
            let g2 = n2.find_gate(g.name()).expect("gate preserved");
            assert_eq!(n2.gate(g2).cell(), g.cell());
        }
    }

    #[test]
    fn positional_connections() {
        // Positional follows cell pin order: inputs then output.
        let src = "module m (a, b, y); input a, b; output y; NAND2 u (a, b, y); endmodule";
        let n = parse(src, lib()).unwrap();
        let g = n.gate(n.find_gate("u").unwrap());
        assert_eq!(n.net(g.output()).name(), "y");
    }

    #[test]
    fn mixing_named_and_positional_rejected() {
        let src = "module m (a, b, y); input a, b; output y; NAND2 u (a, .B(b), .Y(y)); endmodule";
        assert!(parse(src, lib()).is_err());
    }
}
