use std::fmt;

/// Errors produced while building, parsing or validating netlists.
#[derive(Debug, Clone, PartialEq, Eq)]
#[non_exhaustive]
pub enum NetlistError {
    /// A name (net, gate, cell, port) was declared twice.
    DuplicateName {
        /// What kind of object collided ("net", "gate", "cell", ...).
        kind: &'static str,
        /// The colliding name.
        name: String,
    },
    /// A name was referenced but never declared.
    UnknownName {
        /// What kind of object was looked up.
        kind: &'static str,
        /// The unresolved name.
        name: String,
    },
    /// A gate instantiation does not match its cell's pin interface.
    PinMismatch {
        /// Instance name.
        gate: String,
        /// Cell type name.
        cell: String,
        /// Human-readable detail of the mismatch.
        detail: String,
    },
    /// A net has more than one driver.
    MultipleDrivers {
        /// The over-driven net.
        net: String,
        /// The second driver that caused the conflict.
        driver: String,
    },
    /// A net that must be driven has no driver.
    Undriven {
        /// The floating net.
        net: String,
    },
    /// Truth-table construction was given inconsistent dimensions.
    BadTruthTable {
        /// Human-readable detail.
        detail: String,
    },
    /// A boolean expression failed to parse.
    ExprParse {
        /// Byte offset in the source expression.
        position: usize,
        /// Human-readable detail.
        detail: String,
    },
    /// Structural Verilog failed to parse.
    VerilogParse {
        /// 1-based line number in the source text.
        line: usize,
        /// Human-readable detail.
        detail: String,
    },
}

impl fmt::Display for NetlistError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            NetlistError::DuplicateName { kind, name } => {
                write!(f, "duplicate {kind} name `{name}`")
            }
            NetlistError::UnknownName { kind, name } => {
                write!(f, "unknown {kind} `{name}`")
            }
            NetlistError::PinMismatch { gate, cell, detail } => {
                write!(f, "gate `{gate}` does not match cell `{cell}`: {detail}")
            }
            NetlistError::MultipleDrivers { net, driver } => {
                write!(f, "net `{net}` already driven, second driver `{driver}`")
            }
            NetlistError::Undriven { net } => write!(f, "net `{net}` has no driver"),
            NetlistError::BadTruthTable { detail } => {
                write!(f, "invalid truth table: {detail}")
            }
            NetlistError::ExprParse { position, detail } => {
                write!(f, "expression parse error at byte {position}: {detail}")
            }
            NetlistError::VerilogParse { line, detail } => {
                write!(f, "verilog parse error on line {line}: {detail}")
            }
        }
    }
}

impl std::error::Error for NetlistError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_is_lowercase_and_informative() {
        let e = NetlistError::DuplicateName {
            kind: "net",
            name: "n1".into(),
        };
        let s = e.to_string();
        assert!(s.contains("n1"));
        assert!(s.starts_with("duplicate"));
    }

    #[test]
    fn error_is_send_sync() {
        fn assert_send_sync<T: Send + Sync>() {}
        assert_send_sync::<NetlistError>();
    }
}
