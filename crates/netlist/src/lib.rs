//! Gate-level netlist data model for the GATSPI reproduction.
//!
//! This crate provides the front-end representation that the rest of the
//! workspace consumes:
//!
//! * [`TruthTable`] — the 1-D logic-function array format of the paper's
//!   Fig. 4, where each input pin carries a power-of-two *weight* and the
//!   output value is found by a single array lookup at the sum of the weights
//!   of the pins currently at logic 1.
//! * [`CellLibrary`] / [`CellType`] — an industry-style standard-cell library
//!   supporting the full range of simple to complex combinational cell types
//!   (INV/BUF, AND/OR/NAND/NOR/XOR/XNOR up to 4 inputs, MUX, AOI/OAI/AO/OA
//!   complex cells, majority gates, ties).
//! * [`expr`] — a boolean expression parser used to define cell functions
//!   textually, mirroring how Liberty `function` attributes describe cells.
//! * [`Netlist`] / [`NetlistBuilder`] — the flat gate-level design model.
//! * [`verilog`] — a structural-Verilog subset reader and writer, the
//!   equivalent of the paper's `Netlist.gv` input.
//!
//! # Example
//!
//! ```
//! use gatspi_netlist::{CellLibrary, NetlistBuilder};
//!
//! # fn main() -> Result<(), gatspi_netlist::NetlistError> {
//! let lib = CellLibrary::industry_mini();
//! let mut b = NetlistBuilder::new("half_adder", lib);
//! let a = b.add_input("a")?;
//! let c = b.add_input("b")?;
//! let sum = b.add_output("sum")?;
//! let carry = b.add_output("carry")?;
//! b.add_gate("u_sum", "XOR2", &[a, c], sum)?;
//! b.add_gate("u_carry", "AND2", &[a, c], carry)?;
//! let netlist = b.finish()?;
//! assert_eq!(netlist.gate_count(), 2);
//! # Ok(())
//! # }
//! ```

#![deny(missing_docs)]

mod cell;
mod error;
pub mod expr;
mod library;
mod netlist;
pub mod verilog;

pub use cell::{CellKind, TruthTable};
pub use error::NetlistError;
pub use library::{CellLibrary, CellType, CellTypeId};
pub use netlist::{Gate, GateId, Net, NetId, Netlist, NetlistBuilder, PinRef};

/// Result alias used throughout this crate.
pub type Result<T> = std::result::Result<T, NetlistError>;
