//! Boolean expression parsing, in the style of Liberty `function` strings.
//!
//! Supported grammar (loosest-binding first):
//!
//! ```text
//! expr   := ternary
//! ternary:= or ('?' expr ':' expr)?
//! or     := xor (('|' | '+') xor)*
//! xor    := and ('^' and)*
//! and    := unary (('&' | '*') unary)*
//! unary  := ('!' | '~')* atom postfix*
//! postfix:= '\''                       (trailing-quote inversion, Liberty style)
//! atom   := ident | '0' | '1' | '(' expr ')'
//! ```
//!
//! Identifiers are pin names; `0`/`1` are constants.

use crate::{NetlistError, Result, TruthTable};

/// A parsed boolean expression over named pins.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Expr {
    /// Constant 0 or 1.
    Const(bool),
    /// Reference to an input pin by name.
    Pin(String),
    /// Logical negation.
    Not(Box<Expr>),
    /// Conjunction.
    And(Box<Expr>, Box<Expr>),
    /// Disjunction.
    Or(Box<Expr>, Box<Expr>),
    /// Exclusive or.
    Xor(Box<Expr>, Box<Expr>),
    /// `cond ? then : else` — used for MUX-style functions.
    Ite(Box<Expr>, Box<Expr>, Box<Expr>),
}

impl Expr {
    /// Parses an expression from text.
    ///
    /// # Errors
    ///
    /// Returns [`NetlistError::ExprParse`] on any syntax error, with the byte
    /// position of the offending token.
    ///
    /// # Example
    ///
    /// ```
    /// use gatspi_netlist::expr::Expr;
    /// # fn main() -> Result<(), gatspi_netlist::NetlistError> {
    /// let e = Expr::parse("!(A1 & A2) | B'")?;
    /// assert!(e.pins().contains(&"A1".to_string()));
    /// # Ok(())
    /// # }
    /// ```
    pub fn parse(src: &str) -> Result<Self> {
        let mut p = Parser {
            src: src.as_bytes(),
            pos: 0,
        };
        let e = p.expr()?;
        p.skip_ws();
        if p.pos != p.src.len() {
            return Err(p.err("trailing input"));
        }
        Ok(e)
    }

    /// All distinct pin names referenced, in first-appearance order.
    pub fn pins(&self) -> Vec<String> {
        let mut out = Vec::new();
        self.collect_pins(&mut out);
        out
    }

    fn collect_pins(&self, out: &mut Vec<String>) {
        match self {
            Expr::Const(_) => {}
            Expr::Pin(p) => {
                if !out.iter().any(|x| x == p) {
                    out.push(p.clone());
                }
            }
            Expr::Not(a) => a.collect_pins(out),
            Expr::And(a, b) | Expr::Or(a, b) | Expr::Xor(a, b) => {
                a.collect_pins(out);
                b.collect_pins(out);
            }
            Expr::Ite(c, t, e) => {
                c.collect_pins(out);
                t.collect_pins(out);
                e.collect_pins(out);
            }
        }
    }

    /// Evaluates the expression given an assignment function for pins.
    pub fn eval(&self, assign: &impl Fn(&str) -> bool) -> bool {
        match self {
            Expr::Const(v) => *v,
            Expr::Pin(p) => assign(p),
            Expr::Not(a) => !a.eval(assign),
            Expr::And(a, b) => a.eval(assign) && b.eval(assign),
            Expr::Or(a, b) => a.eval(assign) || b.eval(assign),
            Expr::Xor(a, b) => a.eval(assign) ^ b.eval(assign),
            Expr::Ite(c, t, e) => {
                if c.eval(assign) {
                    t.eval(assign)
                } else {
                    e.eval(assign)
                }
            }
        }
    }

    /// Compiles the expression into a [`TruthTable`] with the given pin
    /// order. Pins in `pin_order` that the expression does not mention are
    /// allowed (they become unobservable inputs).
    ///
    /// # Errors
    ///
    /// Returns [`NetlistError::UnknownName`] if the expression references a
    /// pin absent from `pin_order`, or [`NetlistError::BadTruthTable`] if
    /// there are too many pins.
    pub fn to_truth_table(&self, pin_order: &[&str]) -> Result<TruthTable> {
        for p in self.pins() {
            if !pin_order.iter().any(|&x| x == p) {
                return Err(NetlistError::UnknownName {
                    kind: "pin",
                    name: p,
                });
            }
        }
        if pin_order.len() > crate::cell::MAX_CELL_INPUTS {
            return Err(NetlistError::BadTruthTable {
                detail: format!("{} pins exceeds maximum", pin_order.len()),
            });
        }
        Ok(TruthTable::from_fn(pin_order.len(), |bits| {
            self.eval(&|name| {
                let i = pin_order.iter().position(|&x| x == name).expect("checked");
                bits[i]
            })
        }))
    }
}

struct Parser<'a> {
    src: &'a [u8],
    pos: usize,
}

impl<'a> Parser<'a> {
    fn err(&self, detail: &str) -> NetlistError {
        NetlistError::ExprParse {
            position: self.pos,
            detail: detail.to_string(),
        }
    }

    fn skip_ws(&mut self) {
        while self.pos < self.src.len() && self.src[self.pos].is_ascii_whitespace() {
            self.pos += 1;
        }
    }

    fn peek(&mut self) -> Option<u8> {
        self.skip_ws();
        self.src.get(self.pos).copied()
    }

    fn eat(&mut self, c: u8) -> bool {
        if self.peek() == Some(c) {
            self.pos += 1;
            true
        } else {
            false
        }
    }

    fn expr(&mut self) -> Result<Expr> {
        let cond = self.or()?;
        if self.eat(b'?') {
            let then = self.expr()?;
            if !self.eat(b':') {
                return Err(self.err("expected `:` in ternary"));
            }
            let els = self.expr()?;
            return Ok(Expr::Ite(Box::new(cond), Box::new(then), Box::new(els)));
        }
        Ok(cond)
    }

    fn or(&mut self) -> Result<Expr> {
        let mut lhs = self.xor()?;
        while let Some(c) = self.peek() {
            if c == b'|' || c == b'+' {
                self.pos += 1;
                // Tolerate `||`.
                if c == b'|' && self.peek() == Some(b'|') {
                    self.pos += 1;
                }
                let rhs = self.xor()?;
                lhs = Expr::Or(Box::new(lhs), Box::new(rhs));
            } else {
                break;
            }
        }
        Ok(lhs)
    }

    fn xor(&mut self) -> Result<Expr> {
        let mut lhs = self.and()?;
        while self.peek() == Some(b'^') {
            self.pos += 1;
            let rhs = self.and()?;
            lhs = Expr::Xor(Box::new(lhs), Box::new(rhs));
        }
        Ok(lhs)
    }

    fn and(&mut self) -> Result<Expr> {
        let mut lhs = self.unary()?;
        while let Some(c) = self.peek() {
            if c == b'&' || c == b'*' {
                self.pos += 1;
                if c == b'&' && self.peek() == Some(b'&') {
                    self.pos += 1;
                }
                let rhs = self.unary()?;
                lhs = Expr::And(Box::new(lhs), Box::new(rhs));
            } else {
                break;
            }
        }
        Ok(lhs)
    }

    fn unary(&mut self) -> Result<Expr> {
        if self.eat(b'!') || self.eat(b'~') {
            let inner = self.unary()?;
            return Ok(Expr::Not(Box::new(inner)));
        }
        let mut atom = self.atom()?;
        // Liberty-style trailing quote inversion: A' == !A.
        while self.peek() == Some(b'\'') {
            self.pos += 1;
            atom = Expr::Not(Box::new(atom));
        }
        Ok(atom)
    }

    fn atom(&mut self) -> Result<Expr> {
        match self.peek() {
            Some(b'(') => {
                self.pos += 1;
                let e = self.expr()?;
                if !self.eat(b')') {
                    return Err(self.err("expected `)`"));
                }
                Ok(e)
            }
            Some(b'0') => {
                self.pos += 1;
                Ok(Expr::Const(false))
            }
            Some(b'1') => {
                self.pos += 1;
                Ok(Expr::Const(true))
            }
            Some(c) if c.is_ascii_alphabetic() || c == b'_' => {
                let start = self.pos;
                while self.pos < self.src.len() {
                    let c = self.src[self.pos];
                    if c.is_ascii_alphanumeric() || c == b'_' || c == b'[' || c == b']' {
                        self.pos += 1;
                    } else {
                        break;
                    }
                }
                let name = std::str::from_utf8(&self.src[start..self.pos])
                    .expect("ascii")
                    .to_string();
                Ok(Expr::Pin(name))
            }
            Some(_) => Err(self.err("unexpected character")),
            None => Err(self.err("unexpected end of expression")),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tt(src: &str, pins: &[&str]) -> TruthTable {
        Expr::parse(src).unwrap().to_truth_table(pins).unwrap()
    }

    #[test]
    fn parses_basic_ops() {
        assert_eq!(tt("A & B", &["A", "B"]).values(), &[0, 0, 0, 1]);
        assert_eq!(tt("A | B", &["A", "B"]).values(), &[0, 1, 1, 1]);
        assert_eq!(tt("A ^ B", &["A", "B"]).values(), &[0, 1, 1, 0]);
        assert_eq!(tt("!A", &["A"]).values(), &[1, 0]);
    }

    #[test]
    fn alternative_operator_spellings() {
        assert_eq!(
            tt("A * B", &["A", "B"]).values(),
            tt("A & B", &["A", "B"]).values()
        );
        assert_eq!(
            tt("A + B", &["A", "B"]).values(),
            tt("A | B", &["A", "B"]).values()
        );
        assert_eq!(
            tt("A && B", &["A", "B"]).values(),
            tt("A & B", &["A", "B"]).values()
        );
        assert_eq!(tt("A'", &["A"]).values(), &[1, 0]);
        assert_eq!(tt("~A", &["A"]).values(), &[1, 0]);
    }

    #[test]
    fn precedence_and_parens() {
        // AND binds tighter than XOR binds tighter than OR.
        assert_eq!(
            tt("A | B & C", &["A", "B", "C"]).values(),
            tt("A | (B & C)", &["A", "B", "C"]).values()
        );
        assert_eq!(
            tt("A ^ B & C", &["A", "B", "C"]).values(),
            tt("A ^ (B & C)", &["A", "B", "C"]).values()
        );
        assert_ne!(
            tt("(A | B) & C", &["A", "B", "C"]).values(),
            tt("A | B & C", &["A", "B", "C"]).values()
        );
    }

    #[test]
    fn ternary_mux() {
        let m = tt("S ? B : A", &["A", "B", "S"]);
        assert_eq!(m.eval(&[1, 0, 0]), 1);
        assert_eq!(m.eval(&[1, 0, 1]), 0);
        assert_eq!(m.eval(&[0, 1, 1]), 1);
    }

    #[test]
    fn aoi21() {
        let t = tt("!((A1 & A2) | B)", &["A1", "A2", "B"]);
        assert_eq!(t.eval(&[1, 1, 0]), 0);
        assert_eq!(t.eval(&[1, 0, 0]), 1);
        assert_eq!(t.eval(&[0, 0, 1]), 0);
    }

    #[test]
    fn constants() {
        assert_eq!(tt("0", &[]).values(), &[0]);
        assert_eq!(tt("1", &[]).values(), &[1]);
    }

    #[test]
    fn unused_pin_allowed_in_order() {
        let t = tt("A", &["A", "B"]);
        assert!(!t.pin_observable(1));
    }

    #[test]
    fn errors_reported_with_position() {
        let e = Expr::parse("A &").unwrap_err();
        assert!(matches!(e, NetlistError::ExprParse { .. }));
        let e = Expr::parse("(A").unwrap_err();
        assert!(matches!(e, NetlistError::ExprParse { .. }));
        let e = Expr::parse("A B").unwrap_err();
        assert!(matches!(e, NetlistError::ExprParse { .. }));
    }

    #[test]
    fn unknown_pin_rejected() {
        let e = Expr::parse("A & Z").unwrap().to_truth_table(&["A"]);
        assert!(matches!(e, Err(NetlistError::UnknownName { .. })));
    }

    #[test]
    fn bus_bit_identifiers() {
        let t = tt("d[3] ^ d[0]", &["d[0]", "d[3]"]);
        assert_eq!(t.eval(&[1, 0]), 1);
        assert_eq!(t.eval(&[1, 1]), 0);
    }

    #[test]
    fn pins_in_first_appearance_order() {
        let e = Expr::parse("B & A | B").unwrap();
        assert_eq!(e.pins(), vec!["B".to_string(), "A".to_string()]);
    }
}
