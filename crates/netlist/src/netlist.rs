use std::collections::HashMap;
use std::fmt;
use std::sync::Arc;

use crate::{CellLibrary, CellTypeId, NetlistError, Result};

/// Index of a net inside its [`Netlist`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct NetId(pub(crate) u32);

impl NetId {
    /// The raw index value.
    pub fn index(self) -> usize {
        self.0 as usize
    }

    /// Reconstructs a `NetId` from a raw index. Intended for downstream
    /// crates that store ids in flat arrays.
    pub fn from_index(index: usize) -> Self {
        NetId(index as u32)
    }
}

impl fmt::Display for NetId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "net#{}", self.0)
    }
}

/// Index of a gate instance inside its [`Netlist`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct GateId(pub(crate) u32);

impl GateId {
    /// The raw index value.
    pub fn index(self) -> usize {
        self.0 as usize
    }

    /// Reconstructs a `GateId` from a raw index.
    pub fn from_index(index: usize) -> Self {
        GateId(index as u32)
    }
}

impl fmt::Display for GateId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "gate#{}", self.0)
    }
}

/// A (gate, input-pin-position) pair identifying a fanout load of a net.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct PinRef {
    /// The gate whose pin this is.
    pub gate: GateId,
    /// Input pin position on that gate (truth-table pin order).
    pub pin: u32,
}

/// A named signal. Nets connect one driver (a gate output or a primary
/// input) to any number of gate input pins.
#[derive(Debug, Clone)]
pub struct Net {
    name: String,
    driver: Option<GateId>,
    is_primary_input: bool,
    is_primary_output: bool,
    loads: Vec<PinRef>,
}

impl Net {
    /// Net name.
    pub fn name(&self) -> &str {
        &self.name
    }

    /// The gate driving this net, if it is gate-driven.
    pub fn driver(&self) -> Option<GateId> {
        self.driver
    }

    /// Whether this net is a primary (or pseudo-primary) input. In
    /// re-simulation these carry the known stimulus waveforms.
    pub fn is_primary_input(&self) -> bool {
        self.is_primary_input
    }

    /// Whether this net is a primary output of the design.
    pub fn is_primary_output(&self) -> bool {
        self.is_primary_output
    }

    /// The gate input pins this net fans out to.
    pub fn loads(&self) -> &[PinRef] {
        &self.loads
    }

    /// Fanout count.
    pub fn fanout(&self) -> usize {
        self.loads.len()
    }
}

/// A gate instance: a cell type plus net connections.
#[derive(Debug, Clone)]
pub struct Gate {
    name: String,
    cell: CellTypeId,
    inputs: Vec<NetId>,
    output: NetId,
}

impl Gate {
    /// Instance name.
    pub fn name(&self) -> &str {
        &self.name
    }

    /// The cell type of this instance.
    pub fn cell(&self) -> CellTypeId {
        self.cell
    }

    /// Nets connected to the input pins, in pin order.
    pub fn inputs(&self) -> &[NetId] {
        &self.inputs
    }

    /// Net connected to the output pin.
    pub fn output(&self) -> NetId {
        self.output
    }
}

/// A flat gate-level netlist: the `Netlist.gv` of the paper's tool flow.
///
/// Construct with [`NetlistBuilder`] or parse from structural Verilog with
/// [`crate::verilog::parse`].
#[derive(Debug, Clone)]
pub struct Netlist {
    name: String,
    library: Arc<CellLibrary>,
    nets: Vec<Net>,
    gates: Vec<Gate>,
    primary_inputs: Vec<NetId>,
    primary_outputs: Vec<NetId>,
    net_names: HashMap<String, NetId>,
    gate_names: HashMap<String, GateId>,
}

impl Netlist {
    /// Design name.
    pub fn name(&self) -> &str {
        &self.name
    }

    /// The cell library this netlist references.
    pub fn library(&self) -> &Arc<CellLibrary> {
        &self.library
    }

    /// Number of gate instances.
    pub fn gate_count(&self) -> usize {
        self.gates.len()
    }

    /// Number of nets.
    pub fn net_count(&self) -> usize {
        self.nets.len()
    }

    /// Primary (and pseudo-primary) input nets, in declaration order.
    pub fn primary_inputs(&self) -> &[NetId] {
        &self.primary_inputs
    }

    /// Primary output nets, in declaration order.
    pub fn primary_outputs(&self) -> &[NetId] {
        &self.primary_outputs
    }

    /// Accesses a net by id.
    ///
    /// # Panics
    ///
    /// Panics if `id` is out of range for this netlist.
    pub fn net(&self, id: NetId) -> &Net {
        &self.nets[id.index()]
    }

    /// Accesses a gate by id.
    ///
    /// # Panics
    ///
    /// Panics if `id` is out of range for this netlist.
    pub fn gate(&self, id: GateId) -> &Gate {
        &self.gates[id.index()]
    }

    /// Looks up a net by name.
    pub fn find_net(&self, name: &str) -> Option<NetId> {
        self.net_names.get(name).copied()
    }

    /// Looks up a gate by instance name.
    pub fn find_gate(&self, name: &str) -> Option<GateId> {
        self.gate_names.get(name).copied()
    }

    /// Iterates over `(id, net)` pairs.
    pub fn nets(&self) -> impl Iterator<Item = (NetId, &Net)> {
        self.nets
            .iter()
            .enumerate()
            .map(|(i, n)| (NetId(i as u32), n))
    }

    /// Iterates over `(id, gate)` pairs.
    pub fn gates(&self) -> impl Iterator<Item = (GateId, &Gate)> {
        self.gates
            .iter()
            .enumerate()
            .map(|(i, g)| (GateId(i as u32), g))
    }

    /// Total cell area (sum of per-instance library areas).
    pub fn total_area(&self) -> f64 {
        self.gates
            .iter()
            .map(|g| self.library.cell(g.cell).area())
            .sum()
    }

    /// Validates structural sanity: every net is driven exactly once (by a
    /// gate or by being a primary input), every gate pin connects to an
    /// existing net. The builder enforces this incrementally; this method
    /// re-checks the final object and is used by property tests and after
    /// netlist transformations.
    ///
    /// # Errors
    ///
    /// Returns the first violation found.
    pub fn validate(&self) -> Result<()> {
        for (id, net) in self.nets() {
            let driven = net.driver.is_some() || net.is_primary_input;
            if !driven && !net.loads.is_empty() {
                return Err(NetlistError::Undriven {
                    net: net.name.clone(),
                });
            }
            if let Some(g) = net.driver {
                if self.gates.get(g.index()).map(|gate| gate.output) != Some(id) {
                    return Err(NetlistError::PinMismatch {
                        gate: format!("{g}"),
                        cell: String::new(),
                        detail: format!("driver of `{}` does not drive it back", net.name),
                    });
                }
            }
        }
        for (id, gate) in self.gates() {
            let cell = self.library.cell(gate.cell);
            if gate.inputs.len() != cell.num_inputs() {
                return Err(NetlistError::PinMismatch {
                    gate: gate.name.clone(),
                    cell: cell.name().to_string(),
                    detail: format!(
                        "{} connections for {} pins",
                        gate.inputs.len(),
                        cell.num_inputs()
                    ),
                });
            }
            for (pin, &net) in gate.inputs.iter().enumerate() {
                let loads = &self.nets[net.index()].loads;
                if !loads.contains(&PinRef {
                    gate: id,
                    pin: pin as u32,
                }) {
                    return Err(NetlistError::PinMismatch {
                        gate: gate.name.clone(),
                        cell: cell.name().to_string(),
                        detail: format!(
                            "load list of net `{}` misses pin {pin}",
                            self.nets[net.index()].name
                        ),
                    });
                }
            }
        }
        Ok(())
    }
}

/// Incremental [`Netlist`] constructor.
///
/// The builder checks single-driver and pin-arity rules as objects are added,
/// so a successfully built netlist is structurally valid.
#[derive(Debug)]
pub struct NetlistBuilder {
    name: String,
    library: Arc<CellLibrary>,
    nets: Vec<Net>,
    gates: Vec<Gate>,
    primary_inputs: Vec<NetId>,
    primary_outputs: Vec<NetId>,
    net_names: HashMap<String, NetId>,
    gate_names: HashMap<String, GateId>,
}

impl NetlistBuilder {
    /// Starts building a design named `name` against `library`.
    pub fn new(name: impl Into<String>, library: impl Into<Arc<CellLibrary>>) -> Self {
        NetlistBuilder {
            name: name.into(),
            library: library.into(),
            nets: Vec::new(),
            gates: Vec::new(),
            primary_inputs: Vec::new(),
            primary_outputs: Vec::new(),
            net_names: HashMap::new(),
            gate_names: HashMap::new(),
        }
    }

    /// The library the builder resolves cell names against.
    pub fn library(&self) -> &Arc<CellLibrary> {
        &self.library
    }

    fn add_net_inner(&mut self, name: &str, pi: bool, po: bool) -> Result<NetId> {
        if self.net_names.contains_key(name) {
            return Err(NetlistError::DuplicateName {
                kind: "net",
                name: name.to_string(),
            });
        }
        let id = NetId(self.nets.len() as u32);
        self.nets.push(Net {
            name: name.to_string(),
            driver: None,
            is_primary_input: pi,
            is_primary_output: po,
            loads: Vec::new(),
        });
        self.net_names.insert(name.to_string(), id);
        if pi {
            self.primary_inputs.push(id);
        }
        if po {
            self.primary_outputs.push(id);
        }
        Ok(id)
    }

    /// Declares an internal wire.
    ///
    /// # Errors
    ///
    /// Returns [`NetlistError::DuplicateName`] if the name is taken.
    pub fn add_net(&mut self, name: &str) -> Result<NetId> {
        self.add_net_inner(name, false, false)
    }

    /// Declares a primary (or pseudo-primary) input net. Its waveform will be
    /// supplied as stimulus at simulation time.
    ///
    /// # Errors
    ///
    /// Returns [`NetlistError::DuplicateName`] if the name is taken.
    pub fn add_input(&mut self, name: &str) -> Result<NetId> {
        self.add_net_inner(name, true, false)
    }

    /// Declares a primary output net. It must be driven by a gate before
    /// [`NetlistBuilder::finish`].
    ///
    /// # Errors
    ///
    /// Returns [`NetlistError::DuplicateName`] if the name is taken.
    pub fn add_output(&mut self, name: &str) -> Result<NetId> {
        self.add_net_inner(name, false, true)
    }

    /// Marks an existing net as a primary output as well (for internal nets
    /// that are also observed).
    ///
    /// # Panics
    ///
    /// Panics if `net` is out of range.
    pub fn mark_output(&mut self, net: NetId) {
        let n = &mut self.nets[net.index()];
        if !n.is_primary_output {
            n.is_primary_output = true;
            self.primary_outputs.push(net);
        }
    }

    /// Instantiates a gate of cell type `cell_name` with input nets in pin
    /// order driving `output`.
    ///
    /// # Errors
    ///
    /// * [`NetlistError::UnknownName`] if the cell type does not exist.
    /// * [`NetlistError::DuplicateName`] if the instance name is taken.
    /// * [`NetlistError::PinMismatch`] if the connection count differs from
    ///   the cell's pin count.
    /// * [`NetlistError::MultipleDrivers`] if `output` already has a driver
    ///   or is a primary input.
    pub fn add_gate(
        &mut self,
        inst_name: &str,
        cell_name: &str,
        inputs: &[NetId],
        output: NetId,
    ) -> Result<GateId> {
        let cell_id = self
            .library
            .find(cell_name)
            .ok_or_else(|| NetlistError::UnknownName {
                kind: "cell",
                name: cell_name.to_string(),
            })?;
        self.add_gate_by_id(inst_name, cell_id, inputs, output)
    }

    /// Like [`NetlistBuilder::add_gate`] but takes a resolved [`CellTypeId`].
    ///
    /// # Errors
    ///
    /// See [`NetlistBuilder::add_gate`].
    pub fn add_gate_by_id(
        &mut self,
        inst_name: &str,
        cell_id: CellTypeId,
        inputs: &[NetId],
        output: NetId,
    ) -> Result<GateId> {
        let lib = Arc::clone(&self.library);
        let cell = lib.cell(cell_id);
        if self.gate_names.contains_key(inst_name) {
            return Err(NetlistError::DuplicateName {
                kind: "gate",
                name: inst_name.to_string(),
            });
        }
        if inputs.len() != cell.num_inputs() {
            return Err(NetlistError::PinMismatch {
                gate: inst_name.to_string(),
                cell: cell.name().to_string(),
                detail: format!(
                    "{} connections for {} pins",
                    inputs.len(),
                    cell.num_inputs()
                ),
            });
        }
        {
            let out_net = &self.nets[output.index()];
            if out_net.driver.is_some() || out_net.is_primary_input {
                return Err(NetlistError::MultipleDrivers {
                    net: out_net.name.clone(),
                    driver: inst_name.to_string(),
                });
            }
        }
        let id = GateId(self.gates.len() as u32);
        for (pin, &net) in inputs.iter().enumerate() {
            self.nets[net.index()].loads.push(PinRef {
                gate: id,
                pin: pin as u32,
            });
        }
        self.nets[output.index()].driver = Some(id);
        self.gates.push(Gate {
            name: inst_name.to_string(),
            cell: cell_id,
            inputs: inputs.to_vec(),
            output,
        });
        self.gate_names.insert(inst_name.to_string(), id);
        Ok(id)
    }

    /// Looks up a net added earlier.
    pub fn find_net(&self, name: &str) -> Option<NetId> {
        self.net_names.get(name).copied()
    }

    /// Number of gates added so far.
    pub fn gate_count(&self) -> usize {
        self.gates.len()
    }

    /// Finalises the netlist.
    ///
    /// # Errors
    ///
    /// Returns [`NetlistError::Undriven`] if any net with loads (or any
    /// primary output) lacks a driver.
    pub fn finish(self) -> Result<Netlist> {
        for net in &self.nets {
            let driven = net.driver.is_some() || net.is_primary_input;
            if !driven && (!net.loads.is_empty() || net.is_primary_output) {
                return Err(NetlistError::Undriven {
                    net: net.name.clone(),
                });
            }
        }
        Ok(Netlist {
            name: self.name,
            library: self.library,
            nets: self.nets,
            gates: self.gates,
            primary_inputs: self.primary_inputs,
            primary_outputs: self.primary_outputs,
            net_names: self.net_names,
            gate_names: self.gate_names,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn lib() -> CellLibrary {
        CellLibrary::industry_mini()
    }

    fn full_adder() -> Netlist {
        let mut b = NetlistBuilder::new("fa", lib());
        let a = b.add_input("a").unwrap();
        let bb = b.add_input("b").unwrap();
        let cin = b.add_input("cin").unwrap();
        let sum = b.add_output("sum").unwrap();
        let cout = b.add_output("cout").unwrap();
        b.add_gate("u_sum", "XOR3", &[a, bb, cin], sum).unwrap();
        b.add_gate("u_carry", "MAJ3", &[a, bb, cin], cout).unwrap();
        b.finish().unwrap()
    }

    #[test]
    fn build_full_adder() {
        let n = full_adder();
        assert_eq!(n.gate_count(), 2);
        assert_eq!(n.net_count(), 5);
        assert_eq!(n.primary_inputs().len(), 3);
        assert_eq!(n.primary_outputs().len(), 2);
        n.validate().unwrap();
    }

    #[test]
    fn loads_and_drivers_wired() {
        let n = full_adder();
        let a = n.find_net("a").unwrap();
        assert_eq!(n.net(a).fanout(), 2);
        assert!(n.net(a).is_primary_input());
        let sum = n.find_net("sum").unwrap();
        let drv = n.net(sum).driver().unwrap();
        assert_eq!(n.gate(drv).name(), "u_sum");
    }

    #[test]
    fn duplicate_net_rejected() {
        let mut b = NetlistBuilder::new("t", lib());
        b.add_input("x").unwrap();
        assert!(matches!(
            b.add_net("x"),
            Err(NetlistError::DuplicateName { .. })
        ));
    }

    #[test]
    fn duplicate_gate_rejected() {
        let mut b = NetlistBuilder::new("t", lib());
        let x = b.add_input("x").unwrap();
        let y = b.add_output("y").unwrap();
        let z = b.add_output("z").unwrap();
        b.add_gate("g", "INV", &[x], y).unwrap();
        assert!(matches!(
            b.add_gate("g", "INV", &[x], z),
            Err(NetlistError::DuplicateName { .. })
        ));
    }

    #[test]
    fn multiple_drivers_rejected() {
        let mut b = NetlistBuilder::new("t", lib());
        let x = b.add_input("x").unwrap();
        let y = b.add_output("y").unwrap();
        b.add_gate("g1", "INV", &[x], y).unwrap();
        assert!(matches!(
            b.add_gate("g2", "BUF", &[x], y),
            Err(NetlistError::MultipleDrivers { .. })
        ));
    }

    #[test]
    fn driving_primary_input_rejected() {
        let mut b = NetlistBuilder::new("t", lib());
        let x = b.add_input("x").unwrap();
        let y = b.add_input("y").unwrap();
        assert!(matches!(
            b.add_gate("g", "INV", &[x], y),
            Err(NetlistError::MultipleDrivers { .. })
        ));
    }

    #[test]
    fn arity_mismatch_rejected() {
        let mut b = NetlistBuilder::new("t", lib());
        let x = b.add_input("x").unwrap();
        let y = b.add_output("y").unwrap();
        assert!(matches!(
            b.add_gate("g", "NAND2", &[x], y),
            Err(NetlistError::PinMismatch { .. })
        ));
    }

    #[test]
    fn unknown_cell_rejected() {
        let mut b = NetlistBuilder::new("t", lib());
        let x = b.add_input("x").unwrap();
        let y = b.add_output("y").unwrap();
        assert!(matches!(
            b.add_gate("g", "FROB", &[x], y),
            Err(NetlistError::UnknownName { .. })
        ));
    }

    #[test]
    fn undriven_output_rejected_at_finish() {
        let mut b = NetlistBuilder::new("t", lib());
        b.add_output("y").unwrap();
        assert!(matches!(b.finish(), Err(NetlistError::Undriven { .. })));
    }

    #[test]
    fn undriven_loaded_net_rejected_at_finish() {
        let mut b = NetlistBuilder::new("t", lib());
        let float = b.add_net("float").unwrap();
        let y = b.add_output("y").unwrap();
        b.add_gate("g", "INV", &[float], y).unwrap();
        assert!(matches!(b.finish(), Err(NetlistError::Undriven { .. })));
    }

    #[test]
    fn mark_output_is_idempotent() {
        let mut b = NetlistBuilder::new("t", lib());
        let x = b.add_input("x").unwrap();
        let w = b.add_net("w").unwrap();
        b.add_gate("g", "INV", &[x], w).unwrap();
        b.mark_output(w);
        b.mark_output(w);
        let n = b.finish().unwrap();
        assert_eq!(n.primary_outputs(), &[w]);
    }

    #[test]
    fn total_area_positive() {
        assert!(full_adder().total_area() > 0.0);
    }

    #[test]
    fn tie_cell_has_no_inputs() {
        let mut b = NetlistBuilder::new("t", lib());
        let y = b.add_output("y").unwrap();
        b.add_gate("g", "TIEHI", &[], y).unwrap();
        let n = b.finish().unwrap();
        n.validate().unwrap();
        assert_eq!(n.gate(n.find_gate("g").unwrap()).inputs().len(), 0);
    }
}
