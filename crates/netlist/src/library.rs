use std::collections::HashMap;
use std::fmt;

use crate::expr::Expr;
use crate::{CellKind, NetlistError, Result, TruthTable};

/// Index of a cell type inside its [`CellLibrary`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct CellTypeId(pub(crate) u32);

impl CellTypeId {
    /// The raw index value.
    pub fn index(self) -> usize {
        self.0 as usize
    }
}

impl fmt::Display for CellTypeId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "cell#{}", self.0)
    }
}

/// A combinational standard-cell definition: named input pins, one output
/// pin, and a [`TruthTable`] logic function.
///
/// Sequential cells are deliberately absent: GATSPI is a *re*-simulator, and
/// sequential element waveforms are inputs to the simulation (pseudo-primary
/// inputs), not simulated entities.
#[derive(Debug, Clone, PartialEq)]
pub struct CellType {
    name: String,
    inputs: Vec<String>,
    output: String,
    function: TruthTable,
    kind: CellKind,
    /// Relative area, used by the power model and workload reporting.
    area: f64,
}

impl CellType {
    /// Creates a cell type from parts.
    ///
    /// # Errors
    ///
    /// Returns [`NetlistError::BadTruthTable`] if the function arity does not
    /// match the number of input pins, and [`NetlistError::DuplicateName`] if
    /// two pins share a name.
    pub fn new(
        name: impl Into<String>,
        inputs: Vec<String>,
        output: impl Into<String>,
        function: TruthTable,
        kind: CellKind,
        area: f64,
    ) -> Result<Self> {
        let name = name.into();
        if function.inputs() != inputs.len() {
            return Err(NetlistError::BadTruthTable {
                detail: format!(
                    "cell `{name}`: function has {} inputs but {} pins declared",
                    function.inputs(),
                    inputs.len()
                ),
            });
        }
        for (i, a) in inputs.iter().enumerate() {
            if inputs[..i].iter().any(|b| b == a) {
                return Err(NetlistError::DuplicateName {
                    kind: "pin",
                    name: a.clone(),
                });
            }
        }
        Ok(CellType {
            name,
            inputs,
            output: output.into(),
            function,
            kind,
            area,
        })
    }

    /// Cell type name, e.g. `"NAND2"`.
    pub fn name(&self) -> &str {
        &self.name
    }

    /// Input pin names in pin order (pin `i` has truth-table weight `2^i`).
    pub fn input_pins(&self) -> &[String] {
        &self.inputs
    }

    /// Output pin name.
    pub fn output_pin(&self) -> &str {
        &self.output
    }

    /// The logic function.
    pub fn function(&self) -> &TruthTable {
        &self.function
    }

    /// Coarse functional classification.
    pub fn kind(&self) -> CellKind {
        self.kind
    }

    /// Relative cell area.
    pub fn area(&self) -> f64 {
        self.area
    }

    /// Number of input pins.
    pub fn num_inputs(&self) -> usize {
        self.inputs.len()
    }

    /// Position of the named input pin, if present.
    pub fn input_index(&self, pin: &str) -> Option<usize> {
        self.inputs.iter().position(|p| p == pin)
    }
}

/// An immutable collection of [`CellType`]s addressed by [`CellTypeId`] or
/// name.
///
/// # Example
///
/// ```
/// use gatspi_netlist::CellLibrary;
///
/// let lib = CellLibrary::industry_mini();
/// let nand2 = lib.find("NAND2").expect("NAND2 present");
/// assert_eq!(lib.cell(nand2).num_inputs(), 2);
/// ```
#[derive(Debug, Clone, Default)]
pub struct CellLibrary {
    cells: Vec<CellType>,
    by_name: HashMap<String, CellTypeId>,
}

impl CellLibrary {
    /// Creates an empty library.
    pub fn new() -> Self {
        Self::default()
    }

    /// Adds a cell type, returning its id.
    ///
    /// # Errors
    ///
    /// Returns [`NetlistError::DuplicateName`] if the name is already taken.
    pub fn add(&mut self, cell: CellType) -> Result<CellTypeId> {
        if self.by_name.contains_key(cell.name()) {
            return Err(NetlistError::DuplicateName {
                kind: "cell",
                name: cell.name().to_string(),
            });
        }
        let id = CellTypeId(self.cells.len() as u32);
        self.by_name.insert(cell.name().to_string(), id);
        self.cells.push(cell);
        Ok(id)
    }

    /// Convenience: defines a cell from a Liberty-style function expression.
    ///
    /// # Errors
    ///
    /// Propagates expression-parse and construction errors.
    pub fn define(
        &mut self,
        name: &str,
        inputs: &[&str],
        output: &str,
        function: &str,
        kind: CellKind,
        area: f64,
    ) -> Result<CellTypeId> {
        let table = Expr::parse(function)?.to_truth_table(inputs)?;
        let cell = CellType::new(
            name,
            inputs.iter().map(|s| s.to_string()).collect(),
            output,
            table,
            kind,
            area,
        )?;
        self.add(cell)
    }

    /// Looks a cell up by name.
    pub fn find(&self, name: &str) -> Option<CellTypeId> {
        self.by_name.get(name).copied()
    }

    /// Accesses a cell by id.
    ///
    /// # Panics
    ///
    /// Panics if `id` does not belong to this library.
    pub fn cell(&self, id: CellTypeId) -> &CellType {
        &self.cells[id.index()]
    }

    /// Number of cell types.
    pub fn len(&self) -> usize {
        self.cells.len()
    }

    /// Whether the library is empty.
    pub fn is_empty(&self) -> bool {
        self.cells.is_empty()
    }

    /// Iterates over `(id, cell)` pairs.
    pub fn iter(&self) -> impl Iterator<Item = (CellTypeId, &CellType)> {
        self.cells
            .iter()
            .enumerate()
            .map(|(i, c)| (CellTypeId(i as u32), c))
    }

    /// Builds the reference library used across the workspace: a compact but
    /// representative industry-style set of combinational cells, covering the
    /// "full logic cell types" the paper advertises — simple gates, wide
    /// basic gates, parity gates, muxes and AOI/OAI/AO/OA complex cells.
    pub fn industry_mini() -> Self {
        let mut lib = CellLibrary::new();
        let mut def = |name: &str, ins: &[&str], f: &str, kind: CellKind, area: f64| {
            lib.define(name, ins, "Y", f, kind, area)
                .expect("builtin cell definitions are valid");
        };

        def("BUF", &["A"], "A", CellKind::Simple, 1.0);
        def("INV", &["A"], "!A", CellKind::Simple, 0.7);

        def("AND2", &["A", "B"], "A & B", CellKind::Basic, 1.3);
        def("AND3", &["A", "B", "C"], "A & B & C", CellKind::Basic, 1.7);
        def(
            "AND4",
            &["A", "B", "C", "D"],
            "A & B & C & D",
            CellKind::Basic,
            2.0,
        );
        def("OR2", &["A", "B"], "A | B", CellKind::Basic, 1.3);
        def("OR3", &["A", "B", "C"], "A | B | C", CellKind::Basic, 1.7);
        def(
            "OR4",
            &["A", "B", "C", "D"],
            "A | B | C | D",
            CellKind::Basic,
            2.0,
        );
        def("NAND2", &["A", "B"], "!(A & B)", CellKind::Basic, 1.0);
        def(
            "NAND3",
            &["A", "B", "C"],
            "!(A & B & C)",
            CellKind::Basic,
            1.4,
        );
        def(
            "NAND4",
            &["A", "B", "C", "D"],
            "!(A & B & C & D)",
            CellKind::Basic,
            1.8,
        );
        def("NOR2", &["A", "B"], "!(A | B)", CellKind::Basic, 1.0);
        def(
            "NOR3",
            &["A", "B", "C"],
            "!(A | B | C)",
            CellKind::Basic,
            1.4,
        );
        def(
            "NOR4",
            &["A", "B", "C", "D"],
            "!(A | B | C | D)",
            CellKind::Basic,
            1.8,
        );

        def("XOR2", &["A", "B"], "A ^ B", CellKind::Parity, 1.9);
        def("XOR3", &["A", "B", "C"], "A ^ B ^ C", CellKind::Parity, 2.6);
        def("XNOR2", &["A", "B"], "!(A ^ B)", CellKind::Parity, 1.9);
        def(
            "XNOR3",
            &["A", "B", "C"],
            "!(A ^ B ^ C)",
            CellKind::Parity,
            2.6,
        );

        def("MUX2", &["A", "B", "S"], "S ? B : A", CellKind::Mux, 2.2);
        def(
            "MUX4",
            &["A", "B", "C", "D", "S0", "S1"],
            "S1 ? (S0 ? D : C) : (S0 ? B : A)",
            CellKind::Mux,
            4.4,
        );

        def(
            "AOI21",
            &["A1", "A2", "B"],
            "!((A1 & A2) | B)",
            CellKind::Complex,
            1.6,
        );
        def(
            "AOI22",
            &["A1", "A2", "B1", "B2"],
            "!((A1 & A2) | (B1 & B2))",
            CellKind::Complex,
            2.1,
        );
        def(
            "AOI211",
            &["A1", "A2", "B", "C"],
            "!((A1 & A2) | B | C)",
            CellKind::Complex,
            2.3,
        );
        def(
            "OAI21",
            &["A1", "A2", "B"],
            "!((A1 | A2) & B)",
            CellKind::Complex,
            1.6,
        );
        def(
            "OAI22",
            &["A1", "A2", "B1", "B2"],
            "!((A1 | A2) & (B1 | B2))",
            CellKind::Complex,
            2.1,
        );
        def(
            "OAI211",
            &["A1", "A2", "B", "C"],
            "!((A1 | A2) & B & C)",
            CellKind::Complex,
            2.3,
        );
        def(
            "AO21",
            &["A1", "A2", "B"],
            "(A1 & A2) | B",
            CellKind::Complex,
            1.8,
        );
        def(
            "OA21",
            &["A1", "A2", "B"],
            "(A1 | A2) & B",
            CellKind::Complex,
            1.8,
        );
        def(
            "AO22",
            &["A1", "A2", "B1", "B2"],
            "(A1 & A2) | (B1 & B2)",
            CellKind::Complex,
            2.3,
        );
        def(
            "OA22",
            &["A1", "A2", "B1", "B2"],
            "(A1 | A2) & (B1 | B2)",
            CellKind::Complex,
            2.3,
        );

        // Majority / full-adder carry: the workhorse of arithmetic datapaths.
        def(
            "MAJ3",
            &["A", "B", "C"],
            "(A & B) | (A & C) | (B & C)",
            CellKind::Complex,
            2.4,
        );

        def("TIELO", &[], "0", CellKind::Tie, 0.5);
        def("TIEHI", &[], "1", CellKind::Tie, 0.5);

        lib
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn industry_mini_is_well_formed() {
        let lib = CellLibrary::industry_mini();
        assert!(
            lib.len() >= 30,
            "expected a broad cell set, got {}",
            lib.len()
        );
        for (_, cell) in lib.iter() {
            // Every declared input pin of a non-tie cell must be observable;
            // an unobservable pin would indicate a typo in the function.
            if cell.kind() != CellKind::Tie {
                for i in 0..cell.num_inputs() {
                    assert!(
                        cell.function().pin_observable(i),
                        "cell {} pin {} unobservable",
                        cell.name(),
                        cell.input_pins()[i]
                    );
                }
            }
        }
    }

    #[test]
    fn lookup_by_name_and_id_agree() {
        let lib = CellLibrary::industry_mini();
        let id = lib.find("AOI21").unwrap();
        assert_eq!(lib.cell(id).name(), "AOI21");
        assert_eq!(lib.cell(id).input_pins(), &["A1", "A2", "B"]);
        assert!(lib.find("NO_SUCH_CELL").is_none());
    }

    #[test]
    fn duplicate_cell_rejected() {
        let mut lib = CellLibrary::industry_mini();
        let err = lib.define("INV", &["A"], "Y", "!A", CellKind::Simple, 1.0);
        assert!(matches!(err, Err(NetlistError::DuplicateName { .. })));
    }

    #[test]
    fn duplicate_pin_rejected() {
        let t = TruthTable::from_fn(2, |b| b[0] & b[1]);
        let err = CellType::new(
            "BAD",
            vec!["A".into(), "A".into()],
            "Y",
            t,
            CellKind::Basic,
            1.0,
        );
        assert!(matches!(err, Err(NetlistError::DuplicateName { .. })));
    }

    #[test]
    fn arity_mismatch_rejected() {
        let t = TruthTable::from_fn(2, |b| b[0] & b[1]);
        let err = CellType::new("BAD", vec!["A".into()], "Y", t, CellKind::Basic, 1.0);
        assert!(matches!(err, Err(NetlistError::BadTruthTable { .. })));
    }

    #[test]
    fn mux4_truth() {
        let lib = CellLibrary::industry_mini();
        let mux = lib.cell(lib.find("MUX4").unwrap());
        // Select D when S0=S1=1.
        assert_eq!(mux.function().eval(&[0, 0, 0, 1, 1, 1]), 1);
        // Select A when S0=S1=0.
        assert_eq!(mux.function().eval(&[1, 0, 0, 0, 0, 0]), 1);
        assert_eq!(mux.function().eval(&[0, 1, 1, 1, 0, 0]), 0);
    }

    #[test]
    fn tie_cells_have_no_inputs() {
        let lib = CellLibrary::industry_mini();
        let hi = lib.cell(lib.find("TIEHI").unwrap());
        assert_eq!(hi.num_inputs(), 0);
        assert_eq!(hi.function().eval(&[]), 1);
        let lo = lib.cell(lib.find("TIELO").unwrap());
        assert_eq!(lo.function().eval(&[]), 0);
    }

    #[test]
    fn input_index() {
        let lib = CellLibrary::industry_mini();
        let aoi = lib.cell(lib.find("AOI21").unwrap());
        assert_eq!(aoi.input_index("B"), Some(2));
        assert_eq!(aoi.input_index("Z"), None);
    }
}
