use crate::{NetlistError, Result};

/// Maximum number of input pins a single cell may have.
///
/// The truth-table array grows as `2^n`, and the conditional-delay lookup
/// tables of the simulator grow as `4 * 2^(n-1)`, so this bound keeps both
/// comfortably small. Industry combinational cells rarely exceed 6 inputs.
pub const MAX_CELL_INPUTS: usize = 16;

/// Coarse functional classification of a cell, used by workload generators
/// and reporting. The simulator itself only consumes [`TruthTable`]s.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
#[non_exhaustive]
pub enum CellKind {
    /// Single-input buffer or inverter.
    Simple,
    /// AND/OR/NAND/NOR family.
    Basic,
    /// XOR/XNOR family (high switching activity).
    Parity,
    /// Multiplexers.
    Mux,
    /// AOI/OAI/AO/OA compound gates.
    Complex,
    /// Constant drivers (tie cells).
    Tie,
}

/// A logic function stored as the 1-D array of the paper's Fig. 4.
///
/// Pin `i` (0-based) has *weight* `2^i`. The output for a given input vector
/// is `values[sum of weights of pins at logic 1]`. This uniform lookup
/// formulation is what lets the GPU kernel evaluate *any* cell type with a
/// single indexed load, rather than branching per cell function.
///
/// # Example
///
/// ```
/// use gatspi_netlist::TruthTable;
///
/// // NAND2: Y = !(A & B); pin A has weight 1, pin B has weight 2.
/// let t = TruthTable::from_fn(2, |bits| !(bits[0] && bits[1]));
/// assert_eq!(t.eval_index(0), 1); // A=0 B=0
/// assert_eq!(t.eval_index(3), 0); // A=1 B=1
/// ```
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub struct TruthTable {
    inputs: usize,
    /// `2^inputs` output values, each 0 or 1.
    values: Vec<u8>,
}

impl TruthTable {
    /// Builds a truth table from an explicit row-value array.
    ///
    /// `values[idx]` is the output when the set of input pins at logic 1 has
    /// weight-sum `idx` (pin `i` weighs `2^i`).
    ///
    /// # Errors
    ///
    /// Returns [`NetlistError::BadTruthTable`] if `values.len() != 2^inputs`,
    /// if any value is not 0/1, or if `inputs` exceeds `MAX_CELL_INPUTS`.
    pub fn new(inputs: usize, values: Vec<u8>) -> Result<Self> {
        if inputs > MAX_CELL_INPUTS {
            return Err(NetlistError::BadTruthTable {
                detail: format!("{inputs} inputs exceeds MAX_CELL_INPUTS ({MAX_CELL_INPUTS})"),
            });
        }
        if values.len() != 1usize << inputs {
            return Err(NetlistError::BadTruthTable {
                detail: format!(
                    "expected {} rows for {} inputs, got {}",
                    1usize << inputs,
                    inputs,
                    values.len()
                ),
            });
        }
        if let Some(v) = values.iter().find(|&&v| v > 1) {
            return Err(NetlistError::BadTruthTable {
                detail: format!("row value {v} is not a logic level (0/1)"),
            });
        }
        Ok(TruthTable { inputs, values })
    }

    /// Builds a truth table by evaluating `f` on every input combination.
    ///
    /// `f` receives a slice of booleans, one per input pin in pin order.
    ///
    /// # Panics
    ///
    /// Panics if `inputs > MAX_CELL_INPUTS`; use [`TruthTable::new`] for a
    /// fallible path.
    pub fn from_fn(inputs: usize, mut f: impl FnMut(&[bool]) -> bool) -> Self {
        assert!(
            inputs <= MAX_CELL_INPUTS,
            "{inputs} inputs exceeds MAX_CELL_INPUTS"
        );
        let rows = 1usize << inputs;
        let mut values = Vec::with_capacity(rows);
        let mut bits = vec![false; inputs];
        for idx in 0..rows {
            for (i, b) in bits.iter_mut().enumerate() {
                *b = (idx >> i) & 1 == 1;
            }
            values.push(u8::from(f(&bits)));
        }
        TruthTable { inputs, values }
    }

    /// Number of input pins.
    pub fn inputs(&self) -> usize {
        self.inputs
    }

    /// The raw Fig.-4 row array (`2^inputs` entries of 0/1).
    pub fn values(&self) -> &[u8] {
        &self.values
    }

    /// The weight of input pin `pin` (i.e. `2^pin`), as used when forming a
    /// lookup index.
    ///
    /// # Panics
    ///
    /// Panics if `pin >= self.inputs()`.
    pub fn pin_weight(&self, pin: usize) -> u32 {
        assert!(pin < self.inputs, "pin {pin} out of range");
        1u32 << pin
    }

    /// Evaluates the function at a precomputed weight-sum index.
    ///
    /// # Panics
    ///
    /// Panics if `index >= 2^inputs`.
    #[inline]
    pub fn eval_index(&self, index: u32) -> u8 {
        self.values[index as usize]
    }

    /// Evaluates the function on a slice of pin values (0/1), pin order.
    ///
    /// # Panics
    ///
    /// Panics if `pins.len() != self.inputs()`.
    pub fn eval(&self, pins: &[u8]) -> u8 {
        assert_eq!(pins.len(), self.inputs, "pin count mismatch");
        let mut idx = 0u32;
        for (i, &v) in pins.iter().enumerate() {
            if v != 0 {
                idx += 1 << i;
            }
        }
        self.eval_index(idx)
    }

    /// Returns `true` if toggling input `pin` changes the output for at least
    /// one assignment of the other pins (i.e. the pin is functionally
    /// observable).
    pub fn pin_observable(&self, pin: usize) -> bool {
        assert!(pin < self.inputs, "pin {pin} out of range");
        let w = 1usize << pin;
        (0..self.values.len())
            .filter(|idx| idx & w == 0)
            .any(|idx| self.values[idx] != self.values[idx | w])
    }

    /// Returns the function with the given input pin inverted, useful for
    /// deriving bubbled variants of library cells.
    pub fn with_inverted_pin(&self, pin: usize) -> Self {
        assert!(pin < self.inputs, "pin {pin} out of range");
        let w = 1usize << pin;
        let mut values = self.values.clone();
        for (idx, v) in values.iter_mut().enumerate() {
            *v = if idx & w == 0 {
                self.values[idx | w]
            } else {
                self.values[idx & !w]
            };
        }
        TruthTable {
            inputs: self.inputs,
            values,
        }
    }

    /// Returns the complemented function.
    pub fn inverted(&self) -> Self {
        TruthTable {
            inputs: self.inputs,
            values: self.values.iter().map(|&v| 1 - v).collect(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn from_fn_matches_manual_nand2() {
        let t = TruthTable::from_fn(2, |b| !(b[0] && b[1]));
        assert_eq!(t.values(), &[1, 1, 1, 0]);
        assert_eq!(t.inputs(), 2);
    }

    #[test]
    fn paper_fig4_nand_example() {
        // Fig. 4 shows Y=[1,1,1,0] for a NAND with A weight 2 and B weight 1.
        // Our convention gives pin 0 weight 1; with pins ordered (B, A) the
        // row array matches the figure exactly.
        let t = TruthTable::from_fn(2, |b| !(b[1] && b[0]));
        assert_eq!(t.values(), &[1, 1, 1, 0]);
        // A=1 (pin 1, weight 2) + B=1 (pin 0, weight 1) => index 3 => 0.
        assert_eq!(t.eval_index(3), 0);
    }

    #[test]
    fn new_validates_row_count() {
        assert!(TruthTable::new(2, vec![0, 1]).is_err());
        assert!(TruthTable::new(1, vec![0, 1]).is_ok());
    }

    #[test]
    fn new_validates_logic_levels() {
        assert!(TruthTable::new(1, vec![0, 2]).is_err());
    }

    #[test]
    fn new_rejects_too_many_inputs() {
        let n = MAX_CELL_INPUTS + 1;
        assert!(TruthTable::new(n, vec![0; 1 << n]).is_err());
    }

    #[test]
    fn eval_by_pins() {
        let t = TruthTable::from_fn(3, |b| (b[0] ^ b[1]) ^ b[2]);
        assert_eq!(t.eval(&[1, 1, 0]), 0);
        assert_eq!(t.eval(&[1, 0, 0]), 1);
        assert_eq!(t.eval(&[1, 1, 1]), 1);
    }

    #[test]
    fn observability() {
        // MUX2: S ? B : A, pins (A, B, S).
        let mux = TruthTable::from_fn(3, |b| if b[2] { b[1] } else { b[0] });
        assert!(mux.pin_observable(0));
        assert!(mux.pin_observable(1));
        assert!(mux.pin_observable(2));
        // Constant function: nothing observable.
        let tie = TruthTable::from_fn(1, |_| true);
        assert!(!tie.pin_observable(0));
    }

    #[test]
    fn invert_pin_roundtrip() {
        let t = TruthTable::from_fn(2, |b| b[0] && b[1]);
        let ti = t.with_inverted_pin(0).with_inverted_pin(0);
        assert_eq!(t, ti);
        let inv = t.inverted();
        assert_eq!(inv.values(), &[1, 1, 1, 0]);
    }

    #[test]
    fn pin_weights_are_powers_of_two() {
        let t = TruthTable::from_fn(4, |b| b.iter().any(|&x| x));
        assert_eq!(t.pin_weight(0), 1);
        assert_eq!(t.pin_weight(3), 8);
    }
}
