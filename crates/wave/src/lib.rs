//! Waveforms, waveform storage, and activity-file IO for the GATSPI
//! reproduction.
//!
//! The central type is [`Waveform`]: the array format of the paper's Fig. 3,
//! taken from Holst et al. — a flat `i32` timestamp array where the logic
//! value is encoded in the *index parity* of each toggle (even index ⇒ the
//! signal becomes 0, odd index ⇒ it becomes 1), a leading `-1` marker shifts
//! the time-0 entry to odd parity when the initial value is 1, and the array
//! is terminated by [`EOW`] (`i32::MAX`).
//!
//! This encoding is what makes the GPU kernel branch-free about values: a
//! thread holding a pointer `p` into the array knows the signal's current
//! value is simply `p % 2` (provided every waveform is allocated at an even
//! base offset, which [`WaveformArena`] guarantees).
//!
//! Also provided:
//!
//! * [`WaveformArena`] — a single pre-allocated buffer holding all waveforms
//!   of a simulation (the paper's "one chunk of device memory"),
//! * [`saif`] — SAIF 2.0 writing/reading/comparison for power handoff,
//! * [`vcd`] — a minimal VCD reader/writer for stimulus interchange,
//! * [`activity`] — toggle counting and activity-factor metrics.

#![deny(missing_docs)]

pub mod activity;
mod arena;
mod error;
pub mod saif;
pub mod vcd;
mod waveform;

pub use arena::{WaveRef, WaveformArena};
pub use error::WaveError;
pub use waveform::{split_raw, Waveform, WaveformBuilder};

/// Simulation timestamp type. Units are arbitrary (SDF timescale ticks).
pub type SimTime = i32;

/// End-of-waveform sentinel (`i32::MAX`), as in Fig. 3.
pub const EOW: SimTime = i32::MAX;

/// Initial-value marker: a leading `-1` means the signal starts at 1.
pub const INIT_ONE_MARKER: SimTime = -1;

/// Result alias used throughout this crate.
pub type Result<T> = std::result::Result<T, WaveError>;
