//! Toggle counting and activity-factor metrics.
//!
//! The paper characterises every benchmark by its *activity factor*: the
//! average number of toggles per signal per clock cycle. Hybrid GPU
//! simulators have throughput proportional to total events, so this metric
//! predicts where re-simulation speedups land.

use crate::Waveform;

/// Aggregate switching statistics over a set of waveforms.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct ActivityStats {
    /// Number of signals inspected.
    pub signals: usize,
    /// Total toggles across all signals (excluding initial values).
    pub total_toggles: u64,
    /// Maximum toggles on any single signal.
    pub max_toggles: u64,
    /// Number of signals that never toggle.
    pub quiet_signals: usize,
}

impl ActivityStats {
    /// Computes statistics over an iterator of waveforms.
    pub fn from_waveforms<'a>(waves: impl IntoIterator<Item = &'a Waveform>) -> Self {
        let mut stats = ActivityStats {
            signals: 0,
            total_toggles: 0,
            max_toggles: 0,
            quiet_signals: 0,
        };
        for w in waves {
            let tc = w.toggle_count() as u64;
            stats.signals += 1;
            stats.total_toggles += tc;
            stats.max_toggles = stats.max_toggles.max(tc);
            if tc == 0 {
                stats.quiet_signals += 1;
            }
        }
        stats
    }

    /// Activity factor: toggles per signal per cycle. Returns 0 for empty
    /// inputs or zero cycles.
    pub fn activity_factor(&self, cycles: u64) -> f64 {
        if self.signals == 0 || cycles == 0 {
            return 0.0;
        }
        self.total_toggles as f64 / (self.signals as f64 * cycles as f64)
    }

    /// Average toggles per signal.
    pub fn mean_toggles(&self) -> f64 {
        if self.signals == 0 {
            return 0.0;
        }
        self.total_toggles as f64 / self.signals as f64
    }

    /// Workload imbalance ratio: max toggles over mean toggles. The paper's
    /// "highly unbalanced workload" benchmarks have large values here; 1.0 is
    /// perfectly balanced. Returns 0 when there is no activity at all.
    pub fn imbalance(&self) -> f64 {
        let mean = self.mean_toggles();
        if mean == 0.0 {
            return 0.0;
        }
        self.max_toggles as f64 / mean
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::Waveform;

    fn waves() -> Vec<Waveform> {
        vec![
            Waveform::from_toggles(false, &[1, 2, 3, 4]),
            Waveform::from_toggles(true, &[5, 6]),
            Waveform::constant(false),
        ]
    }

    #[test]
    fn counts() {
        let w = waves();
        let s = ActivityStats::from_waveforms(&w);
        assert_eq!(s.signals, 3);
        assert_eq!(s.total_toggles, 6);
        assert_eq!(s.max_toggles, 4);
        assert_eq!(s.quiet_signals, 1);
    }

    #[test]
    fn activity_factor_per_cycle() {
        let w = waves();
        let s = ActivityStats::from_waveforms(&w);
        // 6 toggles / (3 signals * 2 cycles) = 1.0
        assert!((s.activity_factor(2) - 1.0).abs() < 1e-12);
        assert_eq!(s.activity_factor(0), 0.0);
    }

    #[test]
    fn imbalance() {
        let w = waves();
        let s = ActivityStats::from_waveforms(&w);
        // mean = 2, max = 4.
        assert!((s.imbalance() - 2.0).abs() < 1e-12);
    }

    #[test]
    fn empty_input() {
        let s = ActivityStats::from_waveforms(std::iter::empty());
        assert_eq!(s.signals, 0);
        assert_eq!(s.activity_factor(10), 0.0);
        assert_eq!(s.imbalance(), 0.0);
    }
}
