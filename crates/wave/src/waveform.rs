use crate::{Result, SimTime, WaveError, EOW, INIT_ONE_MARKER};

/// A 2-value digital waveform in the array format of the paper's Fig. 3.
///
/// Layout of the backing `i32` array:
///
/// ```text
/// [ -1?, t0, t1, t2, ..., tn, EOW ]
/// ```
///
/// * Each `tk` is a timestamp at which the signal toggles; timestamps are
///   strictly increasing and non-negative.
/// * The logic value *after* the toggle stored at array index `k` is
///   `k % 2` (even index ⇒ 0, odd index ⇒ 1).
/// * The first real entry always has timestamp 0 and establishes the initial
///   value; when the initial value is 1 a leading [`INIT_ONE_MARKER`] (`-1`)
///   pads the array so the time-0 entry lands on an odd index.
/// * [`EOW`] (`i32::MAX`) terminates the array.
///
/// # Example
///
/// ```
/// use gatspi_wave::Waveform;
///
/// // Starts at 1, falls at t=5, rises again at t=9.
/// let w = Waveform::from_toggles(true, &[5, 9]);
/// assert_eq!(w.raw(), &[-1, 0, 5, 9, i32::MAX]);
/// assert!(w.initial_value());
/// assert!(!w.value_at(5));
/// assert!(w.value_at(9));
/// assert_eq!(w.toggle_count(), 2);
/// ```
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub struct Waveform {
    data: Vec<SimTime>,
}

impl Waveform {
    /// A waveform that holds `value` forever.
    pub fn constant(value: bool) -> Self {
        let data = if value {
            vec![INIT_ONE_MARKER, 0, EOW]
        } else {
            vec![0, EOW]
        };
        Waveform { data }
    }

    /// Builds a waveform from an initial value and strictly-increasing
    /// positive toggle times.
    ///
    /// # Panics
    ///
    /// Panics if toggle times are not strictly increasing, not positive, or
    /// reach [`EOW`]. Use [`WaveformBuilder`] for a fallible interface.
    pub fn from_toggles(initial: bool, toggles: &[SimTime]) -> Self {
        let mut b = WaveformBuilder::new(initial);
        for &t in toggles {
            b.toggle(t).expect("toggle times must be increasing");
        }
        b.finish()
    }

    /// Builds a waveform from `(time, value)` change points. The first entry
    /// must be at time 0 (the initial value); entries that repeat the current
    /// value are ignored.
    ///
    /// # Errors
    ///
    /// Returns [`WaveError::NonMonotonic`] if times decrease, or
    /// [`WaveError::BadEncoding`] if the first entry is not at time 0.
    pub fn from_samples(samples: &[(SimTime, bool)]) -> Result<Self> {
        let Some(&(t0, v0)) = samples.first() else {
            return Err(WaveError::BadEncoding {
                detail: "empty sample list".into(),
            });
        };
        if t0 != 0 {
            return Err(WaveError::BadEncoding {
                detail: format!("first sample must be at time 0, got {t0}"),
            });
        }
        let mut b = WaveformBuilder::new(v0);
        for (i, &(t, v)) in samples.iter().enumerate().skip(1) {
            if v != b.current_value() {
                b.toggle(t)
                    .map_err(|_| WaveError::NonMonotonic { index: i, time: t })?;
            }
        }
        Ok(b.finish())
    }

    /// Wraps a raw Fig.-3 array, validating the encoding.
    ///
    /// # Errors
    ///
    /// Returns [`WaveError::BadEncoding`] if the array lacks the EOW
    /// terminator, has a misplaced `-1`, does not start at time 0, or is not
    /// strictly increasing.
    pub fn from_raw(data: Vec<SimTime>) -> Result<Self> {
        if data.last() != Some(&EOW) {
            return Err(WaveError::BadEncoding {
                detail: "missing EOW terminator".into(),
            });
        }
        let body = &data[..data.len() - 1];
        let start = if body.first() == Some(&INIT_ONE_MARKER) {
            1
        } else {
            0
        };
        if body.len() > start && body[start] != 0 {
            return Err(WaveError::BadEncoding {
                detail: format!("first toggle must be at time 0, got {}", body[start]),
            });
        }
        if body.is_empty() {
            return Err(WaveError::BadEncoding {
                detail: "waveform must contain an initial value entry".into(),
            });
        }
        let mut prev: i64 = -1;
        for (i, &t) in body.iter().enumerate().skip(start) {
            if t == EOW {
                return Err(WaveError::BadEncoding {
                    detail: format!("interior EOW at index {i}"),
                });
            }
            if i64::from(t) <= prev {
                return Err(WaveError::BadEncoding {
                    detail: format!("non-increasing timestamp {t} at index {i}"),
                });
            }
            prev = i64::from(t);
        }
        Ok(Waveform { data })
    }

    /// The raw Fig.-3 array, including any leading `-1` and the trailing EOW.
    pub fn raw(&self) -> &[SimTime] {
        &self.data
    }

    /// Consumes the waveform, returning the raw array.
    pub fn into_raw(self) -> Vec<SimTime> {
        self.data
    }

    /// Total array length in `i32` words (marker + toggles + EOW), i.e. the
    /// arena footprint of this waveform.
    pub fn len_words(&self) -> usize {
        self.data.len()
    }

    /// Value at time 0 before any post-zero toggles.
    pub fn initial_value(&self) -> bool {
        self.data[0] == INIT_ONE_MARKER
    }

    /// Number of toggles after time 0 (the initial-value entry at t=0 is not
    /// a toggle). This is the SAIF `TC` of the signal.
    pub fn toggle_count(&self) -> usize {
        // words = marker? + 1 (initial) + toggles + EOW
        let marker = usize::from(self.initial_value());
        self.data.len() - marker - 2
    }

    /// Number of toggles strictly inside `[0, end)` — the SAIF `TC` of a
    /// truncated observation window (the t=0 initial-value entry is not a
    /// toggle, and neither is a toggle at exactly `end`, which influences
    /// nothing inside the window).
    pub fn toggle_count_clipped(&self, end: SimTime) -> usize {
        let start = usize::from(self.initial_value());
        let body = &self.data[start..self.data.len() - 1];
        // `body` is [0, t1, t2, ...], strictly increasing: the partition
        // point counts entries below `end`, minus the initial-value entry.
        body.partition_point(|&t| t < end).saturating_sub(1)
    }

    /// The time of the final toggle (0 if the signal never toggles).
    pub fn last_time(&self) -> SimTime {
        let idx = self.data.len() - 2;
        self.data[idx].max(0)
    }

    /// The signal value at time `t` (toggles at exactly `t` are included).
    ///
    /// # Panics
    ///
    /// Panics if `t < 0`.
    pub fn value_at(&self, t: SimTime) -> bool {
        assert!(t >= 0, "time must be non-negative");
        // Find last toggle with time <= t; its array-index parity is the value.
        let body_end = self.data.len() - 1;
        let start = usize::from(self.initial_value());
        let body = &self.data[start..body_end];
        match body.binary_search(&t) {
            Ok(i) => (start + i) % 2 == 1,
            Err(0) => unreachable!("first entry is at time 0"),
            Err(i) => (start + i - 1) % 2 == 1,
        }
    }

    /// Iterates `(time, value_after)` pairs, starting with `(0, initial)`.
    pub fn iter(&self) -> WaveformIter<'_> {
        WaveformIter {
            data: &self.data,
            idx: usize::from(self.initial_value()),
        }
    }

    /// Time integrals `(time_at_0, time_at_1)` over `[0, end)`, for SAIF
    /// `T0`/`T1` durations.
    ///
    /// # Panics
    ///
    /// Panics if `end < 0`.
    pub fn durations(&self, end: SimTime) -> (i64, i64) {
        assert!(end >= 0, "end must be non-negative");
        let mut t0 = 0i64;
        let mut t1 = 0i64;
        let mut prev_time = 0i64;
        let mut prev_val = self.initial_value();
        for (t, v) in self.iter().skip(1) {
            let t = i64::from(t).min(i64::from(end));
            let span = t - prev_time;
            if prev_val {
                t1 += span;
            } else {
                t0 += span;
            }
            if t >= i64::from(end) {
                prev_time = t;
                prev_val = v;
                break;
            }
            prev_time = t;
            prev_val = v;
        }
        let tail = i64::from(end) - prev_time;
        if tail > 0 {
            if prev_val {
                t1 += tail;
            } else {
                t0 += tail;
            }
        }
        (t0, t1)
    }

    /// Extracts the window `[start, end)` as a new waveform re-based to time
    /// 0: the initial value is `value_at(start)` and toggles strictly inside
    /// the window are kept (shifted by `-start`).
    ///
    /// This is the primitive behind GATSPI's cycle-parallel input
    /// restructuring: a long stimulus is cut into independent windows that
    /// simulate concurrently.
    ///
    /// # Panics
    ///
    /// Panics if `start < 0` or `end < start`.
    pub fn window(&self, start: SimTime, end: SimTime) -> Waveform {
        assert!(start >= 0 && end >= start, "invalid window");
        let mut b = WaveformBuilder::new(self.value_at(start));
        for (t, _) in self.iter().skip(1) {
            if t > start && t < end {
                b.toggle(t - start).expect("source was monotonic");
            }
            if t >= end {
                break;
            }
        }
        b.finish()
    }

    /// Returns this waveform shifted later in time by `offset`, keeping the
    /// initial value over `[0, offset)`.
    ///
    /// # Panics
    ///
    /// Panics if `offset < 0` or any shifted time would reach [`EOW`].
    pub fn shifted(&self, offset: SimTime) -> Waveform {
        assert!(offset >= 0, "offset must be non-negative");
        let mut b = WaveformBuilder::new(self.initial_value());
        for (t, _) in self.iter().skip(1) {
            let t2 = i64::from(t) + i64::from(offset);
            assert!(t2 < i64::from(EOW), "shifted time overflows");
            b.toggle(t2 as SimTime).expect("source was monotonic");
        }
        b.finish()
    }

    /// Concatenates `other` after this waveform, placing `other`'s time 0 at
    /// `at`. If `other` starts at a different value than this waveform holds
    /// at `at`, a toggle is inserted at `at`.
    ///
    /// # Panics
    ///
    /// Panics if `at` is earlier than the last toggle of `self`.
    pub fn concat(&self, other: &Waveform, at: SimTime) -> Waveform {
        assert!(at >= self.last_time(), "concat point before last toggle");
        let mut b = WaveformBuilder::new(self.initial_value());
        for (t, _) in self.iter().skip(1) {
            b.toggle(t).expect("source was monotonic");
        }
        if other.initial_value() != b.current_value() {
            b.toggle(at.max(1)).expect("monotonic by assertion");
        }
        for (t, _) in other.iter().skip(1) {
            let t2 = i64::from(t) + i64::from(at);
            assert!(t2 < i64::from(EOW), "concat time overflows");
            b.toggle(t2 as SimTime).expect("source was monotonic");
        }
        b.finish()
    }
}

/// Splits a raw Fig. 3 array into `(initial value, toggle tail)`:
/// consumes the optional leading [`INIT_ONE_MARKER`] and the mandatory
/// time-0 entry. The returned tail holds the toggle times up to the
/// [`EOW`] terminator (raw *device* slices may carry stale words past it
/// — iterate with an explicit `t != EOW` guard). This is the one shared
/// decoder of the device-word prologue; keep format changes here.
pub fn split_raw(raw: &[i32]) -> (bool, &[i32]) {
    let marker = raw.first() == Some(&INIT_ONE_MARKER);
    let idx = usize::from(marker);
    debug_assert_eq!(raw.get(idx), Some(&0), "raw waveform must start at t=0");
    (marker, &raw[idx + 1..])
}

/// Iterator over `(time, value_after)` pairs of a [`Waveform`].
#[derive(Debug, Clone)]
pub struct WaveformIter<'a> {
    data: &'a [SimTime],
    idx: usize,
}

impl Iterator for WaveformIter<'_> {
    type Item = (SimTime, bool);

    fn next(&mut self) -> Option<Self::Item> {
        let t = self.data[self.idx];
        if t == EOW {
            return None;
        }
        let v = self.idx % 2 == 1;
        self.idx += 1;
        Some((t, v))
    }
}

/// Incremental [`Waveform`] constructor with monotonicity checking.
///
/// # Example
///
/// ```
/// use gatspi_wave::WaveformBuilder;
///
/// # fn main() -> Result<(), gatspi_wave::WaveError> {
/// let mut b = WaveformBuilder::new(false);
/// b.toggle(10)?;
/// b.set_value(20, true)?; // already 1: ignored
/// b.set_value(30, false)?;
/// let w = b.finish();
/// assert_eq!(w.toggle_count(), 2);
/// # Ok(())
/// # }
/// ```
#[derive(Debug, Clone)]
pub struct WaveformBuilder {
    data: Vec<SimTime>,
    last: SimTime,
}

impl WaveformBuilder {
    /// Starts a waveform with the given value at time 0.
    pub fn new(initial: bool) -> Self {
        let data = if initial {
            vec![INIT_ONE_MARKER, 0]
        } else {
            vec![0]
        };
        WaveformBuilder { data, last: 0 }
    }

    /// The value the waveform holds after all toggles added so far.
    pub fn current_value(&self) -> bool {
        (self.data.len() - 1) % 2 == 1
    }

    /// The time of the most recent toggle.
    pub fn last_time(&self) -> SimTime {
        self.last
    }

    /// Number of toggles recorded so far (excluding the initial value).
    pub fn toggle_count(&self) -> usize {
        let marker = usize::from(self.data[0] == INIT_ONE_MARKER);
        self.data.len() - marker - 1
    }

    /// Appends a toggle at `t`.
    ///
    /// # Errors
    ///
    /// Returns [`WaveError::NonMonotonic`] unless `t` is after the previous
    /// toggle, positive, and below [`EOW`].
    pub fn toggle(&mut self, t: SimTime) -> Result<()> {
        if t <= self.last || t == EOW {
            return Err(WaveError::NonMonotonic {
                index: self.data.len(),
                time: t,
            });
        }
        self.data.push(t);
        self.last = t;
        Ok(())
    }

    /// Drives the signal to `value` at `t`; a no-op if it already holds
    /// `value`.
    ///
    /// # Errors
    ///
    /// As [`WaveformBuilder::toggle`].
    pub fn set_value(&mut self, t: SimTime, value: bool) -> Result<()> {
        if value != self.current_value() {
            self.toggle(t)?;
        }
        Ok(())
    }

    /// Finalises the waveform, appending the EOW terminator.
    pub fn finish(mut self) -> Waveform {
        self.data.push(EOW);
        Waveform { data: self.data }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fig3_example_a_shape() {
        // A = [-1, 0, 34, 59, 123, ..., EOW]: starts at 1.
        let w = Waveform::from_toggles(true, &[34, 59, 123]);
        assert_eq!(w.raw(), &[-1, 0, 34, 59, 123, EOW]);
        assert!(w.initial_value());
        assert!(w.value_at(0));
        assert!(!w.value_at(34));
        assert!(w.value_at(59));
        assert!(!w.value_at(200));
    }

    #[test]
    fn fig3_example_b_shape() {
        // B = [0, 4, 78, ..., EOW]: starts at 0.
        let w = Waveform::from_toggles(false, &[4, 78]);
        assert_eq!(w.raw(), &[0, 4, 78, EOW]);
        assert!(!w.initial_value());
        assert!(w.value_at(4));
        assert!(!w.value_at(78));
    }

    #[test]
    fn constant_waveforms() {
        let hi = Waveform::constant(true);
        assert!(hi.initial_value());
        assert_eq!(hi.toggle_count(), 0);
        assert!(hi.value_at(1000));
        let lo = Waveform::constant(false);
        assert_eq!(lo.toggle_count(), 0);
        assert!(!lo.value_at(1000));
    }

    #[test]
    fn value_at_exact_toggle_times() {
        let w = Waveform::from_toggles(false, &[10, 20]);
        assert!(!w.value_at(9));
        assert!(w.value_at(10));
        assert!(w.value_at(19));
        assert!(!w.value_at(20));
    }

    #[test]
    fn from_samples_dedups() {
        let w = Waveform::from_samples(&[(0, false), (5, true), (7, true), (9, false)]).unwrap();
        assert_eq!(w.raw(), &[0, 5, 9, EOW]);
    }

    #[test]
    fn from_samples_requires_time_zero() {
        assert!(Waveform::from_samples(&[(3, true)]).is_err());
        assert!(Waveform::from_samples(&[]).is_err());
    }

    #[test]
    fn from_raw_validation() {
        assert!(Waveform::from_raw(vec![0, 5, EOW]).is_ok());
        assert!(Waveform::from_raw(vec![-1, 0, 5, EOW]).is_ok());
        // Missing EOW.
        assert!(Waveform::from_raw(vec![0, 5]).is_err());
        // Doesn't start at 0.
        assert!(Waveform::from_raw(vec![3, 5, EOW]).is_err());
        // Non-increasing.
        assert!(Waveform::from_raw(vec![0, 5, 5, EOW]).is_err());
        // Interior EOW.
        assert!(Waveform::from_raw(vec![0, EOW, EOW]).is_err());
        // Empty body.
        assert!(Waveform::from_raw(vec![EOW]).is_err());
    }

    #[test]
    fn toggle_count_clipped_bounds() {
        let w = Waveform::from_toggles(true, &[10, 20, 30]);
        assert_eq!(w.toggle_count_clipped(0), 0);
        assert_eq!(w.toggle_count_clipped(10), 0, "toggle at end excluded");
        assert_eq!(w.toggle_count_clipped(11), 1);
        assert_eq!(w.toggle_count_clipped(30), 2);
        assert_eq!(w.toggle_count_clipped(100), 3);
        assert_eq!(Waveform::constant(false).toggle_count_clipped(50), 0);
    }

    #[test]
    fn toggle_count_excludes_initial() {
        assert_eq!(Waveform::from_toggles(true, &[1, 2, 3]).toggle_count(), 3);
        assert_eq!(Waveform::from_toggles(false, &[1]).toggle_count(), 1);
        assert_eq!(Waveform::constant(true).toggle_count(), 0);
    }

    #[test]
    fn iter_yields_initial_then_toggles() {
        let w = Waveform::from_toggles(true, &[5, 9]);
        let pts: Vec<_> = w.iter().collect();
        assert_eq!(pts, vec![(0, true), (5, false), (9, true)]);
    }

    #[test]
    fn durations_split_time() {
        let w = Waveform::from_toggles(false, &[10, 30]);
        // 0..10 at 0, 10..30 at 1, 30..100 at 0.
        let (t0, t1) = w.durations(100);
        assert_eq!((t0, t1), (80, 20));
        // Truncated before second toggle.
        let (t0, t1) = w.durations(20);
        assert_eq!((t0, t1), (10, 10));
        // Zero-length window.
        assert_eq!(w.durations(0), (0, 0));
    }

    #[test]
    fn window_rebasing() {
        let w = Waveform::from_toggles(false, &[10, 30, 50]);
        // Window [20, 60): starts at value 1 (toggled at 10), keeps 30, 50.
        let seg = w.window(20, 60);
        assert!(seg.initial_value());
        assert_eq!(seg.raw(), &[-1, 0, 10, 30, EOW]);
        // Window boundary exactly on a toggle: toggle at start is absorbed
        // into the initial value.
        let seg = w.window(10, 40);
        assert!(seg.initial_value());
        assert_eq!(seg.raw(), &[-1, 0, 20, EOW]);
    }

    #[test]
    fn windows_cover_original() {
        let w = Waveform::from_toggles(true, &[3, 7, 11, 15, 19]);
        for start in [0, 4, 10] {
            let seg = w.window(start, start + 5);
            for t in 0..5 {
                assert_eq!(
                    seg.value_at(t),
                    w.value_at(start + t),
                    "window({start}) at t={t}"
                );
            }
        }
    }

    #[test]
    fn shifted_preserves_shape() {
        let w = Waveform::from_toggles(true, &[5]);
        let s = w.shifted(100);
        assert_eq!(s.raw(), &[-1, 0, 105, EOW]);
    }

    #[test]
    fn concat_inserts_joining_toggle() {
        let a = Waveform::from_toggles(false, &[5]); // ends at 1
        let b = Waveform::from_toggles(false, &[3]); // starts at 0
        let c = a.concat(&b, 10);
        // a holds 1 at t=10, b starts at 0 -> toggle inserted at 10.
        assert_eq!(c.raw(), &[0, 5, 10, 13, EOW]);
    }

    #[test]
    fn concat_without_joining_toggle() {
        let a = Waveform::from_toggles(false, &[5]); // ends at 1
        let b = Waveform::from_toggles(true, &[3]); // starts at 1
        let c = a.concat(&b, 10);
        assert_eq!(c.raw(), &[0, 5, 13, EOW]);
    }

    #[test]
    fn builder_rejects_non_monotonic() {
        let mut b = WaveformBuilder::new(false);
        b.toggle(5).unwrap();
        assert!(b.toggle(5).is_err());
        assert!(b.toggle(4).is_err());
        assert!(b.toggle(EOW).is_err());
        assert!(b.toggle(0).is_err());
    }

    #[test]
    fn builder_set_value() {
        let mut b = WaveformBuilder::new(true);
        b.set_value(5, true).unwrap(); // no-op
        b.set_value(6, false).unwrap();
        assert_eq!(b.toggle_count(), 1);
        assert!(!b.current_value());
    }

    #[test]
    fn len_words_matches_arena_footprint() {
        assert_eq!(Waveform::constant(false).len_words(), 2);
        assert_eq!(Waveform::constant(true).len_words(), 3);
        assert_eq!(Waveform::from_toggles(false, &[1, 2]).len_words(), 4);
    }

    #[test]
    fn last_time() {
        assert_eq!(Waveform::from_toggles(false, &[4, 9]).last_time(), 9);
        assert_eq!(Waveform::constant(true).last_time(), 0);
    }
}
