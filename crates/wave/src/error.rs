use std::fmt;

/// Errors produced by waveform construction and activity-file IO.
#[derive(Debug, Clone, PartialEq, Eq)]
#[non_exhaustive]
pub enum WaveError {
    /// A raw array did not follow the Fig. 3 encoding.
    BadEncoding {
        /// Human-readable detail.
        detail: String,
    },
    /// Toggle times were not strictly increasing.
    NonMonotonic {
        /// Index of the offending toggle.
        index: usize,
        /// The offending timestamp.
        time: i32,
    },
    /// An arena allocation did not fit in the configured capacity.
    ArenaFull {
        /// Words requested.
        requested: usize,
        /// Words remaining.
        available: usize,
    },
    /// A SAIF or VCD document failed to parse.
    Parse {
        /// 1-based line number.
        line: usize,
        /// Human-readable detail.
        detail: String,
    },
}

impl fmt::Display for WaveError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            WaveError::BadEncoding { detail } => write!(f, "bad waveform encoding: {detail}"),
            WaveError::NonMonotonic { index, time } => {
                write!(
                    f,
                    "toggle {index} at time {time} is not after its predecessor"
                )
            }
            WaveError::ArenaFull {
                requested,
                available,
            } => write!(
                f,
                "waveform arena full: requested {requested} words, {available} available"
            ),
            WaveError::Parse { line, detail } => {
                write!(f, "parse error on line {line}: {detail}")
            }
        }
    }
}

impl std::error::Error for WaveError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_mentions_detail() {
        let e = WaveError::ArenaFull {
            requested: 10,
            available: 4,
        };
        assert!(e.to_string().contains("10"));
    }

    #[test]
    fn error_is_send_sync() {
        fn assert_send_sync<T: Send + Sync>() {}
        assert_send_sync::<WaveError>();
    }
}
