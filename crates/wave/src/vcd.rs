//! Minimal VCD (Value Change Dump) reader and writer for 2-value scalar
//! signals.
//!
//! Re-simulation consumes "testbench waveforms" recorded by earlier RTL
//! simulation; VCD is the interchange format those come in. Only the subset
//! needed for scalar 2-value stimulus is implemented: `$timescale`,
//! `$scope`/`$upscope`, 1-bit `$var wire` declarations, `$dumpvars`, `#time`
//! stamps and `0id`/`1id` scalar changes. `x`/`z` values are coerced to 0
//! (2-value simulation) and counted so callers can report the coercion.

use std::cmp::Reverse;
use std::collections::{BTreeMap, BinaryHeap};
use std::fmt::Write as _;
use std::io::Write as IoWrite;

use crate::{Result, SimTime, WaveError, Waveform, WaveformBuilder};

/// Default `$timescale` unit emitted by [`write()`] and [`StreamWriter::new`].
pub const DEFAULT_TIMESCALE: &str = "1ps";

/// A parsed VCD file: named waveforms plus bookkeeping.
#[derive(Debug, Clone)]
pub struct VcdDocument {
    /// Signal name → waveform, ordered by name.
    pub signals: BTreeMap<String, Waveform>,
    /// Number of `x`/`z` values coerced to 0 during parsing.
    pub coerced_unknowns: u64,
    /// Last timestamp seen.
    pub end_time: SimTime,
}

/// Writes waveforms as a VCD file.
///
/// Signals are emitted under a single scope named `design`.
///
/// # Example
///
/// ```
/// use gatspi_wave::{vcd, Waveform};
///
/// let a = Waveform::from_toggles(false, &[5, 9]);
/// let text = vcd::write("top", [("a", &a)]);
/// let parsed = vcd::parse(&text).unwrap();
/// assert_eq!(parsed.signals["a"], a);
/// ```
pub fn write<'a>(design: &str, waves: impl IntoIterator<Item = (&'a str, &'a Waveform)>) -> String {
    write_with_timescale(design, waves, DEFAULT_TIMESCALE)
}

/// [`write()`] with an explicit `$timescale` unit (e.g. `"1ns"`).
pub fn write_with_timescale<'a>(
    design: &str,
    waves: impl IntoIterator<Item = (&'a str, &'a Waveform)>,
    timescale: &str,
) -> String {
    let waves: Vec<(&str, &Waveform)> = waves.into_iter().collect();
    let ids: Vec<String> = (0..waves.len()).map(id_for).collect();
    let mut out = String::new();
    push_header(
        &mut out,
        design,
        waves
            .iter()
            .map(|&(n, _)| n)
            .zip(ids.iter().map(String::as_str)),
        timescale,
    );

    // Merge all change points into a single time-ordered stream.
    let mut events: BTreeMap<SimTime, Vec<(usize, bool)>> = BTreeMap::new();
    for (i, (_, w)) in waves.iter().enumerate() {
        for (t, v) in w.iter() {
            events.entry(t).or_default().push((i, v));
        }
    }
    let mut first = true;
    for (t, changes) in events {
        let _ = writeln!(out, "#{t}");
        if first {
            let _ = writeln!(out, "$dumpvars");
        }
        for (i, v) in changes {
            let _ = writeln!(out, "{}{}", u8::from(v), ids[i]);
        }
        if first {
            let _ = writeln!(out, "$end");
            first = false;
        }
    }
    out
}

/// Emits the deterministic VCD header shared by [`write()`] and
/// [`StreamWriter`]: version, timescale and one `design` scope declaring
/// every signal. No `$date` line — the output depends only on the inputs,
/// so equal runs produce byte-identical files.
fn push_header<'a>(
    out: &mut String,
    design: &str,
    vars: impl Iterator<Item = (&'a str, &'a str)>,
    timescale: &str,
) {
    let _ = writeln!(out, "$version gatspi-wave $end");
    let _ = writeln!(out, "$timescale {timescale} $end");
    let _ = writeln!(out, "$scope module {design} $end");
    for (name, id) in vars {
        let _ = writeln!(out, "$var wire 1 {id} {name} $end");
    }
    let _ = writeln!(out, "$upscope $end");
    let _ = writeln!(out, "$enddefinitions $end");
}

/// `cur`-state sentinel for a signal that has not been dumped yet.
const VAL_NONE: u8 = 2;

/// Incremental VCD writer with memory bounded by one stimulus window.
///
/// The whole-document [`write()`] needs every waveform in memory before the
/// first byte leaves; `StreamWriter` instead accepts each signal's changes
/// window by window — the unit a streaming simulation run produces — and
/// emits one merged, time-ordered change block per window. Buffering is
/// O(changes in the current window): when a call reports a new window
/// start, the previous window's per-signal change lists are k-way merged
/// (binary heap keyed on `(time, signal)`) and written out.
///
/// Windows must arrive in ascending start order, each signal at most once
/// per window, with window-local toggle times already clipped to the
/// window. Values are stitched across window joins: a window whose initial
/// value equals the signal's last written value emits no change, so the
/// output parses back exactly as the concatenated waveform.
///
/// # Example
///
/// ```
/// use gatspi_wave::{vcd, Waveform};
///
/// # fn main() -> std::io::Result<()> {
/// let w = Waveform::from_toggles(true, &[5, 14]);
/// let mut sw = vcd::StreamWriter::new(Vec::new(), "top", &["a"])?;
/// for (start, end) in [(0, 10), (10, 20)] {
///     let win = w.window(start, end);
///     let toggles: Vec<i32> = win.iter().skip(1).map(|(t, _)| t).collect();
///     sw.wave(0, start, win.initial_value(), toggles)?;
/// }
/// let text = String::from_utf8(sw.finish()?).unwrap();
/// assert_eq!(vcd::parse(&text).unwrap().signals["a"], w);
/// # Ok(())
/// # }
/// ```
#[derive(Debug)]
pub struct StreamWriter<W: IoWrite> {
    out: W,
    ids: Vec<String>,
    /// Last written value per signal (`0`, `1`, or [`VAL_NONE`]).
    cur: Vec<u8>,
    /// Per-signal `(absolute time, value)` changes of the current window,
    /// each list in ascending time order.
    pending: Vec<Vec<(SimTime, bool)>>,
    /// Signals with non-empty `pending` lists (so flushing a window costs
    /// O(changes), not O(signals)).
    touched: Vec<u32>,
    /// Start time of the window currently buffering (`None` before the
    /// first wave and right after a flush).
    window_start: Option<SimTime>,
    /// Most recent `#time` stamp written.
    last_time: Option<SimTime>,
    /// The `$dumpvars` block has been opened (it wraps the first change
    /// block, like [`write()`]'s output).
    wrote_dumpvars: bool,
    dumpvars_open: bool,
    peak_pending: usize,
}

impl<W: IoWrite> StreamWriter<W> {
    /// Starts a stream on `out`, writing the header: `names[s]` declares
    /// signal `s`. Uses [`DEFAULT_TIMESCALE`].
    ///
    /// # Errors
    ///
    /// Propagates writer errors.
    pub fn new(out: W, design: &str, names: &[&str]) -> std::io::Result<Self> {
        Self::with_timescale(out, design, names, DEFAULT_TIMESCALE)
    }

    /// [`StreamWriter::new`] with an explicit `$timescale` unit.
    ///
    /// # Errors
    ///
    /// Propagates writer errors.
    pub fn with_timescale(
        mut out: W,
        design: &str,
        names: &[&str],
        timescale: &str,
    ) -> std::io::Result<Self> {
        let ids: Vec<String> = (0..names.len()).map(id_for).collect();
        let mut header = String::new();
        push_header(
            &mut header,
            design,
            names.iter().copied().zip(ids.iter().map(String::as_str)),
            timescale,
        );
        out.write_all(header.as_bytes())?;
        let n = names.len();
        Ok(StreamWriter {
            out,
            ids,
            cur: vec![VAL_NONE; n],
            pending: vec![Vec::new(); n],
            touched: Vec::new(),
            window_start: None,
            last_time: None,
            wrote_dumpvars: false,
            dumpvars_open: false,
            peak_pending: 0,
        })
    }

    /// Buffers one signal's changes for the window starting at `start`
    /// (absolute time): `initial` is the signal's value at `start`, and
    /// `toggles` are the window-local times (strictly increasing, `> 0`,
    /// clipped to the window) at which it flips. A `start` differing from
    /// the window currently buffering flushes that window first — windows
    /// must therefore arrive in ascending order.
    ///
    /// # Errors
    ///
    /// Propagates writer errors from the flush.
    ///
    /// # Panics
    ///
    /// Panics if `signal` is out of range.
    pub fn wave<I>(
        &mut self,
        signal: usize,
        start: SimTime,
        initial: bool,
        toggles: I,
    ) -> std::io::Result<()>
    where
        I: IntoIterator<Item = SimTime>,
    {
        // A window start at or below the previous window's would emit
        // non-monotonic `#t` stamps — corrupt VCD with no diagnostic.
        // Catch the misuse at the source (same discipline as the
        // toggle-positivity assert below).
        match self.window_start {
            Some(s) if s == start => {}
            Some(s) => {
                debug_assert!(start > s, "windows must arrive in ascending start order");
                self.flush_window()?;
                self.window_start = Some(start);
            }
            None => {
                debug_assert!(
                    self.last_time.is_none_or(|t| start >= t),
                    "windows must arrive in ascending start order"
                );
                self.window_start = Some(start);
            }
        }
        let list = &mut self.pending[signal];
        let was_empty = list.is_empty();
        // Window-join stitching: a change at the window start is emitted
        // only for a signal never dumped before (its time-0 entry, which
        // VCD readers take as the initial value) or whose value actually
        // differs — a window opening at the value the previous window
        // closed on writes nothing.
        if self.cur[signal] != u8::from(initial) {
            list.push((start, initial));
        }
        let mut v = initial;
        for t in toggles {
            debug_assert!(t > 0, "window-local toggle times are positive");
            v = !v;
            list.push((start + t, v));
        }
        self.cur[signal] = u8::from(v);
        if was_empty && !list.is_empty() {
            self.touched.push(signal as u32);
        }
        Ok(())
    }

    /// Largest number of changes ever buffered for one window — the peak
    /// memory footprint of the stream, in change entries. Stays O(one
    /// window) regardless of run length.
    pub fn peak_window_changes(&self) -> usize {
        self.peak_pending
    }

    /// Flushes the buffered window and the underlying writer, returning it.
    ///
    /// # Errors
    ///
    /// Propagates writer errors.
    pub fn finish(mut self) -> std::io::Result<W> {
        self.flush_window()?;
        self.out.flush()?;
        Ok(self.out)
    }

    /// Writes the buffered window as time-ordered `#t` change blocks:
    /// a k-way merge over the per-signal sorted change lists, ordered by
    /// `(time, signal)` — deterministic and identical to [`write()`]'s
    /// whole-document ordering.
    fn flush_window(&mut self) -> std::io::Result<()> {
        let total: usize = self
            .touched
            .iter()
            .map(|&s| self.pending[s as usize].len())
            .sum();
        self.peak_pending = self.peak_pending.max(total);
        self.window_start = None;
        if total == 0 {
            return Ok(());
        }
        let mut heap: BinaryHeap<Reverse<(SimTime, u32, u32)>> =
            BinaryHeap::with_capacity(self.touched.len());
        for &s in &self.touched {
            heap.push(Reverse((self.pending[s as usize][0].0, s, 0)));
        }
        // One formatted block per window, written in a single call so a
        // raw `File` writer still sees few large writes.
        let mut buf = String::new();
        while let Some(Reverse((t, s, i))) = heap.pop() {
            let list = &self.pending[s as usize];
            let (_, v) = list[i as usize];
            if self.last_time != Some(t) {
                if self.dumpvars_open {
                    buf.push_str("$end\n");
                    self.dumpvars_open = false;
                }
                let _ = writeln!(buf, "#{t}");
                if !self.wrote_dumpvars {
                    buf.push_str("$dumpvars\n");
                    self.wrote_dumpvars = true;
                    self.dumpvars_open = true;
                }
                self.last_time = Some(t);
            }
            let _ = writeln!(buf, "{}{}", u8::from(v), self.ids[s as usize]);
            if ((i + 1) as usize) < list.len() {
                heap.push(Reverse((list[(i + 1) as usize].0, s, i + 1)));
            }
        }
        if self.dumpvars_open {
            buf.push_str("$end\n");
            self.dumpvars_open = false;
        }
        for &s in &self.touched {
            self.pending[s as usize].clear();
        }
        self.touched.clear();
        self.out.write_all(buf.as_bytes())
    }
}

/// Generates the printable short identifier for signal `i` (VCD id chars are
/// `!`..=`~`).
fn id_for(mut i: usize) -> String {
    const BASE: usize = 94;
    let mut s = String::new();
    loop {
        s.push((b'!' + (i % BASE) as u8) as char);
        i /= BASE;
        if i == 0 {
            break;
        }
        i -= 1;
    }
    s
}

/// Parses a VCD file.
///
/// # Errors
///
/// Returns [`WaveError::Parse`] on structural problems (unknown ids, bad
/// timestamps, missing declarations). Vector (`b...`) changes and real
/// values are rejected — stimulus for gate-level re-simulation is scalar.
pub fn parse(src: &str) -> Result<VcdDocument> {
    let mut id_to_name: BTreeMap<String, String> = BTreeMap::new();
    let mut builders: BTreeMap<String, (WaveformBuilder, bool)> = BTreeMap::new();
    let mut coerced = 0u64;
    let mut time: SimTime = 0;
    let mut seen_enddefs = false;
    let mut scope_depth = 0usize;

    let mut lines = src.lines().enumerate();
    while let Some((lineno, line)) = lines.next() {
        let line = line.trim();
        if line.is_empty() {
            continue;
        }
        let lineno = lineno + 1;
        let mut words = line.split_whitespace();
        let Some(first) = words.next() else {
            continue;
        };
        match first {
            "$date" | "$version" | "$comment" | "$timescale" => {
                // Consume until $end (possibly across lines).
                let mut rest: Vec<&str> = words.collect();
                while !rest.contains(&"$end") {
                    match lines.next() {
                        Some((_, l)) => rest = l.split_whitespace().collect(),
                        None => {
                            return Err(WaveError::Parse {
                                line: lineno,
                                detail: format!("unterminated {first}"),
                            })
                        }
                    }
                }
            }
            "$scope" => scope_depth += 1,
            "$upscope" => scope_depth = scope_depth.saturating_sub(1),
            "$enddefinitions" => seen_enddefs = true,
            "$dumpvars" | "$end" | "$dumpall" | "$dumpon" | "$dumpoff" => {}
            "$var" => {
                // $var wire 1 <id> <name> [$end]
                let kind = words.next().unwrap_or("");
                let width = words.next().unwrap_or("");
                let id = words.next().unwrap_or("");
                let name = words.next().unwrap_or("");
                if kind.is_empty() || id.is_empty() || name.is_empty() {
                    return Err(WaveError::Parse {
                        line: lineno,
                        detail: "malformed $var".into(),
                    });
                }
                if width != "1" {
                    return Err(WaveError::Parse {
                        line: lineno,
                        detail: format!("only 1-bit signals supported, `{name}` is {width}"),
                    });
                }
                // Some tools write the bit-select as a separate token:
                // `x [3] $end`. Consume it, so the trailing token check
                // below sees the `$end` (peeking without consuming left
                // the bit-select *and* `$end` unexamined).
                let mut full = name.to_string();
                let mut tail = words.next();
                if let Some(tok) = tail {
                    if tok.starts_with('[') && tok != "$end" {
                        full.push_str(tok);
                        tail = words.next();
                    }
                }
                if let Some(tok) = tail {
                    if tok != "$end" {
                        return Err(WaveError::Parse {
                            line: lineno,
                            detail: format!("unexpected `{tok}` in $var for `{full}`"),
                        });
                    }
                }
                id_to_name.insert(id.to_string(), full);
            }
            _ if first.starts_with('#') => {
                let t: i64 = first[1..].parse().map_err(|_| WaveError::Parse {
                    line: lineno,
                    detail: format!("bad timestamp `{first}`"),
                })?;
                if t < i64::from(time) {
                    return Err(WaveError::Parse {
                        line: lineno,
                        detail: format!("timestamp {t} goes backwards"),
                    });
                }
                time = t.try_into().map_err(|_| WaveError::Parse {
                    line: lineno,
                    detail: format!("timestamp {t} out of range"),
                })?;
            }
            _ => {
                if !seen_enddefs {
                    return Err(WaveError::Parse {
                        line: lineno,
                        detail: format!("value change before $enddefinitions: `{line}`"),
                    });
                }
                let (vch, id) = first.split_at(1);
                let v = match vch {
                    "0" => false,
                    "1" => true,
                    "x" | "X" | "z" | "Z" => {
                        coerced += 1;
                        false
                    }
                    "b" | "B" | "r" | "R" => {
                        return Err(WaveError::Parse {
                            line: lineno,
                            detail: "vector/real changes not supported".into(),
                        })
                    }
                    _ => {
                        return Err(WaveError::Parse {
                            line: lineno,
                            detail: format!("unrecognised change `{first}`"),
                        })
                    }
                };
                let name = id_to_name.get(id).ok_or_else(|| WaveError::Parse {
                    line: lineno,
                    detail: format!("change on undeclared id `{id}`"),
                })?;
                if time == 0 {
                    // Time-0 changes define initial values (last one wins).
                    builders.insert(name.clone(), (WaveformBuilder::new(v), true));
                } else {
                    let (b, _) = builders
                        .entry(name.clone())
                        .or_insert_with(|| (WaveformBuilder::new(false), false));
                    b.set_value(time, v).map_err(|_| WaveError::Parse {
                        line: lineno,
                        detail: format!("non-monotonic change on `{name}`"),
                    })?;
                }
            }
        }
    }
    let _ = scope_depth;

    // Signals declared but never dumped default to constant 0.
    for name in id_to_name.values() {
        builders
            .entry(name.clone())
            .or_insert_with(|| (WaveformBuilder::new(false), true));
    }

    let signals = builders
        .into_iter()
        .map(|(name, (b, _))| (name, b.finish()))
        .collect();
    Ok(VcdDocument {
        signals,
        coerced_unknowns: coerced,
        end_time: time,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::Waveform;

    #[test]
    fn roundtrip_two_signals() {
        let a = Waveform::from_toggles(false, &[5, 9]);
        let b = Waveform::from_toggles(true, &[7]);
        let text = write("top", [("a", &a), ("b", &b)]);
        let doc = parse(&text).unwrap();
        assert_eq!(doc.signals["a"], a);
        assert_eq!(doc.signals["b"], b);
        assert_eq!(doc.coerced_unknowns, 0);
        assert_eq!(doc.end_time, 9);
    }

    #[test]
    fn roundtrip_many_signals_exercises_multi_char_ids() {
        let waves: Vec<(String, Waveform)> = (0..200)
            .map(|i| {
                (
                    format!("sig{i}"),
                    Waveform::from_toggles(i % 2 == 0, &[1 + i]),
                )
            })
            .collect();
        let text = write("wide", waves.iter().map(|(n, w)| (n.as_str(), w)));
        let doc = parse(&text).unwrap();
        for (n, w) in &waves {
            assert_eq!(&doc.signals[n], w, "signal {n}");
        }
    }

    #[test]
    fn x_values_coerced() {
        let text =
            "$timescale 1ps $end\n$var wire 1 ! a $end\n$enddefinitions $end\n#0\nx!\n#5\n1!\n";
        let doc = parse(text).unwrap();
        assert_eq!(doc.coerced_unknowns, 1);
        assert!(!doc.signals["a"].initial_value());
        assert!(doc.signals["a"].value_at(5));
    }

    #[test]
    fn undumped_signal_defaults_to_zero() {
        let text = "$var wire 1 ! a $end\n$enddefinitions $end\n#10\n";
        let doc = parse(text).unwrap();
        assert_eq!(doc.signals["a"], Waveform::constant(false));
    }

    #[test]
    fn rejects_vectors() {
        let text = "$var wire 4 ! a $end\n$enddefinitions $end\n";
        assert!(parse(text).is_err());
        let text2 = "$var wire 1 ! a $end\n$enddefinitions $end\n#0\nb1010 !\n";
        assert!(parse(text2).is_err());
    }

    #[test]
    fn rejects_backwards_time() {
        let text = "$var wire 1 ! a $end\n$enddefinitions $end\n#5\n1!\n#3\n0!\n";
        assert!(parse(text).is_err());
    }

    #[test]
    fn rejects_unknown_id() {
        let text = "$var wire 1 ! a $end\n$enddefinitions $end\n#1\n1?\n";
        assert!(parse(text).is_err());
    }

    #[test]
    fn header_is_deterministic_with_configurable_timescale() {
        let a = Waveform::from_toggles(false, &[5]);
        let text = write("top", [("a", &a)]);
        assert!(!text.contains("$date"), "no $date: {text}");
        assert!(text.contains("$timescale 1ps $end"));
        let ns = write_with_timescale("top", [("a", &a)], "1ns");
        assert!(ns.contains("$timescale 1ns $end"));
        assert_eq!(text, write("top", [("a", &a)]), "byte-identical reruns");
        // The streaming writer emits the same header.
        let sw = StreamWriter::new(Vec::new(), "top", &["a"]).unwrap();
        let header = String::from_utf8(sw.finish().unwrap()).unwrap();
        assert!(
            text.starts_with(&header),
            "shared header:\n{header}\n{text}"
        );
    }

    #[test]
    fn parse_consumes_spaced_bit_select() {
        let text = "$var wire 1 ! x [3] $end\n$var wire 1 \" y $end\n\
                    $enddefinitions $end\n#0\n1!\n#5\n0!\n";
        let doc = parse(text).unwrap();
        assert_eq!(doc.signals["x[3]"], Waveform::from_toggles(true, &[5]));
        assert_eq!(doc.signals["y"], Waveform::constant(false));
        // Garbage after the name (not a bit-select, not $end) is an error.
        assert!(parse("$var wire 1 ! x garbage $end\n$enddefinitions $end\n").is_err());
    }

    #[test]
    fn stream_writer_matches_whole_document_writer() {
        let waves: Vec<(String, Waveform)> = (0..40)
            .map(|i: i32| {
                let toggles: Vec<i32> = (1..=(i % 7)).map(|k| k * 9 + i).collect();
                (
                    format!("s{i}"),
                    Waveform::from_toggles(i % 3 == 0, &toggles),
                )
            })
            .collect();
        let names: Vec<&str> = waves.iter().map(|(n, _)| n.as_str()).collect();
        let mut sw = StreamWriter::new(Vec::new(), "top", &names).unwrap();
        for (start, end) in [(0i32, 25), (25, 50), (50, 100)] {
            for (s, (_, w)) in waves.iter().enumerate() {
                let win = w.window(start, end);
                let toggles: Vec<i32> = win.iter().skip(1).map(|(t, _)| t).collect();
                sw.wave(s, start, win.initial_value(), toggles).unwrap();
            }
        }
        let peak = sw.peak_window_changes();
        let text = String::from_utf8(sw.finish().unwrap()).unwrap();
        let doc = parse(&text).unwrap();
        for (n, w) in &waves {
            assert_eq!(&doc.signals[n], w, "signal {n}");
        }
        // Peak buffering is one window's changes, not the whole run's.
        let total: usize = waves.iter().map(|(_, w)| w.toggle_count() + 1).sum();
        assert!(peak < total, "peak {peak} must undercut total {total}");
        // Same parse as the whole-document writer on the same waves.
        let whole = write("top", waves.iter().map(|(n, w)| (n.as_str(), w)));
        let wdoc = parse(&whole).unwrap();
        assert_eq!(doc.signals, wdoc.signals);
    }

    #[test]
    fn stream_writer_skips_spurious_join_changes() {
        // One toggle at t=7; windows [0,10) and [10,20) — the second
        // window opens at the value the first closed on, so the output
        // must contain exactly two changes (t=0 initial, t=7).
        let w = Waveform::from_toggles(false, &[7]);
        let mut sw = StreamWriter::new(Vec::new(), "top", &["a"]).unwrap();
        for (start, end) in [(0, 10), (10, 20)] {
            let win = w.window(start, end);
            let toggles: Vec<i32> = win.iter().skip(1).map(|(t, _)| t).collect();
            sw.wave(0, start, win.initial_value(), toggles).unwrap();
        }
        let text = String::from_utf8(sw.finish().unwrap()).unwrap();
        assert_eq!(text.matches("#").count(), 2, "no join change: {text}");
        assert_eq!(parse(&text).unwrap().signals["a"], w);
    }

    #[test]
    fn stream_writer_quiet_signal_dumps_only_initial() {
        let mut sw = StreamWriter::new(Vec::new(), "top", &["hi", "lo"]).unwrap();
        for (start, _end) in [(0, 10), (10, 20)] {
            sw.wave(0, start, true, std::iter::empty()).unwrap();
            sw.wave(1, start, false, std::iter::empty()).unwrap();
        }
        let text = String::from_utf8(sw.finish().unwrap()).unwrap();
        let doc = parse(&text).unwrap();
        assert_eq!(doc.signals["hi"], Waveform::constant(true));
        assert_eq!(doc.signals["lo"], Waveform::constant(false));
    }

    #[test]
    fn id_generation_is_unique() {
        let mut seen = std::collections::HashSet::new();
        for i in 0..10_000 {
            assert!(seen.insert(id_for(i)), "duplicate id at {i}");
        }
    }
}
