//! Minimal VCD (Value Change Dump) reader and writer for 2-value scalar
//! signals.
//!
//! Re-simulation consumes "testbench waveforms" recorded by earlier RTL
//! simulation; VCD is the interchange format those come in. Only the subset
//! needed for scalar 2-value stimulus is implemented: `$timescale`,
//! `$scope`/`$upscope`, 1-bit `$var wire` declarations, `$dumpvars`, `#time`
//! stamps and `0id`/`1id` scalar changes. `x`/`z` values are coerced to 0
//! (2-value simulation) and counted so callers can report the coercion.

use std::collections::BTreeMap;
use std::fmt::Write as _;

use crate::{Result, SimTime, WaveError, Waveform, WaveformBuilder};

/// A parsed VCD file: named waveforms plus bookkeeping.
#[derive(Debug, Clone)]
pub struct VcdDocument {
    /// Signal name → waveform, ordered by name.
    pub signals: BTreeMap<String, Waveform>,
    /// Number of `x`/`z` values coerced to 0 during parsing.
    pub coerced_unknowns: u64,
    /// Last timestamp seen.
    pub end_time: SimTime,
}

/// Writes waveforms as a VCD file.
///
/// Signals are emitted under a single scope named `design`.
///
/// # Example
///
/// ```
/// use gatspi_wave::{vcd, Waveform};
///
/// let a = Waveform::from_toggles(false, &[5, 9]);
/// let text = vcd::write("top", [("a", &a)]);
/// let parsed = vcd::parse(&text).unwrap();
/// assert_eq!(parsed.signals["a"], a);
/// ```
pub fn write<'a>(design: &str, waves: impl IntoIterator<Item = (&'a str, &'a Waveform)>) -> String {
    let waves: Vec<(&str, &Waveform)> = waves.into_iter().collect();
    let mut out = String::new();
    let _ = writeln!(out, "$date June 2026 $end");
    let _ = writeln!(out, "$version gatspi-wave $end");
    let _ = writeln!(out, "$timescale 1ps $end");
    let _ = writeln!(out, "$scope module {design} $end");
    let ids: Vec<String> = (0..waves.len()).map(id_for).collect();
    for ((name, _), id) in waves.iter().zip(&ids) {
        let _ = writeln!(out, "$var wire 1 {id} {name} $end");
    }
    let _ = writeln!(out, "$upscope $end");
    let _ = writeln!(out, "$enddefinitions $end");

    // Merge all change points into a single time-ordered stream.
    let mut events: BTreeMap<SimTime, Vec<(usize, bool)>> = BTreeMap::new();
    for (i, (_, w)) in waves.iter().enumerate() {
        for (t, v) in w.iter() {
            events.entry(t).or_default().push((i, v));
        }
    }
    let mut first = true;
    for (t, changes) in events {
        let _ = writeln!(out, "#{t}");
        if first {
            let _ = writeln!(out, "$dumpvars");
        }
        for (i, v) in changes {
            let _ = writeln!(out, "{}{}", u8::from(v), ids[i]);
        }
        if first {
            let _ = writeln!(out, "$end");
            first = false;
        }
    }
    out
}

/// Generates the printable short identifier for signal `i` (VCD id chars are
/// `!`..=`~`).
fn id_for(mut i: usize) -> String {
    const BASE: usize = 94;
    let mut s = String::new();
    loop {
        s.push((b'!' + (i % BASE) as u8) as char);
        i /= BASE;
        if i == 0 {
            break;
        }
        i -= 1;
    }
    s
}

/// Parses a VCD file.
///
/// # Errors
///
/// Returns [`WaveError::Parse`] on structural problems (unknown ids, bad
/// timestamps, missing declarations). Vector (`b...`) changes and real
/// values are rejected — stimulus for gate-level re-simulation is scalar.
pub fn parse(src: &str) -> Result<VcdDocument> {
    let mut id_to_name: BTreeMap<String, String> = BTreeMap::new();
    let mut builders: BTreeMap<String, (WaveformBuilder, bool)> = BTreeMap::new();
    let mut coerced = 0u64;
    let mut time: SimTime = 0;
    let mut seen_enddefs = false;
    let mut scope_depth = 0usize;

    let mut lines = src.lines().enumerate();
    while let Some((lineno, line)) = lines.next() {
        let line = line.trim();
        if line.is_empty() {
            continue;
        }
        let lineno = lineno + 1;
        let mut words = line.split_whitespace();
        let Some(first) = words.next() else {
            continue;
        };
        match first {
            "$date" | "$version" | "$comment" | "$timescale" => {
                // Consume until $end (possibly across lines).
                let mut rest: Vec<&str> = words.collect();
                while !rest.contains(&"$end") {
                    match lines.next() {
                        Some((_, l)) => rest = l.split_whitespace().collect(),
                        None => {
                            return Err(WaveError::Parse {
                                line: lineno,
                                detail: format!("unterminated {first}"),
                            })
                        }
                    }
                }
            }
            "$scope" => scope_depth += 1,
            "$upscope" => scope_depth = scope_depth.saturating_sub(1),
            "$enddefinitions" => seen_enddefs = true,
            "$dumpvars" | "$end" | "$dumpall" | "$dumpon" | "$dumpoff" => {}
            "$var" => {
                // $var wire 1 <id> <name> [$end]
                let kind = words.next().unwrap_or("");
                let width = words.next().unwrap_or("");
                let id = words.next().unwrap_or("");
                let name = words.next().unwrap_or("");
                if kind.is_empty() || id.is_empty() || name.is_empty() {
                    return Err(WaveError::Parse {
                        line: lineno,
                        detail: "malformed $var".into(),
                    });
                }
                if width != "1" {
                    return Err(WaveError::Parse {
                        line: lineno,
                        detail: format!("only 1-bit signals supported, `{name}` is {width}"),
                    });
                }
                // Some tools write the bit-select as a separate token: `x [3]`.
                let mut full = name.to_string();
                if let Some(next) = words.clone().next() {
                    if next.starts_with('[') && next != "$end" {
                        full.push_str(next);
                    }
                }
                id_to_name.insert(id.to_string(), full);
            }
            _ if first.starts_with('#') => {
                let t: i64 = first[1..].parse().map_err(|_| WaveError::Parse {
                    line: lineno,
                    detail: format!("bad timestamp `{first}`"),
                })?;
                if t < i64::from(time) {
                    return Err(WaveError::Parse {
                        line: lineno,
                        detail: format!("timestamp {t} goes backwards"),
                    });
                }
                time = t.try_into().map_err(|_| WaveError::Parse {
                    line: lineno,
                    detail: format!("timestamp {t} out of range"),
                })?;
            }
            _ => {
                if !seen_enddefs {
                    return Err(WaveError::Parse {
                        line: lineno,
                        detail: format!("value change before $enddefinitions: `{line}`"),
                    });
                }
                let (vch, id) = first.split_at(1);
                let v = match vch {
                    "0" => false,
                    "1" => true,
                    "x" | "X" | "z" | "Z" => {
                        coerced += 1;
                        false
                    }
                    "b" | "B" | "r" | "R" => {
                        return Err(WaveError::Parse {
                            line: lineno,
                            detail: "vector/real changes not supported".into(),
                        })
                    }
                    _ => {
                        return Err(WaveError::Parse {
                            line: lineno,
                            detail: format!("unrecognised change `{first}`"),
                        })
                    }
                };
                let name = id_to_name.get(id).ok_or_else(|| WaveError::Parse {
                    line: lineno,
                    detail: format!("change on undeclared id `{id}`"),
                })?;
                if time == 0 {
                    // Time-0 changes define initial values (last one wins).
                    builders.insert(name.clone(), (WaveformBuilder::new(v), true));
                } else {
                    let (b, _) = builders
                        .entry(name.clone())
                        .or_insert_with(|| (WaveformBuilder::new(false), false));
                    b.set_value(time, v).map_err(|_| WaveError::Parse {
                        line: lineno,
                        detail: format!("non-monotonic change on `{name}`"),
                    })?;
                }
            }
        }
    }
    let _ = scope_depth;

    // Signals declared but never dumped default to constant 0.
    for name in id_to_name.values() {
        builders
            .entry(name.clone())
            .or_insert_with(|| (WaveformBuilder::new(false), true));
    }

    let signals = builders
        .into_iter()
        .map(|(name, (b, _))| (name, b.finish()))
        .collect();
    Ok(VcdDocument {
        signals,
        coerced_unknowns: coerced,
        end_time: time,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::Waveform;

    #[test]
    fn roundtrip_two_signals() {
        let a = Waveform::from_toggles(false, &[5, 9]);
        let b = Waveform::from_toggles(true, &[7]);
        let text = write("top", [("a", &a), ("b", &b)]);
        let doc = parse(&text).unwrap();
        assert_eq!(doc.signals["a"], a);
        assert_eq!(doc.signals["b"], b);
        assert_eq!(doc.coerced_unknowns, 0);
        assert_eq!(doc.end_time, 9);
    }

    #[test]
    fn roundtrip_many_signals_exercises_multi_char_ids() {
        let waves: Vec<(String, Waveform)> = (0..200)
            .map(|i| {
                (
                    format!("sig{i}"),
                    Waveform::from_toggles(i % 2 == 0, &[1 + i]),
                )
            })
            .collect();
        let text = write("wide", waves.iter().map(|(n, w)| (n.as_str(), w)));
        let doc = parse(&text).unwrap();
        for (n, w) in &waves {
            assert_eq!(&doc.signals[n], w, "signal {n}");
        }
    }

    #[test]
    fn x_values_coerced() {
        let text =
            "$timescale 1ps $end\n$var wire 1 ! a $end\n$enddefinitions $end\n#0\nx!\n#5\n1!\n";
        let doc = parse(text).unwrap();
        assert_eq!(doc.coerced_unknowns, 1);
        assert!(!doc.signals["a"].initial_value());
        assert!(doc.signals["a"].value_at(5));
    }

    #[test]
    fn undumped_signal_defaults_to_zero() {
        let text = "$var wire 1 ! a $end\n$enddefinitions $end\n#10\n";
        let doc = parse(text).unwrap();
        assert_eq!(doc.signals["a"], Waveform::constant(false));
    }

    #[test]
    fn rejects_vectors() {
        let text = "$var wire 4 ! a $end\n$enddefinitions $end\n";
        assert!(parse(text).is_err());
        let text2 = "$var wire 1 ! a $end\n$enddefinitions $end\n#0\nb1010 !\n";
        assert!(parse(text2).is_err());
    }

    #[test]
    fn rejects_backwards_time() {
        let text = "$var wire 1 ! a $end\n$enddefinitions $end\n#5\n1!\n#3\n0!\n";
        assert!(parse(text).is_err());
    }

    #[test]
    fn rejects_unknown_id() {
        let text = "$var wire 1 ! a $end\n$enddefinitions $end\n#1\n1?\n";
        assert!(parse(text).is_err());
    }

    #[test]
    fn id_generation_is_unique() {
        let mut seen = std::collections::HashSet::new();
        for i in 0..10_000 {
            assert!(seen.insert(id_for(i)), "duplicate id at {i}");
        }
    }
}
