use crate::{Result, SimTime, WaveError, Waveform, EOW, INIT_ONE_MARKER};

/// Handle to a waveform stored inside a [`WaveformArena`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct WaveRef {
    /// Word offset of the waveform's first entry (always even).
    pub offset: u32,
    /// Length in words, including any `-1` marker and the EOW terminator.
    pub len: u32,
}

impl WaveRef {
    /// Offset of the word just past this waveform.
    pub fn end(self) -> u32 {
        self.offset + self.len
    }
}

/// A single flat buffer holding many waveforms — the host-side equivalent of
/// the paper's "one chunk of device memory for storing all the waveforms of
/// the simulation".
///
/// Every allocation starts at an **even** word offset. This is load-bearing:
/// the simulation kernels recover a signal's current logic value from the
/// *global* parity of their waveform pointer (`p % 2`), which only equals the
/// within-waveform index parity if every base offset is even.
///
/// # Example
///
/// ```
/// use gatspi_wave::{Waveform, WaveformArena};
///
/// # fn main() -> Result<(), gatspi_wave::WaveError> {
/// let mut arena = WaveformArena::with_capacity(64);
/// let w = Waveform::from_toggles(true, &[5, 9]);
/// let r = arena.push(&w)?;
/// assert_eq!(arena.waveform(r), w);
/// assert_eq!(r.offset % 2, 0);
/// # Ok(())
/// # }
/// ```
#[derive(Debug, Clone)]
pub struct WaveformArena {
    data: Vec<SimTime>,
    used: usize,
}

impl WaveformArena {
    /// Creates an arena with a fixed capacity in `i32` words.
    pub fn with_capacity(words: usize) -> Self {
        WaveformArena {
            data: vec![0; words],
            used: 0,
        }
    }

    /// Total capacity in words.
    pub fn capacity(&self) -> usize {
        self.data.len()
    }

    /// Words currently allocated (including alignment padding).
    pub fn used(&self) -> usize {
        self.used
    }

    /// Words still available.
    pub fn available(&self) -> usize {
        self.data.len() - self.used
    }

    /// Reserves `words` words at an even offset without writing them.
    ///
    /// # Errors
    ///
    /// Returns [`WaveError::ArenaFull`] if the aligned request does not fit.
    pub fn alloc(&mut self, words: usize) -> Result<WaveRef> {
        let base = self.used + (self.used & 1); // round up to even
        if base + words > self.data.len() {
            return Err(WaveError::ArenaFull {
                requested: words + (base - self.used),
                available: self.available(),
            });
        }
        self.used = base + words;
        Ok(WaveRef {
            offset: base as u32,
            len: words as u32,
        })
    }

    /// Copies a waveform into the arena.
    ///
    /// # Errors
    ///
    /// Returns [`WaveError::ArenaFull`] if it does not fit.
    pub fn push(&mut self, w: &Waveform) -> Result<WaveRef> {
        let r = self.alloc(w.len_words())?;
        self.data[r.offset as usize..r.end() as usize].copy_from_slice(w.raw());
        Ok(r)
    }

    /// Reads a stored waveform back out as an owned [`Waveform`].
    ///
    /// # Panics
    ///
    /// Panics if `r` is out of bounds or the stored words are not a valid
    /// encoding (which indicates memory corruption, not user error).
    pub fn waveform(&self, r: WaveRef) -> Waveform {
        Waveform::from_raw(self.slice(r).to_vec()).expect("arena holds valid waveforms")
    }

    /// Raw view of a stored waveform's words.
    ///
    /// # Panics
    ///
    /// Panics if `r` is out of bounds.
    pub fn slice(&self, r: WaveRef) -> &[SimTime] {
        &self.data[r.offset as usize..r.end() as usize]
    }

    /// The entire backing buffer.
    pub fn data(&self) -> &[SimTime] {
        &self.data
    }

    /// Mutable view of the entire backing buffer (used by simulation kernels
    /// writing output waveforms in place).
    pub fn data_mut(&mut self) -> &mut [SimTime] {
        &mut self.data
    }

    /// Resets the allocator without zeroing memory, allowing the arena to be
    /// reused across sequential simulation invocations (the paper's
    /// "testbench compiled into shorter segments" mode).
    pub fn clear(&mut self) {
        self.used = 0;
    }

    /// Counts the toggles of a stored waveform without materialising it.
    ///
    /// # Panics
    ///
    /// Panics if `r` is out of bounds.
    pub fn toggle_count(&self, r: WaveRef) -> usize {
        let s = self.slice(r);
        let marker = usize::from(s.first() == Some(&INIT_ONE_MARKER));
        let mut n = 0usize;
        for &t in &s[marker..] {
            if t == EOW {
                break;
            }
            n += 1;
        }
        n.saturating_sub(1)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn alloc_is_even_aligned() {
        let mut a = WaveformArena::with_capacity(32);
        let r1 = a.alloc(3).unwrap();
        let r2 = a.alloc(2).unwrap();
        assert_eq!(r1.offset, 0);
        assert_eq!(r2.offset % 2, 0);
        assert_eq!(r2.offset, 4); // 3 rounded up to 4
    }

    #[test]
    fn push_and_read_back() {
        let mut a = WaveformArena::with_capacity(64);
        let w1 = Waveform::from_toggles(true, &[5, 9]);
        let w2 = Waveform::from_toggles(false, &[1, 2, 3]);
        let r1 = a.push(&w1).unwrap();
        let r2 = a.push(&w2).unwrap();
        assert_eq!(a.waveform(r1), w1);
        assert_eq!(a.waveform(r2), w2);
    }

    #[test]
    fn arena_full_reported() {
        let mut a = WaveformArena::with_capacity(4);
        assert!(a.alloc(4).is_ok());
        let err = a.alloc(1);
        assert!(matches!(err, Err(WaveError::ArenaFull { .. })));
    }

    #[test]
    fn alignment_padding_counts_against_capacity() {
        let mut a = WaveformArena::with_capacity(4);
        a.alloc(3).unwrap();
        // Only 1 word physically left but aligned base would start at 4.
        assert!(a.alloc(1).is_err());
    }

    #[test]
    fn clear_allows_reuse() {
        let mut a = WaveformArena::with_capacity(8);
        a.alloc(8).unwrap();
        assert_eq!(a.available(), 0);
        a.clear();
        assert_eq!(a.available(), 8);
        assert!(a.alloc(8).is_ok());
    }

    #[test]
    fn toggle_count_in_place() {
        let mut a = WaveformArena::with_capacity(64);
        let w = Waveform::from_toggles(true, &[5, 9, 12]);
        let r = a.push(&w).unwrap();
        assert_eq!(a.toggle_count(r), 3);
        let c = a.push(&Waveform::constant(false)).unwrap();
        assert_eq!(a.toggle_count(c), 0);
    }

    #[test]
    fn parity_invariant_holds_for_many_pushes() {
        let mut a = WaveformArena::with_capacity(1024);
        for i in 0..50 {
            let w = if i % 2 == 0 {
                Waveform::from_toggles(true, &[1 + i])
            } else {
                Waveform::from_toggles(false, &[1 + i, 2 + i])
            };
            let r = a.push(&w).unwrap();
            assert_eq!(r.offset % 2, 0, "push {i} misaligned");
            // Global parity of the initial-value entry encodes value 0/1:
            // entry index offset+marker has parity = initial value.
            let marker = usize::from(w.initial_value());
            assert_eq!((r.offset as usize + marker) % 2 == 1, w.initial_value());
        }
    }
}
