//! SAIF (Switching Activity Interchange Format) writing, reading and
//! comparison.
//!
//! GATSPI's deliverable for downstream power analysis is an
//! industry-standard SAIF file; correctness versus the baseline simulator is
//! established by comparing SAIF documents (plus waveform spot-checks).
//! This module implements the "backward" SAIF 2.0 subset those flows use:
//! per-net `T0`/`T1`/`TX`/`TC`/`IG` records under a single instance scope.

use std::collections::BTreeMap;
use std::fmt::Write as _;

use crate::{Result, SimTime, WaveError, Waveform, EOW};

/// Switching record for one net.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct SaifRecord {
    /// Time spent at logic 0.
    pub t0: i64,
    /// Time spent at logic 1.
    pub t1: i64,
    /// Time spent at X (always 0 in 2-value simulation).
    pub tx: i64,
    /// Toggle count.
    pub tc: u64,
    /// Glitch (inertial-glitch) count, if the producer tracks it.
    pub ig: u64,
}

/// An in-memory SAIF document: design name, duration, and per-net records.
#[derive(Debug, Clone, PartialEq)]
pub struct SaifDocument {
    /// Design (top instance) name.
    pub design: String,
    /// Simulated duration in timescale units.
    pub duration: i64,
    /// Net records, ordered by name for deterministic output.
    pub nets: BTreeMap<String, SaifRecord>,
}

impl SaifDocument {
    /// Creates an empty document.
    pub fn new(design: impl Into<String>, duration: i64) -> Self {
        SaifDocument {
            design: design.into(),
            duration,
            nets: BTreeMap::new(),
        }
    }

    /// Builds a document from named waveforms over `[0, duration)`.
    pub fn from_waveforms<'a>(
        design: &str,
        duration: SimTime,
        waves: impl IntoIterator<Item = (&'a str, &'a Waveform)>,
    ) -> Self {
        let mut doc = SaifDocument::new(design, i64::from(duration));
        for (name, w) in waves {
            let (t0, t1) = w.durations(duration);
            doc.nets.insert(
                name.to_string(),
                SaifRecord {
                    t0,
                    t1,
                    tx: 0,
                    // Clip TC like T0/T1: toggles past `duration` are
                    // outside the observation window and must not count.
                    tc: w.toggle_count_clipped(duration) as u64,
                    ig: 0,
                },
            );
        }
        doc
    }

    /// Serialises to SAIF 2.0 text.
    pub fn write(&self) -> String {
        let mut out = String::new();
        let _ = writeln!(out, "(SAIFILE");
        let _ = writeln!(out, "(SAIFVERSION \"2.0\")");
        let _ = writeln!(out, "(DIRECTION \"backward\")");
        let _ = writeln!(out, "(DESIGN \"{}\")", self.design);
        let _ = writeln!(out, "(TIMESCALE 1 ps)");
        let _ = writeln!(out, "(DURATION {})", self.duration);
        let _ = writeln!(out, "(INSTANCE {}", escape(&self.design));
        let _ = writeln!(out, "  (NET");
        for (name, r) in &self.nets {
            let _ = writeln!(
                out,
                "    ({}\n      (T0 {}) (T1 {}) (TX {}) (TC {}) (IG {})\n    )",
                escape(name),
                r.t0,
                r.t1,
                r.tx,
                r.tc,
                r.ig
            );
        }
        let _ = writeln!(out, "  )");
        let _ = writeln!(out, ")");
        let _ = writeln!(out, ")");
        out
    }

    /// Parses SAIF 2.0 text produced by [`SaifDocument::write`] (or by other
    /// tools using the same subset).
    ///
    /// # Errors
    ///
    /// Returns [`WaveError::Parse`] on malformed input.
    pub fn parse(src: &str) -> Result<Self> {
        let toks = tokenize(src)?;
        let mut p = SaifParser { toks, pos: 0 };
        p.document()
    }

    /// Compares two documents, returning a list of human-readable
    /// differences (empty ⇒ equivalent). `T0`/`T1` are compared exactly; the
    /// paper's accuracy criterion is exact-match SAIF.
    pub fn diff(&self, other: &SaifDocument) -> Vec<String> {
        let mut out = Vec::new();
        if self.duration != other.duration {
            out.push(format!("duration: {} vs {}", self.duration, other.duration));
        }
        for (name, a) in &self.nets {
            match other.nets.get(name) {
                None => out.push(format!("net `{name}` missing from other")),
                Some(b) if a.tc != b.tc => {
                    out.push(format!("net `{name}` TC {} vs {}", a.tc, b.tc))
                }
                Some(b) if a.t0 != b.t0 || a.t1 != b.t1 => out.push(format!(
                    "net `{name}` T0/T1 {}/{} vs {}/{}",
                    a.t0, a.t1, b.t0, b.t1
                )),
                _ => {}
            }
        }
        for name in other.nets.keys() {
            if !self.nets.contains_key(name) {
                out.push(format!("net `{name}` missing from self"));
            }
        }
        out
    }

    /// Total toggle count over all nets.
    pub fn total_toggles(&self) -> u64 {
        self.nets.values().map(|r| r.tc).sum()
    }
}

/// Switching deltas of one net over one observation window — the unit
/// [`SaifAccumulator`] folds. `TX`/`IG` are absent: 2-value simulation has
/// no unknowns, and glitch counts travel separately when tracked.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct SaifDelta {
    /// Time at logic 0 within the window.
    pub t0: i64,
    /// Time at logic 1 within the window.
    pub t1: i64,
    /// Toggles within the window.
    pub tc: u64,
}

/// Scans one raw Fig. 3 waveform array — optional
/// [`INIT_ONE_MARKER`](crate::INIT_ONE_MARKER),
/// a mandatory time-0 entry, ascending toggle times, an [`EOW`]
/// terminator (words past it, if any, are ignored; a slice ending without
/// one is treated as terminated) — into the toggle count and state
/// durations clipped to `[0, clip)`, without materialising a
/// [`Waveform`].
///
/// The slice must start at the waveform's (even-aligned) base so the
/// index-parity value encoding holds.
pub fn scan_raw(raw: &[i32], clip: SimTime) -> SaifDelta {
    let (initial, tail) = crate::split_raw(raw);
    let mut val = initial;
    let mut d = SaifDelta::default();
    let mut prev = 0i64;
    let clip = i64::from(clip);
    for &t in tail {
        if t == EOW || i64::from(t) >= clip {
            break;
        }
        let span = i64::from(t) - prev;
        if val {
            d.t1 += span;
        } else {
            d.t0 += span;
        }
        prev = i64::from(t);
        val = !val;
        d.tc += 1;
    }
    let tail = clip - prev;
    if tail > 0 {
        if val {
            d.t1 += tail;
        } else {
            d.t0 += tail;
        }
    }
    d
}

/// Streaming SAIF builder: folds each net's per-window switching deltas
/// into running `T0`/`T1`/`TC` totals, so a segmented (or multi-GPU) run
/// produces its SAIF without ever holding full-duration waveforms —
/// memory is O(nets), independent of run length.
///
/// Nets are indexed (`names[s]` names net `s`); nets that never receive a
/// delta are omitted from the finished document, mirroring the engine's
/// treatment of floating signals.
///
/// # Example
///
/// ```
/// use gatspi_wave::saif::{SaifAccumulator, SaifDocument};
/// use gatspi_wave::Waveform;
///
/// let w = Waveform::from_toggles(false, &[10, 30]);
/// let mut acc = SaifAccumulator::new("top", vec!["a".into()]);
/// // Two 50-tick windows of the same waveform, fed separately.
/// for (start, end) in [(0, 50), (50, 100)] {
///     acc.add_raw(0, w.window(start, end).raw(), end - start);
/// }
/// let doc = acc.finish(100);
/// assert_eq!(doc, SaifDocument::from_waveforms("top", 100, [("a", &w)]));
/// ```
#[derive(Debug, Clone)]
pub struct SaifAccumulator {
    design: String,
    names: Vec<String>,
    recs: Vec<SaifRecord>,
    touched: Vec<bool>,
}

impl SaifAccumulator {
    /// Starts an accumulator for the given design and net names.
    pub fn new(design: impl Into<String>, names: Vec<String>) -> Self {
        let n = names.len();
        SaifAccumulator {
            design: design.into(),
            names,
            recs: vec![SaifRecord::default(); n],
            touched: vec![false; n],
        }
    }

    /// Number of nets the accumulator tracks.
    pub fn n_nets(&self) -> usize {
        self.names.len()
    }

    /// Folds one raw Fig. 3 window of net `signal`, clipped to
    /// `[0, clip)` window-local time (see [`scan_raw`]).
    ///
    /// # Panics
    ///
    /// Panics if `signal` is out of range.
    pub fn add_raw(&mut self, signal: usize, raw: &[i32], clip: SimTime) {
        self.add_delta(signal, scan_raw(raw, clip));
    }

    /// Folds one window of net `signal` from a materialised [`Waveform`].
    ///
    /// # Panics
    ///
    /// Panics if `signal` is out of range.
    pub fn add_window(&mut self, signal: usize, w: &Waveform, clip: SimTime) {
        let (t0, t1) = w.durations(clip);
        self.add_delta(
            signal,
            SaifDelta {
                t0,
                t1,
                tc: w.toggle_count_clipped(clip) as u64,
            },
        );
    }

    /// Folds an already-computed delta for net `signal`.
    ///
    /// # Panics
    ///
    /// Panics if `signal` is out of range.
    pub fn add_delta(&mut self, signal: usize, d: SaifDelta) {
        let r = &mut self.recs[signal];
        r.t0 += d.t0;
        r.t1 += d.t1;
        r.tc += d.tc;
        self.touched[signal] = true;
    }

    /// Finalises into a [`SaifDocument`] covering `[0, duration)`. Nets
    /// that never received a delta are omitted.
    pub fn finish(self, duration: SimTime) -> SaifDocument {
        let mut doc = SaifDocument::new(self.design, i64::from(duration));
        for ((name, rec), touched) in self.names.into_iter().zip(self.recs).zip(self.touched) {
            if touched {
                doc.nets.insert(name, rec);
            }
        }
        doc
    }
}

/// Escapes SAIF identifiers: bracketed bus bits become `\[i\]`.
fn escape(name: &str) -> String {
    let mut s = String::with_capacity(name.len());
    for c in name.chars() {
        match c {
            '[' => s.push_str("\\["),
            ']' => s.push_str("\\]"),
            _ => s.push(c),
        }
    }
    s
}

fn unescape(name: &str) -> String {
    name.replace("\\[", "[").replace("\\]", "]")
}

#[derive(Debug, Clone, PartialEq)]
enum Tok {
    Open,
    Close,
    Atom(String),
    Str(String),
}

fn tokenize(src: &str) -> Result<Vec<(Tok, usize)>> {
    let mut toks = Vec::new();
    let b = src.as_bytes();
    let mut i = 0;
    let mut line = 1;
    while i < b.len() {
        match b[i] {
            b'\n' => {
                line += 1;
                i += 1;
            }
            c if c.is_ascii_whitespace() => i += 1,
            b'(' => {
                toks.push((Tok::Open, line));
                i += 1;
            }
            b')' => {
                toks.push((Tok::Close, line));
                i += 1;
            }
            b'"' => {
                let start = i + 1;
                i += 1;
                while i < b.len() && b[i] != b'"' {
                    i += 1;
                }
                if i == b.len() {
                    return Err(WaveError::Parse {
                        line,
                        detail: "unterminated string".into(),
                    });
                }
                toks.push((
                    Tok::Str(String::from_utf8_lossy(&b[start..i]).into_owned()),
                    line,
                ));
                i += 1;
            }
            _ => {
                let start = i;
                while i < b.len()
                    && !b[i].is_ascii_whitespace()
                    && b[i] != b'('
                    && b[i] != b')'
                    && b[i] != b'"'
                {
                    i += 1;
                }
                toks.push((
                    Tok::Atom(String::from_utf8_lossy(&b[start..i]).into_owned()),
                    line,
                ));
            }
        }
    }
    Ok(toks)
}

struct SaifParser {
    toks: Vec<(Tok, usize)>,
    pos: usize,
}

impl SaifParser {
    fn line(&self) -> usize {
        self.toks.get(self.pos).map(|(_, l)| *l).unwrap_or(0)
    }

    fn err(&self, detail: impl Into<String>) -> WaveError {
        WaveError::Parse {
            line: self.line(),
            detail: detail.into(),
        }
    }

    fn next(&mut self) -> Option<Tok> {
        let t = self.toks.get(self.pos).map(|(t, _)| t.clone());
        if t.is_some() {
            self.pos += 1;
        }
        t
    }

    fn peek(&self) -> Option<&Tok> {
        self.toks.get(self.pos).map(|(t, _)| t)
    }

    fn expect_open(&mut self) -> Result<()> {
        match self.next() {
            Some(Tok::Open) => Ok(()),
            other => Err(self.err(format!("expected `(`, found {other:?}"))),
        }
    }

    fn expect_close(&mut self) -> Result<()> {
        match self.next() {
            Some(Tok::Close) => Ok(()),
            other => Err(self.err(format!("expected `)`, found {other:?}"))),
        }
    }

    fn atom(&mut self) -> Result<String> {
        match self.next() {
            Some(Tok::Atom(s)) => Ok(s),
            Some(Tok::Str(s)) => Ok(s),
            other => Err(self.err(format!("expected atom, found {other:?}"))),
        }
    }

    fn int(&mut self) -> Result<i64> {
        let a = self.atom()?;
        a.parse().map_err(|_| WaveError::Parse {
            line: self.line(),
            detail: format!("expected integer, got `{a}`"),
        })
    }

    /// Skips a balanced form whose `(` was already consumed.
    fn skip_form(&mut self) -> Result<()> {
        let mut depth = 1;
        while depth > 0 {
            match self.next() {
                Some(Tok::Open) => depth += 1,
                Some(Tok::Close) => depth -= 1,
                Some(_) => {}
                None => return Err(self.err("unexpected end of file")),
            }
        }
        Ok(())
    }

    fn document(&mut self) -> Result<SaifDocument> {
        self.expect_open()?;
        let kw = self.atom()?;
        if kw != "SAIFILE" {
            return Err(self.err("expected SAIFILE"));
        }
        let mut doc = SaifDocument::new("", 0);
        while self.peek() == Some(&Tok::Open) {
            self.next();
            let kw = self.atom()?;
            match kw.as_str() {
                "DESIGN" => {
                    doc.design = self.atom()?;
                    self.expect_close()?;
                }
                "DURATION" => {
                    doc.duration = self.int()?;
                    self.expect_close()?;
                }
                "INSTANCE" => {
                    let name = self.atom()?;
                    if doc.design.is_empty() {
                        doc.design = unescape(&name);
                    }
                    self.instance_body(&mut doc)?;
                }
                _ => self.skip_form()?,
            }
        }
        self.expect_close()?;
        Ok(doc)
    }

    fn instance_body(&mut self, doc: &mut SaifDocument) -> Result<()> {
        while self.peek() == Some(&Tok::Open) {
            self.next();
            let kw = self.atom()?;
            if kw == "NET" {
                self.net_body(doc)?;
            } else {
                self.skip_form()?;
            }
        }
        self.expect_close()
    }

    fn net_body(&mut self, doc: &mut SaifDocument) -> Result<()> {
        while self.peek() == Some(&Tok::Open) {
            self.next();
            let name = unescape(&self.atom()?);
            let mut rec = SaifRecord::default();
            while self.peek() == Some(&Tok::Open) {
                self.next();
                let field = self.atom()?;
                let v = self.int()?;
                match field.as_str() {
                    "T0" => rec.t0 = v,
                    "T1" => rec.t1 = v,
                    "TX" => rec.tx = v,
                    "TC" => rec.tc = v as u64,
                    "IG" => rec.ig = v as u64,
                    _ => {}
                }
                self.expect_close()?;
            }
            self.expect_close()?;
            doc.nets.insert(name, rec);
        }
        self.expect_close()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::Waveform;

    fn doc() -> SaifDocument {
        let a = Waveform::from_toggles(false, &[10, 30]);
        let b = Waveform::from_toggles(true, &[50]);
        SaifDocument::from_waveforms("top", 100, [("a", &a), ("b[3]", &b)])
    }

    #[test]
    fn records_from_waveforms() {
        let d = doc();
        let a = &d.nets["a"];
        assert_eq!(a.tc, 2);
        assert_eq!(a.t1, 20);
        assert_eq!(a.t0, 80);
        let b = &d.nets["b[3]"];
        assert_eq!(b.tc, 1);
        assert_eq!(b.t1, 50);
    }

    #[test]
    fn from_waveforms_clips_tc_to_duration() {
        // Toggles at 10, 30, 150, 250 — only the first two fall inside
        // [0, 100). T0/T1 were always clamped; TC must match them.
        let w = Waveform::from_toggles(false, &[10, 30, 150, 250]);
        let d = SaifDocument::from_waveforms("top", 100, [("a", &w)]);
        let r = &d.nets["a"];
        assert_eq!(r.tc, 2, "toggles past duration must not count");
        assert_eq!((r.t0, r.t1), (80, 20));
        assert_eq!(r.t0 + r.t1, d.duration, "durations span the document");
    }

    #[test]
    fn scan_raw_matches_waveform_scan() {
        let w = Waveform::from_toggles(true, &[5, 9, 40]);
        for clip in [0, 5, 6, 25, 40, 100] {
            let d = scan_raw(w.raw(), clip);
            let (t0, t1) = w.durations(clip);
            assert_eq!((d.t0, d.t1), (t0, t1), "clip {clip}");
            assert_eq!(d.tc as usize, w.toggle_count_clipped(clip), "clip {clip}");
        }
        // Ghost words past the EOW terminator are ignored.
        let mut raw = w.raw().to_vec();
        raw.extend([3, 7, 11]);
        assert_eq!(scan_raw(&raw, 100), scan_raw(w.raw(), 100));
        // A slice without a terminator is treated as ending there.
        assert_eq!(scan_raw(&[0, 8], 20), scan_raw(&[0, 8, EOW], 20));
    }

    #[test]
    fn accumulator_folds_windows_to_whole_run_records() {
        let a = Waveform::from_toggles(false, &[10, 30, 77, 160]);
        let b = Waveform::from_toggles(true, &[55]);
        let duration = 200;
        let mut acc = SaifAccumulator::new("top", vec!["a".into(), "b".into(), "quiet".into()]);
        assert_eq!(acc.n_nets(), 3);
        for (start, end) in [(0, 70), (70, 140), (140, 200)] {
            acc.add_raw(0, a.window(start, end).raw(), end - start);
            acc.add_window(1, &b.window(start, end), end - start);
        }
        let doc = acc.finish(duration);
        let whole = SaifDocument::from_waveforms("top", duration, [("a", &a), ("b", &b)]);
        assert_eq!(doc, whole, "window folding must equal the whole run");
        assert!(!doc.nets.contains_key("quiet"), "untouched nets omitted");
    }

    #[test]
    fn roundtrip_write_parse() {
        let d = doc();
        let text = d.write();
        let d2 = SaifDocument::parse(&text).unwrap();
        assert_eq!(d, d2);
        assert!(d.diff(&d2).is_empty());
    }

    #[test]
    fn escaped_bus_names_roundtrip() {
        let d = doc();
        let text = d.write();
        assert!(
            text.contains("b\\[3\\]"),
            "bus bits must be escaped: {text}"
        );
        let d2 = SaifDocument::parse(&text).unwrap();
        assert!(d2.nets.contains_key("b[3]"));
    }

    #[test]
    fn diff_detects_mismatches() {
        let d1 = doc();
        let mut d2 = doc();
        d2.nets.get_mut("a").unwrap().tc = 99;
        let diffs = d1.diff(&d2);
        assert_eq!(diffs.len(), 1);
        assert!(diffs[0].contains("TC"));

        let mut d3 = doc();
        d3.nets.remove("a");
        assert!(!d1.diff(&d3).is_empty());
        assert!(!d3.diff(&d1).is_empty());
    }

    #[test]
    fn total_toggles() {
        assert_eq!(doc().total_toggles(), 3);
    }

    #[test]
    fn parse_ignores_unknown_forms() {
        let text = r#"(SAIFILE
(SAIFVERSION "2.0")
(PROGRAM_NAME "someone_else")
(DESIGN "x")
(DURATION 10)
(INSTANCE x
  (PORT (p (T0 1)))
  (NET (n (T0 4) (T1 6) (TC 2)))
)
)"#;
        let d = SaifDocument::parse(text).unwrap();
        assert_eq!(d.duration, 10);
        assert_eq!(d.nets["n"].tc, 2);
        assert!(!d.nets.contains_key("p"));
    }

    #[test]
    fn parse_error_on_garbage() {
        assert!(SaifDocument::parse("(NOTSAIF)").is_err());
        assert!(SaifDocument::parse("(SAIFILE (DESIGN \"unterminated").is_err());
    }
}
