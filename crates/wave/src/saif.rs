//! SAIF (Switching Activity Interchange Format) writing, reading and
//! comparison.
//!
//! GATSPI's deliverable for downstream power analysis is an
//! industry-standard SAIF file; correctness versus the baseline simulator is
//! established by comparing SAIF documents (plus waveform spot-checks).
//! This module implements the "backward" SAIF 2.0 subset those flows use:
//! per-net `T0`/`T1`/`TX`/`TC`/`IG` records under a single instance scope.

use std::collections::BTreeMap;
use std::fmt::Write as _;

use crate::{Result, SimTime, WaveError, Waveform};

/// Switching record for one net.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct SaifRecord {
    /// Time spent at logic 0.
    pub t0: i64,
    /// Time spent at logic 1.
    pub t1: i64,
    /// Time spent at X (always 0 in 2-value simulation).
    pub tx: i64,
    /// Toggle count.
    pub tc: u64,
    /// Glitch (inertial-glitch) count, if the producer tracks it.
    pub ig: u64,
}

/// An in-memory SAIF document: design name, duration, and per-net records.
#[derive(Debug, Clone, PartialEq)]
pub struct SaifDocument {
    /// Design (top instance) name.
    pub design: String,
    /// Simulated duration in timescale units.
    pub duration: i64,
    /// Net records, ordered by name for deterministic output.
    pub nets: BTreeMap<String, SaifRecord>,
}

impl SaifDocument {
    /// Creates an empty document.
    pub fn new(design: impl Into<String>, duration: i64) -> Self {
        SaifDocument {
            design: design.into(),
            duration,
            nets: BTreeMap::new(),
        }
    }

    /// Builds a document from named waveforms over `[0, duration)`.
    pub fn from_waveforms<'a>(
        design: &str,
        duration: SimTime,
        waves: impl IntoIterator<Item = (&'a str, &'a Waveform)>,
    ) -> Self {
        let mut doc = SaifDocument::new(design, i64::from(duration));
        for (name, w) in waves {
            let (t0, t1) = w.durations(duration);
            doc.nets.insert(
                name.to_string(),
                SaifRecord {
                    t0,
                    t1,
                    tx: 0,
                    tc: w.toggle_count() as u64,
                    ig: 0,
                },
            );
        }
        doc
    }

    /// Serialises to SAIF 2.0 text.
    pub fn write(&self) -> String {
        let mut out = String::new();
        let _ = writeln!(out, "(SAIFILE");
        let _ = writeln!(out, "(SAIFVERSION \"2.0\")");
        let _ = writeln!(out, "(DIRECTION \"backward\")");
        let _ = writeln!(out, "(DESIGN \"{}\")", self.design);
        let _ = writeln!(out, "(TIMESCALE 1 ps)");
        let _ = writeln!(out, "(DURATION {})", self.duration);
        let _ = writeln!(out, "(INSTANCE {}", escape(&self.design));
        let _ = writeln!(out, "  (NET");
        for (name, r) in &self.nets {
            let _ = writeln!(
                out,
                "    ({}\n      (T0 {}) (T1 {}) (TX {}) (TC {}) (IG {})\n    )",
                escape(name),
                r.t0,
                r.t1,
                r.tx,
                r.tc,
                r.ig
            );
        }
        let _ = writeln!(out, "  )");
        let _ = writeln!(out, ")");
        let _ = writeln!(out, ")");
        out
    }

    /// Parses SAIF 2.0 text produced by [`SaifDocument::write`] (or by other
    /// tools using the same subset).
    ///
    /// # Errors
    ///
    /// Returns [`WaveError::Parse`] on malformed input.
    pub fn parse(src: &str) -> Result<Self> {
        let toks = tokenize(src)?;
        let mut p = SaifParser { toks, pos: 0 };
        p.document()
    }

    /// Compares two documents, returning a list of human-readable
    /// differences (empty ⇒ equivalent). `T0`/`T1` are compared exactly; the
    /// paper's accuracy criterion is exact-match SAIF.
    pub fn diff(&self, other: &SaifDocument) -> Vec<String> {
        let mut out = Vec::new();
        if self.duration != other.duration {
            out.push(format!("duration: {} vs {}", self.duration, other.duration));
        }
        for (name, a) in &self.nets {
            match other.nets.get(name) {
                None => out.push(format!("net `{name}` missing from other")),
                Some(b) if a.tc != b.tc => {
                    out.push(format!("net `{name}` TC {} vs {}", a.tc, b.tc))
                }
                Some(b) if a.t0 != b.t0 || a.t1 != b.t1 => out.push(format!(
                    "net `{name}` T0/T1 {}/{} vs {}/{}",
                    a.t0, a.t1, b.t0, b.t1
                )),
                _ => {}
            }
        }
        for name in other.nets.keys() {
            if !self.nets.contains_key(name) {
                out.push(format!("net `{name}` missing from self"));
            }
        }
        out
    }

    /// Total toggle count over all nets.
    pub fn total_toggles(&self) -> u64 {
        self.nets.values().map(|r| r.tc).sum()
    }
}

/// Escapes SAIF identifiers: bracketed bus bits become `\[i\]`.
fn escape(name: &str) -> String {
    let mut s = String::with_capacity(name.len());
    for c in name.chars() {
        match c {
            '[' => s.push_str("\\["),
            ']' => s.push_str("\\]"),
            _ => s.push(c),
        }
    }
    s
}

fn unescape(name: &str) -> String {
    name.replace("\\[", "[").replace("\\]", "]")
}

#[derive(Debug, Clone, PartialEq)]
enum Tok {
    Open,
    Close,
    Atom(String),
    Str(String),
}

fn tokenize(src: &str) -> Result<Vec<(Tok, usize)>> {
    let mut toks = Vec::new();
    let b = src.as_bytes();
    let mut i = 0;
    let mut line = 1;
    while i < b.len() {
        match b[i] {
            b'\n' => {
                line += 1;
                i += 1;
            }
            c if c.is_ascii_whitespace() => i += 1,
            b'(' => {
                toks.push((Tok::Open, line));
                i += 1;
            }
            b')' => {
                toks.push((Tok::Close, line));
                i += 1;
            }
            b'"' => {
                let start = i + 1;
                i += 1;
                while i < b.len() && b[i] != b'"' {
                    i += 1;
                }
                if i == b.len() {
                    return Err(WaveError::Parse {
                        line,
                        detail: "unterminated string".into(),
                    });
                }
                toks.push((
                    Tok::Str(String::from_utf8_lossy(&b[start..i]).into_owned()),
                    line,
                ));
                i += 1;
            }
            _ => {
                let start = i;
                while i < b.len()
                    && !b[i].is_ascii_whitespace()
                    && b[i] != b'('
                    && b[i] != b')'
                    && b[i] != b'"'
                {
                    i += 1;
                }
                toks.push((
                    Tok::Atom(String::from_utf8_lossy(&b[start..i]).into_owned()),
                    line,
                ));
            }
        }
    }
    Ok(toks)
}

struct SaifParser {
    toks: Vec<(Tok, usize)>,
    pos: usize,
}

impl SaifParser {
    fn line(&self) -> usize {
        self.toks.get(self.pos).map(|(_, l)| *l).unwrap_or(0)
    }

    fn err(&self, detail: impl Into<String>) -> WaveError {
        WaveError::Parse {
            line: self.line(),
            detail: detail.into(),
        }
    }

    fn next(&mut self) -> Option<Tok> {
        let t = self.toks.get(self.pos).map(|(t, _)| t.clone());
        if t.is_some() {
            self.pos += 1;
        }
        t
    }

    fn peek(&self) -> Option<&Tok> {
        self.toks.get(self.pos).map(|(t, _)| t)
    }

    fn expect_open(&mut self) -> Result<()> {
        match self.next() {
            Some(Tok::Open) => Ok(()),
            other => Err(self.err(format!("expected `(`, found {other:?}"))),
        }
    }

    fn expect_close(&mut self) -> Result<()> {
        match self.next() {
            Some(Tok::Close) => Ok(()),
            other => Err(self.err(format!("expected `)`, found {other:?}"))),
        }
    }

    fn atom(&mut self) -> Result<String> {
        match self.next() {
            Some(Tok::Atom(s)) => Ok(s),
            Some(Tok::Str(s)) => Ok(s),
            other => Err(self.err(format!("expected atom, found {other:?}"))),
        }
    }

    fn int(&mut self) -> Result<i64> {
        let a = self.atom()?;
        a.parse().map_err(|_| WaveError::Parse {
            line: self.line(),
            detail: format!("expected integer, got `{a}`"),
        })
    }

    /// Skips a balanced form whose `(` was already consumed.
    fn skip_form(&mut self) -> Result<()> {
        let mut depth = 1;
        while depth > 0 {
            match self.next() {
                Some(Tok::Open) => depth += 1,
                Some(Tok::Close) => depth -= 1,
                Some(_) => {}
                None => return Err(self.err("unexpected end of file")),
            }
        }
        Ok(())
    }

    fn document(&mut self) -> Result<SaifDocument> {
        self.expect_open()?;
        let kw = self.atom()?;
        if kw != "SAIFILE" {
            return Err(self.err("expected SAIFILE"));
        }
        let mut doc = SaifDocument::new("", 0);
        while self.peek() == Some(&Tok::Open) {
            self.next();
            let kw = self.atom()?;
            match kw.as_str() {
                "DESIGN" => {
                    doc.design = self.atom()?;
                    self.expect_close()?;
                }
                "DURATION" => {
                    doc.duration = self.int()?;
                    self.expect_close()?;
                }
                "INSTANCE" => {
                    let name = self.atom()?;
                    if doc.design.is_empty() {
                        doc.design = unescape(&name);
                    }
                    self.instance_body(&mut doc)?;
                }
                _ => self.skip_form()?,
            }
        }
        self.expect_close()?;
        Ok(doc)
    }

    fn instance_body(&mut self, doc: &mut SaifDocument) -> Result<()> {
        while self.peek() == Some(&Tok::Open) {
            self.next();
            let kw = self.atom()?;
            if kw == "NET" {
                self.net_body(doc)?;
            } else {
                self.skip_form()?;
            }
        }
        self.expect_close()
    }

    fn net_body(&mut self, doc: &mut SaifDocument) -> Result<()> {
        while self.peek() == Some(&Tok::Open) {
            self.next();
            let name = unescape(&self.atom()?);
            let mut rec = SaifRecord::default();
            while self.peek() == Some(&Tok::Open) {
                self.next();
                let field = self.atom()?;
                let v = self.int()?;
                match field.as_str() {
                    "T0" => rec.t0 = v,
                    "T1" => rec.t1 = v,
                    "TX" => rec.tx = v,
                    "TC" => rec.tc = v as u64,
                    "IG" => rec.ig = v as u64,
                    _ => {}
                }
                self.expect_close()?;
            }
            self.expect_close()?;
            doc.nets.insert(name, rec);
        }
        self.expect_close()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::Waveform;

    fn doc() -> SaifDocument {
        let a = Waveform::from_toggles(false, &[10, 30]);
        let b = Waveform::from_toggles(true, &[50]);
        SaifDocument::from_waveforms("top", 100, [("a", &a), ("b[3]", &b)])
    }

    #[test]
    fn records_from_waveforms() {
        let d = doc();
        let a = &d.nets["a"];
        assert_eq!(a.tc, 2);
        assert_eq!(a.t1, 20);
        assert_eq!(a.t0, 80);
        let b = &d.nets["b[3]"];
        assert_eq!(b.tc, 1);
        assert_eq!(b.t1, 50);
    }

    #[test]
    fn roundtrip_write_parse() {
        let d = doc();
        let text = d.write();
        let d2 = SaifDocument::parse(&text).unwrap();
        assert_eq!(d, d2);
        assert!(d.diff(&d2).is_empty());
    }

    #[test]
    fn escaped_bus_names_roundtrip() {
        let d = doc();
        let text = d.write();
        assert!(
            text.contains("b\\[3\\]"),
            "bus bits must be escaped: {text}"
        );
        let d2 = SaifDocument::parse(&text).unwrap();
        assert!(d2.nets.contains_key("b[3]"));
    }

    #[test]
    fn diff_detects_mismatches() {
        let d1 = doc();
        let mut d2 = doc();
        d2.nets.get_mut("a").unwrap().tc = 99;
        let diffs = d1.diff(&d2);
        assert_eq!(diffs.len(), 1);
        assert!(diffs[0].contains("TC"));

        let mut d3 = doc();
        d3.nets.remove("a");
        assert!(!d1.diff(&d3).is_empty());
        assert!(!d3.diff(&d1).is_empty());
    }

    #[test]
    fn total_toggles() {
        assert_eq!(doc().total_toggles(), 3);
    }

    #[test]
    fn parse_ignores_unknown_forms() {
        let text = r#"(SAIFILE
(SAIFVERSION "2.0")
(PROGRAM_NAME "someone_else")
(DESIGN "x")
(DURATION 10)
(INSTANCE x
  (PORT (p (T0 1)))
  (NET (n (T0 4) (T1 6) (TC 2)))
)
)"#;
        let d = SaifDocument::parse(text).unwrap();
        assert_eq!(d.duration, 10);
        assert_eq!(d.nets["n"].tc, 2);
        assert!(!d.nets.contains_key("p"));
    }

    #[test]
    fn parse_error_on_garbage() {
        assert!(SaifDocument::parse("(NOTSAIF)").is_err());
        assert!(SaifDocument::parse("(SAIFILE (DESIGN \"unterminated").is_err());
    }
}
