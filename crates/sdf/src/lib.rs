//! SDF (Standard Delay Format) parsing and conditional delay-LUT translation
//! for the GATSPI reproduction.
//!
//! The paper's simulator consumes a gate-level netlist plus an SDF file and
//! translates every delay statement — including `COND`itional IOPATHs and
//! per-edge (`posedge`/`negedge`) arcs — into the uniform 2-D lookup-table
//! array format of Fig. 4, so the GPU kernel resolves any arc delay with one
//! indexed load:
//!
//! * **rows** (4): `(input edge, output edge)` combinations, laid out as
//!   `row = 2 * input_edge + output_edge` with `posedge = 0`, `negedge = 1`,
//!   `rise = 0`, `fall = 1`;
//! * **columns** (`2^(n-1)`): the weight-sum of the *non-switching* pins
//!   currently at logic 1 (pin weights are assigned by position, with the
//!   switching pin's bit removed);
//! * unspecified arcs hold [`NO_ARC`] (`i32::MAX`), exactly the `∞` entries
//!   in Fig. 4.
//!
//! The crate provides:
//!
//! * [`SdfFile`] / [`SdfCell`] / [`IoPath`] / [`Interconnect`] — the parsed
//!   model, with [`SdfFile::parse`] and [`SdfFile::write`] for the textual
//!   format;
//! * [`DelayLut`] and [`build_delay_lut`] — the Fig. 4 translation;
//! * [`Cond`] — `A2===1'b1&&A1===1'b0`-style condition expressions.

#![deny(missing_docs)]

mod error;
mod lut;
mod model;
mod parser;

pub use error::SdfError;
pub use lut::{build_delay_lut, reduced_column_index, DelayLut, NO_ARC};
pub use model::{
    Cond, DelayTriple, EdgeSpec, Interconnect, IoPath, PortPath, SdfCell, SdfFile, TripleSelect,
};

/// Result alias used throughout this crate.
pub type Result<T> = std::result::Result<T, SdfError>;
