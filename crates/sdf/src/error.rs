use std::fmt;

/// Errors produced while parsing SDF text or translating delays to LUTs.
#[derive(Debug, Clone, PartialEq)]
#[non_exhaustive]
pub enum SdfError {
    /// SDF text failed to parse.
    Parse {
        /// 1-based line number.
        line: usize,
        /// Human-readable detail.
        detail: String,
    },
    /// A condition or IOPATH referenced an unknown pin.
    UnknownPin {
        /// The pin name that failed to resolve.
        pin: String,
        /// The cell or instance context.
        context: String,
    },
    /// A condition referenced the switching pin of its own IOPATH, which the
    /// Fig. 4 column encoding cannot represent.
    CondOnSwitchingPin {
        /// The offending pin.
        pin: String,
    },
    /// LUT construction was given inconsistent dimensions.
    BadLut {
        /// Human-readable detail.
        detail: String,
    },
    /// A delay value was negative or out of tick range after scaling.
    BadDelay {
        /// The offending value, post-scale.
        value: f64,
    },
}

impl fmt::Display for SdfError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            SdfError::Parse { line, detail } => {
                write!(f, "sdf parse error on line {line}: {detail}")
            }
            SdfError::UnknownPin { pin, context } => {
                write!(f, "unknown pin `{pin}` in {context}")
            }
            SdfError::CondOnSwitchingPin { pin } => {
                write!(f, "condition references its own switching pin `{pin}`")
            }
            SdfError::BadLut { detail } => write!(f, "invalid delay lut: {detail}"),
            SdfError::BadDelay { value } => {
                write!(f, "delay value {value} is out of range")
            }
        }
    }
}

impl std::error::Error for SdfError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_contains_context() {
        let e = SdfError::UnknownPin {
            pin: "Q".into(),
            context: "cell AOI21".into(),
        };
        assert!(e.to_string().contains("Q"));
        assert!(e.to_string().contains("AOI21"));
    }

    #[test]
    fn error_is_send_sync() {
        fn assert_send_sync<T: Send + Sync>() {}
        assert_send_sync::<SdfError>();
    }
}
