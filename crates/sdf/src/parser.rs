//! Recursive-descent parser for the SDF subset used by gate-level power
//! flows: `DELAYFILE` header fields, `CELL`/`CELLTYPE`/`INSTANCE`,
//! `DELAY (ABSOLUTE ...)` with `IOPATH`, `COND ... IOPATH` and
//! `INTERCONNECT` statements. Unknown forms (timing checks, `PATHPULSE`,
//! `INCREMENT` sections, ...) are skipped structurally.

use crate::model::{Cond, DelayTriple, EdgeSpec, Interconnect, IoPath, PortPath, SdfCell, SdfFile};
use crate::{Result, SdfError};

#[derive(Debug, Clone, PartialEq)]
enum Tok {
    Open,
    Close,
    Atom(String),
    Str(String),
}

fn tokenize(src: &str) -> Result<Vec<(Tok, usize)>> {
    let b = src.as_bytes();
    let mut toks = Vec::new();
    let mut i = 0;
    let mut line = 1usize;
    while i < b.len() {
        match b[i] {
            b'\n' => {
                line += 1;
                i += 1;
            }
            c if c.is_ascii_whitespace() => i += 1,
            b'/' if b.get(i + 1) == Some(&b'/') => {
                while i < b.len() && b[i] != b'\n' {
                    i += 1;
                }
            }
            b'(' => {
                toks.push((Tok::Open, line));
                i += 1;
            }
            b')' => {
                toks.push((Tok::Close, line));
                i += 1;
            }
            b'"' => {
                let start = i + 1;
                i += 1;
                while i < b.len() && b[i] != b'"' {
                    if b[i] == b'\n' {
                        line += 1;
                    }
                    i += 1;
                }
                if i == b.len() {
                    return Err(SdfError::Parse {
                        line,
                        detail: "unterminated string".into(),
                    });
                }
                toks.push((
                    Tok::Str(String::from_utf8_lossy(&b[start..i]).into_owned()),
                    line,
                ));
                i += 1;
            }
            _ => {
                let start = i;
                while i < b.len()
                    && !b[i].is_ascii_whitespace()
                    && b[i] != b'('
                    && b[i] != b')'
                    && b[i] != b'"'
                {
                    i += 1;
                }
                toks.push((
                    Tok::Atom(String::from_utf8_lossy(&b[start..i]).into_owned()),
                    line,
                ));
            }
        }
    }
    Ok(toks)
}

pub(crate) fn parse(src: &str) -> Result<SdfFile> {
    let toks = tokenize(src)?;
    let mut p = Parser { toks, pos: 0 };
    p.delayfile()
}

struct Parser {
    toks: Vec<(Tok, usize)>,
    pos: usize,
}

impl Parser {
    fn line(&self) -> usize {
        self.toks
            .get(self.pos.min(self.toks.len().saturating_sub(1)))
            .map(|(_, l)| *l)
            .unwrap_or(0)
    }

    fn err(&self, detail: impl Into<String>) -> SdfError {
        SdfError::Parse {
            line: self.line(),
            detail: detail.into(),
        }
    }

    fn peek(&self) -> Option<&Tok> {
        self.toks.get(self.pos).map(|(t, _)| t)
    }

    fn peek2(&self) -> Option<&Tok> {
        self.toks.get(self.pos + 1).map(|(t, _)| t)
    }

    fn next(&mut self) -> Option<Tok> {
        let t = self.toks.get(self.pos).map(|(t, _)| t.clone());
        if t.is_some() {
            self.pos += 1;
        }
        t
    }

    fn expect_open(&mut self) -> Result<()> {
        match self.next() {
            Some(Tok::Open) => Ok(()),
            other => Err(self.err(format!("expected `(`, found {other:?}"))),
        }
    }

    fn expect_close(&mut self) -> Result<()> {
        match self.next() {
            Some(Tok::Close) => Ok(()),
            other => Err(self.err(format!("expected `)`, found {other:?}"))),
        }
    }

    fn atom_or_str(&mut self) -> Result<String> {
        match self.next() {
            Some(Tok::Atom(s)) | Some(Tok::Str(s)) => Ok(s),
            other => Err(self.err(format!("expected atom, found {other:?}"))),
        }
    }

    /// Skips a balanced form whose `(` was already consumed.
    fn skip_form(&mut self) -> Result<()> {
        let mut depth = 1;
        while depth > 0 {
            match self.next() {
                Some(Tok::Open) => depth += 1,
                Some(Tok::Close) => depth -= 1,
                Some(_) => {}
                None => return Err(self.err("unexpected end of file")),
            }
        }
        Ok(())
    }

    fn delayfile(&mut self) -> Result<SdfFile> {
        self.expect_open()?;
        let kw = self.atom_or_str()?;
        if !kw.eq_ignore_ascii_case("DELAYFILE") {
            return Err(self.err("expected DELAYFILE"));
        }
        let mut file = SdfFile::new("");
        while self.peek() == Some(&Tok::Open) {
            self.next();
            let kw = self.atom_or_str()?;
            match kw.to_ascii_uppercase().as_str() {
                "DESIGN" => {
                    file.design = self.atom_or_str()?;
                    self.expect_close()?;
                }
                "TIMESCALE" => {
                    file.timescale_ps = self.timescale()?;
                }
                "CELL" => {
                    let (cell, ics) = self.cell()?;
                    if !cell.iopaths.is_empty() {
                        file.cells.push(cell);
                    }
                    file.interconnects.extend(ics);
                }
                _ => self.skip_form()?,
            }
        }
        self.expect_close()?;
        Ok(file)
    }

    /// Parses `(TIMESCALE 1ns)` / `(TIMESCALE 10 ps)`, returning ps/unit.
    fn timescale(&mut self) -> Result<f64> {
        let mut parts = String::new();
        while let Some(Tok::Atom(_)) = self.peek() {
            let Some(Tok::Atom(a)) = self.next() else {
                unreachable!()
            };
            parts.push_str(&a);
        }
        self.expect_close()?;
        let split = parts
            .find(|c: char| c.is_ascii_alphabetic())
            .unwrap_or(parts.len());
        let (num, unit) = parts.split_at(split);
        let num: f64 = if num.is_empty() {
            1.0
        } else {
            num.parse()
                .map_err(|_| self.err(format!("bad timescale number `{num}`")))?
        };
        let mult = match unit.to_ascii_lowercase().as_str() {
            "fs" => 0.001,
            "ps" | "" => 1.0,
            "ns" => 1_000.0,
            "us" => 1_000_000.0,
            other => return Err(self.err(format!("unknown timescale unit `{other}`"))),
        };
        Ok(num * mult)
    }

    fn cell(&mut self) -> Result<(SdfCell, Vec<Interconnect>)> {
        let mut cell = SdfCell::default();
        let mut ics = Vec::new();
        while self.peek() == Some(&Tok::Open) {
            self.next();
            let kw = self.atom_or_str()?;
            match kw.to_ascii_uppercase().as_str() {
                "CELLTYPE" => {
                    cell.celltype = self.atom_or_str()?;
                    self.expect_close()?;
                }
                "INSTANCE" => {
                    if self.peek() == Some(&Tok::Close) {
                        cell.instance = None;
                    } else {
                        let name = self.atom_or_str()?;
                        cell.instance = if name == "*" { None } else { Some(name) };
                    }
                    self.expect_close()?;
                }
                "DELAY" => {
                    self.delay_section(&mut cell, &mut ics)?;
                }
                _ => self.skip_form()?,
            }
        }
        self.expect_close()?;
        Ok((cell, ics))
    }

    fn delay_section(&mut self, cell: &mut SdfCell, ics: &mut Vec<Interconnect>) -> Result<()> {
        while self.peek() == Some(&Tok::Open) {
            self.next();
            let kw = self.atom_or_str()?;
            match kw.to_ascii_uppercase().as_str() {
                "ABSOLUTE" | "INCREMENT" => {
                    // INCREMENT semantics (adding to existing) are not
                    // modelled; treated as ABSOLUTE, which is what power
                    // flows emit.
                    self.stmt_list(cell, ics)?;
                }
                _ => self.skip_form()?,
            }
        }
        self.expect_close()
    }

    fn stmt_list(&mut self, cell: &mut SdfCell, ics: &mut Vec<Interconnect>) -> Result<()> {
        while self.peek() == Some(&Tok::Open) {
            self.next();
            match self.peek() {
                Some(Tok::Atom(a)) if a.eq_ignore_ascii_case("IOPATH") => {
                    self.next();
                    let p = self.iopath(None)?;
                    cell.iopaths.push(p);
                }
                Some(Tok::Atom(a)) if a.eq_ignore_ascii_case("COND") => {
                    self.next();
                    let cond = self.cond_expr()?;
                    // The guarded statement: ( IOPATH ... ).
                    self.expect_open()?;
                    match self.next() {
                        Some(Tok::Atom(a)) if a.eq_ignore_ascii_case("IOPATH") => {}
                        other => {
                            return Err(
                                self.err(format!("expected IOPATH after COND, found {other:?}"))
                            )
                        }
                    }
                    let p = self.iopath(Some(cond))?;
                    cell.iopaths.push(p);
                    self.expect_close()?; // close the COND form
                }
                Some(Tok::Atom(a)) if a.eq_ignore_ascii_case("INTERCONNECT") => {
                    self.next();
                    let from = PortPath::parse(&self.atom_or_str()?);
                    let to = PortPath::parse(&self.atom_or_str()?);
                    let rise = self.triple()?;
                    let fall = if self.peek() == Some(&Tok::Open) {
                        self.triple()?
                    } else {
                        rise
                    };
                    self.expect_close()?;
                    ics.push(Interconnect {
                        from,
                        to,
                        rise,
                        fall,
                    });
                }
                _ => {
                    // Unknown statement: we already consumed `(`.
                    self.skip_form()?;
                }
            }
        }
        self.expect_close()
    }

    /// Parses the body of an IOPATH whose keyword is already consumed; the
    /// closing `)` of the IOPATH is consumed here.
    fn iopath(&mut self, cond: Option<Cond>) -> Result<IoPath> {
        let (edge, input) = if self.peek() == Some(&Tok::Open) {
            self.next();
            let kw = self.atom_or_str()?;
            let edge = match kw.to_ascii_lowercase().as_str() {
                "posedge" => EdgeSpec::Posedge,
                "negedge" => EdgeSpec::Negedge,
                other => return Err(self.err(format!("expected pos/negedge, found `{other}`"))),
            };
            let pin = self.atom_or_str()?;
            self.expect_close()?;
            (edge, pin)
        } else {
            (EdgeSpec::Both, self.atom_or_str()?)
        };
        let output = self.atom_or_str()?;
        let rise = self.triple()?;
        let fall = if self.peek() == Some(&Tok::Open) {
            self.triple()?
        } else {
            rise
        };
        self.expect_close()?;
        Ok(IoPath {
            cond,
            edge,
            input,
            output,
            rise,
            fall,
        })
    }

    /// Parses a delay triple form: `()`, `(v)`, `(min:typ:max)`.
    fn triple(&mut self) -> Result<DelayTriple> {
        self.expect_open()?;
        let mut text = String::new();
        loop {
            match self.peek() {
                Some(Tok::Close) => {
                    self.next();
                    break;
                }
                Some(Tok::Atom(_)) => {
                    let Some(Tok::Atom(a)) = self.next() else {
                        unreachable!()
                    };
                    text.push_str(&a);
                }
                other => return Err(self.err(format!("bad delay triple, found {other:?}"))),
            }
        }
        if text.is_empty() {
            return Ok(DelayTriple::absent());
        }
        let parts: Vec<&str> = text.split(':').collect();
        let parse_part = |s: &str| -> Result<Option<f64>> {
            if s.is_empty() {
                Ok(None)
            } else {
                s.parse::<f64>()
                    .map(Some)
                    .map_err(|_| self.err(format!("bad delay value `{s}`")))
            }
        };
        match parts.as_slice() {
            [v] => {
                let v = parse_part(v)?;
                Ok(DelayTriple {
                    min: v,
                    typ: v,
                    max: v,
                })
            }
            [mn, ty, mx] => Ok(DelayTriple {
                min: parse_part(mn)?,
                typ: parse_part(ty)?,
                max: parse_part(mx)?,
            }),
            _ => Err(self.err(format!("bad delay triple `{text}`"))),
        }
    }

    /// Parses a COND guard expression up to (but not consuming) the `(` that
    /// begins the guarded IOPATH. Accepts `pin===1'b1`, `pin==1'b0`, bare
    /// `pin`, `!pin`, joined with `&&`, with optional parenthesised groups.
    fn cond_expr(&mut self) -> Result<Cond> {
        let mut text = String::new();
        loop {
            match self.peek() {
                Some(Tok::Open) => {
                    // Either a parenthesised condition group or the start of
                    // the guarded IOPATH.
                    if let Some(Tok::Atom(a)) = self.peek2() {
                        if a.eq_ignore_ascii_case("IOPATH") {
                            break;
                        }
                    }
                    // Condition group: consume balanced tokens into text.
                    self.next();
                    let mut depth = 1;
                    while depth > 0 {
                        match self.next() {
                            Some(Tok::Open) => depth += 1,
                            Some(Tok::Close) => depth -= 1,
                            Some(Tok::Atom(a)) => {
                                text.push_str(&a);
                                text.push(' ');
                            }
                            Some(Tok::Str(s)) => {
                                text.push_str(&s);
                                text.push(' ');
                            }
                            None => return Err(self.err("unterminated COND group")),
                        }
                    }
                    text.push(' ');
                }
                Some(Tok::Atom(_)) => {
                    let Some(Tok::Atom(a)) = self.next() else {
                        unreachable!()
                    };
                    text.push_str(&a);
                    text.push(' ');
                }
                other => return Err(self.err(format!("bad COND expression, found {other:?}"))),
            }
        }
        parse_cond_text(&text).ok_or_else(|| self.err(format!("bad COND expression `{text}`")))
    }
}

/// Parses a condition string like `A2===1'b1&&A1===1'b0` or `!EN && D`.
fn parse_cond_text(text: &str) -> Option<Cond> {
    let mut terms = Vec::new();
    // Normalise spacing around operators so splitting on && is reliable.
    let cleaned = text.replace(' ', "");
    if cleaned.is_empty() {
        return None;
    }
    for raw in cleaned.split("&&") {
        let t = raw.trim();
        if t.is_empty() {
            return None;
        }
        if let Some(eq) = t
            .find("===")
            .map(|i| (i, 3))
            .or_else(|| t.find("==").map(|i| (i, 2)))
        {
            let (pin, rest) = t.split_at(eq.0);
            let val = &rest[eq.1..];
            let v = match val {
                "1'b1" | "1'B1" | "1" => true,
                "1'b0" | "1'B0" | "0" => false,
                _ => return None,
            };
            if pin.is_empty() {
                return None;
            }
            terms.push((pin.to_string(), v));
        } else if let Some(pin) = t.strip_prefix('!') {
            if pin.is_empty() {
                return None;
            }
            terms.push((pin.to_string(), false));
        } else {
            terms.push((t.to_string(), true));
        }
    }
    Some(Cond::new(terms))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::model::TripleSelect;

    const PAPER_EXAMPLE: &str = r#"
(DELAYFILE
  (SDFVERSION "3.0")
  (DESIGN "example")
  (TIMESCALE 1ps)
  (CELL
    (CELLTYPE "AOI21")
    (INSTANCE u1)
    (DELAY
      (ABSOLUTE
        (IOPATH (posedge B) Y () (6))
        (IOPATH (negedge B) Y (8) ())
        (COND A2===1'b1&&A1===1'b0 (IOPATH (posedge B) Y () (5)))
        (COND A2===1'b1&&A1===1'b0 (IOPATH (negedge B) Y (7) ()))
      )
    )
  )
)
"#;

    #[test]
    fn parses_paper_fig4_example() {
        let f = SdfFile::parse(PAPER_EXAMPLE).unwrap();
        assert_eq!(f.design, "example");
        assert_eq!(f.cells.len(), 1);
        let c = &f.cells[0];
        assert_eq!(c.celltype, "AOI21");
        assert_eq!(c.instance.as_deref(), Some("u1"));
        assert_eq!(c.iopaths.len(), 4);

        let p0 = &c.iopaths[0];
        assert_eq!(p0.edge, EdgeSpec::Posedge);
        assert!(p0.cond.is_none());
        assert!(p0.rise.is_absent());
        assert_eq!(p0.fall.select(TripleSelect::Typ), Some(6.0));

        let p2 = &c.iopaths[2];
        let cond = p2.cond.as_ref().unwrap();
        assert_eq!(
            cond.terms,
            vec![("A2".to_string(), true), ("A1".to_string(), false)]
        );
        assert_eq!(p2.fall.select(TripleSelect::Typ), Some(5.0));
    }

    #[test]
    fn parses_interconnect() {
        let src = r#"
(DELAYFILE
  (TIMESCALE 1ns)
  (CELL (CELLTYPE "__wire__") (INSTANCE *)
    (DELAY (ABSOLUTE
      (INTERCONNECT u1/Y u2/A (0.1) (0.2))
      (INTERCONNECT top_in u3/B (0.3))
    ))
  )
)
"#;
        let f = SdfFile::parse(src).unwrap();
        assert_eq!(f.timescale_ps, 1000.0);
        assert_eq!(f.interconnects.len(), 2);
        let ic = &f.interconnects[0];
        assert_eq!(ic.from.instance.as_deref(), Some("u1"));
        assert_eq!(ic.to.pin, "A");
        assert_eq!(ic.fall.select(TripleSelect::Typ), Some(0.2));
        // Single triple applies to both edges.
        let ic2 = &f.interconnects[1];
        assert_eq!(ic2.rise, ic2.fall);
        assert!(ic2.from.instance.is_none());
    }

    #[test]
    fn parses_min_typ_max() {
        let src = r#"
(DELAYFILE (CELL (CELLTYPE "INV") (INSTANCE u)
  (DELAY (ABSOLUTE (IOPATH A Y (1:2:3) (2:3:4))))))
"#;
        let f = SdfFile::parse(src).unwrap();
        let p = &f.cells[0].iopaths[0];
        assert_eq!(p.rise.select(TripleSelect::Min), Some(1.0));
        assert_eq!(p.rise.select(TripleSelect::Typ), Some(2.0));
        assert_eq!(p.fall.select(TripleSelect::Max), Some(4.0));
        assert_eq!(p.edge, EdgeSpec::Both);
    }

    #[test]
    fn single_triple_applies_to_both_transitions() {
        let src = r#"(DELAYFILE (CELL (CELLTYPE "BUF") (INSTANCE u)
  (DELAY (ABSOLUTE (IOPATH A Y (5))))))"#;
        let f = SdfFile::parse(src).unwrap();
        let p = &f.cells[0].iopaths[0];
        assert_eq!(p.rise, p.fall);
        assert_eq!(p.rise.select(TripleSelect::Typ), Some(5.0));
    }

    #[test]
    fn skips_unknown_sections() {
        let src = r#"
(DELAYFILE
  (VENDOR "acme") (PROGRAM "syn") (VERSION "1") (DIVIDER /)
  (VOLTAGE 0.8) (PROCESS "tt") (TEMPERATURE 25)
  (CELL (CELLTYPE "INV") (INSTANCE u)
    (TIMINGCHECK (SETUP d (posedge c) (1)))
    (DELAY (ABSOLUTE (IOPATH A Y (1) (1))))
  )
)
"#;
        let f = SdfFile::parse(src).unwrap();
        assert_eq!(f.cells.len(), 1);
        assert_eq!(f.cells[0].iopaths.len(), 1);
    }

    #[test]
    fn cond_with_spaces_and_parens() {
        let src = r#"(DELAYFILE (CELL (CELLTYPE "X") (INSTANCE u)
  (DELAY (ABSOLUTE
    (COND (A == 1'b1) && !B (IOPATH C Y (2) (2)))
  ))))"#;
        let f = SdfFile::parse(src).unwrap();
        let cond = f.cells[0].iopaths[0].cond.as_ref().unwrap();
        assert_eq!(
            cond.terms,
            vec![("A".to_string(), true), ("B".to_string(), false)]
        );
    }

    #[test]
    fn bare_pin_condition() {
        let src = r#"(DELAYFILE (CELL (CELLTYPE "X") (INSTANCE u)
  (DELAY (ABSOLUTE (COND EN (IOPATH D Y (1) (1))))))
)"#;
        let f = SdfFile::parse(src).unwrap();
        let cond = f.cells[0].iopaths[0].cond.as_ref().unwrap();
        assert_eq!(cond.terms, vec![("EN".to_string(), true)]);
    }

    #[test]
    fn roundtrip_write_parse() {
        let f1 = SdfFile::parse(PAPER_EXAMPLE).unwrap();
        let text = f1.write();
        let f2 = SdfFile::parse(&text).unwrap();
        assert_eq!(f1.cells, f2.cells);
        assert_eq!(f1.design, f2.design);
    }

    #[test]
    fn error_on_garbage() {
        assert!(SdfFile::parse("(NOTSDF)").is_err());
        assert!(
            SdfFile::parse("(DELAYFILE (CELL (CELLTYPE \"X\") (DELAY (ABSOLUTE (IOPATH A").is_err()
        );
    }

    #[test]
    fn timescale_variants() {
        for (text, ps) in [
            ("(DELAYFILE (TIMESCALE 1ns))", 1000.0),
            ("(DELAYFILE (TIMESCALE 10 ps))", 10.0),
            ("(DELAYFILE (TIMESCALE 100fs))", 0.1),
        ] {
            let f = SdfFile::parse(text).unwrap();
            assert_eq!(f.timescale_ps, ps, "for {text}");
        }
    }
}
