use std::fmt;
use std::fmt::Write as _;

/// Which value of an SDF `min:typ:max` triple simulations should use.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum TripleSelect {
    /// Minimum corner.
    Min,
    /// Typical corner (default).
    #[default]
    Typ,
    /// Maximum corner.
    Max,
}

/// An SDF delay triple `(min:typ:max)`, `(v)`, or the empty `()`.
///
/// The empty form means "no arc for this transition" — the `∞` entries of
/// Fig. 4.
#[derive(Debug, Clone, Copy, PartialEq, Default)]
pub struct DelayTriple {
    /// Minimum value, if given.
    pub min: Option<f64>,
    /// Typical value, if given.
    pub typ: Option<f64>,
    /// Maximum value, if given.
    pub max: Option<f64>,
}

impl DelayTriple {
    /// A single-valued triple `(v)`.
    pub fn single(v: f64) -> Self {
        DelayTriple {
            min: Some(v),
            typ: Some(v),
            max: Some(v),
        }
    }

    /// The empty `()` — no arc.
    pub fn absent() -> Self {
        DelayTriple::default()
    }

    /// Whether this is the empty `()` form.
    pub fn is_absent(&self) -> bool {
        self.min.is_none() && self.typ.is_none() && self.max.is_none()
    }

    /// Selects a corner, falling back to whichever values are present.
    pub fn select(&self, sel: TripleSelect) -> Option<f64> {
        match sel {
            TripleSelect::Min => self.min.or(self.typ).or(self.max),
            TripleSelect::Typ => self.typ.or(self.min).or(self.max),
            TripleSelect::Max => self.max.or(self.typ).or(self.min),
        }
    }
}

impl fmt::Display for DelayTriple {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match (self.min, self.typ, self.max) {
            (None, None, None) => write!(f, "()"),
            (Some(a), Some(b), Some(c)) if a == b && b == c => write!(f, "({a})"),
            _ => {
                let p = |v: Option<f64>| v.map(|x| x.to_string()).unwrap_or_default();
                write!(f, "({}:{}:{})", p(self.min), p(self.typ), p(self.max))
            }
        }
    }
}

/// Edge qualifier on an IOPATH input: `(posedge B)`, `(negedge B)`, or bare.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum EdgeSpec {
    /// Applies to both edges (bare pin reference).
    #[default]
    Both,
    /// Rising input transitions only.
    Posedge,
    /// Falling input transitions only.
    Negedge,
}

/// A conjunction of pin-level equality terms, e.g. `A2===1'b1&&A1===1'b0`.
#[derive(Debug, Clone, PartialEq, Eq, Default)]
pub struct Cond {
    /// `(pin, required value)` pairs, all of which must hold.
    pub terms: Vec<(String, bool)>,
}

impl Cond {
    /// Builds a condition from terms.
    pub fn new(terms: Vec<(String, bool)>) -> Self {
        Cond { terms }
    }

    /// Whether the condition holds for an assignment function.
    pub fn matches(&self, assign: &impl Fn(&str) -> bool) -> bool {
        self.terms.iter().all(|(pin, v)| assign(pin) == *v)
    }
}

impl fmt::Display for Cond {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        for (i, (pin, v)) in self.terms.iter().enumerate() {
            if i > 0 {
                write!(f, "&&")?;
            }
            write!(f, "{pin}===1'b{}", u8::from(*v))?;
        }
        Ok(())
    }
}

/// One `(IOPATH ...)` statement, optionally conditioned and edge-qualified.
#[derive(Debug, Clone, PartialEq)]
pub struct IoPath {
    /// `COND` guard, if any.
    pub cond: Option<Cond>,
    /// Edge qualifier on the input pin.
    pub edge: EdgeSpec,
    /// Input pin name.
    pub input: String,
    /// Output pin name.
    pub output: String,
    /// Delay when the output rises.
    pub rise: DelayTriple,
    /// Delay when the output falls.
    pub fall: DelayTriple,
}

/// A `(CELL ...)` entry: delays for one instance (or all instances of a
/// cell type when `instance` is `None`).
#[derive(Debug, Clone, PartialEq, Default)]
pub struct SdfCell {
    /// `CELLTYPE` string.
    pub celltype: String,
    /// `INSTANCE` path; `None` or `"*"` applies to every instance of the
    /// cell type.
    pub instance: Option<String>,
    /// IOPATH delay statements.
    pub iopaths: Vec<IoPath>,
}

/// A hierarchical port path `instance/PIN` (or a bare top-level port name).
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub struct PortPath {
    /// Instance name, if the port is on an instance.
    pub instance: Option<String>,
    /// Pin/port name.
    pub pin: String,
}

impl PortPath {
    /// Parses `u1/Y` or `portname`.
    pub fn parse(s: &str) -> Self {
        match s.rsplit_once('/') {
            Some((inst, pin)) => PortPath {
                instance: Some(inst.to_string()),
                pin: pin.to_string(),
            },
            None => PortPath {
                instance: None,
                pin: s.to_string(),
            },
        }
    }
}

impl fmt::Display for PortPath {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match &self.instance {
            Some(i) => write!(f, "{i}/{}", self.pin),
            None => write!(f, "{}", self.pin),
        }
    }
}

/// One `(INTERCONNECT src dst (rise) (fall))` wire-delay statement.
#[derive(Debug, Clone, PartialEq)]
pub struct Interconnect {
    /// Driving port (gate output or top-level input).
    pub from: PortPath,
    /// Receiving port (gate input or top-level output).
    pub to: PortPath,
    /// Rise delay of the wire.
    pub rise: DelayTriple,
    /// Fall delay of the wire.
    pub fall: DelayTriple,
}

/// A parsed SDF delay file.
#[derive(Debug, Clone, PartialEq, Default)]
pub struct SdfFile {
    /// `DESIGN` header string.
    pub design: String,
    /// `TIMESCALE` in picoseconds per SDF unit (e.g. `1ns` ⇒ 1000).
    pub timescale_ps: f64,
    /// Per-cell delay entries.
    pub cells: Vec<SdfCell>,
    /// Interconnect (wire) delays.
    pub interconnects: Vec<Interconnect>,
}

impl SdfFile {
    /// Creates an empty file with a 1ps timescale.
    pub fn new(design: impl Into<String>) -> Self {
        SdfFile {
            design: design.into(),
            timescale_ps: 1.0,
            cells: Vec::new(),
            interconnects: Vec::new(),
        }
    }

    /// Parses SDF text. See [`crate::SdfError::Parse`] for failure modes.
    ///
    /// # Errors
    ///
    /// Returns a parse error with line information on malformed input.
    pub fn parse(src: &str) -> crate::Result<Self> {
        crate::parser::parse(src)
    }

    /// Serialises back to SDF text (a canonical subset that [`SdfFile::parse`]
    /// round-trips).
    pub fn write(&self) -> String {
        let mut out = String::new();
        let _ = writeln!(out, "(DELAYFILE");
        let _ = writeln!(out, "  (SDFVERSION \"3.0\")");
        let _ = writeln!(out, "  (DESIGN \"{}\")", self.design);
        let _ = writeln!(out, "  (TIMESCALE {}ps)", self.timescale_ps);
        for ic in &self.interconnects {
            let _ = writeln!(out, "  (CELL");
            let _ = writeln!(out, "    (CELLTYPE \"__wire__\")");
            let _ = writeln!(out, "    (INSTANCE *)");
            let _ = writeln!(out, "    (DELAY (ABSOLUTE");
            let _ = writeln!(
                out,
                "      (INTERCONNECT {} {} {} {})",
                ic.from, ic.to, ic.rise, ic.fall
            );
            let _ = writeln!(out, "    ))");
            let _ = writeln!(out, "  )");
        }
        for cell in &self.cells {
            let _ = writeln!(out, "  (CELL");
            let _ = writeln!(out, "    (CELLTYPE \"{}\")", cell.celltype);
            match &cell.instance {
                Some(i) => {
                    let _ = writeln!(out, "    (INSTANCE {i})");
                }
                None => {
                    let _ = writeln!(out, "    (INSTANCE *)");
                }
            }
            let _ = writeln!(out, "    (DELAY (ABSOLUTE");
            for p in &cell.iopaths {
                let inner = {
                    let pin = match p.edge {
                        EdgeSpec::Both => p.input.clone(),
                        EdgeSpec::Posedge => format!("(posedge {})", p.input),
                        EdgeSpec::Negedge => format!("(negedge {})", p.input),
                    };
                    format!("(IOPATH {pin} {} {} {})", p.output, p.rise, p.fall)
                };
                match &p.cond {
                    Some(c) => {
                        let _ = writeln!(out, "      (COND {c} {inner})");
                    }
                    None => {
                        let _ = writeln!(out, "      {inner}");
                    }
                }
            }
            let _ = writeln!(out, "    ))");
            let _ = writeln!(out, "  )");
        }
        let _ = writeln!(out, ")");
        out
    }

    /// All IOPATHs applying to instance `inst` of cell type `celltype`:
    /// instance-specific entries plus wildcard entries for the type.
    pub fn iopaths_for<'a>(
        &'a self,
        celltype: &'a str,
        inst: &'a str,
    ) -> impl Iterator<Item = &'a IoPath> + 'a {
        self.cells
            .iter()
            .filter(move |c| {
                let inst_match = match &c.instance {
                    None => true,
                    Some(s) => s == "*" || s == inst,
                };
                inst_match && (c.celltype == celltype || c.celltype == "*")
            })
            .flat_map(|c| c.iopaths.iter())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn triple_selection() {
        let t = DelayTriple {
            min: Some(1.0),
            typ: Some(2.0),
            max: Some(3.0),
        };
        assert_eq!(t.select(TripleSelect::Min), Some(1.0));
        assert_eq!(t.select(TripleSelect::Typ), Some(2.0));
        assert_eq!(t.select(TripleSelect::Max), Some(3.0));
        let partial = DelayTriple {
            min: None,
            typ: None,
            max: Some(5.0),
        };
        assert_eq!(partial.select(TripleSelect::Typ), Some(5.0));
        assert!(DelayTriple::absent().select(TripleSelect::Typ).is_none());
    }

    #[test]
    fn triple_display() {
        assert_eq!(DelayTriple::single(6.0).to_string(), "(6)");
        assert_eq!(DelayTriple::absent().to_string(), "()");
        let t = DelayTriple {
            min: Some(1.0),
            typ: Some(2.0),
            max: Some(3.0),
        };
        assert_eq!(t.to_string(), "(1:2:3)");
    }

    #[test]
    fn cond_matching() {
        let c = Cond::new(vec![("A2".into(), true), ("A1".into(), false)]);
        assert!(c.matches(&|p| p == "A2"));
        assert!(!c.matches(&|_| true));
        assert_eq!(c.to_string(), "A2===1'b1&&A1===1'b0");
    }

    #[test]
    fn port_path_parse() {
        let p = PortPath::parse("u1/Y");
        assert_eq!(p.instance.as_deref(), Some("u1"));
        assert_eq!(p.pin, "Y");
        let q = PortPath::parse("clk");
        assert!(q.instance.is_none());
        // Hierarchical instance paths keep everything before the last slash.
        let h = PortPath::parse("top/u2/A");
        assert_eq!(h.instance.as_deref(), Some("top/u2"));
    }

    #[test]
    fn iopaths_for_wildcards() {
        let mut f = SdfFile::new("d");
        f.cells.push(SdfCell {
            celltype: "NAND2".into(),
            instance: None,
            iopaths: vec![IoPath {
                cond: None,
                edge: EdgeSpec::Both,
                input: "A".into(),
                output: "Y".into(),
                rise: DelayTriple::single(1.0),
                fall: DelayTriple::single(2.0),
            }],
        });
        f.cells.push(SdfCell {
            celltype: "NAND2".into(),
            instance: Some("u7".into()),
            iopaths: vec![IoPath {
                cond: None,
                edge: EdgeSpec::Both,
                input: "B".into(),
                output: "Y".into(),
                rise: DelayTriple::single(9.0),
                fall: DelayTriple::single(9.0),
            }],
        });
        assert_eq!(f.iopaths_for("NAND2", "u1").count(), 1);
        assert_eq!(f.iopaths_for("NAND2", "u7").count(), 2);
        assert_eq!(f.iopaths_for("INV", "u1").count(), 0);
    }
}
