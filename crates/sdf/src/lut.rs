//! Translation of SDF IOPATH statements into the uniform 2-D delay lookup
//! tables of the paper's Fig. 4 ("SDF to LUT Array Translator").
//!
//! For every (gate, input pin) pair the simulator holds a `[4 × 2^(n-1)]`
//! array (`n` = number of gate inputs):
//!
//! * **row** = `2 * input_edge + output_edge`, with `posedge = 0`,
//!   `negedge = 1`, output `rise = 0`, `fall = 1`;
//! * **column** = Σ of the *reduced weights* of the non-switching pins at
//!   logic 1, where the pin at position `j` has reduced weight `2^j` if
//!   `j <` the switching pin's position, else `2^(j-1)` (i.e. the switching
//!   pin's bit is squeezed out of the full truth-table index);
//! * unspecified arcs hold [`NO_ARC`] — the `∞` entries in Fig. 4.
//!
//! Unconditional IOPATHs fill every column; `COND`-guarded IOPATHs then
//! overwrite exactly the columns their condition selects, which reproduces
//! the Fig. 4 example (default 8/6 everywhere, conditional 7/5 in the
//! matching column).

use crate::model::{EdgeSpec, IoPath, TripleSelect};
use crate::{Result, SdfError};

/// Sentinel for "no arc specified for this transition" (`∞` in Fig. 4).
pub const NO_ARC: i32 = i32::MAX;

/// Removes the switching pin's bit from a full truth-table index, yielding
/// the delay-LUT column index over the remaining pins.
///
/// # Example
///
/// ```
/// use gatspi_sdf::reduced_column_index;
///
/// // 3-pin gate, full index 0b110 (pins 1 and 2 high), switching pin 2:
/// // remaining pins are {0, 1} with pin 1 high -> column 0b10 = 2.
/// assert_eq!(reduced_column_index(0b110, 2), 2);
/// // Switching pin 1: remaining pins {0, 2}, pin 2 high -> column 0b10 = 2.
/// assert_eq!(reduced_column_index(0b110, 1), 2);
/// ```
#[inline]
pub fn reduced_column_index(full_index: u32, pin: usize) -> u32 {
    let low_mask = (1u32 << pin) - 1;
    ((full_index >> (pin + 1)) << pin) | (full_index & low_mask)
}

/// The Fig. 4 conditional-delay lookup table for one (gate, input pin) arc
/// set.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct DelayLut {
    n_inputs: usize,
    pin: usize,
    /// `4 * 2^(n-1)` entries, row-major.
    data: Vec<i32>,
}

impl DelayLut {
    /// Number of columns (`2^(n-1)`, minimum 1).
    pub fn ncols(&self) -> usize {
        self.data.len() / 4
    }

    /// The pin (position) this LUT describes arcs for.
    pub fn pin(&self) -> usize {
        self.pin
    }

    /// Raw row-major data, `4 * ncols` entries.
    pub fn data(&self) -> &[i32] {
        &self.data
    }

    /// Looks up the arc delay for a transition.
    ///
    /// * `input_rising`: the switching pin's new value is 1 (posedge).
    /// * `output_rising`: the gate output's new value is 1 (rise).
    /// * `col`: reduced column index of the non-switching pins (see
    ///   [`reduced_column_index`]).
    ///
    /// Returns [`NO_ARC`] when the transition has no specified arc.
    ///
    /// # Panics
    ///
    /// Panics if `col >= self.ncols()`.
    #[inline]
    pub fn lookup(&self, input_rising: bool, output_rising: bool, col: u32) -> i32 {
        let row = 2 * usize::from(!input_rising) + usize::from(!output_rising);
        self.data[row * self.ncols() + col as usize]
    }

    /// Largest specified delay in the table, or `None` if no arcs are
    /// specified. Used as a conservative fallback for transitions that have
    /// no arc (e.g. multi-input switching resolving to a direction SDF never
    /// annotated).
    pub fn max_delay(&self) -> Option<i32> {
        self.data.iter().copied().filter(|&d| d != NO_ARC).max()
    }

    /// Collapses the table to `(rise, fall)` averages across all specified
    /// arcs — the "partial SDF" 2-element-array mode of the paper's Table 7
    /// ablation.
    pub fn rise_fall_average(&self) -> (i32, i32) {
        let ncols = self.ncols();
        let mut avg = [NO_ARC, NO_ARC];
        for (out_edge, slot) in avg.iter_mut().enumerate() {
            let mut sum = 0i64;
            let mut n = 0i64;
            for in_edge in 0..2 {
                let row = 2 * in_edge + out_edge;
                for c in 0..ncols {
                    let d = self.data[row * ncols + c];
                    if d != NO_ARC {
                        sum += i64::from(d);
                        n += 1;
                    }
                }
            }
            if n > 0 {
                *slot = (sum / n) as i32;
            }
        }
        (avg[0], avg[1])
    }
}

/// Builds the [`DelayLut`] for one (gate, input pin) pair from the IOPATHs
/// that target that pin.
///
/// * `pin_names` — all input pin names of the cell, in pin order.
/// * `pin` — position of the switching pin the LUT is for.
/// * `iopaths` — IOPATH statements whose `input` equals `pin_names[pin]`
///   (others are ignored, so passing a cell's full list is fine).
/// * `select` — which `min:typ:max` corner to use.
/// * `scale` — multiplier converting SDF units to integer ticks (e.g. the
///   file's `timescale_ps` when simulating in picoseconds).
///
/// # Errors
///
/// * [`SdfError::UnknownPin`] if a condition references a pin not in
///   `pin_names`.
/// * [`SdfError::CondOnSwitchingPin`] if a condition references the
///   switching pin itself (the Fig. 4 column encoding has no slot for it).
/// * [`SdfError::BadDelay`] if a scaled delay is negative or overflows.
/// * [`SdfError::BadLut`] if `pin` is out of range.
pub fn build_delay_lut(
    pin_names: &[String],
    pin: usize,
    iopaths: &[IoPath],
    select: TripleSelect,
    scale: f64,
) -> Result<DelayLut> {
    let n = pin_names.len();
    if pin >= n {
        return Err(SdfError::BadLut {
            detail: format!("pin {pin} out of range for {n} inputs"),
        });
    }
    let ncols = 1usize << (n - 1);
    let mut data = vec![NO_ARC; 4 * ncols];

    let to_ticks = |v: f64| -> Result<i32> {
        let t = (v * scale).round();
        if !(0.0..(NO_ARC as f64)).contains(&t) {
            return Err(SdfError::BadDelay { value: t });
        }
        Ok(t as i32)
    };

    // Stable two-phase application: unconditional defaults first, then
    // conditional refinements (file order within each phase).
    let relevant = |p: &&IoPath| p.input == pin_names[pin];
    let phases: [Vec<&IoPath>; 2] = [
        iopaths
            .iter()
            .filter(relevant)
            .filter(|p| p.cond.is_none())
            .collect(),
        iopaths
            .iter()
            .filter(relevant)
            .filter(|p| p.cond.is_some())
            .collect(),
    ];

    for phase in &phases {
        for path in phase {
            let rows: &[usize] = match path.edge {
                EdgeSpec::Posedge => &[0, 1],
                EdgeSpec::Negedge => &[2, 3],
                EdgeSpec::Both => &[0, 1, 2, 3],
            };
            // Determine matching columns.
            let mut cols: Vec<u32> = Vec::new();
            match &path.cond {
                None => cols.extend(0..ncols as u32),
                Some(cond) => {
                    // Map condition pins to reduced weights.
                    let mut masks = Vec::with_capacity(cond.terms.len());
                    for (term_pin, val) in &cond.terms {
                        let j = pin_names
                            .iter()
                            .position(|p| p == term_pin)
                            .ok_or_else(|| SdfError::UnknownPin {
                                pin: term_pin.clone(),
                                context: format!("COND on pin `{}`", pin_names[pin]),
                            })?;
                        if j == pin {
                            return Err(SdfError::CondOnSwitchingPin {
                                pin: term_pin.clone(),
                            });
                        }
                        let reduced = if j < pin { j } else { j - 1 };
                        masks.push((1u32 << reduced, *val));
                    }
                    'col: for c in 0..ncols as u32 {
                        for &(mask, val) in &masks {
                            if ((c & mask) != 0) != val {
                                continue 'col;
                            }
                        }
                        cols.push(c);
                    }
                }
            }
            for &row in rows {
                let out_rise = row % 2 == 0;
                let triple = if out_rise { &path.rise } else { &path.fall };
                let Some(v) = triple.select(select) else {
                    continue; // `()` — leave NO_ARC / earlier value.
                };
                let ticks = to_ticks(v)?;
                for &c in &cols {
                    data[row * ncols + c as usize] = ticks;
                }
            }
        }
    }

    Ok(DelayLut {
        n_inputs: n,
        pin,
        data,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::model::SdfFile;

    fn pins(names: &[&str]) -> Vec<String> {
        names.iter().map(|s| s.to_string()).collect()
    }

    /// The paper's Fig. 4 AOI21 example, end to end from SDF text.
    #[test]
    fn fig4_aoi21_lut() {
        let src = r#"
(DELAYFILE
  (CELL
    (CELLTYPE "AOI21")
    (INSTANCE u1)
    (DELAY
      (ABSOLUTE
        (IOPATH (posedge B) Y () (6))
        (IOPATH (negedge B) Y (8) ())
        (COND A2===1'b1&&A1===1'b0 (IOPATH (posedge B) Y () (5)))
        (COND A2===1'b1&&A1===1'b0 (IOPATH (negedge B) Y (7) ()))
      )
    )
  )
)
"#;
        let f = SdfFile::parse(src).unwrap();
        // Cell pin order (A1, A2, B): B is pin 2.
        let names = pins(&["A1", "A2", "B"]);
        let lut = build_delay_lut(&names, 2, &f.cells[0].iopaths, TripleSelect::Typ, 1.0).unwrap();
        assert_eq!(lut.ncols(), 4);

        // Condition A1=0, A2=1: reduced weights A1->1, A2->2 => column 2.
        let cond_col = 2u32;

        for col in 0..4 {
            // posedge B -> Y rise: never specified.
            assert_eq!(lut.lookup(true, true, col), NO_ARC);
            // negedge B -> Y fall: never specified.
            assert_eq!(lut.lookup(false, false, col), NO_ARC);
            // posedge B -> Y fall: 6 default, 5 under the condition.
            let expect_fall = if col == cond_col { 5 } else { 6 };
            assert_eq!(lut.lookup(true, false, col), expect_fall, "col {col}");
            // negedge B -> Y rise: 8 default, 7 under the condition.
            let expect_rise = if col == cond_col { 7 } else { 8 };
            assert_eq!(lut.lookup(false, true, col), expect_rise, "col {col}");
        }
    }

    #[test]
    fn reduced_index_squeezes_bit() {
        assert_eq!(reduced_column_index(0b000, 0), 0);
        assert_eq!(reduced_column_index(0b001, 0), 0); // own bit removed
        assert_eq!(reduced_column_index(0b110, 0), 0b11);
        assert_eq!(reduced_column_index(0b101, 1), 0b11);
        assert_eq!(reduced_column_index(0b011, 2), 0b11);
        assert_eq!(reduced_column_index(0b100, 2), 0);
    }

    #[test]
    fn single_input_cell() {
        let src = r#"(DELAYFILE (CELL (CELLTYPE "INV") (INSTANCE u)
  (DELAY (ABSOLUTE (IOPATH A Y (3) (4))))))"#;
        let f = SdfFile::parse(src).unwrap();
        let lut = build_delay_lut(
            &pins(&["A"]),
            0,
            &f.cells[0].iopaths,
            TripleSelect::Typ,
            1.0,
        )
        .unwrap();
        assert_eq!(lut.ncols(), 1);
        // Both edges: rise 3, fall 4.
        assert_eq!(lut.lookup(true, true, 0), 3);
        assert_eq!(lut.lookup(false, true, 0), 3);
        assert_eq!(lut.lookup(true, false, 0), 4);
        assert_eq!(lut.lookup(false, false, 0), 4);
    }

    #[test]
    fn scaling_to_ticks() {
        let src = r#"(DELAYFILE (CELL (CELLTYPE "INV") (INSTANCE u)
  (DELAY (ABSOLUTE (IOPATH A Y (0.25) (0.5))))))"#;
        let f = SdfFile::parse(src).unwrap();
        let lut = build_delay_lut(
            &pins(&["A"]),
            0,
            &f.cells[0].iopaths,
            TripleSelect::Typ,
            1000.0,
        )
        .unwrap();
        assert_eq!(lut.lookup(true, true, 0), 250);
        assert_eq!(lut.lookup(true, false, 0), 500);
    }

    #[test]
    fn negative_delay_rejected() {
        let src = r#"(DELAYFILE (CELL (CELLTYPE "INV") (INSTANCE u)
  (DELAY (ABSOLUTE (IOPATH A Y (-1) (1))))))"#;
        let f = SdfFile::parse(src).unwrap();
        let err = build_delay_lut(
            &pins(&["A"]),
            0,
            &f.cells[0].iopaths,
            TripleSelect::Typ,
            1.0,
        );
        assert!(matches!(err, Err(SdfError::BadDelay { .. })));
    }

    #[test]
    fn cond_on_unknown_pin_rejected() {
        let src = r#"(DELAYFILE (CELL (CELLTYPE "X") (INSTANCE u)
  (DELAY (ABSOLUTE (COND Q===1'b1 (IOPATH A Y (1) (1)))))))"#;
        let f = SdfFile::parse(src).unwrap();
        let err = build_delay_lut(
            &pins(&["A", "B"]),
            0,
            &f.cells[0].iopaths,
            TripleSelect::Typ,
            1.0,
        );
        assert!(matches!(err, Err(SdfError::UnknownPin { .. })));
    }

    #[test]
    fn cond_on_switching_pin_rejected() {
        let src = r#"(DELAYFILE (CELL (CELLTYPE "X") (INSTANCE u)
  (DELAY (ABSOLUTE (COND A===1'b1 (IOPATH A Y (1) (1)))))))"#;
        let f = SdfFile::parse(src).unwrap();
        let err = build_delay_lut(
            &pins(&["A", "B"]),
            0,
            &f.cells[0].iopaths,
            TripleSelect::Typ,
            1.0,
        );
        assert!(matches!(err, Err(SdfError::CondOnSwitchingPin { .. })));
    }

    #[test]
    fn pin_out_of_range_rejected() {
        let err = build_delay_lut(&pins(&["A"]), 3, &[], TripleSelect::Typ, 1.0);
        assert!(matches!(err, Err(SdfError::BadLut { .. })));
    }

    #[test]
    fn irrelevant_iopaths_ignored() {
        let src = r#"(DELAYFILE (CELL (CELLTYPE "NAND2") (INSTANCE u)
  (DELAY (ABSOLUTE (IOPATH A Y (1) (2)) (IOPATH B Y (3) (4))))))"#;
        let f = SdfFile::parse(src).unwrap();
        let names = pins(&["A", "B"]);
        let lut_a =
            build_delay_lut(&names, 0, &f.cells[0].iopaths, TripleSelect::Typ, 1.0).unwrap();
        let lut_b =
            build_delay_lut(&names, 1, &f.cells[0].iopaths, TripleSelect::Typ, 1.0).unwrap();
        assert_eq!(lut_a.lookup(true, true, 0), 1);
        assert_eq!(lut_b.lookup(true, true, 0), 3);
    }

    #[test]
    fn max_delay_and_average() {
        let src = r#"(DELAYFILE (CELL (CELLTYPE "NAND2") (INSTANCE u)
  (DELAY (ABSOLUTE
    (IOPATH A Y (2) (4))
    (COND B===1'b1 (IOPATH A Y (6) ()))
  ))))"#;
        let f = SdfFile::parse(src).unwrap();
        let names = pins(&["A", "B"]);
        let lut = build_delay_lut(&names, 0, &f.cells[0].iopaths, TripleSelect::Typ, 1.0).unwrap();
        assert_eq!(lut.max_delay(), Some(6));
        let (rise, fall) = lut.rise_fall_average();
        // Rise entries: rows 0 and 2, cols {2,2} default then col1 -> {2,6,2,6} = 4.
        assert_eq!(rise, 4);
        assert_eq!(fall, 4);
    }

    #[test]
    fn empty_iopaths_all_no_arc() {
        let lut = build_delay_lut(&pins(&["A", "B"]), 0, &[], TripleSelect::Typ, 1.0).unwrap();
        assert_eq!(lut.max_delay(), None);
        assert_eq!(lut.rise_fall_average(), (NO_ARC, NO_ARC));
        assert_eq!(lut.data().len(), 8);
        assert!(lut.data().iter().all(|&d| d == NO_ARC));
    }
}
