//! Benchmark circuit and testbench generators for the GATSPI reproduction.
//!
//! The paper evaluates on NVDLA configurations and four proprietary
//! industry designs (0.08M–2.3M gates) with testbenches spanning activity
//! factors from 0.0008 to 1.2. Those netlists are not available, and the
//! evaluation's independent variables are *structural* (gate count, logic
//! depth, cell mix) and *behavioural* (activity factor, cycle count) — so
//! this crate generates synthetic equivalents with those variables as
//! parameters:
//!
//! * [`circuits::int_adder_array`] — ripple-carry adder lanes (the paper's
//!   `32b_int_adder` open benchmark),
//! * [`circuits::mac_datapath`] — multiply-accumulate arrays standing in
//!   for the NVDLA convolution datapaths,
//! * [`circuits::random_logic`] — layered random netlists with an
//!   industrial cell-mix profile (the Design A–D proxies),
//! * [`sdfgen::attach_sdf`] — randomized SDF annotation with per-edge,
//!   conditional and interconnect delays,
//! * [`stimuli`] — stimulus generators with target toggle probability
//!   (random/functional/burst/scan shapes),
//! * [`suite`] — the named benchmark table mirroring the paper's Table 2
//!   rows at CPU-friendly scales (`GATSPI_SCALE` env var scales up).

#![deny(missing_docs)]

pub mod circuits;
pub mod sdfgen;
pub mod stimuli;
pub mod suite;
