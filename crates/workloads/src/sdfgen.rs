//! Randomized SDF annotation for generated netlists.
//!
//! Produces the delay-statement shapes the paper's simulator must support:
//! per-instance IOPATHs with distinct rise/fall values, `COND`itional arcs
//! guarded by side-input values, per-edge (`posedge`/`negedge`) arcs, and
//! `INTERCONNECT` wire delays — all with deterministic per-seed content.

use gatspi_netlist::Netlist;
use gatspi_sdf::{Cond, DelayTriple, EdgeSpec, Interconnect, IoPath, PortPath, SdfCell, SdfFile};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// Controls for [`attach_sdf`].
#[derive(Debug, Clone)]
pub struct SdfGenConfig {
    /// Minimum gate arc delay (ticks).
    pub min_delay: i32,
    /// Maximum gate arc delay (ticks).
    pub max_delay: i32,
    /// Probability that a multi-input gate receives a conditional arc.
    pub cond_probability: f64,
    /// Probability that a load pin receives an interconnect delay.
    pub interconnect_probability: f64,
    /// Maximum interconnect delay (ticks).
    pub max_net_delay: i32,
    /// RNG seed.
    pub seed: u64,
}

impl Default for SdfGenConfig {
    fn default() -> Self {
        SdfGenConfig {
            min_delay: 1,
            max_delay: 9,
            cond_probability: 0.3,
            interconnect_probability: 0.25,
            max_net_delay: 3,
            seed: 0x5DF,
        }
    }
}

/// Generates an [`SdfFile`] annotating every gate of `netlist`.
///
/// Every (pin → output) arc gets an unconditional IOPATH with independent
/// rise/fall delays; with probability [`SdfGenConfig::cond_probability`] a
/// gate additionally gets a conditional arc on one pin guarded by the other
/// pins' values, and with [`SdfGenConfig::interconnect_probability`] a load
/// pin gets a wire delay.
///
/// # Panics
///
/// Panics if `min_delay > max_delay` or `min_delay < 0`.
pub fn attach_sdf(netlist: &Netlist, cfg: &SdfGenConfig) -> SdfFile {
    assert!(
        0 <= cfg.min_delay && cfg.min_delay <= cfg.max_delay,
        "invalid delay range"
    );
    let mut rng = StdRng::seed_from_u64(cfg.seed);
    let lib = netlist.library();
    let mut sdf = SdfFile::new(netlist.name());
    let d = |rng: &mut StdRng| f64::from(rng.gen_range(cfg.min_delay..=cfg.max_delay));

    for (_, gate) in netlist.gates() {
        let cell = lib.cell(gate.cell());
        if cell.num_inputs() == 0 {
            continue;
        }
        let mut iopaths = Vec::new();
        for pin in cell.input_pins() {
            iopaths.push(IoPath {
                cond: None,
                edge: EdgeSpec::Both,
                input: pin.clone(),
                output: cell.output_pin().to_string(),
                rise: DelayTriple::single(d(&mut rng)),
                fall: DelayTriple::single(d(&mut rng)),
            });
        }
        // Conditional refinement on one pin, guarded by the others.
        if cell.num_inputs() >= 2 && rng.gen_bool(cfg.cond_probability) {
            let target = rng.gen_range(0..cell.num_inputs());
            let mut terms = Vec::new();
            for (i, pin) in cell.input_pins().iter().enumerate() {
                if i != target && rng.gen_bool(0.7) {
                    terms.push((pin.clone(), rng.gen_bool(0.5)));
                }
            }
            if !terms.is_empty() {
                let edge = if rng.gen_bool(0.5) {
                    EdgeSpec::Posedge
                } else {
                    EdgeSpec::Negedge
                };
                iopaths.push(IoPath {
                    cond: Some(Cond::new(terms)),
                    edge,
                    input: cell.input_pins()[target].clone(),
                    output: cell.output_pin().to_string(),
                    rise: DelayTriple::single(d(&mut rng)),
                    fall: DelayTriple::single(d(&mut rng)),
                });
            }
        }
        sdf.cells.push(SdfCell {
            celltype: cell.name().to_string(),
            instance: Some(gate.name().to_string()),
            iopaths,
        });
    }

    // Interconnect delays on a sample of load pins.
    if cfg.max_net_delay > 0 {
        for (_, net) in netlist.nets() {
            let Some(driver) = net.driver() else {
                continue;
            };
            let driver_cell = lib.cell(netlist.gate(driver).cell());
            for load in net.loads() {
                if !rng.gen_bool(cfg.interconnect_probability) {
                    continue;
                }
                let lg = netlist.gate(load.gate);
                let lcell = lib.cell(lg.cell());
                sdf.interconnects.push(Interconnect {
                    from: PortPath {
                        instance: Some(netlist.gate(driver).name().to_string()),
                        pin: driver_cell.output_pin().to_string(),
                    },
                    to: PortPath {
                        instance: Some(lg.name().to_string()),
                        pin: lcell.input_pins()[load.pin as usize].clone(),
                    },
                    rise: DelayTriple::single(f64::from(rng.gen_range(0..=cfg.max_net_delay))),
                    fall: DelayTriple::single(f64::from(rng.gen_range(0..=cfg.max_net_delay))),
                });
            }
        }
    }
    sdf
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::circuits::{int_adder_array, random_logic, RandomLogicConfig};
    use gatspi_graph::{CircuitGraph, GraphOptions};

    #[test]
    fn annotates_every_gate() {
        let n = int_adder_array(4, 1);
        let sdf = attach_sdf(&n, &SdfGenConfig::default());
        assert_eq!(sdf.cells.len(), n.gate_count());
        // Binds cleanly into a graph.
        let g = CircuitGraph::build(&n, Some(&sdf), &GraphOptions::default()).unwrap();
        // All delay LUT entries for annotated pins are within range.
        for gate in 0..g.n_gates() {
            let (r, f) = g.fallback_delay(gate);
            assert!((1..=9).contains(&r), "fallback rise {r}");
            assert!((1..=9).contains(&f));
        }
    }

    #[test]
    fn deterministic_per_seed() {
        let n = int_adder_array(4, 1);
        let a = attach_sdf(&n, &SdfGenConfig::default());
        let b = attach_sdf(&n, &SdfGenConfig::default());
        assert_eq!(a, b);
        let c = attach_sdf(
            &n,
            &SdfGenConfig {
                seed: 99,
                ..Default::default()
            },
        );
        assert_ne!(a, c);
    }

    #[test]
    fn text_roundtrip() {
        let n = int_adder_array(2, 1);
        let sdf = attach_sdf(&n, &SdfGenConfig::default());
        let text = sdf.write();
        let parsed = SdfFile::parse(&text).unwrap();
        assert_eq!(sdf.cells, parsed.cells);
        assert_eq!(sdf.interconnects.len(), parsed.interconnects.len());
    }

    #[test]
    fn conditional_arcs_appear_on_random_logic() {
        let n = random_logic(&RandomLogicConfig {
            gates: 400,
            ..Default::default()
        });
        let sdf = attach_sdf(&n, &SdfGenConfig::default());
        let conds = sdf
            .cells
            .iter()
            .flat_map(|c| &c.iopaths)
            .filter(|p| p.cond.is_some())
            .count();
        assert!(conds > 10, "expected conditional arcs, got {conds}");
        assert!(!sdf.interconnects.is_empty());
        // And the full annotation binds.
        CircuitGraph::build(&n, Some(&sdf), &GraphOptions::default()).unwrap();
    }
}
