//! Parameterised benchmark circuit generators.

use gatspi_netlist::{CellLibrary, CellTypeId, Netlist, NetlistBuilder};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// Builds `lanes` independent `bits`-wide ripple-carry adders — the
/// reproduction of the paper's `32b_int_adder` open-source benchmark
/// (sum/carry from XOR3/MAJ3 cells, one carry chain per lane).
///
/// Inputs: `a{lane}[bit]`, `b{lane}[bit]`, `cin{lane}`; outputs
/// `s{lane}[bit]`, `cout{lane}`.
///
/// # Panics
///
/// Panics if `bits == 0` or `lanes == 0`.
pub fn int_adder_array(bits: usize, lanes: usize) -> Netlist {
    assert!(bits > 0 && lanes > 0, "need at least one bit and lane");
    let lib = CellLibrary::industry_mini();
    let mut b = NetlistBuilder::new("int_adder", lib);
    for lane in 0..lanes {
        let a: Vec<_> = (0..bits)
            .map(|i| b.add_input(&format!("a{lane}[{i}]")).unwrap())
            .collect();
        let bb: Vec<_> = (0..bits)
            .map(|i| b.add_input(&format!("b{lane}[{i}]")).unwrap())
            .collect();
        let mut carry = b.add_input(&format!("cin{lane}")).unwrap();
        for i in 0..bits {
            let s = b.add_output(&format!("s{lane}[{i}]")).unwrap();
            b.add_gate(&format!("u_s{lane}_{i}"), "XOR3", &[a[i], bb[i], carry], s)
                .unwrap();
            let c_next = if i + 1 == bits {
                b.add_output(&format!("cout{lane}")).unwrap()
            } else {
                b.add_net(&format!("c{lane}_{i}")).unwrap()
            };
            b.add_gate(
                &format!("u_c{lane}_{i}"),
                "MAJ3",
                &[a[i], bb[i], carry],
                c_next,
            )
            .unwrap();
            carry = c_next;
        }
    }
    b.finish().expect("generator produces valid netlists")
}

/// Builds a multiply-accumulate datapath: `lanes` lanes of `width×width`
/// AND partial products reduced by a carry-save adder tree — the synthetic
/// stand-in for the NVDLA convolution MAC arrays.
///
/// Gate count scales as ≈ `3·width²·lanes`.
///
/// # Panics
///
/// Panics if `width < 2` or `lanes == 0`.
pub fn mac_datapath(width: usize, lanes: usize) -> Netlist {
    assert!(
        width >= 2 && lanes > 0,
        "width >= 2 and lanes >= 1 required"
    );
    let lib = CellLibrary::industry_mini();
    let mut b = NetlistBuilder::new("mac_datapath", lib);
    for lane in 0..lanes {
        let x: Vec<_> = (0..width)
            .map(|i| b.add_input(&format!("x{lane}[{i}]")).unwrap())
            .collect();
        let w: Vec<_> = (0..width)
            .map(|i| b.add_input(&format!("w{lane}[{i}]")).unwrap())
            .collect();
        // Partial products.
        let mut columns: Vec<Vec<gatspi_netlist::NetId>> = vec![Vec::new(); 2 * width];
        for (i, &xi) in x.iter().enumerate() {
            for (j, &wj) in w.iter().enumerate() {
                let pp = b.add_net(&format!("pp{lane}_{i}_{j}")).unwrap();
                b.add_gate(&format!("u_pp{lane}_{i}_{j}"), "AND2", &[xi, wj], pp)
                    .unwrap();
                columns[i + j].push(pp);
            }
        }
        // Carry-save reduction: full adders (XOR3 + MAJ3) until every
        // column holds at most one wire.
        let mut fa = 0usize;
        loop {
            let mut reduced = false;
            for c in 0..columns.len() {
                while columns[c].len() >= 3 {
                    let z = columns[c].pop().unwrap();
                    let y = columns[c].pop().unwrap();
                    let xx = columns[c].pop().unwrap();
                    let s = b.add_net(&format!("s{lane}_{fa}")).unwrap();
                    let cy = b.add_net(&format!("cy{lane}_{fa}")).unwrap();
                    b.add_gate(&format!("u_fs{lane}_{fa}"), "XOR3", &[xx, y, z], s)
                        .unwrap();
                    b.add_gate(&format!("u_fc{lane}_{fa}"), "MAJ3", &[xx, y, z], cy)
                        .unwrap();
                    fa += 1;
                    columns[c].push(s);
                    if c + 1 < columns.len() {
                        columns[c + 1].push(cy);
                    } else {
                        // Overflow carry observed directly.
                        let o = b.add_output(&format!("ovf{lane}_{fa}")).unwrap();
                        b.add_gate(&format!("u_ov{lane}_{fa}"), "BUF", &[cy], o)
                            .unwrap();
                    }
                    reduced = true;
                }
                // Pairs reduce through half adders (XOR2 + AND2).
                if columns[c].len() == 2 {
                    let y = columns[c].pop().unwrap();
                    let xx = columns[c].pop().unwrap();
                    let s = b.add_net(&format!("hs{lane}_{fa}")).unwrap();
                    let cy = b.add_net(&format!("hc{lane}_{fa}")).unwrap();
                    b.add_gate(&format!("u_hs{lane}_{fa}"), "XOR2", &[xx, y], s)
                        .unwrap();
                    b.add_gate(&format!("u_hc{lane}_{fa}"), "AND2", &[xx, y], cy)
                        .unwrap();
                    fa += 1;
                    columns[c].push(s);
                    if c + 1 < columns.len() {
                        columns[c + 1].push(cy);
                    } else {
                        let o = b.add_output(&format!("hvf{lane}_{fa}")).unwrap();
                        b.add_gate(&format!("u_hv{lane}_{fa}"), "BUF", &[cy], o)
                            .unwrap();
                    }
                    reduced = true;
                }
            }
            if !reduced {
                break;
            }
        }
        // Surviving column wires are the product bits.
        for (c, col) in columns.iter().enumerate() {
            for (k, &net) in col.iter().enumerate() {
                let o = b.add_output(&format!("p{lane}[{c}_{k}]")).unwrap();
                b.add_gate(&format!("u_po{lane}_{c}_{k}"), "BUF", &[net], o)
                    .unwrap();
            }
        }
    }
    b.finish().expect("generator produces valid netlists")
}

/// Configuration for [`random_logic`].
#[derive(Debug, Clone)]
pub struct RandomLogicConfig {
    /// Approximate number of gates.
    pub gates: usize,
    /// Number of primary inputs.
    pub inputs: usize,
    /// Number of logic levels to spread the gates over.
    pub depth: usize,
    /// Fraction of gate outputs additionally exposed as primary outputs.
    pub output_fraction: f64,
    /// RNG seed (generation is deterministic per seed).
    pub seed: u64,
}

impl Default for RandomLogicConfig {
    fn default() -> Self {
        RandomLogicConfig {
            gates: 1000,
            inputs: 64,
            depth: 12,
            output_fraction: 0.05,
            seed: 0xDAC2022,
        }
    }
}

/// Generates a layered random netlist with an industrial cell-mix profile —
/// the stand-in for the paper's proprietary Designs A–D.
///
/// Gates are placed level by level; each gate draws its cell type from a
/// weighted mix (simple 15%, basic 45%, complex AOI/OAI 20%, parity 12%,
/// mux 8%) and its fan-ins from earlier levels with a locality bias toward
/// recent levels, which yields realistic fanout distributions and
/// level-width profiles.
///
/// # Panics
///
/// Panics if `gates`, `inputs` or `depth` is zero.
pub fn random_logic(cfg: &RandomLogicConfig) -> Netlist {
    assert!(
        cfg.gates > 0 && cfg.inputs > 0 && cfg.depth > 0,
        "gates, inputs and depth must be positive"
    );
    let lib = CellLibrary::industry_mini();
    // Weighted cell mix: (name, weight).
    let mix: &[(&str, u32)] = &[
        ("INV", 8),
        ("BUF", 7),
        ("NAND2", 12),
        ("NOR2", 10),
        ("AND2", 8),
        ("OR2", 7),
        ("NAND3", 5),
        ("NOR3", 3),
        ("AOI21", 7),
        ("OAI21", 7),
        ("AOI22", 3),
        ("OAI22", 3),
        ("XOR2", 8),
        ("XNOR2", 4),
        ("MUX2", 8),
    ];
    let total_w: u32 = mix.iter().map(|&(_, w)| w).sum();
    let cells: Vec<(CellTypeId, usize)> = mix
        .iter()
        .map(|&(name, _)| {
            let id = lib.find(name).expect("mix cell exists");
            let n = lib.cell(id).num_inputs();
            (id, n)
        })
        .collect();

    let mut rng = StdRng::seed_from_u64(cfg.seed);
    let mut b = NetlistBuilder::new(format!("random_logic_{}", cfg.gates), lib);
    // Levels of available driver signals.
    let mut levels: Vec<Vec<gatspi_netlist::NetId>> = Vec::new();
    levels.push(
        (0..cfg.inputs)
            .map(|i| b.add_input(&format!("in[{i}]")).unwrap())
            .collect(),
    );

    let mut gid = 0usize;
    for level in 1..=cfg.depth {
        // Distribute the remaining gates over the remaining levels with
        // ±40% jitter for an industrial (unbalanced) width profile; the
        // final level absorbs the remainder exactly.
        let remaining_levels = cfg.depth - level + 1;
        let per_level = (cfg.gates - gid).div_ceil(remaining_levels);
        let w = if remaining_levels == 1 {
            cfg.gates - gid
        } else {
            ((per_level as f64) * rng.gen_range(0.6..1.4)).round() as usize
        };
        let w = w.clamp(1, cfg.gates.saturating_sub(gid).max(1));
        let mut this_level = Vec::with_capacity(w);
        for _ in 0..w {
            if gid >= cfg.gates {
                break;
            }
            // Pick a cell from the weighted mix.
            let mut roll = rng.gen_range(0..total_w);
            let mut pick = 0usize;
            for (k, &(_, weight)) in mix.iter().enumerate() {
                if roll < weight {
                    pick = k;
                    break;
                }
                roll -= weight;
            }
            let (cell_id, n_in) = cells[pick];
            // Fan-ins: biased toward recent levels (locality).
            let mut ins = Vec::with_capacity(n_in);
            for _ in 0..n_in {
                let lv = if rng.gen_bool(0.7) {
                    level - 1
                } else {
                    rng.gen_range(0..level)
                };
                let pool = &levels[lv];
                ins.push(pool[rng.gen_range(0..pool.len())]);
            }
            let out = b.add_net(&format!("n{gid}")).unwrap();
            b.add_gate_by_id(&format!("g{gid}"), cell_id, &ins, out)
                .unwrap();
            if rng.gen_bool(cfg.output_fraction) {
                b.mark_output(out);
            }
            this_level.push(out);
            gid += 1;
        }
        if this_level.is_empty() {
            break;
        }
        levels.push(this_level);
    }
    // The final level is always observed.
    for &net in levels.last().unwrap() {
        b.mark_output(net);
    }
    b.finish().expect("generator produces valid netlists")
}

#[cfg(test)]
mod tests {
    use super::*;
    use gatspi_graph::{levelize, CircuitGraph, GraphOptions};

    #[test]
    fn adder_array_shape() {
        let n = int_adder_array(8, 2);
        // Per lane: 8 XOR3 + 8 MAJ3.
        assert_eq!(n.gate_count(), 32);
        assert_eq!(n.primary_inputs().len(), 2 * (8 + 8 + 1));
        n.validate().unwrap();
        // Carry chain levelizes to depth `bits`.
        let lv = levelize(&n).unwrap();
        assert_eq!(lv.iter().copied().max().unwrap(), 7);
    }

    #[test]
    fn adder_adds() {
        let n = int_adder_array(4, 1);
        let g = CircuitGraph::build(&n, None, &GraphOptions::default()).unwrap();
        // a=0b1011 (11), b=0b0110 (6), cin=1 => 18 = 0b10010.
        let mut pi_vals = Vec::new();
        for &pi in g.primary_inputs() {
            let name = g.signal_name(pi);
            let v = match name {
                "a0[0]" => true,
                "a0[1]" => true,
                "a0[2]" => false,
                "a0[3]" => true,
                "b0[1]" => true,
                "b0[2]" => true,
                "cin0" => true,
                _ => false,
            };
            pi_vals.push(v);
        }
        let vals = g.eval_zero_delay(&pi_vals);
        let bit = |name: &str| -> bool {
            let id = (0..g.n_signals())
                .map(|i| gatspi_graph::SignalId(i as u32))
                .find(|&s| g.signal_name(s) == name)
                .unwrap();
            vals[id.index()]
        };
        assert!(!bit("s0[0]"));
        assert!(bit("s0[1]"));
        assert!(!bit("s0[2]"));
        assert!(!bit("s0[3]"));
        assert!(bit("cout0"));
    }

    #[test]
    fn mac_datapath_builds_and_scales() {
        let small = mac_datapath(4, 1);
        small.validate().unwrap();
        let big = mac_datapath(4, 3);
        assert!(big.gate_count() > 2 * small.gate_count());
        // Acyclic.
        levelize(&big).unwrap();
    }

    #[test]
    fn mac_multiplies() {
        // Verify the reduction tree sums partial products: x=3, w=2 -> 6.
        let n = mac_datapath(3, 1);
        let g = CircuitGraph::build(&n, None, &GraphOptions::default()).unwrap();
        let mut pi_vals = Vec::new();
        for &pi in g.primary_inputs() {
            let name = g.signal_name(pi);
            let v = matches!(name, "x0[0]" | "x0[1]" | "w0[1]");
            pi_vals.push(v);
        }
        let vals = g.eval_zero_delay(&pi_vals);
        // Sum over output column weights must equal 6. Column c contributes
        // 2^c per asserted product bit p0[c_k].
        let mut total = 0u64;
        for &po in g.primary_outputs() {
            let name = g.signal_name(po);
            if let Some(rest) = name.strip_prefix("p0[") {
                let col: u64 = rest.split('_').next().unwrap().parse().unwrap();
                if vals[po.index()] {
                    total += 1 << col;
                }
            } else if vals[po.index()] {
                panic!("overflow bit asserted in small multiply");
            }
        }
        assert_eq!(total, 6);
    }

    #[test]
    fn random_logic_deterministic_and_valid() {
        let cfg = RandomLogicConfig {
            gates: 500,
            inputs: 32,
            depth: 10,
            ..Default::default()
        };
        let a = random_logic(&cfg);
        let b2 = random_logic(&cfg);
        a.validate().unwrap();
        assert_eq!(a.gate_count(), b2.gate_count());
        assert_eq!(a.gate_count(), 500);
        assert!(!a.primary_outputs().is_empty());
        // Same seed -> identical structure.
        for (id, g) in a.gates() {
            let g2 = b2.gate(id);
            assert_eq!(g.cell(), g2.cell());
            assert_eq!(g.inputs(), g2.inputs());
        }
        // Different seed -> different structure (overwhelmingly likely).
        let c = random_logic(&RandomLogicConfig {
            seed: 7,
            ..cfg.clone()
        });
        let same = a
            .gates()
            .zip(c.gates())
            .all(|((_, x), (_, y))| x.cell() == y.cell());
        assert!(!same);
    }

    #[test]
    fn random_logic_levelizes_within_depth() {
        let cfg = RandomLogicConfig {
            gates: 300,
            inputs: 16,
            depth: 8,
            ..Default::default()
        };
        let n = random_logic(&cfg);
        let lv = levelize(&n).unwrap();
        assert!(lv.iter().copied().max().unwrap() < 8);
    }
}
