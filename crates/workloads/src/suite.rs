//! The named benchmark suite mirroring the paper's Table 2.
//!
//! Default sizes are scaled down from the paper's millions of gates to
//! CPU-friendly thousands (the independent variables — relative size,
//! activity factor, testbench length — keep the paper's *ratios*). Set the
//! `GATSPI_SCALE` environment variable to scale gate counts and cycle
//! counts up (e.g. `GATSPI_SCALE=10`).

use std::sync::Arc;

use gatspi_graph::{CircuitGraph, GraphOptions};
use gatspi_netlist::Netlist;
use gatspi_wave::{SimTime, Waveform};

use crate::circuits::{int_adder_array, mac_datapath, random_logic, RandomLogicConfig};
use crate::sdfgen::{attach_sdf, SdfGenConfig};
use crate::stimuli::{generate, StimulusConfig, StimulusKind};

/// Ticks per clock cycle used across the suite — chosen to exceed every
/// generated design's critical path (max depth × max arc delay + wire
/// delays, ≈ 58 levels × 12 ticks for the deepest MAC reduction tree) so
/// signals settle each cycle and cycle-parallel windows cut at quiet
/// boundaries.
pub const CYCLE_TIME: SimTime = 1200;

/// Which generator builds a benchmark's netlist.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum CircuitSpec {
    /// Ripple-carry adder lanes.
    Adder {
        /// Bits per lane.
        bits: usize,
        /// Independent lanes.
        lanes: usize,
    },
    /// Multiply-accumulate array (NVDLA-like).
    Mac {
        /// Operand width.
        width: usize,
        /// MAC lanes.
        lanes: usize,
    },
    /// Layered random industrial-profile netlist.
    Random {
        /// Approximate gate count.
        gates: usize,
        /// Primary inputs.
        inputs: usize,
        /// Logic depth.
        depth: usize,
    },
}

/// One row of the benchmark table.
#[derive(Debug, Clone)]
pub struct BenchmarkDef {
    /// Design name (paper's first column).
    pub design: &'static str,
    /// Testbench name (paper's second column).
    pub testbench: &'static str,
    /// Whether the paper's counterpart was a proprietary industry design.
    pub industry: bool,
    /// Circuit generator and shape.
    pub circuit: CircuitSpec,
    /// Stimulus shape.
    pub kind: StimulusKind,
    /// Clock cycles to simulate (pre-scale).
    pub cycles: usize,
    /// Generation seed.
    pub seed: u64,
}

/// A fully generated benchmark, ready to hand to the engines.
#[derive(Debug)]
pub struct BuiltBenchmark {
    /// The source definition.
    pub def: BenchmarkDef,
    /// Translated simulation graph (with SDF annotation).
    pub graph: Arc<CircuitGraph>,
    /// One stimulus waveform per primary input.
    pub stimuli: Vec<Waveform>,
    /// Stimulus duration in ticks.
    pub duration: SimTime,
    /// Cycles actually generated (post-scale).
    pub cycles: usize,
    /// Ticks per cycle.
    pub cycle_time: SimTime,
}

impl BuiltBenchmark {
    /// Label `Design(testbench)` used in reports.
    pub fn label(&self) -> String {
        format!("{}({})", self.def.design, self.def.testbench)
    }
}

/// Reads the global scale factor from `GATSPI_SCALE` (default 1.0).
pub fn scale() -> f64 {
    std::env::var("GATSPI_SCALE")
        .ok()
        .and_then(|v| v.parse::<f64>().ok())
        .filter(|&s| s > 0.0)
        .unwrap_or(1.0)
}

impl BenchmarkDef {
    /// Generates the netlist (pre-SDF) at the given scale factor.
    pub fn netlist_at_scale(&self, scale: f64) -> Netlist {
        let sc = |n: usize| ((n as f64 * scale).round() as usize).max(1);
        match self.circuit {
            CircuitSpec::Adder { bits, lanes } => int_adder_array(bits, sc(lanes)),
            CircuitSpec::Mac { width, lanes } => mac_datapath(width, sc(lanes)),
            CircuitSpec::Random {
                gates,
                inputs,
                depth,
            } => random_logic(&RandomLogicConfig {
                gates: sc(gates),
                inputs: sc(inputs).max(8),
                depth,
                output_fraction: 0.05,
                seed: self.seed,
            }),
        }
    }

    /// Builds the benchmark at the `GATSPI_SCALE` scale.
    pub fn build(&self) -> BuiltBenchmark {
        self.build_at_scale(scale())
    }

    /// Builds the benchmark at an explicit scale factor (1.0 = the suite's
    /// CPU-friendly default size).
    pub fn build_at_scale(&self, scale: f64) -> BuiltBenchmark {
        let netlist = self.netlist_at_scale(scale);
        let sdf = attach_sdf(
            &netlist,
            &SdfGenConfig {
                seed: self.seed ^ 0x5DF,
                ..SdfGenConfig::default()
            },
        );
        let graph = Arc::new(
            CircuitGraph::build(&netlist, Some(&sdf), &GraphOptions::default())
                .expect("generated designs are well-formed"),
        );
        let cycles = ((self.cycles as f64 * scale).round() as usize).max(4);
        let cfg = StimulusConfig {
            cycles,
            cycle_time: CYCLE_TIME,
            clk2q: 1,
            kind: self.kind,
            seed: self.seed ^ 0x57,
        };
        let stimuli = generate(graph.primary_inputs().len(), &cfg);
        BuiltBenchmark {
            def: self.clone(),
            duration: cfg.duration(),
            cycles,
            cycle_time: CYCLE_TIME,
            graph,
            stimuli,
        }
    }
}

/// The twelve Table 2 rows.
pub fn table2_suite() -> Vec<BenchmarkDef> {
    vec![
        BenchmarkDef {
            design: "32b_int_adder",
            testbench: "random stimulus",
            industry: false,
            circuit: CircuitSpec::Adder { bits: 32, lanes: 8 },
            kind: StimulusKind::Random {
                toggle_probability: 1.0,
            },
            cycles: 600,
            seed: 1,
        },
        BenchmarkDef {
            design: "NVDLA_m(small)",
            testbench: "convolution",
            industry: false,
            circuit: CircuitSpec::Mac {
                width: 8,
                lanes: 10,
            },
            kind: StimulusKind::Burst {
                active_probability: 0.2,
                active_cycles: 5,
                idle_cycles: 75,
            },
            cycles: 1500,
            seed: 2,
        },
        BenchmarkDef {
            design: "NVDLA_m(large)",
            testbench: "convolution",
            industry: false,
            circuit: CircuitSpec::Mac {
                width: 8,
                lanes: 40,
            },
            kind: StimulusKind::Burst {
                active_probability: 0.08,
                active_cycles: 2,
                idle_cycles: 160,
            },
            cycles: 800,
            seed: 3,
        },
        BenchmarkDef {
            design: "NVDLA_m(large)",
            testbench: "scan",
            industry: false,
            circuit: CircuitSpec::Mac {
                width: 8,
                lanes: 40,
            },
            kind: StimulusKind::Scan,
            cycles: 300,
            seed: 4,
        },
        BenchmarkDef {
            design: "NVDLA(large)",
            testbench: "sanity test",
            industry: false,
            circuit: CircuitSpec::Mac {
                width: 8,
                lanes: 90,
            },
            kind: StimulusKind::Burst {
                active_probability: 0.10,
                active_cycles: 1,
                idle_cycles: 420,
            },
            cycles: 1000,
            seed: 5,
        },
        BenchmarkDef {
            design: "NVDLA(large)",
            testbench: "scan",
            industry: false,
            circuit: CircuitSpec::Mac {
                width: 8,
                lanes: 90,
            },
            kind: StimulusKind::Scan,
            cycles: 150,
            seed: 6,
        },
        BenchmarkDef {
            design: "Industry Design A",
            testbench: "functional 1",
            industry: true,
            circuit: CircuitSpec::Random {
                gates: 2000,
                inputs: 96,
                depth: 14,
            },
            kind: StimulusKind::Random {
                toggle_probability: 0.05,
            },
            cycles: 500,
            seed: 7,
        },
        BenchmarkDef {
            design: "Industry Design B",
            testbench: "functional 2",
            industry: true,
            circuit: CircuitSpec::Random {
                gates: 10_000,
                inputs: 256,
                depth: 20,
            },
            kind: StimulusKind::Random {
                toggle_probability: 0.008,
            },
            cycles: 1200,
            seed: 8,
        },
        BenchmarkDef {
            design: "Industry Design B",
            testbench: "high activity short test",
            industry: true,
            circuit: CircuitSpec::Random {
                gates: 10_000,
                inputs: 256,
                depth: 20,
            },
            kind: StimulusKind::Random {
                toggle_probability: 0.10,
            },
            cycles: 400,
            seed: 8,
        },
        BenchmarkDef {
            design: "Industry Design B",
            testbench: "high activity long test",
            industry: true,
            circuit: CircuitSpec::Random {
                gates: 10_000,
                inputs: 256,
                depth: 20,
            },
            kind: StimulusKind::Random {
                toggle_probability: 0.10,
            },
            cycles: 1000,
            seed: 8,
        },
        BenchmarkDef {
            design: "Industry Design C",
            testbench: "functional 2",
            industry: true,
            circuit: CircuitSpec::Random {
                gates: 9000,
                inputs: 256,
                depth: 18,
            },
            kind: StimulusKind::Random {
                toggle_probability: 0.009,
            },
            cycles: 800,
            seed: 11,
        },
        BenchmarkDef {
            design: "Industry Design D",
            testbench: "functional 3",
            industry: true,
            circuit: CircuitSpec::Random {
                gates: 11_000,
                inputs: 288,
                depth: 20,
            },
            kind: StimulusKind::Random {
                toggle_probability: 0.013,
            },
            cycles: 1000,
            seed: 12,
        },
    ]
}

/// The paper's three "representative" benchmarks (Tables 3, 5–8): a small
/// design, an industrial low-activity/unbalanced one, and an industrial
/// high-activity one.
pub fn representative_suite() -> Vec<BenchmarkDef> {
    let all = table2_suite();
    vec![
        all[6].clone(), // Design A (functional 1)
        all[7].clone(), // Design B (functional 2)
        all[9].clone(), // Design B (high activity long)
    ]
}

/// Design B's three testbenches concatenated — the Fig. 6 multi-GPU
/// workload ("concatenate all the testbenches in Table 2 for Design B").
pub fn design_b_concatenated() -> BenchmarkDef {
    let all = table2_suite();
    let mut def = all[9].clone();
    def.testbench = "concatenated";
    // Sum of the three Design B testbench lengths.
    def.cycles = all[7].cycles + all[8].cycles + all[9].cycles;
    def
}

#[cfg(test)]
mod tests {
    use super::*;
    use gatspi_wave::activity::ActivityStats;

    #[test]
    fn twelve_rows_matching_paper_shape() {
        let suite = table2_suite();
        assert_eq!(suite.len(), 12);
        assert_eq!(suite.iter().filter(|d| d.industry).count(), 6);
    }

    #[test]
    fn build_small_rows() {
        for def in &table2_suite()[..2] {
            let b = def.build_at_scale(0.2);
            assert!(b.graph.n_gates() > 50, "{} too small", b.label());
            assert_eq!(b.stimuli.len(), b.graph.primary_inputs().len());
            assert_eq!(b.duration, b.cycles as SimTime * CYCLE_TIME);
        }
    }

    #[test]
    fn activity_ordering_matches_design() {
        // Scan stimulus must be far more active than the sanity test.
        let suite = table2_suite();
        let scan = suite[3].build_at_scale(0.1);
        let sanity = suite[4].build_at_scale(0.1);
        let af = |b: &BuiltBenchmark| {
            ActivityStats::from_waveforms(&b.stimuli).activity_factor(b.cycles as u64)
        };
        assert!(af(&scan) > 10.0 * af(&sanity));
    }

    #[test]
    fn same_seed_rows_share_structure() {
        // Design B rows reuse one netlist across testbenches.
        let suite = table2_suite();
        let n1 = suite[7].netlist_at_scale(0.1);
        let n2 = suite[9].netlist_at_scale(0.1);
        assert_eq!(n1.gate_count(), n2.gate_count());
    }

    #[test]
    fn representative_is_three() {
        assert_eq!(representative_suite().len(), 3);
    }

    #[test]
    fn concatenated_design_b_is_longer() {
        let cat = design_b_concatenated();
        assert!(cat.cycles > table2_suite()[9].cycles);
    }

    #[test]
    fn scale_env_parsing_default() {
        // Do not mutate the environment (tests run in parallel); just check
        // the default path.
        if std::env::var("GATSPI_SCALE").is_err() {
            assert_eq!(scale(), 1.0);
        }
    }
}
