//! Testbench stimulus generators with controllable activity.
//!
//! Re-simulation stimuli are the known waveforms of primary and
//! pseudo-primary inputs (register/RAM outputs). Transitions happen a small
//! clk-to-q offset *after* each cycle boundary — which also guarantees the
//! engine's cycle-parallel windows (aligned to cycle starts) never cut
//! through a transition.

use gatspi_wave::{SimTime, Waveform, WaveformBuilder};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// Shape of the generated activity.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum StimulusKind {
    /// Independent per-cycle toggles with the given probability — random
    /// functional traffic.
    Random {
        /// Per-input per-cycle toggle probability (0–1).
        toggle_probability: f64,
    },
    /// Scan-shift traffic: every input toggles (almost) every cycle, the
    /// paper's activity-factor ≈ 1 regime.
    Scan,
    /// Bursty functional traffic: alternating active/idle phases.
    Burst {
        /// Toggle probability during active phases.
        active_probability: f64,
        /// Cycles per active phase.
        active_cycles: usize,
        /// Cycles per idle phase.
        idle_cycles: usize,
    },
}

/// Stimulus generation parameters.
#[derive(Debug, Clone)]
pub struct StimulusConfig {
    /// Number of clock cycles.
    pub cycles: usize,
    /// Ticks per cycle (must exceed the design's critical path so signals
    /// settle before the next cycle).
    pub cycle_time: SimTime,
    /// Transition offset after the cycle boundary (clk-to-q). Inputs get a
    /// small deterministic per-input phase spread on top, creating arrival
    /// skew (and therefore glitches) inside logic cones.
    pub clk2q: SimTime,
    /// Activity shape.
    pub kind: StimulusKind,
    /// RNG seed.
    pub seed: u64,
}

impl StimulusConfig {
    /// A random stimulus with the given toggle probability.
    pub fn random(cycles: usize, cycle_time: SimTime, toggle_probability: f64, seed: u64) -> Self {
        StimulusConfig {
            cycles,
            cycle_time,
            clk2q: 1,
            kind: StimulusKind::Random { toggle_probability },
            seed,
        }
    }

    /// A scan-shift stimulus (activity ≈ 1).
    pub fn scan(cycles: usize, cycle_time: SimTime, seed: u64) -> Self {
        StimulusConfig {
            cycles,
            cycle_time,
            clk2q: 1,
            kind: StimulusKind::Scan,
            seed,
        }
    }

    /// Total stimulus duration in ticks.
    pub fn duration(&self) -> SimTime {
        self.cycle_time * self.cycles as SimTime
    }
}

/// Generates one waveform per input.
///
/// # Panics
///
/// Panics if `cycles == 0`, `cycle_time <= clk2q`, or a probability is
/// outside `[0, 1]`.
pub fn generate(n_inputs: usize, cfg: &StimulusConfig) -> Vec<Waveform> {
    assert!(cfg.cycles > 0, "need at least one cycle");
    assert!(
        cfg.cycle_time > cfg.clk2q && cfg.clk2q >= 1,
        "cycle_time must exceed clk2q >= 1"
    );
    let mut rng = StdRng::seed_from_u64(cfg.seed);
    (0..n_inputs)
        .map(|i| {
            // Deterministic per-input phase spread (arrival skew).
            let phase = (i as SimTime * 7) % (cfg.cycle_time / 4).max(1);
            let mut b = WaveformBuilder::new(rng.gen_bool(0.5));
            for c in 0..cfg.cycles {
                let toggle = match cfg.kind {
                    StimulusKind::Random { toggle_probability } => {
                        assert!((0.0..=1.0).contains(&toggle_probability));
                        rng.gen_bool(toggle_probability)
                    }
                    StimulusKind::Scan => c % 17 != 0 || rng.gen_bool(0.5),
                    StimulusKind::Burst {
                        active_probability,
                        active_cycles,
                        idle_cycles,
                    } => {
                        assert!((0.0..=1.0).contains(&active_probability));
                        let period = active_cycles + idle_cycles;
                        let in_active = period == 0 || (c % period.max(1)) < active_cycles;
                        in_active && rng.gen_bool(active_probability)
                    }
                };
                if toggle {
                    let t = c as SimTime * cfg.cycle_time + cfg.clk2q + phase;
                    b.toggle(t).expect("cycle times are increasing");
                }
            }
            b.finish()
        })
        .collect()
}

/// Deterministic counter-style stimulus for `bits`-wide buses: bit `i`
/// toggles every `2^i` cycles (exercises carry chains end to end).
pub fn counter(bits: usize, cycles: usize, cycle_time: SimTime, clk2q: SimTime) -> Vec<Waveform> {
    (0..bits)
        .map(|bit| {
            let mut b = WaveformBuilder::new(false);
            let period = 1usize << bit;
            for c in 0..cycles {
                if c > 0 && c % period == 0 {
                    b.toggle(c as SimTime * cycle_time + clk2q)
                        .expect("cycle times increase");
                }
            }
            b.finish()
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use gatspi_wave::activity::ActivityStats;

    #[test]
    fn random_hits_target_activity() {
        let cfg = StimulusConfig::random(1000, 100, 0.3, 42);
        let waves = generate(50, &cfg);
        let stats = ActivityStats::from_waveforms(&waves);
        let af = stats.activity_factor(1000);
        assert!((af - 0.3).abs() < 0.03, "activity {af} far from 0.3");
    }

    #[test]
    fn scan_is_high_activity() {
        let cfg = StimulusConfig::scan(500, 100, 1);
        let waves = generate(20, &cfg);
        let af = ActivityStats::from_waveforms(&waves).activity_factor(500);
        assert!(af > 0.9, "scan activity {af} too low");
    }

    #[test]
    fn burst_is_sparser_than_its_active_rate() {
        let cfg = StimulusConfig {
            cycles: 1000,
            cycle_time: 100,
            clk2q: 1,
            kind: StimulusKind::Burst {
                active_probability: 0.5,
                active_cycles: 10,
                idle_cycles: 90,
            },
            seed: 3,
        };
        let waves = generate(20, &cfg);
        let af = ActivityStats::from_waveforms(&waves).activity_factor(1000);
        assert!(af < 0.1, "burst activity {af} too high");
        assert!(af > 0.01);
    }

    #[test]
    fn toggles_stay_off_cycle_boundaries() {
        let cfg = StimulusConfig::random(100, 50, 1.0, 9);
        for w in generate(8, &cfg) {
            for (t, _) in w.iter().skip(1) {
                assert_ne!(t % 50, 0, "toggle at {t} sits on a cycle boundary");
            }
        }
    }

    #[test]
    fn deterministic_per_seed() {
        let cfg = StimulusConfig::random(100, 50, 0.5, 77);
        assert_eq!(generate(5, &cfg), generate(5, &cfg));
        let other = StimulusConfig::random(100, 50, 0.5, 78);
        assert_ne!(generate(5, &cfg), generate(5, &other));
    }

    #[test]
    fn counter_periods() {
        let waves = counter(4, 16, 100, 1);
        assert_eq!(waves[0].toggle_count(), 15);
        assert_eq!(waves[1].toggle_count(), 7);
        assert_eq!(waves[2].toggle_count(), 3);
        assert_eq!(waves[3].toggle_count(), 1);
    }

    #[test]
    #[should_panic(expected = "cycle_time must exceed clk2q")]
    fn rejects_bad_cycle_time() {
        let cfg = StimulusConfig {
            cycle_time: 1,
            ..StimulusConfig::random(10, 1, 0.5, 0)
        };
        generate(1, &cfg);
    }
}
