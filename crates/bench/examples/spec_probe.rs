//! Quick A/B probe for the speculative single-pass path on the
//! deep-pipeline workload: prints ns/level for Off vs Auto so path
//! optimizations can be iterated without a full criterion run.

use std::sync::Arc;
use std::time::Instant;

use gatspi_core::{Session, SimConfig, Speculation};
use gatspi_graph::{CircuitGraph, GraphOptions};
use gatspi_netlist::{CellLibrary, NetlistBuilder};
use gatspi_wave::Waveform;

fn main() {
    let depth = 3000usize;
    let mut b = NetlistBuilder::new("deep", CellLibrary::industry_mini());
    let mut prev = b.add_input("a").unwrap();
    for i in 0..depth {
        let net = b.add_net(&format!("n{i}")).unwrap();
        b.add_gate(&format!("u{i}"), "INV", &[prev], net).unwrap();
        prev = net;
    }
    b.mark_output(prev);
    let graph = Arc::new(
        CircuitGraph::build(&b.finish().unwrap(), None, &GraphOptions::default()).unwrap(),
    );
    let toggles: Vec<i32> = (1..100).map(|i| i * 100).collect();
    let stimuli = vec![Waveform::from_toggles(false, &toggles)];
    let duration = 10_000;
    let reps = 60usize;

    // Interleaved rounds so slow system-load drift hits both configs
    // equally; best-of keeps the least-disturbed round per config.
    let configs = [("twopass", Speculation::Off), ("spec", Speculation::Auto)];
    let sims: Vec<Session> = configs
        .iter()
        .map(|(_, spec)| {
            let sim = Session::new(
                Arc::clone(&graph),
                SimConfig::default()
                    .with_cycle_parallelism(4)
                    .with_window_align(100)
                    .with_fuse_threshold(0)
                    .with_speculation(*spec),
            );
            // Warm plan cache + predictor.
            for _ in 0..5 {
                sim.run(&stimuli, duration).unwrap();
            }
            sim
        })
        .collect();
    let mut best = [f64::MAX; 2];
    for _ in 0..8 {
        for (i, sim) in sims.iter().enumerate() {
            let t = Instant::now();
            for _ in 0..reps {
                std::hint::black_box(sim.run(&stimuli, duration).unwrap().total_toggles());
            }
            best[i] = best[i].min(t.elapsed().as_secs_f64() / reps as f64);
        }
    }
    for (i, (label, _)) in configs.iter().enumerate() {
        println!(
            "{label:8} {:10.0} ns/run  {:6.1} ns/level",
            best[i] * 1e9,
            best[i] * 1e9 / depth as f64
        );
    }
    println!("ratio    {:.3}x", best[0] / best[1]);
}
