//! Shared helpers for the GATSPI experiment harness.
//!
//! Every table and figure of the paper has a bench target in `benches/`
//! (run `cargo bench -p gatspi-bench --bench table2` etc., or all of them
//! via `cargo bench`). Each target regenerates the corresponding rows with
//! clearly labelled **measured** (host wall-clock) and **modeled**
//! (simulated-GPU performance model) numbers. `GATSPI_SCALE` scales the
//! workloads up from their CPU-friendly defaults.

use gatspi_core::{Session, SimConfig, SimResult};
use gatspi_gpu::MultiGpu;
use gatspi_refsim::{EventSimulator, RefConfig, RefResult};
use gatspi_workloads::suite::BuiltBenchmark;
use std::sync::Arc;

/// Renders an aligned text table: `header` then `rows`.
pub fn print_table(title: &str, header: &[&str], rows: &[Vec<String>]) {
    println!("\n=== {title} ===");
    let mut widths: Vec<usize> = header.iter().map(|h| h.len()).collect();
    for row in rows {
        for (i, cell) in row.iter().enumerate() {
            if i < widths.len() {
                widths[i] = widths[i].max(cell.len());
            }
        }
    }
    let line = |cells: &[String]| {
        let mut s = String::new();
        for (i, c) in cells.iter().enumerate() {
            s.push_str(&format!("{:width$}  ", c, width = widths[i]));
        }
        println!("{}", s.trim_end());
    };
    line(&header.iter().map(|s| s.to_string()).collect::<Vec<_>>());
    line(&widths.iter().map(|w| "-".repeat(*w)).collect::<Vec<_>>());
    for row in rows {
        line(row);
    }
}

/// Formats seconds with sensible precision.
pub fn secs(s: f64) -> String {
    if s >= 100.0 {
        format!("{s:.0}")
    } else if s >= 1.0 {
        format!("{s:.2}")
    } else if s >= 1e-3 {
        format!("{:.2}ms", s * 1e3)
    } else {
        format!("{:.0}us", s * 1e6)
    }
}

/// Formats a speedup factor.
pub fn speedup(x: f64) -> String {
    if x >= 100.0 {
        format!("{x:.0}X")
    } else {
        format!("{x:.1}X")
    }
}

/// The default GATSPI configuration for a benchmark: paper tuning
/// {32, 512, 64}, windows aligned to the benchmark's clock.
pub fn gatspi_config(b: &BuiltBenchmark) -> SimConfig {
    SimConfig::default().with_window_align(b.cycle_time)
}

/// Compiles a session for a built benchmark.
pub fn gatspi_session(b: &BuiltBenchmark, cfg: SimConfig) -> Session {
    Session::new(Arc::clone(&b.graph), cfg)
}

/// Runs GATSPI on a built benchmark (one-shot convenience over
/// [`gatspi_session`]).
pub fn run_gatspi(b: &BuiltBenchmark, cfg: SimConfig) -> SimResult {
    gatspi_session(b, cfg)
        .run(&b.stimuli, b.duration)
        .expect("gatspi run")
}

/// Runs the single-threaded event-driven baseline on a built benchmark.
pub fn run_baseline(b: &BuiltBenchmark) -> RefResult {
    let cfg = RefConfig {
        record_waveforms: false,
        ..RefConfig::default()
    };
    EventSimulator::new(&b.graph, cfg)
        .run(&b.stimuli, b.duration)
        .expect("baseline run")
}

/// Runs GATSPI across `n` simulated GPUs.
pub fn run_gatspi_multi(b: &BuiltBenchmark, cfg: SimConfig, gpus: &MultiGpu) -> SimResult {
    gatspi_session(b, cfg)
        .run_multi_gpu(gpus, &b.stimuli, b.duration)
        .expect("multi-gpu run")
}

/// Measured activity factor of a result (toggles / signal / cycle).
pub fn activity_factor(r: &SimResult, b: &BuiltBenchmark) -> f64 {
    r.activity_factor(b.cycle_time)
}

/// Writes a machine-readable benchmark artifact `BENCH_<target>.json` into
/// `GATSPI_BENCH_DIR` (default: the current directory) and logs the path.
/// Bench mains share this so the artifact location convention stays in one
/// place. (The criterion compat shim carries its own copy — it cannot
/// depend on this crate without a cycle.)
pub fn write_bench_artifact(target: &str, json: &str) {
    let dir = std::env::var("GATSPI_BENCH_DIR").unwrap_or_else(|_| ".".into());
    let path = format!("{dir}/BENCH_{target}.json");
    if let Err(e) = artifact::validate(json) {
        eprintln!("refusing to write malformed bench artifact {path}: {e}");
        return;
    }
    match std::fs::write(&path, json) {
        Ok(()) => println!("wrote {path}"),
        Err(e) => eprintln!("could not write {path}: {e}"),
    }
}

/// Validation of the `BENCH_*.json` cross-PR trajectory artifacts, so
/// bench emission cannot silently rot: a smoke test walks every artifact
/// in the repository root and fails on malformed entries (syntax errors,
/// missing `target`, non-finite or non-numeric measurements).
///
/// The parser is a deliberately small recursive-descent JSON reader — the
/// workspace is offline, so no serde — accepting exactly standard JSON.
pub mod artifact {
    /// A parsed JSON value (subset sufficient for bench artifacts).
    #[derive(Debug, Clone, PartialEq)]
    pub enum Json {
        /// `null`
        Null,
        /// `true` / `false`
        Bool(bool),
        /// Any JSON number (always finite: JSON has no NaN/inf syntax).
        Num(f64),
        /// String (escapes resolved).
        Str(String),
        /// Array.
        Arr(Vec<Json>),
        /// Object, insertion order preserved.
        Obj(Vec<(String, Json)>),
    }

    impl Json {
        /// Looks up a key of an object value.
        pub fn get(&self, key: &str) -> Option<&Json> {
            match self {
                Json::Obj(kv) => kv.iter().find(|(k, _)| k == key).map(|(_, v)| v),
                _ => None,
            }
        }
    }

    /// Parses a complete JSON document (trailing whitespace only).
    ///
    /// # Errors
    ///
    /// A human-readable description with the byte offset of the defect.
    pub fn parse(text: &str) -> Result<Json, String> {
        let bytes = text.as_bytes();
        let mut pos = 0usize;
        let value = parse_value(bytes, &mut pos)?;
        skip_ws(bytes, &mut pos);
        if pos != bytes.len() {
            return Err(format!("trailing content at byte {pos}"));
        }
        Ok(value)
    }

    /// Validates one bench artifact: well-formed JSON, a top-level object
    /// with a string `target`, and — when a `benchmarks` array is present
    /// (criterion-style artifacts) — each entry an object with a string
    /// `id` and a numeric `mean_ns`.
    ///
    /// # Errors
    ///
    /// A description of the first defect found.
    pub fn validate(text: &str) -> Result<(), String> {
        let doc = parse(text)?;
        let Json::Obj(_) = doc else {
            return Err("top level must be an object".into());
        };
        match doc.get("target") {
            Some(Json::Str(t)) if !t.is_empty() => {}
            _ => return Err("missing or non-string \"target\"".into()),
        }
        if let Some(benches) = doc.get("benchmarks") {
            let Json::Arr(entries) = benches else {
                return Err("\"benchmarks\" must be an array".into());
            };
            if entries.is_empty() {
                return Err("\"benchmarks\" must not be empty".into());
            }
            for (i, e) in entries.iter().enumerate() {
                match e.get("id") {
                    Some(Json::Str(id)) if !id.is_empty() => {}
                    _ => return Err(format!("benchmarks[{i}]: missing or non-string \"id\"")),
                }
                match e.get("mean_ns") {
                    Some(Json::Num(ns)) if *ns >= 0.0 => {}
                    _ => {
                        return Err(format!(
                            "benchmarks[{i}]: missing or non-numeric \"mean_ns\""
                        ))
                    }
                }
            }
        }
        Ok(())
    }

    fn skip_ws(b: &[u8], pos: &mut usize) {
        while *pos < b.len() && matches!(b[*pos], b' ' | b'\t' | b'\n' | b'\r') {
            *pos += 1;
        }
    }

    fn expect(b: &[u8], pos: &mut usize, lit: &str) -> Result<(), String> {
        if b[*pos..].starts_with(lit.as_bytes()) {
            *pos += lit.len();
            Ok(())
        } else {
            Err(format!("expected `{lit}` at byte {pos}", pos = *pos))
        }
    }

    fn parse_value(b: &[u8], pos: &mut usize) -> Result<Json, String> {
        skip_ws(b, pos);
        match b.get(*pos) {
            None => Err("unexpected end of input".into()),
            Some(b'n') => expect(b, pos, "null").map(|()| Json::Null),
            Some(b't') => expect(b, pos, "true").map(|()| Json::Bool(true)),
            Some(b'f') => expect(b, pos, "false").map(|()| Json::Bool(false)),
            Some(b'"') => parse_string(b, pos).map(Json::Str),
            Some(b'[') => parse_array(b, pos),
            Some(b'{') => parse_object(b, pos),
            Some(c) if c.is_ascii_digit() || *c == b'-' => parse_number(b, pos),
            Some(c) => Err(format!(
                "unexpected byte `{}` at {pos}",
                *c as char,
                pos = *pos
            )),
        }
    }

    fn parse_string(b: &[u8], pos: &mut usize) -> Result<String, String> {
        debug_assert_eq!(b[*pos], b'"');
        *pos += 1;
        let mut out = String::new();
        loop {
            match b.get(*pos) {
                None => return Err("unterminated string".into()),
                Some(b'"') => {
                    *pos += 1;
                    return Ok(out);
                }
                Some(b'\\') => {
                    *pos += 1;
                    match b.get(*pos) {
                        Some(b'"') => out.push('"'),
                        Some(b'\\') => out.push('\\'),
                        Some(b'/') => out.push('/'),
                        Some(b'n') => out.push('\n'),
                        Some(b't') => out.push('\t'),
                        Some(b'r') => out.push('\r'),
                        Some(b'b') => out.push('\u{8}'),
                        Some(b'f') => out.push('\u{c}'),
                        Some(b'u') => {
                            let hex = b
                                .get(*pos + 1..*pos + 5)
                                .and_then(|h| std::str::from_utf8(h).ok())
                                .ok_or("truncated \\u escape")?;
                            let cp = u32::from_str_radix(hex, 16)
                                .map_err(|_| "invalid \\u escape".to_string())?;
                            // Surrogates are rejected rather than paired:
                            // bench artifacts are ASCII.
                            out.push(char::from_u32(cp).ok_or("unpaired surrogate in \\u escape")?);
                            *pos += 4;
                        }
                        _ => return Err(format!("bad escape at byte {pos}", pos = *pos)),
                    }
                    *pos += 1;
                }
                Some(&c) if c < 0x20 => {
                    return Err(format!("raw control byte in string at {pos}", pos = *pos))
                }
                Some(_) => {
                    // Multi-byte UTF-8 sequences pass through verbatim.
                    let s = &b[*pos..];
                    let ch_len = match s[0] {
                        c if c < 0x80 => 1,
                        c if (0xC0..0xE0).contains(&c) => 2,
                        c if (0xE0..0xF0).contains(&c) => 3,
                        _ => 4,
                    };
                    let chunk = s.get(..ch_len).ok_or("truncated UTF-8 sequence")?;
                    out.push_str(
                        std::str::from_utf8(chunk).map_err(|_| "invalid UTF-8".to_string())?,
                    );
                    *pos += ch_len;
                }
            }
        }
    }

    fn parse_number(b: &[u8], pos: &mut usize) -> Result<Json, String> {
        // Strict RFC 8259 grammar: `-?(0|[1-9][0-9]*)(\.[0-9]+)?([eE][+-]?[0-9]+)?`
        // — Rust's f64 parser is laxer (`01`, `1.`, `.5` all parse), so the
        // shape is checked here before delegating for the value.
        let start = *pos;
        if b.get(*pos) == Some(&b'-') {
            *pos += 1;
        }
        match b.get(*pos) {
            Some(b'0') => *pos += 1,
            Some(c) if c.is_ascii_digit() => {
                while b.get(*pos).is_some_and(u8::is_ascii_digit) {
                    *pos += 1;
                }
            }
            _ => return Err(format!("invalid number at byte {start}")),
        }
        if b.get(*pos) == Some(&b'.') {
            *pos += 1;
            if !b.get(*pos).is_some_and(u8::is_ascii_digit) {
                return Err(format!(
                    "digit required after `.` at byte {pos}",
                    pos = *pos
                ));
            }
            while b.get(*pos).is_some_and(u8::is_ascii_digit) {
                *pos += 1;
            }
        }
        if matches!(b.get(*pos), Some(b'e' | b'E')) {
            *pos += 1;
            if matches!(b.get(*pos), Some(b'+' | b'-')) {
                *pos += 1;
            }
            if !b.get(*pos).is_some_and(u8::is_ascii_digit) {
                return Err(format!(
                    "digit required in exponent at byte {pos}",
                    pos = *pos
                ));
            }
            while b.get(*pos).is_some_and(u8::is_ascii_digit) {
                *pos += 1;
            }
        }
        let text = std::str::from_utf8(&b[start..*pos]).expect("ascii number");
        let n: f64 = text
            .parse()
            .map_err(|_| format!("invalid number `{text}` at byte {start}"))?;
        if !n.is_finite() {
            return Err(format!("non-finite number `{text}` at byte {start}"));
        }
        Ok(Json::Num(n))
    }

    fn parse_array(b: &[u8], pos: &mut usize) -> Result<Json, String> {
        *pos += 1; // '['
        let mut out = Vec::new();
        skip_ws(b, pos);
        if b.get(*pos) == Some(&b']') {
            *pos += 1;
            return Ok(Json::Arr(out));
        }
        loop {
            out.push(parse_value(b, pos)?);
            skip_ws(b, pos);
            match b.get(*pos) {
                Some(b',') => *pos += 1,
                Some(b']') => {
                    *pos += 1;
                    return Ok(Json::Arr(out));
                }
                _ => return Err(format!("expected `,` or `]` at byte {pos}", pos = *pos)),
            }
        }
    }

    fn parse_object(b: &[u8], pos: &mut usize) -> Result<Json, String> {
        *pos += 1; // '{'
        let mut out = Vec::new();
        skip_ws(b, pos);
        if b.get(*pos) == Some(&b'}') {
            *pos += 1;
            return Ok(Json::Obj(out));
        }
        loop {
            skip_ws(b, pos);
            if b.get(*pos) != Some(&b'"') {
                return Err(format!("expected object key at byte {pos}", pos = *pos));
            }
            let key = parse_string(b, pos)?;
            skip_ws(b, pos);
            expect(b, pos, ":")?;
            let value = parse_value(b, pos)?;
            out.push((key, value));
            skip_ws(b, pos);
            match b.get(*pos) {
                Some(b',') => *pos += 1,
                Some(b'}') => {
                    *pos += 1;
                    return Ok(Json::Obj(out));
                }
                _ => return Err(format!("expected `,` or `}}` at byte {pos}", pos = *pos)),
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::artifact::{parse, validate, Json};
    use super::*;

    #[test]
    fn json_parser_round_trips_artifact_shapes() {
        let doc = parse(
            r#"{"target": "t", "unit": "ns", "n": -1.5e3, "ok": true,
                "none": null, "list": [1, 2, {"x": "y\n"}]}"#,
        )
        .unwrap();
        assert_eq!(doc.get("target"), Some(&Json::Str("t".into())));
        assert_eq!(doc.get("n"), Some(&Json::Num(-1500.0)));
        assert_eq!(doc.get("none"), Some(&Json::Null));
        let Some(Json::Arr(list)) = doc.get("list") else {
            panic!("list missing");
        };
        assert_eq!(list[2].get("x"), Some(&Json::Str("y\n".into())));
    }

    #[test]
    fn json_parser_rejects_malformed_documents() {
        for bad in [
            "",
            "{",
            "{\"a\": }",
            "{\"a\": 1,}",
            "{\"a\": 1} trailing",
            "{\"a\": 01x}",
            "{\"a\": 01}",
            "{\"a\": 1.}",
            "{\"a\": .5}",
            "{\"a\": 1e}",
            "{\"a\": \"unterminated}",
            "[1 2]",
            "{'single': 1}",
        ] {
            assert!(parse(bad).is_err(), "must reject: {bad:?}");
        }
    }

    #[test]
    fn artifact_validation_enforces_schema() {
        // The real criterion-style shape passes.
        validate(
            r#"{"target": "kernel_micro", "unit": "ns_per_iter",
                "benchmarks": [{"id": "g/f/1", "mean_ns": 12.5,
                                "samples": 20, "iters_per_sample": 100}]}"#,
        )
        .unwrap();
        // The flat glitch-flow shape passes (no benchmarks array).
        validate(r#"{"target": "glitch_flow", "gates": 3840, "saving_pct": 4.28}"#).unwrap();
        // Defects are rejected with a reason.
        assert!(validate("[1, 2]").is_err(), "non-object top level");
        assert!(validate(r#"{"unit": "ns"}"#).is_err(), "missing target");
        assert!(
            validate(r#"{"target": "t", "benchmarks": [{"mean_ns": 1}]}"#).is_err(),
            "entry without id"
        );
        assert!(
            validate(r#"{"target": "t", "benchmarks": [{"id": "a", "mean_ns": "fast"}]}"#).is_err(),
            "non-numeric mean"
        );
        assert!(
            validate(r#"{"target": "t", "benchmarks": []}"#).is_err(),
            "empty benchmark list"
        );
    }

    /// The CI smoke check: every `BENCH_*.json` trajectory artifact in the
    /// repository root must stay parseable and schema-conformant, so bench
    /// emission cannot silently rot between PRs.
    #[test]
    fn repo_bench_artifacts_are_well_formed() {
        let root = std::path::Path::new(env!("CARGO_MANIFEST_DIR"))
            .join("..")
            .join("..");
        let mut checked = 0usize;
        for entry in std::fs::read_dir(&root).expect("repo root readable") {
            let path = entry.expect("dir entry").path();
            let name = path.file_name().and_then(|n| n.to_str()).unwrap_or("");
            if !(name.starts_with("BENCH_") && name.ends_with(".json")) {
                continue;
            }
            let text = std::fs::read_to_string(&path).expect("artifact readable");
            validate(&text).unwrap_or_else(|e| panic!("{name}: {e}"));
            checked += 1;
        }
        assert!(
            checked >= 2,
            "expected the kernel_micro and glitch_flow artifacts, found {checked}"
        );
    }

    #[test]
    fn formatting() {
        assert_eq!(secs(0.00001), "10us");
        assert_eq!(secs(0.25), "250.00ms");
        assert_eq!(secs(2.5), "2.50");
        assert_eq!(secs(250.0), "250");
        // 3.26 and not 3.14159: clippy's approx_constant lint (deny) trips
        // on PI-adjacent literals.
        assert_eq!(speedup(3.26), "3.3X");
        assert_eq!(speedup(449.0), "449X");
    }
}
