//! Shared helpers for the GATSPI experiment harness.
//!
//! Every table and figure of the paper has a bench target in `benches/`
//! (run `cargo bench -p gatspi-bench --bench table2` etc., or all of them
//! via `cargo bench`). Each target regenerates the corresponding rows with
//! clearly labelled **measured** (host wall-clock) and **modeled**
//! (simulated-GPU performance model) numbers. `GATSPI_SCALE` scales the
//! workloads up from their CPU-friendly defaults.

use gatspi_core::{Session, SimConfig, SimResult};
use gatspi_gpu::MultiGpu;
use gatspi_refsim::{EventSimulator, RefConfig, RefResult};
use gatspi_workloads::suite::BuiltBenchmark;
use std::sync::Arc;

/// Renders an aligned text table: `header` then `rows`.
pub fn print_table(title: &str, header: &[&str], rows: &[Vec<String>]) {
    println!("\n=== {title} ===");
    let mut widths: Vec<usize> = header.iter().map(|h| h.len()).collect();
    for row in rows {
        for (i, cell) in row.iter().enumerate() {
            if i < widths.len() {
                widths[i] = widths[i].max(cell.len());
            }
        }
    }
    let line = |cells: &[String]| {
        let mut s = String::new();
        for (i, c) in cells.iter().enumerate() {
            s.push_str(&format!("{:width$}  ", c, width = widths[i]));
        }
        println!("{}", s.trim_end());
    };
    line(&header.iter().map(|s| s.to_string()).collect::<Vec<_>>());
    line(&widths.iter().map(|w| "-".repeat(*w)).collect::<Vec<_>>());
    for row in rows {
        line(row);
    }
}

/// Formats seconds with sensible precision.
pub fn secs(s: f64) -> String {
    if s >= 100.0 {
        format!("{s:.0}")
    } else if s >= 1.0 {
        format!("{s:.2}")
    } else if s >= 1e-3 {
        format!("{:.2}ms", s * 1e3)
    } else {
        format!("{:.0}us", s * 1e6)
    }
}

/// Formats a speedup factor.
pub fn speedup(x: f64) -> String {
    if x >= 100.0 {
        format!("{x:.0}X")
    } else {
        format!("{x:.1}X")
    }
}

/// The default GATSPI configuration for a benchmark: paper tuning
/// {32, 512, 64}, windows aligned to the benchmark's clock.
pub fn gatspi_config(b: &BuiltBenchmark) -> SimConfig {
    SimConfig::default().with_window_align(b.cycle_time)
}

/// Compiles a session for a built benchmark.
pub fn gatspi_session(b: &BuiltBenchmark, cfg: SimConfig) -> Session {
    Session::new(Arc::clone(&b.graph), cfg)
}

/// Runs GATSPI on a built benchmark (one-shot convenience over
/// [`gatspi_session`]).
pub fn run_gatspi(b: &BuiltBenchmark, cfg: SimConfig) -> SimResult {
    gatspi_session(b, cfg)
        .run(&b.stimuli, b.duration)
        .expect("gatspi run")
}

/// Runs the single-threaded event-driven baseline on a built benchmark.
pub fn run_baseline(b: &BuiltBenchmark) -> RefResult {
    let cfg = RefConfig {
        record_waveforms: false,
        ..RefConfig::default()
    };
    EventSimulator::new(&b.graph, cfg)
        .run(&b.stimuli, b.duration)
        .expect("baseline run")
}

/// Runs GATSPI across `n` simulated GPUs.
pub fn run_gatspi_multi(b: &BuiltBenchmark, cfg: SimConfig, gpus: &MultiGpu) -> SimResult {
    gatspi_session(b, cfg)
        .run_multi_gpu(gpus, &b.stimuli, b.duration)
        .expect("multi-gpu run")
}

/// Measured activity factor of a result (toggles / signal / cycle).
pub fn activity_factor(r: &SimResult, b: &BuiltBenchmark) -> f64 {
    r.activity_factor(b.cycle_time)
}

/// Writes a machine-readable benchmark artifact `BENCH_<target>.json` into
/// `GATSPI_BENCH_DIR` (default: the current directory) and logs the path.
/// Bench mains share this so the artifact location convention stays in one
/// place. (The criterion compat shim carries its own copy — it cannot
/// depend on this crate without a cycle.)
pub fn write_bench_artifact(target: &str, json: &str) {
    let dir = std::env::var("GATSPI_BENCH_DIR").unwrap_or_else(|_| ".".into());
    let path = format!("{dir}/BENCH_{target}.json");
    match std::fs::write(&path, json) {
        Ok(()) => println!("wrote {path}"),
        Err(e) => eprintln!("could not write {path}: {e}"),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn formatting() {
        assert_eq!(secs(0.00001), "10us");
        assert_eq!(secs(0.25), "250.00ms");
        assert_eq!(secs(2.5), "2.50");
        assert_eq!(secs(250.0), "250");
        // 3.26 and not 3.14159: clippy's approx_constant lint (deny) trips
        // on PI-adjacent literals.
        assert_eq!(speedup(3.26), "3.3X");
        assert_eq!(speedup(449.0), "449X");
    }
}
