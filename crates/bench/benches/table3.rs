//! Table 3: GATSPI vs its "OpenMP-equivalent" CPU implementation — the
//! identical two-pass algorithm executed by plain host threads.

use gatspi_bench::{gatspi_config, print_table, run_gatspi, secs, speedup};
use gatspi_core::Gatspi;
use gatspi_workloads::suite::representative_suite;
use std::sync::Arc;

fn main() {
    let host = std::thread::available_parallelism()
        .map(|n| n.get())
        .unwrap_or(4);
    let mut rows = Vec::new();
    for def in representative_suite() {
        let b = def.build();
        let g = run_gatspi(&b, gatspi_config(&b));
        // The paper uses 32/40/64 CPUs; cap at this host's cores.
        let threads = host.clamp(2, 32);
        let sim = Gatspi::new(Arc::clone(&b.graph), gatspi_config(&b));
        let cpu = sim
            .run_cpu(&b.stimuli, b.duration, threads)
            .expect("cpu run");
        rows.push(vec![
            b.label(),
            format!(
                "{} ({})",
                secs(g.kernel_profile.modeled_seconds),
                speedup(
                    cpu.kernel_profile.wall_seconds / g.kernel_profile.modeled_seconds.max(1e-12)
                )
            ),
            secs(cpu.kernel_profile.wall_seconds),
            threads.to_string(),
        ]);
    }
    print_table(
        "Table 3: GATSPI (modeled V100 kernel) vs OpenMP-equivalent CPU kernel (measured)",
        &[
            "Design(Testbench)",
            "GATSPI Kernel (speedup)",
            "CPU Kernel(s)",
            "# CPUs Used",
        ],
        &rows,
    );
}
