//! Table 3: GATSPI vs its "OpenMP-equivalent" CPU implementation — the
//! identical two-pass algorithm executed by plain host threads.

use gatspi_bench::{gatspi_config, gatspi_session, print_table, secs, speedup};
use gatspi_workloads::suite::representative_suite;

fn main() {
    let host = std::thread::available_parallelism()
        .map(|n| n.get())
        .unwrap_or(4);
    let mut rows = Vec::new();
    for def in representative_suite() {
        let b = def.build();
        // One compiled session serves both regimes (the plan is shared).
        let sim = gatspi_session(&b, gatspi_config(&b));
        let g = sim.run(&b.stimuli, b.duration).expect("gatspi run");
        // The paper uses 32/40/64 CPUs; cap at this host's cores.
        let threads = host.clamp(2, 32);
        let cpu = sim
            .run_cpu(&b.stimuli, b.duration, threads)
            .expect("cpu run");
        rows.push(vec![
            b.label(),
            format!(
                "{} ({})",
                secs(g.kernel_profile.modeled_seconds),
                speedup(
                    cpu.kernel_profile.wall_seconds / g.kernel_profile.modeled_seconds.max(1e-12)
                )
            ),
            secs(cpu.kernel_profile.wall_seconds),
            threads.to_string(),
        ]);
    }
    print_table(
        "Table 3: GATSPI (modeled V100 kernel) vs OpenMP-equivalent CPU kernel (measured)",
        &[
            "Design(Testbench)",
            "GATSPI Kernel (speedup)",
            "CPU Kernel(s)",
            "# CPUs Used",
        ],
        &rows,
    );
}
