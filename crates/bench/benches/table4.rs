//! Table 4: GATSPI vs a multi-threaded commercial-style baseline (windowed
//! parallel event-driven simulation).

use gatspi_bench::{gatspi_config, print_table, run_baseline, run_gatspi, secs, speedup};
use gatspi_refsim::{run_parallel, RefConfig};
use gatspi_workloads::suite::table2_suite;

fn main() {
    let suite = table2_suite();
    let host = std::thread::available_parallelism()
        .map(|n| n.get())
        .unwrap_or(4);
    let threads = host.clamp(2, 8);
    let mut rows = Vec::new();
    for def in [suite[6].clone(), suite[3].clone()] {
        let b = def.build();
        let base = run_baseline(&b);
        let multi = run_parallel(
            &b.graph,
            RefConfig {
                record_waveforms: false,
                ..RefConfig::default()
            },
            &b.stimuli,
            b.duration,
            threads,
            b.cycle_time,
        )
        .expect("parallel baseline");
        let g = run_gatspi(&b, gatspi_config(&b));
        let modeled_app = g.app_profile.total_seconds();
        rows.push(vec![
            b.label(),
            format!(
                "{} ({} vs MT)",
                secs(g.wall_seconds),
                speedup(multi.wall_seconds / g.wall_seconds.max(1e-12))
            ),
            format!(
                "{} ({} vs MT)",
                secs(modeled_app),
                speedup(multi.wall_seconds / modeled_app.max(1e-12))
            ),
            secs(base.wall_seconds),
            format!("{} ({}T)", secs(multi.wall_seconds), threads),
        ]);
    }
    print_table(
        "Table 4: GATSPI app runtime vs single- and multi-threaded baseline (measured)",
        &[
            "Design(Testbench)",
            "GATSPI App meas (speedup)",
            "GATSPI App modeled (speedup)",
            "Baseline App(s)",
            "Multi-thread App(s)",
        ],
        &rows,
    );
}
