//! Criterion micro-benchmarks of the Algorithm 1 kernel itself (per-gate
//! simulation cost vs input activity and fan-in) plus the engine's
//! deep-pipeline hot path, where per-level launch/bookkeeping overhead —
//! not kernel work — dominates. The run emits `BENCH_kernel_micro.json`
//! so successive PRs can compare measurements.

use std::sync::Arc;

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use gatspi_core::{
    simulate_gate, GateDesc, GateKernelInput, KernelMode, Session, SimConfig, SimFeatures,
    Speculation,
};
use gatspi_gpu::{DeviceMemory, LaneCounters};
use gatspi_graph::{CircuitGraph, GraphOptions};
use gatspi_netlist::{CellLibrary, NetlistBuilder};
use gatspi_wave::{Waveform, WaveformArena};
use gatspi_workloads::circuits::{random_logic, RandomLogicConfig};
use gatspi_workloads::stimuli::{generate, StimulusConfig};

fn setup(cell: &str, n_in: usize, toggles: usize) -> (CircuitGraph, DeviceMemory, Vec<u32>) {
    let lib = CellLibrary::industry_mini();
    let mut b = NetlistBuilder::new("k", lib);
    let ins: Vec<_> = (0..n_in)
        .map(|i| b.add_input(&format!("i{i}")).unwrap())
        .collect();
    let y = b.add_output("y").unwrap();
    b.add_gate("u", cell, &ins, y).unwrap();
    let graph = CircuitGraph::build(&b.finish().unwrap(), None, &GraphOptions::default()).unwrap();
    let mut arena = WaveformArena::with_capacity(64 * 1024);
    let mut ptrs = Vec::new();
    for k in 0..n_in {
        let times: Vec<i32> = (1..=toggles as i32).map(|i| i * 10 + k as i32).collect();
        let w = Waveform::from_toggles(false, &times);
        ptrs.push(arena.push(&w).unwrap().offset);
    }
    let mem = DeviceMemory::new(256 * 1024);
    mem.h2d(0, arena.data());
    (graph, mem, ptrs)
}

/// Builds the descriptor-based kernel context for gate 0 of `graph`, the
/// same flat tables the schedule bakes at compile time.
fn kernel_input<'a>(
    graph: &'a CircuitGraph,
    desc: GateDesc,
    net_delays: &'a [(i32, i32)],
    mem: &'a DeviceMemory,
    in_ptrs: &'a [u32],
    avg_delays: &'a [(i32, i32)],
) -> GateKernelInput<'a> {
    GateKernelInput {
        desc,
        tts: graph.truth_tables_flat(),
        luts: graph.delay_luts_flat(),
        net_delays,
        mem,
        in_ptrs,
        features: SimFeatures::default(),
        ppp: 100,
        avg_delays,
    }
}

fn bench_kernel(c: &mut Criterion) {
    let mut group = c.benchmark_group("algorithm1_kernel");
    for (cell, n_in) in [("INV", 1usize), ("NAND2", 2), ("AOI22", 4)] {
        for toggles in [16usize, 256] {
            let (graph, mem, ptrs) = setup(cell, n_in, toggles);
            let avg = vec![(1, 1); n_in];
            let net = vec![(0, 0); n_in];
            let desc = GateDesc::of(&graph, 0);
            group.bench_with_input(
                BenchmarkId::new(format!("{cell}_count"), toggles),
                &toggles,
                |bench, _| {
                    let input = kernel_input(&graph, desc, &net, &mem, &ptrs, &avg);
                    bench.iter(|| {
                        let mut lane = LaneCounters::default();
                        simulate_gate(&input, KernelMode::Count, &mut lane)
                    });
                },
            );
            group.bench_with_input(
                BenchmarkId::new(format!("{cell}_store"), toggles),
                &toggles,
                |bench, _| {
                    let input = kernel_input(&graph, desc, &net, &mem, &ptrs, &avg);
                    bench.iter(|| {
                        let mut lane = LaneCounters::default();
                        simulate_gate(
                            &input,
                            KernelMode::Store {
                                out_base: 128 * 1024,
                            },
                            &mut lane,
                        )
                    });
                },
            );
        }
    }
    group.finish();
}

/// Per-gate cost of the speculative single-pass protocol vs the two-pass
/// reference: a hit (reservation fits, one invocation total), a miss (the
/// speculative pass degrades to counting and a Store repair re-runs the
/// gate), and the unconditional Count + Store pair speculation replaces.
fn bench_single_pass(c: &mut Criterion) {
    let mut group = c.benchmark_group("single_pass");
    for toggles in [16usize, 256] {
        let (graph, mem, ptrs) = setup("NAND2", 2, toggles);
        let avg = vec![(1, 1); 2];
        let net = vec![(0, 0); 2];
        let desc = GateDesc::of(&graph, 0);
        let out_base = 128 * 1024;
        // A generous reservation always fits; a 4-word one always
        // overflows at these activity levels.
        for (label, cap) in [("spec_hit", 8 * toggles + 8), ("spec_repair", 4)] {
            group.bench_with_input(BenchmarkId::new(label, toggles), &toggles, |bench, _| {
                let input = kernel_input(&graph, desc, &net, &mem, &ptrs, &avg);
                bench.iter(|| {
                    let mut lane = LaneCounters::default();
                    let out =
                        simulate_gate(&input, KernelMode::Speculative { out_base, cap }, &mut lane);
                    if out.words() as usize > cap {
                        simulate_gate(&input, KernelMode::Store { out_base }, &mut lane)
                    } else {
                        out
                    }
                });
            });
        }
        group.bench_with_input(
            BenchmarkId::new("two_pass", toggles),
            &toggles,
            |bench, _| {
                let input = kernel_input(&graph, desc, &net, &mem, &ptrs, &avg);
                bench.iter(|| {
                    let mut lane = LaneCounters::default();
                    simulate_gate(&input, KernelMode::Count, &mut lane);
                    simulate_gate(&input, KernelMode::Store { out_base }, &mut lane)
                });
            },
        );
    }
    group.finish();
}

/// Deep, narrow pipeline with dense activity: thousands of one-gate
/// levels, each re-walking a ~100-toggle waveform, so Algorithm 1 kernel
/// work dominates — the regime where retiring the count pass pays.
/// `fused` runs the default fused-level schedule; `unfused` pins the
/// paper's original two-launches-per-level schedule; the `_twopass`
/// variants are the simulate-twice reference `bench-check` holds the
/// speculative default against.
fn bench_deep_pipeline(c: &mut Criterion) {
    let depth = 3000usize;
    let mut b = NetlistBuilder::new("deep", CellLibrary::industry_mini());
    let mut prev = b.add_input("a").unwrap();
    for i in 0..depth {
        let net = b.add_net(&format!("n{i}")).unwrap();
        b.add_gate(&format!("u{i}"), "INV", &[prev], net).unwrap();
        prev = net;
    }
    b.mark_output(prev);
    let graph = Arc::new(
        CircuitGraph::build(&b.finish().unwrap(), None, &GraphOptions::default()).unwrap(),
    );
    let toggles: Vec<i32> = (1..100).map(|i| i * 100).collect();
    let stimuli = vec![Waveform::from_toggles(false, &toggles)];
    let duration = 10_000;

    let mut group = c.benchmark_group("deep_pipeline_resim");
    // `fused`/`unfused` run the shipping default (speculative single-pass,
    // `Speculation::Auto`); the `_twopass` variants pin `Speculation::Off`
    // as the paper's simulate-twice reference at the same schedule shape.
    for (label, threshold, spec) in [
        (
            "fused",
            SimConfig::default().fuse_threshold,
            Speculation::Auto,
        ),
        ("unfused", 0, Speculation::Auto),
        (
            "fused_twopass",
            SimConfig::default().fuse_threshold,
            Speculation::Off,
        ),
        ("unfused_twopass", 0, Speculation::Off),
    ] {
        let sim = Session::new(
            Arc::clone(&graph),
            SimConfig::default()
                .with_cycle_parallelism(4)
                .with_window_align(100)
                .with_fuse_threshold(threshold)
                .with_speculation(spec),
        );
        let launches = sim.run(&stimuli, duration).unwrap().app_profile.launches;
        group.bench_with_input(
            BenchmarkId::new(label, format!("depth{depth}_launches{launches}")),
            &(),
            |bench, ()| bench.iter(|| sim.run(&stimuli, duration).unwrap().total_toggles()),
        );
    }
    group.finish();
}

/// The publish path itself: forced-serial pipeline (`pipeline_depth = 1`,
/// every level's host publish completes before the next level launches)
/// vs the overlapped default (`pipeline_depth = 2`). `narrow` is a deep
/// chain of one-gate levels (fused launches; publish overlaps phases
/// inside the launch), `wide` is shallow random logic with thousand-gate
/// levels (classic two-launch path; folded store-pass publication plus
/// publish fan-out across host workers).
fn bench_publish_path(c: &mut Criterion) {
    let mut group = c.benchmark_group("publish_path");

    // --- Narrow: 2000 levels × 1 gate × 4 windows.
    let depth = 2000usize;
    let mut b = NetlistBuilder::new("narrow", CellLibrary::industry_mini());
    let mut prev = b.add_input("a").unwrap();
    for i in 0..depth {
        let net = b.add_net(&format!("n{i}")).unwrap();
        b.add_gate(&format!("u{i}"), "INV", &[prev], net).unwrap();
        prev = net;
    }
    b.mark_output(prev);
    let narrow = Arc::new(
        CircuitGraph::build(&b.finish().unwrap(), None, &GraphOptions::default()).unwrap(),
    );
    let toggles: Vec<i32> = (1..8).map(|i| i * 1200).collect();
    let narrow_stim = vec![Waveform::from_toggles(false, &toggles)];
    let narrow_duration = 10_000;

    // --- Wide: ~4 levels × ~1500 gates × 32 windows.
    let netlist = random_logic(&RandomLogicConfig {
        gates: 6000,
        inputs: 64,
        depth: 4,
        output_fraction: 0.1,
        seed: 42,
    });
    let wide = Arc::new(CircuitGraph::build(&netlist, None, &GraphOptions::default()).unwrap());
    let cycle = 400;
    let cycles = 16usize;
    let wide_stim = generate(
        wide.primary_inputs().len(),
        &StimulusConfig::random(cycles, cycle, 0.3, 7),
    );
    let wide_duration = cycle * cycles as i32;

    for (label, pipeline_depth) in [("serial", 1usize), ("overlap", 2)] {
        let sim = Session::new(
            Arc::clone(&narrow),
            SimConfig::default()
                .with_cycle_parallelism(4)
                .with_window_align(100)
                .with_pipeline_depth(pipeline_depth),
        );
        group.bench_with_input(
            BenchmarkId::new(format!("narrow_{label}"), format!("levels{depth}")),
            &(),
            |bench, ()| {
                bench.iter(|| {
                    sim.run(&narrow_stim, narrow_duration)
                        .unwrap()
                        .total_toggles()
                })
            },
        );

        let sim = Session::new(
            Arc::clone(&wide),
            SimConfig::default()
                .with_window_align(cycle)
                .with_pipeline_depth(pipeline_depth),
        );
        group.bench_with_input(
            BenchmarkId::new(format!("wide_{label}"), "levels4"),
            &(),
            |bench, ()| bench.iter(|| sim.run(&wide_stim, wide_duration).unwrap().total_toggles()),
        );
    }
    group.finish();
}

/// The phased-launch driver itself, isolated from kernel work: per-phase
/// overhead of the pooled chase-the-cursor protocol on wide fused groups,
/// a reference loop using two full `Barrier` rounds per phase at the same
/// worker count (the protocol the cursor driver replaced — sync cost
/// only), and the all-narrow serial fast path.
fn bench_phase_driver(c: &mut Criterion) {
    use gatspi_gpu::sync::atomic::{AtomicU64, Ordering};
    use gatspi_gpu::{Device, DeviceSpec, LaunchConfig};
    use std::sync::Barrier;

    let mut group = c.benchmark_group("phase_driver");
    let dev = Device::new(DeviceSpec::v100(), 0);
    let workers = dev.workers();
    let n_phases = 32usize;

    // Wide fused group: 32 phases × 8192 threads engage the worker pool.
    let wide = vec![8192usize; n_phases];
    group.bench_with_input(
        BenchmarkId::new("cursor_driver", format!("wide{n_phases}x8192_w{workers}")),
        &(),
        |b, ()| {
            b.iter(|| {
                let boundaries = AtomicU64::new(0);
                dev.launch_phased(
                    "pd_wide",
                    &LaunchConfig::for_threads(n_phases * 8192),
                    &wide,
                    |_p, _tid, _lane| {},
                    |_p| {
                        boundaries.fetch_add(1, Ordering::Relaxed);
                        Some(0)
                    },
                );
                boundaries.load(Ordering::Relaxed)
            })
        },
    );

    // Reference: the same phase count synchronized with two full Barrier
    // rounds per phase across the same workers — the pre-cursor protocol's
    // synchronization cost, with no kernel work at all.
    group.bench_with_input(
        BenchmarkId::new("barrier_reference", format!("sync{n_phases}_w{workers}")),
        &(),
        |b, ()| {
            b.iter(|| {
                let barrier = Barrier::new(workers);
                let boundaries = AtomicU64::new(0);
                std::thread::scope(|s| {
                    for _ in 0..workers {
                        s.spawn(|| {
                            for _p in 0..n_phases {
                                if barrier.wait().is_leader() {
                                    boundaries.fetch_add(1, Ordering::Relaxed);
                                }
                                barrier.wait();
                            }
                        });
                    }
                });
                boundaries.load(Ordering::Relaxed)
            })
        },
    );

    // Classic (non-fused) two-pass launch: the pooled driver runs both
    // passes of one level inside a single `launch_phased` dispatch, vs the
    // original protocol of two independent `launch` calls with a full pool
    // spin-up and tear-down each.
    let level_threads = 8192usize;
    group.bench_with_input(
        BenchmarkId::new("classic_two_pass_pooled", format!("threads{level_threads}")),
        &(),
        |b, ()| {
            b.iter(|| {
                let bases = AtomicU64::new(0);
                dev.launch_two_pass(
                    "pd_classic",
                    &LaunchConfig::for_threads(level_threads),
                    |_store, _tid, _lane| {},
                    || {
                        bases.fetch_add(1, Ordering::Relaxed);
                        Some(0)
                    },
                );
                bases.load(Ordering::Relaxed)
            })
        },
    );
    group.bench_with_input(
        BenchmarkId::new("classic_two_pass_split", format!("threads{level_threads}")),
        &(),
        |b, ()| {
            b.iter(|| {
                let bases = AtomicU64::new(0);
                let cfg = LaunchConfig::for_threads(level_threads);
                dev.launch("pd_classic_count", &cfg, |_tid, _lane| {});
                bases.fetch_add(1, Ordering::Relaxed);
                dev.launch("pd_classic_store", &cfg, |_tid, _lane| {});
                bases.load(Ordering::Relaxed)
            })
        },
    );

    // All-narrow fused group: 512 phases × 64 threads take the serial
    // fast path (no pool, no cross-worker hand-off at all).
    let narrow = vec![64usize; 512];
    group.bench_with_input(
        BenchmarkId::new("serial_fast_path", "narrow512x64"),
        &(),
        |b, ()| {
            b.iter(|| {
                let boundaries = AtomicU64::new(0);
                dev.launch_phased(
                    "pd_narrow",
                    &LaunchConfig::for_threads(512 * 64),
                    &narrow,
                    |_p, _tid, _lane| {},
                    |_p| {
                        boundaries.fetch_add(1, Ordering::Relaxed);
                        Some(0)
                    },
                );
                boundaries.load(Ordering::Relaxed)
            })
        },
    );
    group.finish();
}

criterion_group! {
    name = benches;
    config = Criterion::default().sample_size(20).measurement_time(std::time::Duration::from_secs(2));
    targets = bench_kernel, bench_single_pass, bench_deep_pipeline, bench_publish_path, bench_phase_driver
}
criterion_main!(benches);
