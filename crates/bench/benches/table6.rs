//! Table 6: kernel profiling across the GPU "hyperparameters"
//! {cycle parallelism, threads/block, registers/thread}, reproducing the
//! paper's Nsight metric sweep on the representative benchmarks.

use gatspi_bench::{print_table, run_gatspi, secs};
use gatspi_core::SimConfig;
use gatspi_workloads::suite::representative_suite;

fn main() {
    let reps = representative_suite();
    // (benchmark index, cycle parallelism, threads/block, regs/thread) —
    // the paper's sweep rows.
    let sweep: [(usize, usize, u32, u32); 9] = [
        (0, 32, 512, 64),
        (0, 128, 512, 64),
        (0, 256, 512, 64),
        (1, 32, 512, 64),
        (2, 32, 512, 64),
        (2, 64, 512, 64),
        (2, 128, 512, 64),
        (2, 32, 1024, 64),
        (2, 32, 512, 32),
    ];
    let mut rows = Vec::new();
    for (bi, cp, tpb, regs) in sweep {
        let b = reps[bi].build();
        let cfg = SimConfig {
            cycle_parallelism: cp,
            threads_per_block: tpb,
            regs_per_thread: regs,
            ..SimConfig::default().with_window_align(b.cycle_time)
        };
        let g = run_gatspi(&b, cfg);
        let k = &g.kernel_profile;
        rows.push(vec![
            b.label(),
            format!("{{{cp},{tpb},{regs}}}"),
            format!("{}", k.threads),
            format!(
                "{:.1}/{:.1}",
                k.compute_throughput_pct, k.memory_throughput_pct
            ),
            format!("{:.1}", k.occupancy_pct),
            format!("{:.1}", k.dram_throughput / 1e9),
            format!("{:.1}/{:.1}", k.l1_hit_pct, k.l2_hit_pct),
            format!("{:.1}", k.cycles_per_issue),
            format!("{:.0}", k.uncoalesced_pct),
            format!("{:.1}M", k.elapsed_cycles as f64 / 1e6),
            secs(k.modeled_seconds),
        ]);
    }
    print_table(
        "Table 6: kernel profile vs {cycle parallelism, threads/block, regs/thread} (modeled V100)",
        &[
            "Design(Testbench)",
            "Config",
            "MaxThreads",
            "Cmp/Mem Thru(%)",
            "Occup(%)",
            "DRAM GB/s",
            "L1/L2 Hit(%)",
            "Cyc/Issue",
            "Uncoal(%)",
            "GPU Cycles",
            "Latency",
        ],
        &rows,
    );
}
