//! Streaming-sink throughput: the cost of producing VCD/SAIF output
//! *during* the run (bounded memory) versus the post-hoc whole-document
//! writers over a spilled run. The run emits `BENCH_sink_throughput.json`
//! so successive PRs can compare measurements.

use std::sync::Arc;

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use gatspi_core::{RunOptions, SaifSink, Session, SimConfig, VcdSink};
use gatspi_graph::{CircuitGraph, GraphOptions, SignalId};
use gatspi_wave::vcd;
use gatspi_workloads::circuits::{random_logic, RandomLogicConfig};
use gatspi_workloads::sdfgen::{attach_sdf, SdfGenConfig};
use gatspi_workloads::stimuli::{generate, StimulusConfig};

struct Setup {
    session: Session,
    graph: Arc<CircuitGraph>,
    stimuli: Vec<gatspi_wave::Waveform>,
    duration: i32,
}

fn setup(gates: usize) -> Setup {
    let netlist = random_logic(&RandomLogicConfig {
        gates,
        inputs: 24,
        depth: 6,
        output_fraction: 0.1,
        seed: 0x51AB,
    });
    let sdf = attach_sdf(
        &netlist,
        &SdfGenConfig {
            seed: 0xD00D,
            ..SdfGenConfig::default()
        },
    );
    let graph =
        Arc::new(CircuitGraph::build(&netlist, Some(&sdf), &GraphOptions::default()).unwrap());
    let cycles = 16usize;
    let cycle = 400i32;
    let stimuli = generate(
        graph.primary_inputs().len(),
        &StimulusConfig::random(cycles, cycle, 0.4, 0x99),
    );
    let session = Session::new(
        Arc::clone(&graph),
        SimConfig::small()
            .with_cycle_parallelism(8)
            .with_window_align(cycle),
    );
    Setup {
        session,
        graph,
        stimuli,
        duration: cycle * cycles as i32,
    }
}

fn bench_sinks(c: &mut Criterion) {
    let mut group = c.benchmark_group("sink_throughput");
    for gates in [500usize, 4000] {
        let s = setup(gates);
        let names: Vec<String> = (0..s.graph.n_signals())
            .map(|k| s.graph.signal_name(SignalId(k as u32)).to_string())
            .collect();
        let name_refs: Vec<&str> = names.iter().map(String::as_str).collect();

        // Baseline: the run alone, no output path at all.
        group.bench_with_input(BenchmarkId::new("run_only", gates), &gates, |b, _| {
            b.iter(|| {
                s.session
                    .run_with(&s.stimuli, s.duration, &RunOptions::default())
                    .unwrap()
            });
        });

        // Streaming VCD into a discarding writer: sink decode + k-way
        // merge + formatting, without filesystem noise.
        group.bench_with_input(BenchmarkId::new("vcd_stream", gates), &gates, |b, _| {
            b.iter(|| {
                let mut sink = VcdSink::new(std::io::sink(), s.graph.name(), &name_refs).unwrap();
                let r = s
                    .session
                    .run_streaming(&s.stimuli, s.duration, &RunOptions::default(), &mut sink)
                    .unwrap();
                sink.finish().unwrap();
                r
            });
        });

        // Streaming SAIF: per-window delta folding, O(nets) memory.
        group.bench_with_input(BenchmarkId::new("saif_stream", gates), &gates, |b, _| {
            b.iter(|| {
                let mut sink = SaifSink::new(s.graph.name(), names.clone());
                let r = s
                    .session
                    .run_streaming(&s.stimuli, s.duration, &RunOptions::default(), &mut sink)
                    .unwrap();
                criterion::black_box(sink.finish(s.duration));
                r
            });
        });

        // The pre-streaming path: spill every waveform to the host, then
        // stitch and write the whole document at once.
        group.bench_with_input(BenchmarkId::new("vcd_posthoc", gates), &gates, |b, _| {
            b.iter(|| {
                let r = s
                    .session
                    .run_with(
                        &s.stimuli,
                        s.duration,
                        &RunOptions::default().with_waveform_spill(),
                    )
                    .unwrap();
                let waves: Vec<(String, gatspi_wave::Waveform)> = (0..s.graph.n_signals())
                    .map(|k| (names[k].clone(), r.waveform(k).unwrap()))
                    .collect();
                criterion::black_box(vcd::write(
                    s.graph.name(),
                    waves.iter().map(|(n, w)| (n.as_str(), w)),
                ))
            });
        });
    }
    group.finish();
}

criterion_group!(benches, bench_sinks);
criterion_main!(benches);
