//! Table 7: feature-ablation kernel runtimes — full features vs no
//! interconnect inertial filtering vs additionally collapsing conditional
//! SDF to average rise/fall pairs.

use gatspi_bench::{print_table, run_baseline, run_gatspi, secs, speedup};
use gatspi_core::{SimConfig, SimFeatures};
use gatspi_workloads::suite::representative_suite;

fn main() {
    let mut rows = Vec::new();
    for def in representative_suite() {
        let b = def.build();
        let base = run_baseline(&b);
        let mut cells = vec![b.label()];
        for features in [
            SimFeatures {
                net_delay_filtering: true,
                full_sdf: true,
            },
            SimFeatures {
                net_delay_filtering: false,
                full_sdf: true,
            },
            SimFeatures {
                net_delay_filtering: false,
                full_sdf: false,
            },
        ] {
            let cfg = SimConfig {
                features,
                ..SimConfig::default().with_window_align(b.cycle_time)
            };
            let g = run_gatspi(&b, cfg);
            cells.push(format!(
                "{} ({})",
                secs(g.kernel_profile.modeled_seconds),
                speedup(base.kernel_seconds / g.kernel_profile.modeled_seconds.max(1e-12))
            ));
        }
        rows.push(cells);
    }
    print_table(
        "Table 7: kernel runtime without key features (modeled V100; speedup vs measured baseline kernel)",
        &["Design(Testbench)", "Full Features", "No Net Delay", "No Net Delay + No Full SDF"],
        &rows,
    );
}
