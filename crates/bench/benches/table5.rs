//! Table 5: Nsight-style application-phase profiling: host→device
//! transfer, stream sync + kernel launch, and kernel execution.

use gatspi_bench::{gatspi_config, print_table, run_gatspi, secs};
use gatspi_workloads::suite::representative_suite;

fn main() {
    let mut rows = Vec::new();
    for def in representative_suite() {
        let b = def.build();
        let g = run_gatspi(&b, gatspi_config(&b));
        let p = &g.app_profile;
        rows.push(vec![
            b.label(),
            secs(p.h2d_seconds),
            secs(p.sync_launch_seconds),
            secs(p.kernel_seconds),
            secs(p.restructure_seconds),
            p.launches.to_string(),
            format!("{:.1} MB", p.h2d_bytes as f64 / 1e6),
        ]);
    }
    print_table(
        "Table 5: application-phase profile (modeled device phases + measured host phases)",
        &[
            "Design(Testbench)",
            "H2D Transfer",
            "Sync+Launch",
            "Kernel Exec",
            "Restructure (host)",
            "Launches",
            "H2D Bytes",
        ],
        &rows,
    );
}
