//! Table 2: benchmarks and results — GATSPI vs the event-driven baseline
//! across the full suite. Application and kernel runtimes with speedups.
//!
//! `measured` columns are host wall-clock; `modeled` columns come from the
//! simulated V100's performance model (the paper's absolute regime).

use gatspi_bench::{
    activity_factor, gatspi_config, print_table, run_baseline, run_gatspi, secs, speedup,
};
use gatspi_workloads::suite::table2_suite;

fn main() {
    let mut rows = Vec::new();
    for def in table2_suite() {
        let b = def.build();
        let base = run_baseline(&b);
        let g = run_gatspi(&b, gatspi_config(&b));
        let af = activity_factor(&g, &b);
        rows.push(vec![
            b.label(),
            b.graph.n_gates().to_string(),
            format!("{af:.4}"),
            b.cycles.to_string(),
            secs(base.wall_seconds),
            secs(base.kernel_seconds),
            format!(
                "{} ({})",
                secs(g.wall_seconds),
                speedup(base.wall_seconds / g.wall_seconds.max(1e-12))
            ),
            format!(
                "{} ({})",
                secs(g.kernel_profile.wall_seconds),
                speedup(base.kernel_seconds / g.kernel_profile.wall_seconds.max(1e-12))
            ),
            secs(g.kernel_profile.modeled_seconds),
        ]);
        assert!(
            g.saif.diff(&base.saif).is_empty(),
            "accuracy check failed for {}",
            b.label()
        );
    }
    print_table(
        "Table 2: GATSPI vs baseline simulator (SAIF verified bit-exact per row)",
        &[
            "Design(Testbench)",
            "Gates",
            "ActivityFactor",
            "Cycles",
            "Base App(s)",
            "Base Kern(s)",
            "GATSPI App meas (speedup)",
            "GATSPI Kern meas (speedup)",
            "GATSPI Kern modeled V100",
        ],
        &rows,
    );
}
