//! Table 1: comparison of recent NVIDIA GPU architectures.

use gatspi_bench::print_table;
use gatspi_gpu::DeviceSpec;

fn main() {
    let rows: Vec<Vec<String>> = DeviceSpec::table1()
        .iter()
        .map(|d| {
            vec![
                d.name.clone(),
                d.sm_count.to_string(),
                format!("{:.0} GB", d.memory_bytes as f64 / (1u64 << 30) as f64),
                format!("{:.0} GB/s", d.memory_bw / (1u64 << 30) as f64),
                format!("{} MB", d.l2_bytes / (1 << 20)),
            ]
        })
        .collect();
    print_table(
        "Table 1: simulated GPU architectures (paper values)",
        &[
            "Architecture",
            "SMs",
            "Global Memory",
            "Memory BW",
            "L2 cache",
        ],
        &rows,
    );
}
