//! Figure 6: re-simulation kernel runtime across hardware platforms for
//! Design B's concatenated testbenches — 1 CPU, multi-thread CPU, and
//! 1/4/8 simulated GPUs (cycle-parallel workload distribution).

use gatspi_bench::{
    gatspi_config, gatspi_session, print_table, run_baseline, run_gatspi, run_gatspi_multi, secs,
    speedup,
};
use gatspi_gpu::{DeviceSpec, MultiGpu};
use gatspi_workloads::suite::design_b_concatenated;

fn main() {
    let b = design_b_concatenated().build();
    let base = run_baseline(&b);
    let t1 = base.kernel_seconds;
    let host = std::thread::available_parallelism()
        .map(|n| n.get())
        .unwrap_or(4);

    let mut rows = Vec::new();
    rows.push(vec![
        "1 CPU (baseline)".into(),
        secs(t1),
        "1.0X".into(),
        "measured".into(),
    ]);

    let sim = gatspi_session(&b, gatspi_config(&b));
    let cpu = sim
        .run_cpu(&b.stimuli, b.duration, host.min(16))
        .expect("cpu run");
    rows.push(vec![
        format!("{} CPU OpenMP-equivalent", host.min(16)),
        secs(cpu.kernel_profile.wall_seconds),
        speedup(t1 / cpu.kernel_profile.wall_seconds.max(1e-12)),
        "measured".into(),
    ]);

    for (label, spec, n) in [
        ("1 V100", DeviceSpec::v100(), 1usize),
        ("1 A100", DeviceSpec::a100(), 1),
        ("4 A100", DeviceSpec::a100(), 4),
        ("8 V100", DeviceSpec::v100(), 8),
    ] {
        let cfg = gatspi_config(&b).with_device(spec.clone());
        let t = if n == 1 {
            run_gatspi(&b, cfg).kernel_profile.modeled_seconds
        } else {
            let gpus = MultiGpu::new(spec, n, 16 << 20);
            run_gatspi_multi(&b, cfg, &gpus)
                .kernel_profile
                .modeled_seconds
        };
        rows.push(vec![
            label.into(),
            secs(t),
            speedup(t1 / t.max(1e-12)),
            "modeled".into(),
        ]);
    }
    print_table(
        "Fig. 6: Design B concatenated testbenches — kernel runtime across platforms",
        &["Platform", "Kernel Runtime", "Speedup vs 1 CPU", "Basis"],
        &rows,
    );
    // Log-scale bar sketch, like the figure.
    println!();
    let max = rows
        .iter()
        .map(|r| parse_secs(&r[1]))
        .fold(f64::MIN, f64::max);
    for r in &rows {
        let v = parse_secs(&r[1]);
        let bar = ((v.ln() - (max / 1e6).ln()) / (max.ln() - (max / 1e6).ln()) * 60.0)
            .clamp(1.0, 60.0) as usize;
        println!("{:28} {}", r[0], "#".repeat(bar));
    }
}

fn parse_secs(s: &str) -> f64 {
    if let Some(ms) = s.strip_suffix("ms") {
        ms.parse::<f64>().unwrap_or(0.0) * 1e-3
    } else if let Some(us) = s.strip_suffix("us") {
        us.parse::<f64>().unwrap_or(0.0) * 1e-6
    } else {
        s.parse::<f64>().unwrap_or(0.0)
    }
}
