//! §4 glitch-optimization flow: re-simulate, fix glitch sources, re-simulate,
//! confirm the power saving and the turnaround speedup. Also records the
//! launch-fusion effect on the same design and emits the machine-readable
//! `BENCH_glitch_flow.json` artifact for cross-PR comparison.

use std::sync::Arc;
use std::time::Instant;

use gatspi_bench::{print_table, secs, speedup, write_bench_artifact};
use gatspi_core::{RunOptions, Session, SimConfig};
use gatspi_gpu::AppPhaseProfile;
use gatspi_graph::{CircuitGraph, GraphOptions};
use gatspi_power::flow::{run_glitch_flow, FlowConfig};
use gatspi_workloads::circuits::mac_datapath;
use gatspi_workloads::sdfgen::{attach_sdf, SdfGenConfig};
use gatspi_workloads::stimuli::{generate, StimulusConfig};
use gatspi_workloads::suite::{scale, CYCLE_TIME};

fn main() {
    // Multiplier reduction trees are the canonical glitch source; this is
    // the flow's 1.3M-gate industrial design scaled down.
    let lanes = ((20.0 * scale()).round() as usize).max(2);
    let netlist = mac_datapath(8, lanes);
    let sdf = attach_sdf(&netlist, &SdfGenConfig::default());
    let cycles = ((200.0 * scale()) as usize).max(20);
    let stimuli = generate(
        netlist.primary_inputs().len(),
        &StimulusConfig::random(cycles, CYCLE_TIME, 0.35, 99),
    );
    let cfg = FlowConfig {
        fixes: (netlist.gate_count() / 40).max(8),
        sim: SimConfig::default().with_window_align(CYCLE_TIME),
        compare_baseline: true,
        ..FlowConfig::default()
    };
    let report = run_glitch_flow(
        &netlist,
        &sdf,
        &stimuli,
        CYCLE_TIME * cycles as i32,
        CYCLE_TIME,
        &cfg,
    )
    .expect("flow");

    let rows = vec![
        vec!["gates".into(), netlist.gate_count().to_string()],
        vec!["fixed gates".into(), report.fixed_gates.len().to_string()],
        vec![
            "glitch toggles before/after".into(),
            format!("{} / {}", report.glitch_before.1, report.glitch_after.1),
        ],
        vec![
            "functional toggles before/after".into(),
            format!("{} / {}", report.glitch_before.0, report.glitch_after.0),
        ],
        vec![
            "power before (W, synthetic)".into(),
            format!("{:.6}", report.power_before.total_w()),
        ],
        vec![
            "power after (W, synthetic)".into(),
            format!("{:.6}", report.power_after.total_w()),
        ],
        vec![
            "design power saving".into(),
            format!("{:.2}%", report.saving_pct),
        ],
        vec![
            "GATSPI re-sim turnaround".into(),
            secs(report.gatspi_seconds),
        ],
        vec![
            "baseline re-sim turnaround".into(),
            report.baseline_seconds.map(secs).unwrap_or_default(),
        ],
        vec![
            "turnaround speedup".into(),
            report.turnaround_speedup().map(speedup).unwrap_or_default(),
        ],
    ];
    print_table(
        "Glitch-optimization flow (paper §4: 1.4% saving at 449X turnaround)",
        &["Metric", "Value"],
        &rows,
    );

    // --- Launch fusion on the same design: measured wall and per-segment
    // launches, fused (default) vs the original two-launches-per-level
    // schedule.
    let graph = Arc::new(
        CircuitGraph::build(&netlist, Some(&sdf), &GraphOptions::default()).expect("graph"),
    );
    let duration = CYCLE_TIME * cycles as i32;
    // One compiled session; the fuse threshold is a per-run option, so
    // both schedules share the session's plan cache under separate keys.
    let sim = Session::new(
        Arc::clone(&graph),
        SimConfig::default().with_window_align(CYCLE_TIME),
    );
    let measure = |threshold: usize| {
        let opts = RunOptions::default().with_fuse_threshold(threshold);
        let reps = 3;
        let t0 = Instant::now();
        let mut profile = AppPhaseProfile::default();
        let mut segments = 0usize;
        for _ in 0..reps {
            let r = sim.run_with(&stimuli, duration, &opts).expect("resim");
            profile = r.app_profile;
            segments = r.segments();
        }
        let wall = t0.elapsed().as_secs_f64() / f64::from(reps);
        (wall, profile, segments)
    };
    let (wall_fused, prof_fused, segs_f) = measure(SimConfig::default().fuse_threshold);
    let (wall_unfused, prof_unfused, segs_u) = measure(0);
    let (launches_fused, fused_groups) = (prof_fused.launches, prof_fused.fused_launches);
    let launches_unfused = prof_unfused.launches;

    // --- Parallel spill drain on the same design: measured drain wall,
    // coalesced D2H batches and bytes of one spilled run (the glitch flow
    // itself runs with spill, so its turnaround includes this path).
    let spill_run = sim
        .run_with(
            &stimuli,
            duration,
            &RunOptions::default().with_waveform_spill(),
        )
        .expect("spilled resim");
    let drain_seconds = spill_run.app_profile.drain_seconds;
    let d2h_batches = spill_run.app_profile.d2h_batches;
    let spill_d2h_bytes = spill_run.app_profile.d2h_bytes;
    print_table(
        "Spill drain (same design, one spilled run)",
        &["Metric", "Value"],
        &[
            vec!["drain wall".into(), secs(drain_seconds)],
            vec!["D2H batches".into(), d2h_batches.to_string()],
            vec!["D2H bytes".into(), spill_d2h_bytes.to_string()],
        ],
    );

    // --- Cone-restricted incremental re-simulation: resize ≤2% of the
    // gates (the latest-level ones, i.e. the optimizer's usual endpoint
    // fixes, whose fan-out cones are small) and re-run only their cones
    // against the spilled baseline.
    let n_changed = (graph.n_gates() / 50).max(1);
    let mut by_level: Vec<usize> = (0..graph.n_gates()).collect();
    by_level.sort_unstable_by_key(|&g| std::cmp::Reverse(graph.gate_level(g)));
    let changed: Vec<usize> = by_level[..n_changed].to_vec();
    let spill_opts = RunOptions::default().with_waveform_spill();
    let reps = 3;
    let t0 = Instant::now();
    for _ in 0..reps {
        sim.run_incremental(&spill_run, &changed, &stimuli, duration, &spill_opts)
            .expect("incremental resim");
    }
    let incremental_wall = t0.elapsed().as_secs_f64() / f64::from(reps);
    let cache = sim.plan_cache_stats();
    print_table(
        "Incremental re-simulation (same design, latest-level 2% resized)",
        &["Metric", "Value"],
        &[
            vec!["changed gates".into(), n_changed.to_string()],
            vec!["incremental wall".into(), secs(incremental_wall)],
            vec!["full fused wall".into(), secs(wall_fused)],
            vec![
                "incremental speedup".into(),
                speedup(wall_fused / incremental_wall),
            ],
            vec![
                "plan cache (hits/misses)".into(),
                format!("{} / {}", cache.hits, cache.misses),
            ],
            vec![
                "cone plans (hits/misses)".into(),
                format!("{} / {}", cache.cone_hits, cache.cone_misses),
            ],
        ],
    );
    print_table(
        "Launch fusion (same design)",
        &["Schedule", "wall", "launches", "segments"],
        &[
            vec![
                "fused".into(),
                secs(wall_fused),
                launches_fused.to_string(),
                segs_f.to_string(),
            ],
            vec![
                "unfused".into(),
                secs(wall_unfused),
                launches_unfused.to_string(),
                segs_u.to_string(),
            ],
        ],
    );
    print_table(
        "Speculative single-pass (fused run)",
        &["Metric", "Value"],
        &[
            vec![
                "speculative hit rate".into(),
                format!("{:.2}%", prof_fused.speculative_hit_rate * 100.0),
            ],
            vec![
                "overflow repairs".into(),
                prof_fused.overflow_repairs.to_string(),
            ],
            vec![
                "predicted waste (words)".into(),
                prof_fused.predicted_waste_words.to_string(),
            ],
        ],
    );

    let json = format!(
        "{{\n  \"target\": \"glitch_flow\",\n  \"gates\": {},\n  \"gatspi_seconds\": {:.6},\n  \"baseline_seconds\": {},\n  \"turnaround_speedup\": {},\n  \"saving_pct\": {:.4},\n  \"glitch_toggles_before\": {},\n  \"glitch_toggles_after\": {},\n  \"resim_wall_fused\": {:.6},\n  \"resim_wall_unfused\": {:.6},\n  \"launches_fused\": {},\n  \"launches_unfused\": {},\n  \"fused_groups\": {},\n  \"drain_seconds\": {:.6},\n  \"d2h_batches\": {},\n  \"spill_d2h_bytes\": {},\n  \"incremental_resim_wall\": {:.6},\n  \"incremental_speedup\": {:.3},\n  \"incremental_changed_gates\": {},\n  \"plan_cache_hits\": {},\n  \"plan_cache_misses\": {},\n  \"plan_cache_evictions\": {},\n  \"cone_plan_hits\": {},\n  \"cone_plan_misses\": {},\n  \"speculative_hit_rate\": {:.4},\n  \"overflow_repairs\": {},\n  \"predicted_waste_words\": {},\n  \"oom_retries\": {}\n}}\n",
        netlist.gate_count(),
        report.gatspi_seconds,
        report
            .baseline_seconds
            .map(|s| format!("{s:.6}"))
            .unwrap_or_else(|| "null".into()),
        report
            .turnaround_speedup()
            .map(|s| format!("{s:.3}"))
            .unwrap_or_else(|| "null".into()),
        report.saving_pct,
        report.glitch_before.1,
        report.glitch_after.1,
        wall_fused,
        wall_unfused,
        launches_fused,
        launches_unfused,
        fused_groups,
        drain_seconds,
        d2h_batches,
        spill_d2h_bytes,
        incremental_wall,
        wall_fused / incremental_wall,
        n_changed,
        cache.hits,
        cache.misses,
        cache.evictions,
        cache.cone_hits,
        cache.cone_misses,
        prof_fused.speculative_hit_rate,
        prof_fused.overflow_repairs,
        prof_fused.predicted_waste_words,
        prof_fused.oom_retries + spill_run.app_profile.oom_retries,
    );
    write_bench_artifact("glitch_flow", &json);
}
