//! §4 glitch-optimization flow: re-simulate, fix glitch sources, re-simulate,
//! confirm the power saving and the turnaround speedup.

use gatspi_bench::{print_table, secs, speedup};
use gatspi_core::SimConfig;
use gatspi_power::flow::{run_glitch_flow, FlowConfig};
use gatspi_workloads::circuits::mac_datapath;
use gatspi_workloads::sdfgen::{attach_sdf, SdfGenConfig};
use gatspi_workloads::stimuli::{generate, StimulusConfig};
use gatspi_workloads::suite::{scale, CYCLE_TIME};

fn main() {
    // Multiplier reduction trees are the canonical glitch source; this is
    // the flow's 1.3M-gate industrial design scaled down.
    let lanes = ((20.0 * scale()).round() as usize).max(2);
    let netlist = mac_datapath(8, lanes);
    let sdf = attach_sdf(&netlist, &SdfGenConfig::default());
    let cycles = ((200.0 * scale()) as usize).max(20);
    let stimuli = generate(
        netlist.primary_inputs().len(),
        &StimulusConfig::random(cycles, CYCLE_TIME, 0.35, 99),
    );
    let cfg = FlowConfig {
        fixes: (netlist.gate_count() / 40).max(8),
        sim: SimConfig::default().with_window_align(CYCLE_TIME),
        compare_baseline: true,
        ..FlowConfig::default()
    };
    let report = run_glitch_flow(
        &netlist,
        &sdf,
        &stimuli,
        CYCLE_TIME * cycles as i32,
        CYCLE_TIME,
        &cfg,
    )
    .expect("flow");

    let rows = vec![
        vec!["gates".into(), netlist.gate_count().to_string()],
        vec!["fixed gates".into(), report.fixed_gates.len().to_string()],
        vec![
            "glitch toggles before/after".into(),
            format!("{} / {}", report.glitch_before.1, report.glitch_after.1),
        ],
        vec![
            "functional toggles before/after".into(),
            format!("{} / {}", report.glitch_before.0, report.glitch_after.0),
        ],
        vec![
            "power before (W, synthetic)".into(),
            format!("{:.6}", report.power_before.total_w()),
        ],
        vec![
            "power after (W, synthetic)".into(),
            format!("{:.6}", report.power_after.total_w()),
        ],
        vec![
            "design power saving".into(),
            format!("{:.2}%", report.saving_pct),
        ],
        vec![
            "GATSPI re-sim turnaround".into(),
            secs(report.gatspi_seconds),
        ],
        vec![
            "baseline re-sim turnaround".into(),
            report.baseline_seconds.map(secs).unwrap_or_default(),
        ],
        vec![
            "turnaround speedup".into(),
            report
                .turnaround_speedup()
                .map(speedup)
                .unwrap_or_default(),
        ],
    ];
    print_table(
        "Glitch-optimization flow (paper §4: 1.4% saving at 449X turnaround)",
        &["Metric", "Value"],
        &rows,
    );
}
