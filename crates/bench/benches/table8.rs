//! Table 8: kernel runtimes across simulated T4 / V100 / A100 devices.

use gatspi_bench::{print_table, run_baseline, run_gatspi, secs, speedup};
use gatspi_core::SimConfig;
use gatspi_gpu::DeviceSpec;
use gatspi_workloads::suite::{representative_suite, table2_suite};

fn main() {
    // The paper's three rows: NVDLA(large) scan + Design B func2 + Design B
    // high activity.
    let suite = table2_suite();
    let reps = representative_suite();
    let defs = [suite[5].clone(), reps[1].clone(), reps[2].clone()];
    let mut rows = Vec::new();
    for def in defs {
        let b = def.build();
        let base = run_baseline(&b);
        let mut cells = vec![b.label()];
        for spec in DeviceSpec::table1() {
            let cfg = SimConfig::default()
                .with_window_align(b.cycle_time)
                .with_device(spec);
            let g = run_gatspi(&b, cfg);
            cells.push(format!(
                "{} ({})",
                secs(g.kernel_profile.modeled_seconds),
                speedup(base.kernel_seconds / g.kernel_profile.modeled_seconds.max(1e-12))
            ));
        }
        rows.push(cells);
    }
    print_table(
        "Table 8: kernel runtime and speedup per device (modeled; speedup vs measured baseline kernel)",
        &["Design(Testbench)", "T4", "V100", "A100"],
        &rows,
    );
}
