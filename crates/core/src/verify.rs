//! Correctness verification helpers.
//!
//! The paper verifies GATSPI two ways: comparing the produced SAIF files
//! against the commercial baseline, and "spot-checks" of full waveforms of
//! random signals. This module implements both as reusable routines used by
//! the integration suite and the benchmark harness.

use gatspi_wave::saif::SaifDocument;
use gatspi_wave::Waveform;

/// Outcome of a verification pass.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct VerifyReport {
    /// Human-readable mismatch descriptions; empty means verified.
    pub mismatches: Vec<String>,
    /// Signals compared.
    pub compared: usize,
}

impl VerifyReport {
    /// Whether everything matched.
    pub fn passed(&self) -> bool {
        self.mismatches.is_empty()
    }
}

/// Compares two SAIF documents (exact match on TC and T0/T1, the paper's
/// accuracy criterion).
pub fn compare_saif(ours: &SaifDocument, reference: &SaifDocument) -> VerifyReport {
    let mismatches = ours.diff(reference);
    VerifyReport {
        compared: ours.nets.len().max(reference.nets.len()),
        mismatches,
    }
}

/// Spot-checks full waveforms of selected signals: `pairs` yields
/// `(name, ours, reference)` triples.
pub fn spot_check_waveforms<'a>(
    pairs: impl IntoIterator<Item = (&'a str, &'a Waveform, &'a Waveform)>,
) -> VerifyReport {
    let mut mismatches = Vec::new();
    let mut compared = 0;
    for (name, a, b) in pairs {
        compared += 1;
        if a != b {
            let detail = first_divergence(a, b)
                .map(|t| format!("first divergence at t={t}"))
                .unwrap_or_else(|| "shape differs".to_string());
            mismatches.push(format!(
                "signal `{name}`: {} vs {} toggles, {detail}",
                a.toggle_count(),
                b.toggle_count()
            ));
        }
    }
    VerifyReport {
        mismatches,
        compared,
    }
}

/// Finds the earliest time at which two waveforms hold different values, if
/// any (they may still differ later in toggle times beyond both EOWs).
pub fn first_divergence(a: &Waveform, b: &Waveform) -> Option<i32> {
    if a.initial_value() != b.initial_value() {
        return Some(0);
    }
    let mut ia = a.iter().peekable();
    let mut ib = b.iter().peekable();
    // Walk the merged toggle timeline.
    let mut times: Vec<i32> = a.iter().chain(b.iter()).map(|(t, _)| t).collect();
    times.sort_unstable();
    times.dedup();
    let _ = (&mut ia, &mut ib);
    times.into_iter().find(|&t| a.value_at(t) != b.value_at(t))
}

#[cfg(test)]
mod tests {
    use super::*;
    use gatspi_wave::saif::SaifRecord;

    #[test]
    fn saif_compare() {
        let a = Waveform::from_toggles(false, &[5, 9]);
        let doc1 = SaifDocument::from_waveforms("d", 20, [("x", &a)]);
        let mut doc2 = doc1.clone();
        assert!(compare_saif(&doc1, &doc2).passed());
        doc2.nets.insert(
            "x".into(),
            SaifRecord {
                t0: 1,
                t1: 19,
                tx: 0,
                tc: 7,
                ig: 0,
            },
        );
        let r = compare_saif(&doc1, &doc2);
        assert!(!r.passed());
    }

    #[test]
    fn spot_check_reports_divergence_time() {
        let a = Waveform::from_toggles(false, &[5, 9]);
        let b = Waveform::from_toggles(false, &[5, 11]);
        let r = spot_check_waveforms([("n1", &a, &b)]);
        assert!(!r.passed());
        assert!(r.mismatches[0].contains("t=9"));
        let ok = spot_check_waveforms([("n1", &a, &a)]);
        assert!(ok.passed());
        assert_eq!(ok.compared, 1);
    }

    #[test]
    fn divergence_cases() {
        let a = Waveform::from_toggles(true, &[5]);
        let b = Waveform::from_toggles(false, &[5]);
        assert_eq!(first_divergence(&a, &b), Some(0));
        let c = Waveform::from_toggles(false, &[5]);
        let d = Waveform::from_toggles(false, &[7]);
        assert_eq!(first_divergence(&c, &d), Some(5));
        assert_eq!(first_divergence(&c, &c), None);
    }
}
