//! GATSPI — GPU Accelerated GaTe-level Simulation for Power Improvement —
//! reproduced in Rust.
//!
//! This crate is the paper's primary contribution: a delay-accurate,
//! glitch-enabled gate-level **re-simulator**. Given a levelized
//! [`CircuitGraph`](gatspi_graph::CircuitGraph) and known waveforms on the
//! primary (and pseudo-primary) inputs, it simulates every combinational
//! gate with:
//!
//! * full truth-table logic evaluation (any cell type, Fig. 4),
//! * conditional SDF delay lookup (2-D LUT arrays, Fig. 4),
//! * multiple-simultaneous-input (MSI) switching resolution,
//! * inertial pulse filtering on both gates (`PATHPULSEPERCENT`) and
//!   interconnect,
//! * the two-pass "simulate twice" strategy (Fig. 5): a counting pass sizes
//!   every output waveform, a host prefix-sum assigns arena offsets, and a
//!   storing pass writes the final waveforms — no dynamic allocation and no
//!   calibration runs,
//! * speculative single-pass allocation with exact repair
//!   ([`Speculation`], default `Auto`): predicted per-gate budgets retire
//!   the count pass on repeat windows, with overflowing gates re-run by a
//!   narrow repair launch — bit-identical to the two-pass schedule,
//! * cycle parallelism: the stimulus is cut into independent windows that
//!   simulate concurrently, one logical GPU thread per (gate, window),
//! * multi-GPU distribution of cycle parallelism (`t = t₁/n + ovr`),
//! * an "OpenMP-equivalent" CPU backend for the paper's Table 3 comparison,
//! * asynchronous SAIF dumping overlapped with kernel execution.
//!
//! # Quickstart
//!
//! The engine is a compiled session: build a [`Session`] once per
//! `(graph, config)` pair, then execute any number of stimuli against it —
//! launch schedules are cached per window count, and [`RunOptions`]
//! controls segmentation and waveform spill/streaming.
//!
//! ```
//! use gatspi_core::{Session, SimConfig};
//! use gatspi_graph::{CircuitGraph, GraphOptions};
//! use gatspi_netlist::{CellLibrary, NetlistBuilder};
//! use gatspi_wave::Waveform;
//!
//! # fn main() -> Result<(), Box<dyn std::error::Error>> {
//! let mut b = NetlistBuilder::new("demo", CellLibrary::industry_mini());
//! let a = b.add_input("a")?;
//! let c = b.add_input("b")?;
//! let y = b.add_output("y")?;
//! b.add_gate("u", "NAND2", &[a, c], y)?;
//! let graph = CircuitGraph::build(&b.finish()?, None, &GraphOptions::default())?;
//!
//! let session = Session::new(graph.into(), SimConfig::default());
//! let stimuli = vec![
//!     Waveform::from_toggles(false, &[105, 205]),
//!     Waveform::constant(true),
//! ];
//! let result = session.run(&stimuli, 300)?;
//! assert_eq!(result.toggle_count(y.index()), 2);
//! # Ok(())
//! # }
//! ```
//!
//! The pre-session one-shot API ([`Gatspi`], [`run_multi_gpu`]) remains as
//! deprecated shims that delegate to the session and produce bit-identical
//! results.

#![deny(missing_docs)]

pub mod audit;
mod config;
mod engine;
mod error;
mod kernel;
mod multi;
mod result;
mod ring;
mod schedule;
mod session;
mod sink;
pub mod sync;
pub mod verify;

pub use config::{RetryPolicy, SimConfig, SimFeatures, Speculation};
pub use engine::Gatspi;
pub use error::CoreError;
pub use gatspi_gpu::FaultKind;
pub use kernel::{simulate_gate, GateDesc, GateKernelInput, KernelMode, KernelOutput};
#[allow(deprecated)]
pub use multi::run_multi_gpu;
pub use result::SimResult;
pub use session::{PlanCacheStats, RunOptions, Session};
pub use sink::{SaifSink, VcdSink, WaveformSink, WindowInfo};

/// Result alias used throughout this crate.
pub type Result<T> = std::result::Result<T, CoreError>;
