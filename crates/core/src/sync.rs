//! Core's sync facade: a re-export of [`gatspi_gpu::sync`], so the whole
//! workspace shares one switch between `std` primitives and the `loom`
//! model-checked types (`--features model-check`).
//!
//! Every lock-free structure in this crate — `ring`'s reserve/commit ring,
//! the publish-ticket pipeline in `session`, and the carry chain in
//! `schedule` — imports its atomics, spin hints, and scoped threads from
//! here, and the blocking primitives (locks, channels, `spawn`) route
//! through it too. The `xtask analyze` sync-facade CI pass bans the
//! corresponding `std` paths anywhere else in this crate's production code.

pub use gatspi_gpu::sync::{
    atomic, hint, mpsc, thread, Barrier, Condvar, Mutex, MutexGuard, RwLock, RwLockReadGuard,
    RwLockWriteGuard,
};
