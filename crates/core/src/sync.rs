//! Core's sync facade: a re-export of [`gatspi_gpu::sync`], so the whole
//! workspace shares one switch between `std` primitives and the `loom`
//! model-checked types (`--features model-check`).
//!
//! Every lock-free structure in this crate — `ring`'s reserve/commit ring,
//! the publish-ticket pipeline in `session`, and the carry chain in
//! `schedule` — imports its atomics, spin hints, and scoped threads from
//! here. The `xtask lint-atomics` CI pass bans `std::sync::atomic` anywhere
//! else.

pub use gatspi_gpu::sync::{atomic, hint, thread};
