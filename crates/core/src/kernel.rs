//! The GATSPI re-simulation kernel — the paper's Algorithm 1.
//!
//! One invocation simulates one gate over one stimulus window, advancing
//! pointer "registers" through the input waveforms stored in device memory
//! and emitting the output waveform. The same routine runs in three modes:
//!
//! * [`KernelMode::Count`] — computes the output's toggle count and maximum
//!   write extent without storing anything; the engine prefix-sums the
//!   extents to assign every output waveform its arena offset;
//! * [`KernelMode::Store`] — repeats the identical computation, writing the
//!   waveform at the pre-assigned offset (together with `Count`, the
//!   "simulate twice" strategy of Fig. 5);
//! * [`KernelMode::Speculative`] — single-pass: stores like `Store` inside
//!   a pre-reserved budget and degrades to `Count` past it, so a correct
//!   prediction retires the count pass entirely and a wrong one loses
//!   nothing but the reservation (see the mode's docs).
//!
//! The store pass is also the *publication* point: the engine's store
//! thread takes `(out_base, KernelOutput::words())` — the same pair this
//! routine computes — and writes the output's pointer/length slots in the
//! shared batch tables itself, so no host-side per-slot store loop runs
//! after the launch. Levelization guarantees the writes are race-free: a
//! level's input signals are driven strictly below it, so no thread of one
//! launch reads the slots its peers publish.
//!
//! Semantics implemented exactly as Algorithm 1:
//!
//! * **lines 3–6**: initial-value resolution via the `-1` marker and the
//!   parity encoding (`p % 2` is the pin's current value);
//! * **lines 8–13**: next-event selection across pins with per-edge
//!   interconnect delays and inertial filtering of pulses narrower than the
//!   wire delay (lines 11–12; disabled by
//!   [`SimFeatures::net_delay_filtering`](crate::SimFeatures) = false);
//! * **lines 14–18**: multiple-simultaneous-input (MSI) resolution — every
//!   pin arriving at the chosen timestamp is consumed before a single
//!   evaluation;
//! * **lines 19–25**: output inertial filtering with `PATHPULSEPERCENT`:
//!   a new edge landing within `gate_delay * ppp / 100` of the previous
//!   output edge cancels it (pops the waveform) and leaves its own
//!   timestamp as the *ghost* reference for subsequent filtering decisions,
//!   mirroring the unconditional `allW[p_o] = t_o` of line 25. Two guards
//!   refine the paper's pseudocode: (1) the ghost timestamp is held in a
//!   register instead of being stored, so a cancellation never retimes the
//!   committed edge below it; (2) the pop never descends past the
//!   initial-value entry (which would corrupt the `-1` marker) — in that
//!   case the edge is dropped and only the ghost timestamp advances.
//!
//! Arc delays come from the Fig. 4 conditional LUTs; when an arc is
//! unspecified (`NO_ARC`) the gate's fallback delay applies, and with
//! [`SimFeatures::full_sdf`](crate::SimFeatures) = false the collapsed
//! average rise/fall pair is used instead (Table 7's "No Full SDF").

use gatspi_gpu::{DeviceMemory, LaneCounters};
use gatspi_graph::CircuitGraph;
use gatspi_sdf::{reduced_column_index, NO_ARC};
use gatspi_wave::{EOW, INIT_ONE_MARKER};

use crate::SimFeatures;

/// Upper bound on gate fan-in the kernel's pointer registers support.
pub const MAX_KERNEL_PINS: usize = 16;

const EOW64: i64 = i64::MAX;

/// Depth of the per-thread live-edge timestamp window used to bound
/// inertial cancellations by causality.
const EDGE_TIME_STACK: usize = 32;

/// Which pass of the simulation is running.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum KernelMode {
    /// Size the output (toggle count + maximum extent), store nothing.
    Count,
    /// Store the output waveform starting at the given arena word offset.
    Store {
        /// Absolute word offset of the output waveform's first entry (must
        /// be even, per the parity encoding).
        out_base: usize,
    },
    /// Speculative single-pass: behaves exactly like [`KernelMode::Store`]
    /// while every write lands inside the `cap`-word reservation at
    /// `out_base`, and exactly like [`KernelMode::Count`] past it — writes
    /// beyond the reservation are suppressed (nothing outside
    /// `out_base..out_base + cap` is ever touched) while the full toggle
    /// count and extent keep accumulating. The caller decides from the
    /// returned [`KernelOutput`]: `words() <= cap` means the stored
    /// waveform is bit-identical to a `Store` run (every write executed);
    /// otherwise the reservation holds garbage and the gate must be
    /// re-run by the exact repair pass.
    Speculative {
        /// Absolute word offset of the reservation (must be even).
        out_base: usize,
        /// Reservation size in words.
        cap: usize,
    },
}

/// Per-(gate, window) kernel result.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct KernelOutput {
    /// Final toggle count (SAIF `TC`).
    pub toggles: u32,
    /// Maximum live extent reached while simulating — the store pass may
    /// transiently write this many edges before cancellations pop them.
    pub max_extent: u32,
    /// Whether the output's initial value is 1 (needs the `-1` marker).
    pub initial_one: bool,
}

impl KernelOutput {
    /// Arena words the stored waveform needs: optional marker + initial
    /// entry + maximum transient edges + EOW terminator.
    pub fn words(&self) -> u32 {
        u32::from(self.initial_one) + 1 + self.max_extent + 1
    }

    /// Largest `max_extent` the packed layout can carry: the field is 31
    /// bits wide (bit 63 belongs to the initial-one flag, and
    /// [`KernelOutput::unpack`] masks accordingly).
    pub const MAX_PACKED_EXTENT: u32 = 0x7FFF_FFFF;

    /// Packs this result into the per-thread count word the engine's
    /// count pass stores (toggles in bits 0..32, max extent in 32..63,
    /// initial-one flag in bit 63). The canonical codec — every consumer
    /// of the packed layout goes through this pair.
    ///
    /// `max_extent` saturates at [`KernelOutput::MAX_PACKED_EXTENT`]
    /// instead of silently bleeding into the initial-one bit (an extent of
    /// 2³¹ would otherwise flip it and corrupt the round-trip); a debug
    /// assertion catches any real workload that ever gets near the cap.
    pub fn pack(self) -> u64 {
        debug_assert!(
            self.max_extent <= Self::MAX_PACKED_EXTENT,
            "max_extent {} overflows the 31-bit packed extent field",
            self.max_extent
        );
        u64::from(self.toggles)
            | (u64::from(self.max_extent.min(Self::MAX_PACKED_EXTENT)) << 32)
            | (u64::from(self.initial_one) << 63)
    }

    /// Inverse of [`KernelOutput::pack`].
    pub fn unpack(packed: u64) -> Self {
        KernelOutput {
            toggles: packed as u32,
            max_extent: (packed >> 32) as u32 & 0x7FFF_FFFF,
            initial_one: packed >> 63 == 1,
        }
    }

    /// Stored length in words of a packed result (unpadded).
    pub fn unpack_words(packed: u64) -> u32 {
        Self::unpack(packed).words()
    }

    /// Even-aligned arena words a packed result's waveform occupies.
    pub fn unpack_words_even(packed: u64) -> usize {
        let words = Self::unpack(packed).words() as usize;
        words + (words & 1)
    }
}

/// Per-gate descriptor row: every graph lookup the kernel's hot loop used
/// to resolve through `CircuitGraph` accessor indirection (truth table,
/// delay-LUT base and column count, fallback delays), baked flat at
/// schedule compile time so one invocation touches only dense arrays.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct GateDesc {
    /// Input pin count.
    pub fanin: u32,
    /// The gate's flat pin-slot base in the graph (where per-pin-slot
    /// session tables, like the collapsed average delays, index from).
    pub pin_base: u32,
    /// Offset of the gate's `2^fanin` truth-table rows in
    /// [`CircuitGraph::truth_tables_flat`].
    pub tt_base: u32,
    /// Offset of the gate's pin-0 delay LUT in
    /// [`CircuitGraph::delay_luts_flat`]; pin `p`'s block starts
    /// `p * 4 * lut_ncols` entries later (per-gate blocks are contiguous).
    pub lut_base: u32,
    /// Reduced columns per LUT row (`2^(fanin-1)`; 0 for 0-input gates).
    pub lut_ncols: u32,
    /// Fallback rise delay for unannotated arcs.
    pub fb_rise: i32,
    /// Fallback fall delay for unannotated arcs.
    pub fb_fall: i32,
}

impl GateDesc {
    /// Builds the descriptor row of gate `g` — one graph walk, done once
    /// per schedule compile instead of once per kernel invocation.
    pub fn of(graph: &CircuitGraph, g: usize) -> GateDesc {
        let n = graph.gate_fanin(g).len();
        let (fb_rise, fb_fall) = graph.fallback_delay(g);
        GateDesc {
            fanin: n as u32,
            pin_base: graph.pin_base(g) as u32,
            tt_base: graph.truth_table_base(g) as u32,
            lut_base: graph.delay_lut_base(g) as u32,
            lut_ncols: if n == 0 { 0 } else { 1 << (n - 1) },
            fb_rise,
            fb_fall,
        }
    }
}

/// Read-only context for one kernel invocation.
#[derive(Debug, Clone, Copy)]
pub struct GateKernelInput<'a> {
    /// The gate's descriptor row (see [`GateDesc`]).
    pub desc: GateDesc,
    /// The graph's flat truth-table pool
    /// ([`CircuitGraph::truth_tables_flat`]).
    pub tts: &'a [u8],
    /// The graph's flat delay-LUT pool
    /// ([`CircuitGraph::delay_luts_flat`]).
    pub luts: &'a [i32],
    /// Per-pin interconnect `(rise, fall)` delays, pin order
    /// (`desc.fanin` entries).
    pub net_delays: &'a [(i32, i32)],
    /// Device memory holding all waveforms.
    pub mem: &'a DeviceMemory,
    /// Absolute word offsets of each input pin's waveform (pin order).
    pub in_ptrs: &'a [u32],
    /// Feature switches.
    pub features: SimFeatures,
    /// `PATHPULSEPERCENT` (0–100).
    pub ppp: u32,
    /// Per-pin collapsed `(rise, fall)` delays, pin order; consulted only
    /// when `features.full_sdf` is false.
    pub avg_delays: &'a [(i32, i32)],
}

/// Simulates one gate over one window (Algorithm 1). See the module docs
/// for semantics.
///
/// # Panics
///
/// Panics if the gate has more than `MAX_KERNEL_PINS` inputs or if
/// `in_ptrs` does not match the gate's fan-in count.
// Indexed pin loops mirror the CUDA kernel's per-lane register arrays;
// iterator adapters would obscure the correspondence with Algorithm 1.
#[allow(clippy::needless_range_loop)]
pub fn simulate_gate(
    input: &GateKernelInput<'_>,
    mode: KernelMode,
    lane: &mut LaneCounters,
) -> KernelOutput {
    let mem = input.mem;
    let desc = input.desc;
    let n = desc.fanin as usize;
    assert!(n <= MAX_KERNEL_PINS, "gate exceeds MAX_KERNEL_PINS");
    assert_eq!(input.in_ptrs.len(), n, "pointer count mismatch");
    debug_assert_eq!(input.net_delays.len(), n, "net-delay count mismatch");
    let tt = &input.tts[desc.tt_base as usize..desc.tt_base as usize + (1usize << n)];

    // One decode serves all three modes: `storing` selects the write path,
    // and `limit` is the first word index writes must not reach — unbounded
    // for Store, the reservation end for Speculative. Every write whose
    // index clears `limit` is executed exactly as Store would, so a
    // speculative run that finishes with `words() <= cap` produced a
    // bit-identical waveform; one that does not has kept counting without
    // touching anything outside its reservation.
    let (storing, out_base, limit) = match mode {
        KernelMode::Count => (false, 0usize, 0usize),
        KernelMode::Store { out_base } => (true, out_base, usize::MAX),
        KernelMode::Speculative { out_base, cap } => (true, out_base, out_base + cap),
    };

    // --- Lines 3–6: initial values. Pointer parity encodes the value.
    let mut p = [0u32; MAX_KERNEL_PINS];
    for i in 0..n {
        let mut ptr = input.in_ptrs[i];
        lane.scattered_load();
        if mem.load(ptr as usize) == INIT_ONE_MARKER {
            ptr += 1;
        }
        p[i] = ptr;
    }
    let mut col = 0u32;
    for (i, ptr) in p.iter().enumerate().take(n) {
        col |= (ptr & 1) << i;
    }
    let mut out_val = tt[col as usize] as u32;
    lane.ops(n as u64 + 2);

    let initial_one = out_val == 1;
    let mut extent = 0u32; // live edges beyond the initial entry
    let mut max_extent = 0u32;
    // Ghost reference timestamp (line 25 analogue).
    let mut prev_to: i64 = 0;
    // Circular stack of live-edge timestamps by stack position: an inertial
    // cancellation may only retract an edge that is still in the future
    // (time > current event); retracting an older edge would rewrite
    // history no causal (event-driven) simulator could reproduce. Depth 32
    // covers any physical cancellation chain.
    let mut edge_times = [i64::MIN; EDGE_TIME_STACK];

    let (mut po, po_min) = if storing {
        debug_assert_eq!(out_base % 2, 0, "output base must be even");
        if initial_one {
            if out_base < limit {
                mem.store(out_base, INIT_ONE_MARKER);
                lane.scattered_store();
            }
            if out_base + 1 < limit {
                mem.store(out_base + 1, 0);
                lane.scattered_store();
            }
            (out_base + 1, out_base + 1)
        } else {
            if out_base < limit {
                mem.store(out_base, 0);
                lane.scattered_store();
            }
            (out_base, out_base)
        }
    } else {
        (0usize, 0usize)
    };

    let mut last_ti: i64 = 0;
    let mut arrival = [EOW64; MAX_KERNEL_PINS];

    loop {
        // --- Lines 8–13: next arrival across pins (with wire delays and
        // interconnect inertial filtering).
        let mut ti = EOW64;
        for i in 0..n {
            loop {
                lane.scattered_load();
                let t1 = mem.load(p[i] as usize + 1);
                if t1 == EOW {
                    arrival[i] = EOW64;
                    break;
                }
                let cur = p[i] & 1;
                let (dr, df) = input.net_delays[i];
                let nd = if cur == 1 { df } else { dr };
                if input.features.net_delay_filtering {
                    lane.scattered_load();
                    let t2 = mem.load(p[i] as usize + 2);
                    if t2 != EOW && i64::from(t2) - i64::from(t1) < i64::from(nd) {
                        // Pulse narrower than the wire delay: both edges die.
                        p[i] += 2;
                        lane.ops(2);
                        continue;
                    }
                }
                arrival[i] = i64::from(t1) + i64::from(nd);
                if arrival[i] < ti {
                    ti = arrival[i];
                }
                lane.ops(4);
                break;
            }
            if arrival[i] != EOW64 && arrival[i] < ti {
                ti = arrival[i];
            }
        }
        if ti == EOW64 {
            break;
        }
        // Without interconnect filtering, rise/fall-asymmetric wire delays
        // can reorder arrivals; monotonize so output timestamps stay sorted.
        if ti < last_ti {
            ti = last_ti;
        }
        last_ti = ti;

        // --- Lines 14–18: MSI resolution — consume every pin arriving now.
        let mut switched = 0u32;
        for i in 0..n {
            if arrival[i] == ti || (arrival[i] < ti && arrival[i] != EOW64) {
                // (arrival < ti only in the monotonized no-filter case)
                p[i] += 1;
                col ^= 1 << i;
                switched |= 1 << i;
            }
        }
        lane.ops(n as u64 + 2);
        let y = tt[col as usize] as u32;
        #[cfg(feature = "ktrace")]
        eprintln!("event ti={ti} switched={switched:b} col={col:b} y={y} out_val={out_val} prev_to={prev_to}");

        // --- Line 19: only a change of output value produces an edge.
        if y == out_val {
            continue;
        }

        // Arc delay: minimum over switching pins' Fig. 4 LUT entries; an
        // unannotated arc falls back to the gate's conservative default.
        let mut gate_delay = i64::MAX;
        for i in 0..n {
            if switched & (1 << i) == 0 {
                continue;
            }
            let d = if input.features.full_sdf {
                let ncols = desc.lut_ncols as usize;
                let lut_base = desc.lut_base as usize + i * 4 * ncols;
                let rcol = reduced_column_index(col, i) as usize;
                let input_rising = p[i] & 1 == 1;
                let output_rising = y == 1;
                let row = 2 * usize::from(!input_rising) + usize::from(!output_rising);
                lane.scattered_load();
                input.luts[lut_base + row * ncols + rcol]
            } else {
                let (ar, af) = input.avg_delays[i];
                if y == 1 {
                    ar
                } else {
                    af
                }
            };
            if d != NO_ARC && i64::from(d) < gate_delay {
                gate_delay = i64::from(d);
            }
        }
        if gate_delay == i64::MAX {
            gate_delay = if y == 1 {
                i64::from(desc.fb_rise)
            } else {
                i64::from(desc.fb_fall)
            };
        }
        lane.ops(4);

        // --- Lines 20–25: output edge with inertial (PATHPULSEPERCENT)
        // filtering and ghost-timestamp semantics.
        let to = ti + gate_delay;
        // Zero-width pulses are not pulses at all — they always cancel, so
        // the effective threshold never drops below one tick even when
        // PATHPULSEPERCENT rounds to zero.
        let threshold = (gate_delay * i64::from(input.ppp) / 100).max(1);
        // Inertial rejection: a new edge within the threshold of the ghost
        // reference cancels the previous output edge — both edges of the
        // sub-threshold pulse die. The paper's line 25 writes `t_o` into the
        // popped slot unconditionally; this implementation refines that in
        // two ways that keep stored waveforms well-formed and event-driven-
        // reproducible while preserving the same filtering decisions:
        //
        // * the ghost timestamp lives in a register (`prev_to`) instead of
        //   retiming the committed edge below the pop;
        // * the pop is bounded by causality: only an edge that has not yet
        //   manifested (timestamp > current event time) can be retracted.
        //   When the previous edge already fired (only reachable through a
        //   ghost chain), the new edge is *emitted* instead — the output
        //   did transition, and emitting keeps every gate's settled value
        //   equal to its combinational function, which window re-derivation
        //   (and any event-driven simulator) depends on.
        let top_time = if extent > 0 {
            edge_times[(extent as usize - 1) % EDGE_TIME_STACK]
        } else {
            i64::MIN
        };
        let cancel = to - prev_to < threshold && top_time > ti;
        #[cfg(feature = "ktrace")]
        eprintln!(
            "  -> to={to} threshold={threshold} prev_to={prev_to} {}",
            if cancel { "CANCEL" } else { "PUSH" }
        );
        if cancel {
            extent -= 1;
            if storing {
                po -= 1;
            }
        } else {
            edge_times[extent as usize % EDGE_TIME_STACK] = to;
            extent += 1;
            if extent > max_extent {
                max_extent = extent;
            }
            if storing {
                po += 1;
                debug_assert!(po > po_min);
                if po < limit {
                    mem.store(po, to as i32);
                    lane.scattered_store();
                }
            }
        }
        out_val = y;
        prev_to = to;
    }

    // Terminate the stored waveform, then pad the slots between the
    // terminator and the published length (the transient high-water mark)
    // with EOW too. Readers stop at the first EOW either way, but the pad
    // makes the stored bytes a pure function of the inputs — cancelled
    // ghost slots and never-touched arena words would otherwise leak
    // whatever the previous batch left at the address, and the
    // speculative allocator places waveforms at different addresses than
    // the two-pass prefix-sum, which must not be observable.
    if storing && po + 1 < limit {
        mem.store(po + 1, EOW);
        lane.scattered_store();
        let published_end =
            out_base + u32::from(initial_one) as usize + 1 + max_extent as usize + 1;
        for p in (po + 2)..published_end.min(limit) {
            mem.store(p, EOW);
            lane.scattered_store();
        }
    } else {
        // Count pass — or an overflowed speculative reservation, which the
        // repair launch rewrites — writes one TC word per thread.
        lane.scattered_store();
    }

    KernelOutput {
        toggles: extent,
        max_extent,
        initial_one,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use gatspi_graph::GraphOptions;
    use gatspi_netlist::{CellLibrary, NetlistBuilder};
    use gatspi_sdf::SdfFile;
    use gatspi_wave::{Waveform, WaveformArena};

    /// Builds a single-gate graph plus device memory pre-loaded with input
    /// waveforms; returns (graph, mem, in_ptrs).
    fn single_gate(
        cell: &str,
        inputs: &[Waveform],
        sdf: Option<&str>,
    ) -> (CircuitGraph, DeviceMemory, Vec<u32>) {
        let lib = CellLibrary::industry_mini();
        let n_in = lib.cell(lib.find(cell).unwrap()).num_inputs();
        assert_eq!(n_in, inputs.len());
        let mut b = NetlistBuilder::new("t", lib);
        let ins: Vec<_> = (0..n_in)
            .map(|i| b.add_input(&format!("i{i}")).unwrap())
            .collect();
        let y = b.add_output("y").unwrap();
        b.add_gate("u", cell, &ins, y).unwrap();
        let netlist = b.finish().unwrap();
        let sdf_file = sdf.map(|s| SdfFile::parse(s).unwrap());
        let graph =
            CircuitGraph::build(&netlist, sdf_file.as_ref(), &GraphOptions::default()).unwrap();

        let mut arena = WaveformArena::with_capacity(4096);
        let refs: Vec<_> = inputs.iter().map(|w| arena.push(w).unwrap()).collect();
        let mem = DeviceMemory::new(8192);
        mem.h2d(0, arena.data());
        let ptrs = refs.iter().map(|r| r.offset).collect();
        (graph, mem, ptrs)
    }

    /// Owned per-gate kernel context (descriptor + per-pin delay tables)
    /// for gate 0 — the test-side analogue of what the schedule bakes.
    struct Ctx {
        desc: GateDesc,
        nd: Vec<(i32, i32)>,
        avg: Vec<(i32, i32)>,
    }

    impl Ctx {
        fn new(graph: &CircuitGraph, avg: Vec<(i32, i32)>) -> Ctx {
            let desc = GateDesc::of(graph, 0);
            let nd = (0..desc.fanin as usize)
                .map(|i| graph.net_delays(desc.pin_base as usize + i))
                .collect();
            Ctx { desc, nd, avg }
        }

        fn input<'a>(
            &'a self,
            graph: &'a CircuitGraph,
            mem: &'a DeviceMemory,
            ptrs: &'a [u32],
            features: SimFeatures,
            ppp: u32,
        ) -> GateKernelInput<'a> {
            GateKernelInput {
                desc: self.desc,
                tts: graph.truth_tables_flat(),
                luts: graph.delay_luts_flat(),
                net_delays: &self.nd,
                mem,
                in_ptrs: ptrs,
                features,
                ppp,
                avg_delays: &self.avg,
            }
        }
    }

    fn run(
        graph: &CircuitGraph,
        mem: &DeviceMemory,
        ptrs: &[u32],
        features: SimFeatures,
        ppp: u32,
    ) -> Waveform {
        let ctx = Ctx::new(graph, vec![(0, 0); ptrs.len()]);
        let input = ctx.input(graph, mem, ptrs, features, ppp);
        let mut lane = LaneCounters::default();
        let count = simulate_gate(&input, KernelMode::Count, &mut lane);
        let out_base = 6000usize;
        let store = simulate_gate(&input, KernelMode::Store { out_base }, &mut lane);
        assert_eq!(count, store, "count and store passes must agree");
        let words = store.words() as usize;
        // A speculative run with an exact-fit reservation must hit and
        // reproduce the stored waveform bit-for-bit (including stale ghost
        // slots — both regions start from identical contents).
        let spec_base = 7000usize;
        let spec = simulate_gate(
            &input,
            KernelMode::Speculative {
                out_base: spec_base,
                cap: words,
            },
            &mut lane,
        );
        assert_eq!(spec, store, "speculative pass must agree");
        assert!(spec.words() as usize <= words, "exact-fit reservation hits");
        assert_eq!(
            mem.d2h(spec_base, words),
            mem.d2h(out_base, words),
            "speculative hit must be bit-identical to the store pass"
        );
        let raw = mem.d2h(out_base, words);
        // Truncate at EOW (stale ghost slots may follow).
        let end = raw.iter().position(|&v| v == EOW).expect("EOW present") + 1;
        Waveform::from_raw(raw[..end].to_vec()).expect("valid output")
    }

    fn run_default(graph: &CircuitGraph, mem: &DeviceMemory, ptrs: &[u32]) -> Waveform {
        run(graph, mem, ptrs, SimFeatures::default(), 100)
    }

    const INV_SDF: &str = r#"(DELAYFILE (CELL (CELLTYPE "INV") (INSTANCE u)
  (DELAY (ABSOLUTE (IOPATH A Y (3) (5))))))"#;

    #[test]
    fn inverter_with_rise_fall_delays() {
        let a = Waveform::from_toggles(false, &[100, 200]);
        let (g, mem, ptrs) = single_gate("INV", &[a], Some(INV_SDF));
        let y = run_default(&g, &mem, &ptrs);
        // Initial: a=0 -> y=1. a rises at 100 -> y falls at 100+5. a falls
        // at 200 -> y rises at 200+3.
        assert_eq!(y.raw(), &[-1, 0, 105, 203, EOW]);
    }

    #[test]
    fn buffer_passes_through() {
        let a = Waveform::from_toggles(true, &[50]);
        let (g, mem, ptrs) = single_gate("BUF", &[a], None);
        let y = run_default(&g, &mem, &ptrs);
        // Default fallback delay is (1,1).
        assert_eq!(y.raw(), &[-1, 0, 51, EOW]);
    }

    #[test]
    fn tie_cell_constant_output() {
        let lib = CellLibrary::industry_mini();
        let mut b = NetlistBuilder::new("t", lib);
        let y = b.add_output("y").unwrap();
        b.add_gate("u", "TIEHI", &[], y).unwrap();
        let graph =
            CircuitGraph::build(&b.finish().unwrap(), None, &GraphOptions::default()).unwrap();
        let mem = DeviceMemory::new(8192);
        let w = run_default(&graph, &mem, &[]);
        assert_eq!(w, Waveform::constant(true));
    }

    #[test]
    fn nand_gate_logic_and_glitch() {
        // a: 0->1 at 100; b: 1->0 at 103. With unit delays the NAND output
        // pulses 1->0 at 101 and back 0->1 at 104 (width 3 >= delay 1: kept).
        let a = Waveform::from_toggles(false, &[100]);
        let b = Waveform::from_toggles(true, &[103]);
        let (g, mem, ptrs) = single_gate("NAND2", &[a, b], None);
        let y = run_default(&g, &mem, &ptrs);
        assert_eq!(y.raw(), &[-1, 0, 101, 104, EOW]);
    }

    #[test]
    fn gate_inertial_filtering_kills_narrow_pulse() {
        const SDF: &str = r#"(DELAYFILE (CELL (CELLTYPE "NAND2") (INSTANCE u)
  (DELAY (ABSOLUTE (IOPATH A Y (10) (10)) (IOPATH B Y (10) (10))))))"#;
        // Same shape but delay 10 > pulse width 3: output pulse filtered.
        let a = Waveform::from_toggles(false, &[100]);
        let b = Waveform::from_toggles(true, &[103]);
        let (g, mem, ptrs) = single_gate("NAND2", &[a, b], Some(SDF));
        let y = run_default(&g, &mem, &ptrs);
        // Output stays 1 throughout; the ghost timestamp moved but no edge
        // survives.
        assert_eq!(y.toggle_count(), 0);
        assert!(y.initial_value());
    }

    #[test]
    fn path_pulse_percent_relaxes_filtering() {
        const SDF: &str = r#"(DELAYFILE (CELL (CELLTYPE "NAND2") (INSTANCE u)
  (DELAY (ABSOLUTE (IOPATH A Y (10) (10)) (IOPATH B Y (10) (10))))))"#;
        let a = Waveform::from_toggles(false, &[100]);
        let b = Waveform::from_toggles(true, &[103]);
        let (g, mem, ptrs) = single_gate("NAND2", &[a, b], Some(SDF));
        // ppp=20: only pulses narrower than 2 ticks are filtered; width-3
        // pulse survives.
        let y = run(&g, &mem, &ptrs, SimFeatures::default(), 20);
        assert_eq!(y.raw(), &[-1, 0, 110, 113, EOW]);
    }

    #[test]
    fn msi_single_evaluation() {
        // Both NAND inputs rise at exactly 100: output falls once (0->1
        // would glitch if pins were processed separately on an XOR).
        let a = Waveform::from_toggles(false, &[100]);
        let b = Waveform::from_toggles(false, &[100]);
        let (g, mem, ptrs) = single_gate("XOR2", &[a, b], None);
        let y = run_default(&g, &mem, &ptrs);
        // XOR of identical waveforms: constant 0, no glitch at 100.
        assert_eq!(y.toggle_count(), 0);
        assert!(!y.initial_value());
    }

    #[test]
    fn msi_via_wire_delay_collision() {
        const SDF: &str = r#"(DELAYFILE
  (CELL (CELLTYPE "XOR2") (INSTANCE u)
    (DELAY (ABSOLUTE (IOPATH A Y (1) (1)) (IOPATH B Y (1) (1)))))
  (CELL (CELLTYPE "__wire__") (INSTANCE *)
    (DELAY (ABSOLUTE (INTERCONNECT x u/A (5) (5)))))
)"#;
        // a toggles at 100 (arrives 105 via wire), b toggles at 105
        // (arrives 105): MSI. XOR sees both flip together: no output edge.
        let a = Waveform::from_toggles(false, &[100]);
        let b = Waveform::from_toggles(false, &[105]);
        // Note: interconnect binds by instance/pin; build manually to name
        // the driver net `x`.
        let lib = CellLibrary::industry_mini();
        let mut nb = NetlistBuilder::new("t", lib);
        let x = nb.add_input("x").unwrap();
        let w = nb.add_input("w").unwrap();
        let y = nb.add_output("y").unwrap();
        nb.add_gate("u", "XOR2", &[x, w], y).unwrap();
        let netlist = nb.finish().unwrap();
        let sdf = SdfFile::parse(SDF).unwrap();
        let graph = CircuitGraph::build(&netlist, Some(&sdf), &GraphOptions::default()).unwrap();
        let mut arena = WaveformArena::with_capacity(256);
        let ra = arena.push(&a).unwrap();
        let rb = arena.push(&b).unwrap();
        let mem = DeviceMemory::new(8192);
        mem.h2d(0, arena.data());
        let out = run_default(&graph, &mem, &[ra.offset, rb.offset]);
        assert_eq!(out.toggle_count(), 0);
    }

    #[test]
    fn interconnect_inertial_filtering() {
        const SDF: &str = r#"(DELAYFILE
  (CELL (CELLTYPE "BUF") (INSTANCE u)
    (DELAY (ABSOLUTE (IOPATH A Y (1) (1)))))
  (CELL (CELLTYPE "__wire__") (INSTANCE *)
    (DELAY (ABSOLUTE (INTERCONNECT x u/A (8) (8)))))
)"#;
        // Pulse 100..103 is narrower than the 8-tick wire delay: filtered
        // before the gate ever sees it.
        let a = Waveform::from_toggles(false, &[100, 103, 200]);
        let lib = CellLibrary::industry_mini();
        let mut nb = NetlistBuilder::new("t", lib);
        let x = nb.add_input("x").unwrap();
        let y = nb.add_output("y").unwrap();
        nb.add_gate("u", "BUF", &[x], y).unwrap();
        let netlist = nb.finish().unwrap();
        let sdf = SdfFile::parse(SDF).unwrap();
        let graph = CircuitGraph::build(&netlist, Some(&sdf), &GraphOptions::default()).unwrap();
        let mut arena = WaveformArena::with_capacity(256);
        let ra = arena.push(&a).unwrap();
        let mem = DeviceMemory::new(8192);
        mem.h2d(0, arena.data());
        let out = run_default(&graph, &mem, &[ra.offset]);
        // Only the edge at 200 survives: arrives 208, +1 gate delay = 209.
        assert_eq!(out.raw(), &[0, 209, EOW]);

        // With filtering disabled the pulse propagates.
        let features = SimFeatures {
            net_delay_filtering: false,
            ..SimFeatures::default()
        };
        let out2 = run(&graph, &mem, &[ra.offset], features, 100);
        assert_eq!(out2.toggle_count(), 3);
    }

    #[test]
    fn conditional_delay_selected_by_side_inputs() {
        // The paper's AOI21 example: delay on B depends on A1/A2 values.
        const SDF: &str = r#"(DELAYFILE (CELL (CELLTYPE "AOI21") (INSTANCE u)
  (DELAY (ABSOLUTE
    (IOPATH (posedge B) Y () (6))
    (IOPATH (negedge B) Y (8) ())
    (COND A2===1'b1&&A1===1'b0 (IOPATH (posedge B) Y () (5)))
    (COND A2===1'b1&&A1===1'b0 (IOPATH (negedge B) Y (7) ()))
  ))))"#;
        // Pins (A1, A2, B). Hold A1=0, A2=1 -> conditional arcs apply.
        let a1 = Waveform::constant(false);
        let a2 = Waveform::constant(true);
        let b = Waveform::from_toggles(false, &[100, 200]);
        let (g, mem, ptrs) = single_gate("AOI21", &[a1, a2, b], Some(SDF));
        let y = run_default(&g, &mem, &ptrs);
        // A1=0,A2=1: Y = !((0&1)|B) = !B. B rise@100 -> Y fall @ 100+5;
        // B fall@200 -> Y rise @ 200+7.
        assert_eq!(y.raw(), &[-1, 0, 105, 207, EOW]);
    }

    #[test]
    fn unconditional_delay_when_condition_false() {
        const SDF: &str = r#"(DELAYFILE (CELL (CELLTYPE "AOI21") (INSTANCE u)
  (DELAY (ABSOLUTE
    (IOPATH (posedge B) Y () (6))
    (IOPATH (negedge B) Y (8) ())
    (COND A2===1'b1&&A1===1'b0 (IOPATH (posedge B) Y () (5)))
    (COND A2===1'b1&&A1===1'b0 (IOPATH (negedge B) Y (7) ()))
  ))))"#;
        // A1=0, A2=0: default arcs (6/8) apply.
        let a1 = Waveform::constant(false);
        let a2 = Waveform::constant(false);
        let b = Waveform::from_toggles(false, &[100, 200]);
        let (g, mem, ptrs) = single_gate("AOI21", &[a1, a2, b], Some(SDF));
        let y = run_default(&g, &mem, &ptrs);
        assert_eq!(y.raw(), &[-1, 0, 106, 208, EOW]);
    }

    #[test]
    fn partial_sdf_mode_uses_averages() {
        const SDF: &str = r#"(DELAYFILE (CELL (CELLTYPE "INV") (INSTANCE u)
  (DELAY (ABSOLUTE (IOPATH A Y (3) (5))))))"#;
        let a = Waveform::from_toggles(false, &[100]);
        let (g, mem, ptrs) = single_gate("INV", &[a], Some(SDF));
        let features = SimFeatures {
            full_sdf: false,
            ..SimFeatures::default()
        };
        let ctx = Ctx::new(&g, vec![(4, 4)]); // collapsed rise/fall average
        let input = ctx.input(&g, &mem, &ptrs, features, 100);
        let mut lane = LaneCounters::default();
        let out = simulate_gate(&input, KernelMode::Store { out_base: 6000 }, &mut lane);
        let raw = mem.d2h(6000, out.words() as usize);
        // Fall uses the average 4 instead of the true 5.
        assert_eq!(&raw[..3], &[-1, 0, 104]);
    }

    #[test]
    fn count_pass_matches_store_pass_on_glitchy_input() {
        const SDF: &str = r#"(DELAYFILE (CELL (CELLTYPE "AND2") (INSTANCE u)
  (DELAY (ABSOLUTE (IOPATH A Y (4) (4)) (IOPATH B Y (4) (4))))))"#;
        // Dense toggling with pulses around the filter width exercises the
        // push/pop/ghost machinery.
        let a = Waveform::from_toggles(false, &[10, 12, 20, 21, 30, 36, 40, 49]);
        let b = Waveform::from_toggles(true, &[15, 16, 35, 47]);
        let (g, mem, ptrs) = single_gate("AND2", &[a, b], Some(SDF));
        let w = run_default(&g, &mem, &ptrs);
        // The run() helper already asserts count == store; sanity-check the
        // result is a valid monotonic waveform.
        assert!(w.toggle_count() <= 8);
    }

    #[test]
    fn max_extent_can_exceed_final_toggles() {
        const SDF: &str = r#"(DELAYFILE (CELL (CELLTYPE "BUF") (INSTANCE u)
  (DELAY (ABSOLUTE (IOPATH A Y (10) (10))))))"#;
        // Edges at 100 and 105: the second lands within 10 of the first
        // output edge -> pops it. max_extent 1, final toggles 0.
        let a = Waveform::from_toggles(false, &[100, 105]);
        let (g, mem, ptrs) = single_gate("BUF", &[a], Some(SDF));
        let ctx = Ctx::new(&g, vec![(0, 0)]);
        let input = ctx.input(&g, &mem, &ptrs, SimFeatures::default(), 100);
        let mut lane = LaneCounters::default();
        let out = simulate_gate(&input, KernelMode::Count, &mut lane);
        assert_eq!(out.toggles, 0);
        assert_eq!(out.max_extent, 1);
        assert_eq!(out.words(), 3); // initial + transient + EOW
    }

    #[test]
    fn ghost_chain_never_corrupts_marker() {
        const SDF: &str = r#"(DELAYFILE (CELL (CELLTYPE "BUF") (INSTANCE u)
  (DELAY (ABSOLUTE (IOPATH A Y (10) (10))))))"#;
        // A long train of sub-delay pulses: every edge gets filtered; the
        // pop chain must stop at the initial entry and keep the -1 marker.
        let a = Waveform::from_toggles(true, &[100, 105, 110, 115, 120, 125]);
        let (g, mem, ptrs) = single_gate("BUF", &[a], Some(SDF));
        let y = run_default(&g, &mem, &ptrs);
        assert!(y.initial_value(), "marker survived");
        assert_eq!(y.toggle_count(), 0);
    }

    #[test]
    fn lane_counters_accumulate() {
        let a = Waveform::from_toggles(false, &[100, 200]);
        let (g, mem, ptrs) = single_gate("INV", &[a], Some(INV_SDF));
        let ctx = Ctx::new(&g, vec![(0, 0)]);
        let input = ctx.input(&g, &mem, &ptrs, SimFeatures::default(), 100);
        let mut lane = LaneCounters::default();
        simulate_gate(&input, KernelMode::Count, &mut lane);
        assert!(lane.loads > 0);
        assert!(lane.instructions > 0);
        assert!(lane.stores > 0); // the TC write
    }

    #[test]
    fn speculative_overflow_stays_inside_reservation() {
        let a = Waveform::from_toggles(false, &[100, 200, 300, 400]);
        let (g, mem, ptrs) = single_gate("INV", &[a], Some(INV_SDF));
        let ctx = Ctx::new(&g, vec![(0, 0)]);
        let input = ctx.input(&g, &mem, &ptrs, SimFeatures::default(), 100);
        let mut lane = LaneCounters::default();
        let count = simulate_gate(&input, KernelMode::Count, &mut lane);
        let base = 6000usize;
        let cap = 2usize;
        assert!(count.words() as usize > cap, "test needs a real overflow");
        // Sentinel-fill a window around the deliberately tiny reservation.
        let sentinel = vec![0x5EED_i32; 64];
        mem.h2d(base - 16, &sentinel);
        let spec = simulate_gate(
            &input,
            KernelMode::Speculative {
                out_base: base,
                cap,
            },
            &mut lane,
        );
        // The overflowing run still counts exactly like the count pass...
        assert_eq!(spec, count, "overflow degrades to an exact count");
        // ...and never wrote a word outside `base..base + cap`.
        let after = mem.d2h(base - 16, 64);
        for (i, (&before, &now)) in sentinel.iter().zip(after.iter()).enumerate() {
            let idx = base - 16 + i;
            if !(base..base + cap).contains(&idx) {
                assert_eq!(now, before, "word {idx} outside the reservation changed");
            }
        }
    }

    #[test]
    fn speculative_zero_cap_writes_nothing() {
        let a = Waveform::from_toggles(false, &[100]);
        let (g, mem, ptrs) = single_gate("INV", &[a], Some(INV_SDF));
        let ctx = Ctx::new(&g, vec![(0, 0)]);
        let input = ctx.input(&g, &mem, &ptrs, SimFeatures::default(), 100);
        let mut lane = LaneCounters::default();
        let base = 6000usize;
        let sentinel = vec![0x5EED_i32; 16];
        mem.h2d(base, &sentinel);
        let spec = simulate_gate(
            &input,
            KernelMode::Speculative {
                out_base: base,
                cap: 0,
            },
            &mut lane,
        );
        assert!(spec.words() > 0);
        assert_eq!(mem.d2h(base, 16), sentinel, "zero-cap run touched memory");
    }

    #[test]
    fn gate_desc_mirrors_graph_accessors() {
        let a = Waveform::from_toggles(false, &[100]);
        let b = Waveform::from_toggles(true, &[150]);
        let (g, _mem, _ptrs) = single_gate("NAND2", &[a, b], None);
        let d = GateDesc::of(&g, 0);
        assert_eq!(d.fanin as usize, g.gate_fanin(0).len());
        assert_eq!(d.pin_base as usize, g.pin_base(0));
        assert_eq!(d.lut_ncols, 2); // 2^(2-1)
        let tt = g.truth_table(0);
        let flat = g.truth_tables_flat();
        assert_eq!(&flat[d.tt_base as usize..d.tt_base as usize + tt.len()], tt);
        for pin in 0..2 {
            let lut = g.delay_lut(0, pin);
            let base = d.lut_base as usize + pin * 4 * d.lut_ncols as usize;
            assert_eq!(
                &g.delay_luts_flat()[base..base + lut.len()],
                lut,
                "pin {pin} LUT block"
            );
        }
        assert_eq!((d.fb_rise, d.fb_fall), g.fallback_delay(0));
    }

    #[test]
    fn pack_round_trips_at_extent_boundary() {
        let out = KernelOutput {
            toggles: 7,
            max_extent: KernelOutput::MAX_PACKED_EXTENT,
            initial_one: true,
        };
        let rt = KernelOutput::unpack(out.pack());
        assert_eq!(rt, out, "boundary extent must not bleed into bit 63");
        let no_init = KernelOutput {
            initial_one: false,
            ..out
        };
        assert_eq!(KernelOutput::unpack(no_init.pack()), no_init);
    }

    #[cfg(debug_assertions)]
    #[test]
    #[should_panic(expected = "packed extent field")]
    fn pack_rejects_extent_overflow() {
        let out = KernelOutput {
            toggles: 0,
            max_extent: KernelOutput::MAX_PACKED_EXTENT + 1,
            initial_one: false,
        };
        let _ = out.pack();
    }
}
