//! Precomputed per-batch launch schedule: the zero-allocation hot path.
//!
//! The seed engine recomputed everything per level of every window batch —
//! per-thread `gate_fanin` CSR walks inside the kernel closure, a
//! `gates × fanin × windows` working-set scan, and fresh `Vec<AtomicU64>` /
//! `vec![0u32; threads]` scratch allocations per level — and always issued
//! two launches per level, even for near-empty levels where launch overhead
//! dominates (the paper's Tables 5–6 profile exactly these phases).
//!
//! [`LevelSchedule`] is built once per window batch and gives
//! `run_window_batch` everything flat:
//!
//! * per-level thread tables (`gates`, `out_sigs`, `pin_base`, `pin_sigs`)
//!   so a kernel thread resolves its gate, output signal and input-pointer
//!   slots by dense indexing instead of walking graph CSR per invocation;
//! * per-level working-set sizes computed incrementally from the running
//!   per-signal length sums ([`BatchScratch::len_sum`]) — `O(level pins)`
//!   instead of `O(gates × fanin × windows)`;
//! * launch fusion groups: maximal runs of consecutive levels whose
//!   combined thread count does not exceed
//!   [`SimConfig::fuse_threshold`](crate::SimConfig::fuse_threshold),
//!   executed as one phased launch (count/store phases per level behind
//!   the device's internal phase hand-off) — one launch overhead instead
//!   of two per level;
//! * a persistent scratch arena ([`BatchScratch`]) replacing all per-level
//!   allocations: atomic pointer/length tables, plus count-output and
//!   prefix-sum-base columns in which every level of a fused group owns a
//!   **disjoint contiguous slab range** ([`LevelDesc::col_off`]) — the
//!   group's base assignment becomes one carry-chained segmented
//!   prefix-sum over that slab, and the overlapped publish path (len-sum
//!   accounting + SAIF dump enqueueing of level `L`) reads `L`'s range
//!   while level `L + 1`'s count pass writes its own.

use std::ops::Range;

use crate::kernel::GateDesc;
use crate::sync::atomic::{AtomicU32, AtomicU64, AtomicUsize, Ordering};

use gatspi_graph::CircuitGraph;

/// One level's slice of the flattened schedule tables.
#[derive(Debug, Clone)]
pub(crate) struct LevelDesc {
    /// Range of gate slots (indices into `gates` / `out_sigs`).
    pub gate_lo: u32,
    /// One past the last gate slot.
    pub gate_hi: u32,
    /// Logical threads: gates in level × windows.
    pub threads: usize,
    /// Offset of this level's count/base entries in the scratch column.
    /// Levels of a fused group occupy disjoint consecutive ranges of one
    /// contiguous slab (`col_off..col_off + threads`), so the group's
    /// segmented prefix-sum scans one arena run and a level's publish can
    /// proceed while later levels of the same group fill their own ranges.
    /// Classic single-level groups start at 0.
    pub col_off: u32,
}

/// A maximal run of consecutive levels dispatched by one launch decision.
#[derive(Debug, Clone)]
pub(crate) struct LaunchGroup {
    /// Level indices covered.
    pub levels: Range<usize>,
    /// Combined logical threads across the covered levels.
    pub threads: usize,
    /// `true` ⇒ one phased launch (count + store phases per level);
    /// `false` ⇒ the classic two launches for a single wide level.
    pub fused: bool,
    /// Range into [`LevelSchedule::phase_threads`] for the phased launch.
    pub phases: Range<usize>,
}

/// The affected region of an incremental re-simulation: a changed gate set
/// plus its transitive fan-out, extracted from the levelized graph by one
/// level-order sweep (see [`ConeInfo::of`]).
#[derive(Debug, Clone)]
pub(crate) struct ConeInfo {
    /// Per-gate cone membership (changed ∪ transitive fan-out).
    pub gates: Vec<bool>,
    /// Per-signal cone membership: the outputs of in-cone gates — exactly
    /// the signals an incremental run recomputes.
    pub sigs: Vec<bool>,
    /// Out-of-cone signals read by in-cone gates, ascending and deduped:
    /// primary inputs plus unchanged driven signals. These are the cone's
    /// *boundary stimulus* — uploaded from the previous run's spilled
    /// waveforms instead of being recomputed.
    pub boundary: Vec<u32>,
    /// In-cone gate count (the cone sub-schedule's total slots).
    pub n_gates: usize,
}

impl ConeInfo {
    /// Extracts the fan-out cone of `changed` (per-gate flags) from the
    /// levelized graph: one sweep over the levels marks a gate in-cone iff
    /// it changed or any of its pins is an in-cone output, then marks its
    /// output signal. Because pins are driven strictly below their
    /// consumer's level, the single sweep computes the full transitive
    /// fan-out, and a pin that is clean when its consumer is visited can
    /// never become dirty later — so the boundary set is final. The cone is
    /// window-count-independent; [`LevelSchedule::restrict`] specializes it
    /// per batch size.
    pub fn of(graph: &CircuitGraph, changed: &[bool]) -> ConeInfo {
        let mut gates = vec![false; graph.n_gates()];
        let mut sigs = vec![false; graph.n_signals()];
        let mut boundary = Vec::new();
        let mut n_gates = 0usize;
        for l in 0..graph.n_levels() {
            for &g in graph.level_gates(l) {
                let g = g as usize;
                let pins = graph.gate_fanin(g);
                if !changed[g] && !pins.iter().any(|&p| sigs[p as usize]) {
                    continue;
                }
                gates[g] = true;
                n_gates += 1;
                for &p in pins {
                    if !sigs[p as usize] {
                        boundary.push(p);
                    }
                }
                sigs[graph.gate_output(g).index()] = true;
            }
        }
        boundary.sort_unstable();
        boundary.dedup();
        ConeInfo {
            gates,
            sigs,
            boundary,
            n_gates,
        }
    }
}

/// Per-gate maximum observed stored waveform size, in even-aligned arena
/// words, indexed by *gate id* (not schedule slot — so the history a full
/// plan accumulates transfers verbatim to any cone sub-plan of the same
/// graph). `0` is the first-touch sentinel: the gate has never completed a
/// store under this plan-cache entry, and the speculative budget assigner
/// must fall back to the sound static bound (Σ published input lengths).
///
/// Updates are monotone (`fetch_max`), which makes the table safe to share
/// between concurrent launches, multi-GPU shard threads, and the repair
/// scan without locks: a stale read can only under-predict, which costs an
/// overflow repair, never correctness.
#[derive(Debug)]
pub(crate) struct ExtentPredictor {
    words: Vec<AtomicU32>,
}

impl ExtentPredictor {
    pub(crate) fn new(n_gates: usize) -> Self {
        let mut words = Vec::with_capacity(n_gates);
        words.resize_with(n_gates, || AtomicU32::new(0));
        ExtentPredictor { words }
    }

    /// Records an observed stored size (even-aligned words) for a gate.
    ///
    /// Guarded by a plain load: in the steady state every observation is
    /// ≤ the recorded maximum and the kernel threads calling this per
    /// gate-window pay one read, no RMW. The guard races benignly — two
    /// concurrent observers can both pass it, and `fetch_max` still keeps
    /// the entry monotone.
    #[inline]
    pub fn observe(&self, gate: usize, words: u32) {
        // relaxed-ok: the predictor is advisory — a stale or torn-ordered
        // read only costs an overflow repair; fetch_max keeps the entry
        // monotone under concurrent observers.
        if self.words[gate].load(Ordering::Relaxed) < words {
            // relaxed-ok: see above.
            self.words[gate].fetch_max(words, Ordering::Relaxed);
        }
    }

    /// Predicted even-aligned words for a gate; `None` on first touch.
    #[inline]
    pub fn predict(&self, gate: usize) -> Option<u32> {
        // relaxed-ok: see `observe`.
        match self.words[gate].load(Ordering::Relaxed) {
            0 => None,
            w => Some(w),
        }
    }

    /// Overwrites every entry — the hook tests and benches use to force
    /// deliberately tiny budgets (overflow on every gate) or to pre-warm.
    pub fn fill(&self, words: u32) {
        for w in &self.words {
            // relaxed-ok: runs on the engine thread between batches.
            w.store(words, Ordering::Relaxed);
        }
    }

    /// Merges another predictor's history into this one (monotone max).
    /// Cone sub-plans seed from the full plan so incremental runs
    /// speculate accurately from their first window.
    pub fn seed_from(&self, other: &ExtentPredictor) {
        for (dst, src) in self.words.iter().zip(&other.words) {
            // relaxed-ok: advisory history copy; see `observe`.
            dst.fetch_max(src.load(Ordering::Relaxed), Ordering::Relaxed);
        }
    }
}

/// Flattened, immutable launch schedule for one window batch.
#[derive(Debug)]
pub(crate) struct LevelSchedule {
    /// Windows simulated concurrently in this batch.
    pub nw: usize,
    levels: Vec<LevelDesc>,
    groups: Vec<LaunchGroup>,
    /// Gate id per gate slot, (level, gate id) order.
    gates: Vec<u32>,
    /// Baked kernel descriptor per gate slot (truth-table base, LUT
    /// base/ncols, fallback delays — see [`GateDesc`]): the hot loop's
    /// graph lookups resolved once at schedule compile time.
    descs: Vec<GateDesc>,
    /// Output signal per gate slot.
    out_sigs: Vec<u32>,
    /// CSR: pins of gate slot `s` live at `pin_sigs[pin_base[s]..pin_base[s + 1]]`.
    pin_base: Vec<u32>,
    /// Input signal per (gate slot, pin).
    pin_sigs: Vec<u32>,
    /// Interconnect `(rise, fall)` delay per (gate slot, pin) — same CSR
    /// layout as `pin_sigs`, baked so the kernel's arrival loop reads a
    /// dense schedule-local table.
    pin_net_delays: Vec<(i32, i32)>,
    /// Per-gate speculative extent history shared by every batch that
    /// reuses this cached plan (see [`ExtentPredictor`]).
    predictor: ExtentPredictor,
    /// Flat per-phase thread counts; a fused group's phased launch uses
    /// `phase_threads[group.phases]` (two phases per level: count, store).
    phase_threads: Vec<usize>,
    /// Widest single level's thread count.
    max_level_threads: usize,
    /// Largest fused group's gate-slot count × windows (sizes the publish
    /// backlog a fused launch can produce before the ring drains).
    max_fused_msgs: usize,
    /// Entries the scratch count/base column must hold: the widest single
    /// level or the largest fused group's whole slab, whichever is bigger.
    col_entries: usize,
}

impl LevelSchedule {
    /// Builds the schedule for `nw` concurrent windows with the given
    /// fusion threshold (`0` disables fusion).
    pub fn build(graph: &CircuitGraph, nw: usize, fuse_threshold: usize) -> Self {
        let level_offsets = graph.level_offsets();
        let gates = graph.level_gates_flat().to_vec();
        let level_counts: Vec<u32> = (0..graph.n_levels())
            .map(|l| level_offsets[l + 1] - level_offsets[l])
            .collect();
        Self::assemble(graph, gates, level_counts, nw, fuse_threshold)
    }

    /// Builds a *cone sub-schedule*: the same levelized two-pass plan, but
    /// restricted to the gates of `cone` (a changed set plus its transitive
    /// fan-out, see [`ConeInfo`]). Levels are filtered to their in-cone
    /// gates with compacted thread tables; levels left empty disappear
    /// entirely (no launch, no publish ticket), so the cone of a handful of
    /// late-level resizes executes in a few launches regardless of the full
    /// design's depth. Relative level order is preserved, which keeps the
    /// dependency argument intact: every in-cone pin is either an earlier
    /// in-cone output or a boundary signal uploaded before the batch runs.
    pub fn restrict(
        graph: &CircuitGraph,
        nw: usize,
        fuse_threshold: usize,
        cone: &ConeInfo,
    ) -> Self {
        let mut gates = Vec::with_capacity(cone.n_gates);
        let mut level_counts = Vec::new();
        for l in 0..graph.n_levels() {
            let lo = gates.len();
            gates.extend(
                graph
                    .level_gates(l)
                    .iter()
                    .copied()
                    .filter(|&g| cone.gates[g as usize]),
            );
            if gates.len() > lo {
                level_counts.push((gates.len() - lo) as u32);
            }
        }
        Self::assemble(graph, gates, level_counts, nw, fuse_threshold)
    }

    /// Shared tail of [`LevelSchedule::build`]/[`LevelSchedule::restrict`]:
    /// flattens the per-slot tables for `gates` (level-ordered, with
    /// `level_counts[l]` consecutive slots per level) and runs the greedy
    /// launch-fusion pass.
    fn assemble(
        graph: &CircuitGraph,
        gates: Vec<u32>,
        level_counts: Vec<u32>,
        nw: usize,
        fuse_threshold: usize,
    ) -> Self {
        let n_levels = level_counts.len();
        let fanin_offsets = graph.fanin_offsets();
        let fanin_signals = graph.fanin_signals_flat();
        let gate_outputs = graph.gate_outputs_flat();

        let mut out_sigs = Vec::with_capacity(gates.len());
        let mut descs = Vec::with_capacity(gates.len());
        let mut pin_base = Vec::with_capacity(gates.len() + 1);
        let mut pin_sigs = Vec::new();
        let mut pin_net_delays = Vec::new();
        pin_base.push(0u32);
        for &g in &gates {
            let g = g as usize;
            out_sigs.push(gate_outputs[g]);
            descs.push(GateDesc::of(graph, g));
            let a = fanin_offsets[g] as usize;
            let b = fanin_offsets[g + 1] as usize;
            pin_sigs.extend_from_slice(&fanin_signals[a..b]);
            pin_net_delays.extend((a..b).map(|slot| graph.net_delays(slot)));
            pin_base.push(pin_sigs.len() as u32);
        }

        let mut lo = 0u32;
        let mut levels: Vec<LevelDesc> = level_counts
            .iter()
            .map(|&n| {
                let ld = LevelDesc {
                    gate_lo: lo,
                    gate_hi: lo + n,
                    threads: n as usize * nw,
                    col_off: 0,
                };
                lo += n;
                ld
            })
            .collect();

        // Greedy fusion: extend a run while the combined thread count stays
        // under the threshold. A single level at or above the threshold
        // keeps the classic two-launch schedule (wide levels amortise their
        // launch overhead; fusing them would only serialize the host
        // prefix-sum behind a worker barrier).
        let mut groups = Vec::new();
        let mut phase_threads = Vec::new();
        let mut start = 0usize;
        while start < n_levels {
            let first = levels[start].threads;
            if fuse_threshold == 0 || first >= fuse_threshold {
                groups.push(LaunchGroup {
                    levels: start..start + 1,
                    threads: first,
                    fused: false,
                    phases: 0..0,
                });
                start += 1;
                continue;
            }
            let mut end = start + 1;
            let mut cum = first;
            while end < n_levels
                && levels[end].threads < fuse_threshold
                && cum + levels[end].threads <= fuse_threshold
            {
                cum += levels[end].threads;
                end += 1;
            }
            let phase_lo = phase_threads.len();
            let mut slab_off = 0u32;
            for ld in &mut levels[start..end] {
                // Consecutive levels of the group stack into one
                // contiguous slab of the scratch column.
                ld.col_off = slab_off;
                slab_off += ld.threads as u32;
                phase_threads.push(ld.threads); // count pass
                phase_threads.push(ld.threads); // store pass
            }
            groups.push(LaunchGroup {
                levels: start..end,
                threads: cum,
                fused: true,
                phases: phase_lo..phase_threads.len(),
            });
            start = end;
        }

        let max_level_threads = levels.iter().map(|ld| ld.threads).max().unwrap_or(0);
        let max_fused_msgs = groups
            .iter()
            .filter(|g| g.fused)
            .map(|g| g.threads)
            .max()
            .unwrap_or(0);

        LevelSchedule {
            nw,
            levels,
            groups,
            gates,
            descs,
            out_sigs,
            pin_base,
            pin_sigs,
            pin_net_delays,
            predictor: ExtentPredictor::new(graph.n_gates()),
            phase_threads,
            max_level_threads,
            max_fused_msgs,
            col_entries: max_level_threads.max(max_fused_msgs),
        }
    }

    /// The launch groups in dependency order.
    pub fn groups(&self) -> &[LaunchGroup] {
        &self.groups
    }

    /// Number of levels (one publish ticket each, at most).
    pub fn n_levels(&self) -> usize {
        self.levels.len()
    }

    /// Level descriptor.
    pub fn level(&self, l: usize) -> &LevelDesc {
        &self.levels[l]
    }

    /// Per-phase thread counts of a fused group.
    pub fn phases(&self, group: &LaunchGroup) -> &[usize] {
        &self.phase_threads[group.phases.clone()]
    }

    /// Gate id of a gate slot.
    #[inline]
    pub fn gate(&self, slot: usize) -> usize {
        self.gates[slot] as usize
    }

    /// Baked kernel descriptor of a gate slot.
    #[inline]
    pub fn desc(&self, slot: usize) -> GateDesc {
        self.descs[slot]
    }

    /// Interconnect delays of a gate slot's pins, pin order.
    #[inline]
    pub fn net_delays_of(&self, slot: usize) -> &[(i32, i32)] {
        &self.pin_net_delays[self.pin_base[slot] as usize..self.pin_base[slot + 1] as usize]
    }

    /// The plan's shared per-gate extent history.
    #[inline]
    pub fn predictor(&self) -> &ExtentPredictor {
        &self.predictor
    }

    /// Output signal of a gate slot.
    #[inline]
    pub fn out_sig(&self, slot: usize) -> usize {
        self.out_sigs[slot] as usize
    }

    /// Input signals of a gate slot, pin order.
    #[inline]
    pub fn pins_of(&self, slot: usize) -> &[u32] {
        &self.pin_sigs[self.pin_base[slot] as usize..self.pin_base[slot + 1] as usize]
    }

    /// All input signals a level touches (for the incremental working-set
    /// sum).
    pub fn level_pins(&self, l: usize) -> &[u32] {
        let ld = &self.levels[l];
        let a = self.pin_base[ld.gate_lo as usize] as usize;
        let b = self.pin_base[ld.gate_hi as usize] as usize;
        &self.pin_sigs[a..b]
    }

    /// Input working set of level `l` in words, from the running per-signal
    /// length sums (valid only behind a publish fence: the sums for a
    /// signal settle when its level's publish ticket completes).
    pub fn level_ws(&self, len_sum: &[AtomicU64], l: usize) -> u64 {
        self.level_pins(l)
            .iter()
            // relaxed-ok: callers fence on the publish pipeline
            // (`fence_all`) before reading the sums — see the doc above.
            .map(|&s| len_sum[s as usize].load(Ordering::Relaxed))
            .sum()
    }

    /// Allocates the batch scratch arena sized for this schedule.
    pub fn new_scratch(&self, n_signals: usize) -> BatchScratch {
        BatchScratch::new(n_signals, self.nw, self.col_entries)
    }

    /// Entries the scratch count/base column must hold for this schedule:
    /// the widest single level's threads or the largest fused group's
    /// contiguous slab, whichever is bigger.
    pub fn col_entries(&self) -> usize {
        self.col_entries
    }

    /// Messages the dump ring must hold so no level's publication ever
    /// blocks on the SAIF scan: the widest single level (the publish worker
    /// enqueues a whole level at a time) or the largest fused group
    /// (published while the launch is still running), whichever is larger.
    pub fn dump_backlog(&self) -> usize {
        self.max_level_threads.max(self.max_fused_msgs)
    }

    /// Total gate slots across all levels.
    pub fn n_slots(&self) -> usize {
        self.gates.len()
    }

    /// Structural checker of a compiled plan: verifies every invariant the
    /// hot path assumes instead of checking — flat-table shapes, level
    /// partitioning, baked descriptors and LUT offsets against the graph,
    /// topological consistency, launch-group coverage, and the fused-slab
    /// disjointness the overlapped publish depends on. For cone
    /// sub-schedules, also checks the cone is closed under fanout and its
    /// boundary covers every out-of-cone pin. Returns one message per
    /// defect (empty = sound). This is `xtask validate-plans`' engine (via
    /// [`crate::audit`]) and the target of the mutation tests below.
    pub fn validate(&self, graph: &CircuitGraph, cone: Option<&ConeInfo>) -> Vec<String> {
        let mut defects = Vec::new();
        let n_slots = self.gates.len();

        // Flat-table shapes. Gross shape damage makes the later indexed
        // checks meaningless (or out-of-bounds), so bail early on it.
        if self.descs.len() != n_slots || self.out_sigs.len() != n_slots {
            defects.push(format!(
                "table shape: {} slots but {} descs / {} out_sigs",
                n_slots,
                self.descs.len(),
                self.out_sigs.len()
            ));
            return defects;
        }
        if self.pin_base.len() != n_slots + 1 || self.pin_base.first() != Some(&0) {
            defects.push(format!(
                "pin_base shape: {} entries for {} slots (want {} starting at 0)",
                self.pin_base.len(),
                n_slots,
                n_slots + 1
            ));
            return defects;
        }
        if let Some(s) = (1..self.pin_base.len()).find(|&s| self.pin_base[s] < self.pin_base[s - 1])
        {
            defects.push(format!("pin_base not monotone at slot {}", s - 1));
            return defects;
        }
        let pins_total = *self.pin_base.last().unwrap_or(&0) as usize;
        if pins_total != self.pin_sigs.len() || pins_total != self.pin_net_delays.len() {
            defects.push(format!(
                "pin tables: pin_base covers {pins_total} pins but pin_sigs has {} and \
                 pin_net_delays has {}",
                self.pin_sigs.len(),
                self.pin_net_delays.len()
            ));
            return defects;
        }

        // Levels: a contiguous, non-empty partition of the slot range with
        // thread counts = gates × windows.
        let mut lo = 0u32;
        for (l, ld) in self.levels.iter().enumerate() {
            if ld.gate_lo != lo || ld.gate_hi <= ld.gate_lo {
                defects.push(format!(
                    "level {l}: slot range {}..{} does not continue the partition at {lo}",
                    ld.gate_lo, ld.gate_hi
                ));
            }
            let n = ld.gate_hi.saturating_sub(ld.gate_lo) as usize;
            if ld.threads != n * self.nw {
                defects.push(format!(
                    "level {l}: {} threads for {n} gates × {} windows",
                    ld.threads, self.nw
                ));
            }
            if ld.threads > self.col_entries {
                defects.push(format!(
                    "level {l}: {} threads exceed the scratch column ({} entries)",
                    ld.threads, self.col_entries
                ));
            }
            lo = ld.gate_hi.max(lo);
        }
        if lo as usize != n_slots {
            defects.push(format!(
                "levels cover {lo} slots but the tables hold {n_slots}"
            ));
        }

        // Per-slot: gate ids in range and unique, baked tables consistent
        // with the graph, LUT offsets inside the flat arrays.
        let tt_len = graph.truth_tables_flat().len();
        let lut_len = graph.delay_luts_flat().len();
        let mut slot_of_gate: Vec<Option<u32>> = vec![None; graph.n_gates()];
        for slot in 0..n_slots {
            let gate = self.gates[slot] as usize;
            if gate >= graph.n_gates() {
                defects.push(format!(
                    "slot {slot}: gate id {gate} out of range ({} gates)",
                    graph.n_gates()
                ));
                continue;
            }
            if let Some(prev) = slot_of_gate[gate] {
                defects.push(format!("slot {slot}: gate {gate} already at slot {prev}"));
                continue;
            }
            slot_of_gate[gate] = Some(slot as u32);
            let desc = self.descs[slot];
            if desc != GateDesc::of(graph, gate) {
                defects.push(format!(
                    "slot {slot}: baked descriptor disagrees with the graph for gate {gate}"
                ));
            }
            if (desc.fanin >= 32) || (desc.tt_base as usize + (1usize << desc.fanin) > tt_len) {
                defects.push(format!(
                    "slot {slot}: truth-table rows {}..{} outside the flat array ({tt_len})",
                    desc.tt_base,
                    desc.tt_base as u64 + (1u64 << desc.fanin.min(63))
                ));
            }
            let lut_words = desc.fanin as usize * 4 * desc.lut_ncols as usize;
            if desc.lut_base as usize + lut_words > lut_len {
                defects.push(format!(
                    "slot {slot}: delay-LUT words {}..{} outside the flat array ({lut_len})",
                    desc.lut_base,
                    desc.lut_base as usize + lut_words
                ));
            }
            if self.out_sigs[slot] as usize != graph.gate_output(gate).index() {
                defects.push(format!(
                    "slot {slot}: output signal {} is not gate {gate}'s output",
                    self.out_sigs[slot]
                ));
            }
            let pins =
                &self.pin_sigs[self.pin_base[slot] as usize..self.pin_base[slot + 1] as usize];
            if pins != graph.gate_fanin(gate) {
                defects.push(format!(
                    "slot {slot}: pin signals disagree with gate {gate}"
                ));
            }
            let nd = &self.pin_net_delays
                [self.pin_base[slot] as usize..self.pin_base[slot + 1] as usize];
            let want: Vec<(i32, i32)> = (0..pins.len())
                .map(|i| graph.net_delays(graph.pin_base(gate) + i))
                .collect();
            if nd != want {
                defects.push(format!(
                    "slot {slot}: interconnect delays disagree with gate {gate}"
                ));
            }
        }

        // Topological consistency: every pin's producer (if scheduled) runs
        // at a strictly earlier level; unscheduled producers are legal only
        // for cone plans and only via the boundary.
        let mut level_of_slot = vec![0usize; n_slots];
        for (l, ld) in self.levels.iter().enumerate() {
            for s in ld.gate_lo..ld.gate_hi.min(n_slots as u32) {
                level_of_slot[s as usize] = l;
            }
        }
        for slot in 0..n_slots {
            let level = level_of_slot[slot];
            for &p in &self.pin_sigs[self.pin_base[slot] as usize..self.pin_base[slot + 1] as usize]
            {
                let driver = graph.driver(gatspi_graph::SignalId(p));
                match driver.and_then(|d| slot_of_gate.get(d).copied().flatten()) {
                    Some(dslot) => {
                        if level_of_slot[dslot as usize] >= level {
                            defects.push(format!(
                                "slot {slot} (level {level}): pin {p} is produced at level {} — \
                                 not strictly earlier",
                                level_of_slot[dslot as usize]
                            ));
                        }
                    }
                    None => match (driver, cone) {
                        (None, None) => {} // primary input
                        (Some(d), None) => defects.push(format!(
                            "slot {slot}: pin {p}'s producer (gate {d}) is missing from a \
                             full plan"
                        )),
                        (_, Some(c)) => {
                            if c.boundary.binary_search(&p).is_err() {
                                defects.push(format!(
                                    "slot {slot}: out-of-cone pin {p} is not in the cone's \
                                     boundary stimulus"
                                ));
                            }
                        }
                    },
                }
            }
        }

        // Coverage: a full plan schedules every gate exactly once; a cone
        // plan schedules exactly the cone's gates, and the cone itself must
        // be closed under fanout (an unscheduled gate reading an in-cone
        // output would consume a signal the incremental run recomputes).
        match cone {
            None => {
                if n_slots != graph.n_gates() {
                    defects.push(format!(
                        "full plan covers {n_slots} of {} gates",
                        graph.n_gates()
                    ));
                }
            }
            Some(c) => {
                if c.gates.len() != graph.n_gates() || c.sigs.len() != graph.n_signals() {
                    defects.push("cone flag tables do not match the graph".to_string());
                } else {
                    for (gate, slot) in slot_of_gate.iter().enumerate() {
                        let scheduled = slot.is_some();
                        if scheduled != c.gates[gate] {
                            defects.push(format!(
                                "gate {gate}: scheduled={scheduled} but cone membership is {}",
                                c.gates[gate]
                            ));
                        }
                        if !c.gates[gate] {
                            for &p in graph.gate_fanin(gate) {
                                let from_cone = graph
                                    .driver(gatspi_graph::SignalId(p))
                                    .is_some_and(|d| c.gates[d]);
                                if from_cone {
                                    defects.push(format!(
                                        "cone not closed under fanout: gate {gate} reads \
                                         in-cone signal {p} but is not in the cone"
                                    ));
                                }
                            }
                        }
                    }
                    if c.n_gates != n_slots {
                        defects.push(format!(
                            "cone reports {} gates but the plan has {n_slots} slots",
                            c.n_gates
                        ));
                    }
                }
            }
        }

        // Launch groups: an in-order partition of the levels; fused groups
        // own two phases per level and disjoint, in-bounds col_off slabs.
        let mut next_level = 0usize;
        let mut next_phase = 0usize;
        for (gi, gr) in self.groups.iter().enumerate() {
            if gr.levels.start != next_level || gr.levels.end <= gr.levels.start {
                defects.push(format!(
                    "group {gi}: level range {:?} does not continue the partition at {next_level}",
                    gr.levels
                ));
                next_level = gr.levels.end.max(next_level);
                continue;
            }
            next_level = gr.levels.end;
            let threads: usize = gr
                .levels
                .clone()
                .filter_map(|l| self.levels.get(l).map(|ld| ld.threads))
                .sum();
            if gr.threads != threads {
                defects.push(format!(
                    "group {gi}: {} threads recorded, {threads} across its levels",
                    gr.threads
                ));
            }
            if !gr.fused {
                if gr.levels.len() != 1 {
                    defects.push(format!(
                        "group {gi}: classic (unfused) group spans {} levels",
                        gr.levels.len()
                    ));
                }
                if !gr.phases.is_empty() {
                    defects.push(format!(
                        "group {gi}: classic group owns phases {:?}",
                        gr.phases
                    ));
                }
                for l in gr.levels.clone() {
                    if let Some(ld) = self.levels.get(l) {
                        if ld.col_off != 0 {
                            defects.push(format!(
                                "group {gi}: classic level {l} starts its column at {} (want 0)",
                                ld.col_off
                            ));
                        }
                    }
                }
                continue;
            }
            if gr.phases.start != next_phase || gr.phases.len() != 2 * gr.levels.len() {
                defects.push(format!(
                    "group {gi}: phase range {:?} for {} levels (want 2 per level from \
                     {next_phase})",
                    gr.phases,
                    gr.levels.len()
                ));
            }
            next_phase = gr.phases.end.max(next_phase);
            for (k, l) in gr.levels.clone().enumerate() {
                let (Some(ld), Some(&pc), Some(&ps)) = (
                    self.levels.get(l),
                    self.phase_threads.get(gr.phases.start + 2 * k),
                    self.phase_threads.get(gr.phases.start + 2 * k + 1),
                ) else {
                    continue;
                };
                if pc != ld.threads || ps != ld.threads {
                    defects.push(format!(
                        "group {gi}: level {l}'s phases run {pc}/{ps} threads, level has {}",
                        ld.threads
                    ));
                }
            }
            // Slab disjointness: the overlapped publish of level L reads
            // its own col_off range while L+1's count pass writes its own.
            let mut slabs: Vec<(u32, u32)> = gr
                .levels
                .clone()
                .filter_map(|l| self.levels.get(l))
                .map(|ld| (ld.col_off, ld.col_off + ld.threads as u32))
                .collect();
            slabs.sort_unstable();
            for w in slabs.windows(2) {
                if w[1].0 < w[0].1 {
                    defects.push(format!(
                        "group {gi}: col_off slabs {}..{} and {}..{} overlap",
                        w[0].0, w[0].1, w[1].0, w[1].1
                    ));
                }
            }
            if let Some(&(_, end)) = slabs.last() {
                if end as usize > self.col_entries {
                    defects.push(format!(
                        "group {gi}: slab ends at {end}, past the scratch column \
                         ({} entries)",
                        self.col_entries
                    ));
                }
            }
        }
        if next_level != self.levels.len() {
            defects.push(format!(
                "groups cover {next_level} of {} levels",
                self.levels.len()
            ));
        }
        if next_phase != self.phase_threads.len() {
            defects.push(format!(
                "fused groups use {next_phase} of {} phase entries",
                self.phase_threads.len()
            ));
        }
        defects
    }
}

/// Per-batch scratch arena: every buffer the per-level hot loop touches,
/// allocated once. Pointer/length tables are atomics because the *store
/// pass itself* publishes them (each store thread writes its output's
/// pointer and length — the pipelined executor's folded publication);
/// `outs`/`bases` form one column in which every level of a fused group
/// owns a disjoint contiguous slab range ([`LevelDesc::col_off`]), so the
/// overlapped host publish of level `L` reads its own range while level
/// `L + 1`'s launches fill theirs — no column double-buffering and no
/// parity fences (the group-boundary epoch fence in `session.rs` orders
/// reuse across groups).
#[derive(Debug)]
pub(crate) struct BatchScratch {
    /// `ptrs[w * n_signals + s]`: word offset of signal `s`'s waveform in
    /// window `w`, `u32::MAX` if absent.
    pub ptrs: Vec<AtomicU32>,
    /// Stored length in words of the same waveform.
    pub lens: Vec<AtomicU32>,
    /// Running per-signal stored words across all windows of this batch
    /// (the incremental working-set sums). Atomic because publish workers
    /// for disjoint gate ranges accumulate concurrently.
    pub len_sum: Vec<AtomicU64>,
    /// Count-pass packed outputs (one column of `stride` entries).
    outs: Vec<AtomicU64>,
    /// Prefix-summed arena bases (one column of `stride` entries).
    bases: Vec<AtomicU32>,
    /// Speculative reservation sizes in words (one column of `stride`
    /// entries, same slab layout as `outs`/`bases`): written by the budget
    /// assigner before a speculative launch, read by its threads and the
    /// overflow scan. Needs no reset — always written before read.
    caps: Vec<AtomicU32>,
    /// Overflowed column indices of the current speculative level,
    /// recorded by the kernel threads themselves (`ovf_len` cursor +
    /// slot array) so the post-level host scan is O(overflows), not
    /// O(columns). Reset by the budget assigner at each level boundary.
    pub ovf: Vec<AtomicU32>,
    /// Number of valid entries in [`BatchScratch::ovf`].
    pub ovf_len: AtomicUsize,
    /// Reservation words speculative *hit* threads did not use, batch
    /// accumulated by the kernel threads (abandoned overflow reservations
    /// are added host-side by the scan). Drained into the batch tally.
    pub spec_waste: AtomicU64,
    /// Entries in the `outs`/`bases` column (≥ the widest level's threads
    /// and ≥ the largest fused group's slab).
    stride: usize,
    /// Consecutive acquisitions this arena served while grossly oversized
    /// for the requested batch (the pool's shrink heuristic; see
    /// `Session::acquire_scratch`).
    pub oversize_uses: u32,
}

impl BatchScratch {
    fn new(n_signals: usize, nw: usize, col_entries: usize) -> Self {
        let mut ptrs = Vec::with_capacity(nw * n_signals);
        ptrs.resize_with(nw * n_signals, || AtomicU32::new(u32::MAX));
        let mut lens = Vec::with_capacity(nw * n_signals);
        lens.resize_with(nw * n_signals, || AtomicU32::new(0));
        let mut len_sum = Vec::with_capacity(n_signals);
        len_sum.resize_with(n_signals, || AtomicU64::new(0));
        let mut outs = Vec::with_capacity(col_entries);
        outs.resize_with(col_entries, || AtomicU64::new(0));
        let mut bases = Vec::with_capacity(col_entries);
        bases.resize_with(col_entries, || AtomicU32::new(0));
        let mut caps = Vec::with_capacity(col_entries);
        caps.resize_with(col_entries, || AtomicU32::new(0));
        let mut ovf = Vec::with_capacity(col_entries);
        ovf.resize_with(col_entries, || AtomicU32::new(0));
        BatchScratch {
            ptrs,
            lens,
            len_sum,
            outs,
            bases,
            caps,
            ovf,
            ovf_len: AtomicUsize::new(0),
            spec_waste: AtomicU64::new(0),
            stride: col_entries,
            oversize_uses: 0,
        }
    }

    /// The count-output column; a level's entries live at
    /// `[col_off..col_off + threads]`.
    #[inline]
    pub fn outs(&self) -> &[AtomicU64] {
        &self.outs
    }

    /// The prefix-sum base column; same layout as [`BatchScratch::outs`].
    #[inline]
    pub fn bases(&self) -> &[AtomicU32] {
        &self.bases
    }

    /// The speculative reservation-cap column; same layout as
    /// [`BatchScratch::outs`].
    #[inline]
    pub fn caps(&self) -> &[AtomicU32] {
        &self.caps
    }

    /// Entries in the `outs`/`bases` column.
    pub fn stride(&self) -> usize {
        self.stride
    }

    /// Pointer-table capacity in `(window, signal)` slots.
    pub fn ptr_capacity(&self) -> usize {
        self.ptrs.len()
    }

    /// Snapshot of the first `n` pointer-table entries (for waveform
    /// extraction; `n = nw × n_signals` of the batch that used this
    /// scratch, which may be smaller than the arena when it is reused
    /// from the session pool).
    pub fn ptrs_snapshot(&self, n: usize) -> Vec<u32> {
        self.ptrs[..n]
            .iter()
            // relaxed-ok: snapshots run on the engine thread after every
            // launch of the batch has joined.
            .map(|p| p.load(Ordering::Relaxed))
            .collect()
    }

    /// Snapshot of the first `n` length-table entries (word counts per
    /// (window, signal) waveform — what the host-spill sink reads back).
    pub fn lens_snapshot(&self, n: usize) -> Vec<u32> {
        self.lens[..n]
            .iter()
            // relaxed-ok: see `ptrs_snapshot`.
            .map(|l| l.load(Ordering::Relaxed))
            .collect()
    }

    /// Whether this arena is large enough for a batch needing `ptrs`
    /// pointer-table entries and `threads` per-level scratch entries.
    pub fn fits(&self, ptrs: usize, threads: usize) -> bool {
        self.ptrs.len() >= ptrs && self.stride >= threads
    }

    /// Re-initializes the first `ptrs` pointer/length entries and the
    /// per-signal length sums for a new batch (`outs`/`bases` need no
    /// reset: every level writes its entries in the count pass before
    /// anything reads them).
    pub fn reset(&self, ptrs: usize) {
        for p in &self.ptrs[..ptrs] {
            // relaxed-ok: reset runs on the engine thread between batches,
            // after the previous batch's launches and publishes joined.
            p.store(u32::MAX, Ordering::Relaxed);
        }
        for l in &self.lens[..ptrs] {
            // relaxed-ok: see above.
            l.store(0, Ordering::Relaxed);
        }
        for s in &self.len_sum {
            // relaxed-ok: see above.
            s.store(0, Ordering::Relaxed);
        }
        // Clear the speculation cursors too: a batch that was abandoned by
        // a fault isolated at the segment boundary can leave both non-zero
        // (the normal path drains them), and a poisoned cursor would leak
        // phantom overflow columns or waste words into the next batch that
        // reuses this arena.
        // relaxed-ok: see above.
        self.ovf_len.store(0, Ordering::Relaxed);
        // relaxed-ok: see above.
        self.spec_waste.store(0, Ordering::Relaxed);
    }
}

/// Host-side mutable state threaded through the per-level loop: the arena
/// bump pointer. (The per-signal length sums live in
/// [`BatchScratch::len_sum`] so the overlapped publish workers can
/// accumulate them off the critical path; a fused group's bump carry lives
/// in the group's segmented-prefix-sum assigner while its launch runs.)
#[derive(Debug, Default)]
pub(crate) struct HostState {
    /// Next free arena word (kept even-aligned for output waveforms).
    pub bump: usize,
}

#[cfg(test)]
mod tests {
    use super::*;
    use gatspi_graph::GraphOptions;
    use gatspi_netlist::{CellLibrary, NetlistBuilder};
    use std::sync::Arc;

    fn chain_graph(n: usize) -> Arc<CircuitGraph> {
        let mut b = NetlistBuilder::new("chain", CellLibrary::industry_mini());
        let mut prev = b.add_input("a").unwrap();
        for i in 0..n {
            let net = b.add_net(&format!("n{i}")).unwrap();
            b.add_gate(&format!("u{i}"), "INV", &[prev], net).unwrap();
            prev = net;
        }
        b.mark_output(prev);
        Arc::new(CircuitGraph::build(&b.finish().unwrap(), None, &GraphOptions::default()).unwrap())
    }

    #[test]
    fn tables_mirror_graph() {
        let g = chain_graph(5);
        let s = LevelSchedule::build(&g, 3, 0);
        assert_eq!(s.levels.len(), 5);
        for l in 0..5 {
            let ld = s.level(l);
            assert_eq!(ld.threads, 3);
            let slot = ld.gate_lo as usize;
            let gate = s.gate(slot);
            assert_eq!(g.gate_level(gate), l as u32);
            assert_eq!(s.out_sig(slot), g.gate_output(gate).index());
            assert_eq!(s.pins_of(slot), g.gate_fanin(gate));
            assert_eq!(s.level_pins(l), g.gate_fanin(gate));
            assert_eq!(s.desc(slot), GateDesc::of(&g, gate));
            let nd: Vec<(i32, i32)> = (0..g.gate_fanin(gate).len())
                .map(|i| g.net_delays(g.pin_base(gate) + i))
                .collect();
            assert_eq!(s.net_delays_of(slot), nd);
        }
    }

    #[test]
    fn predictor_is_monotone_and_seedable() {
        let g = chain_graph(3);
        let s = LevelSchedule::build(&g, 2, 0);
        let p = s.predictor();
        assert_eq!(p.predict(1), None, "first touch");
        p.observe(1, 6);
        p.observe(1, 4); // smaller observation must not shrink the entry
        assert_eq!(p.predict(1), Some(6));
        p.observe(1, 10);
        assert_eq!(p.predict(1), Some(10));
        // A cone sub-plan seeds from the full plan's history (by gate id).
        let mut changed = vec![false; g.n_gates()];
        changed[1] = true;
        let cone = ConeInfo::of(&g, &changed);
        let sub = LevelSchedule::restrict(&g, 2, 0, &cone);
        assert_eq!(sub.predictor().predict(1), None);
        sub.predictor().seed_from(p);
        assert_eq!(sub.predictor().predict(1), Some(10));
        assert_eq!(sub.predictor().predict(0), None, "unseen gate stays cold");
        // The forced-budget hook overwrites everything.
        sub.predictor().fill(2);
        assert_eq!(sub.predictor().predict(0), Some(2));
        assert_eq!(sub.predictor().predict(1), Some(2));
    }

    #[test]
    fn threshold_zero_disables_fusion() {
        let g = chain_graph(4);
        let s = LevelSchedule::build(&g, 8, 0);
        assert_eq!(s.groups().len(), 4);
        assert!(s.groups().iter().all(|gr| !gr.fused));
    }

    #[test]
    fn small_levels_fuse_up_to_threshold() {
        let g = chain_graph(10);
        // 1 gate × 4 windows = 4 threads per level; threshold 12 → groups
        // of 3 levels.
        let s = LevelSchedule::build(&g, 4, 12);
        let sizes: Vec<usize> = s.groups().iter().map(|gr| gr.levels.len()).collect();
        assert_eq!(sizes, vec![3, 3, 3, 1]);
        for gr in s.groups() {
            assert!(gr.fused);
            assert_eq!(s.phases(gr).len(), 2 * gr.levels.len());
            assert!(gr.threads <= 12);
        }
    }

    #[test]
    fn fused_group_levels_get_disjoint_contiguous_slabs() {
        let g = chain_graph(10);
        let s = LevelSchedule::build(&g, 4, 12);
        for gr in s.groups() {
            // Within a group the levels stack contiguously from 0; the
            // whole slab fits the scratch column.
            let mut expect = 0u32;
            for l in gr.levels.clone() {
                let ld = s.level(l);
                assert_eq!(ld.col_off, expect, "level {l} slab offset");
                expect += ld.threads as u32;
            }
            assert_eq!(expect as usize, gr.threads);
            assert!(gr.threads <= s.col_entries());
        }
        // Classic (unfused) levels all start at column 0.
        let s = LevelSchedule::build(&g, 4, 0);
        assert!((0..s.n_levels()).all(|l| s.level(l).col_off == 0));
    }

    #[test]
    fn wide_level_stays_classic() {
        let g = chain_graph(3);
        // 1 gate × 32 windows = 32 threads ≥ threshold 32 → classic.
        let s = LevelSchedule::build(&g, 32, 32);
        assert!(s.groups().iter().all(|gr| !gr.fused));
        // Raising the threshold fuses everything into one group.
        let s = LevelSchedule::build(&g, 32, 128);
        assert_eq!(s.groups().len(), 1);
        assert!(s.groups()[0].fused);
        assert_eq!(s.groups()[0].threads, 96);
    }

    #[test]
    fn scratch_sized_for_widest_level_or_largest_slab() {
        let g = chain_graph(2);
        let s = LevelSchedule::build(&g, 6, 0);
        let scratch = s.new_scratch(g.n_signals());
        assert_eq!(scratch.stride(), 6);
        assert_eq!(scratch.outs().len(), 6);
        assert_eq!(scratch.bases().len(), 6);
        assert_eq!(scratch.caps().len(), 6);
        assert_eq!(scratch.ptr_capacity(), 6 * g.n_signals());
        assert_eq!(scratch.len_sum.len(), g.n_signals());
        assert!(scratch
            .ptrs
            .iter()
            .all(|p| p.load(Ordering::Relaxed) == u32::MAX));
        // A fused schedule sizes the column for the largest group slab,
        // which exceeds any single level.
        let fused = LevelSchedule::build(&g, 6, 100);
        assert_eq!(fused.col_entries(), 12, "2 levels × 6 threads slab");
        assert_eq!(fused.new_scratch(g.n_signals()).stride(), 12);
    }

    #[test]
    fn reset_clears_len_sums() {
        let g = chain_graph(2);
        let s = LevelSchedule::build(&g, 2, 0);
        let scratch = s.new_scratch(g.n_signals());
        scratch.len_sum[0].store(99, Ordering::Relaxed);
        scratch.ptrs[0].store(5, Ordering::Relaxed);
        scratch.reset(scratch.ptr_capacity());
        assert_eq!(scratch.len_sum[0].load(Ordering::Relaxed), 0);
        assert_eq!(scratch.ptrs[0].load(Ordering::Relaxed), u32::MAX);
    }

    #[test]
    fn packed_codec_round_trips() {
        use crate::kernel::KernelOutput;
        for (toggles, max_extent, initial_one) in [(0u32, 0u32, false), (3, 5, true), (7, 7, false)]
        {
            let out = KernelOutput {
                toggles,
                max_extent,
                initial_one,
            };
            let packed = out.pack();
            assert_eq!(KernelOutput::unpack(packed), out);
            let words = out.words() as usize;
            assert_eq!(KernelOutput::unpack_words_even(packed), words + (words & 1));
        }
    }

    /// A deterministic random DAG: every gate's inputs come from earlier
    /// nets, so levelization always succeeds.
    fn random_dag(seed: u64, n_gates: usize) -> Arc<CircuitGraph> {
        let mut state = seed
            .wrapping_mul(6364136223846793005)
            .wrapping_add(1442695040888963407)
            | 1;
        let mut next = move || {
            state ^= state << 13;
            state ^= state >> 7;
            state ^= state << 17;
            state
        };
        let mut b = NetlistBuilder::new("dag", CellLibrary::industry_mini());
        let mut nets = vec![b.add_input("a").unwrap(), b.add_input("c").unwrap()];
        for i in 0..n_gates {
            let out = b.add_net(&format!("n{i}")).unwrap();
            let x = nets[next() as usize % nets.len()];
            if next() % 2 == 0 {
                b.add_gate(&format!("u{i}"), "INV", &[x], out).unwrap();
            } else {
                let y = nets[next() as usize % nets.len()];
                b.add_gate(&format!("u{i}"), "NAND2", &[x, y], out).unwrap();
            }
            nets.push(out);
        }
        b.mark_output(*nets.last().unwrap());
        Arc::new(CircuitGraph::build(&b.finish().unwrap(), None, &GraphOptions::default()).unwrap())
    }

    #[test]
    fn cone_of_chain_is_suffix() {
        let g = chain_graph(6);
        let mut changed = vec![false; g.n_gates()];
        changed[2] = true;
        let cone = ConeInfo::of(&g, &changed);
        assert_eq!(cone.n_gates, 4, "the changed gate and everything after");
        for gate in 0..6 {
            assert_eq!(cone.gates[gate], gate >= 2);
            assert_eq!(cone.sigs[g.gate_output(gate).index()], gate >= 2);
        }
        // The boundary is exactly the changed gate's (unchanged) input.
        assert_eq!(cone.boundary, vec![g.gate_fanin(2)[0]]);
    }

    #[test]
    fn empty_cone_restricts_to_empty_schedule() {
        let g = chain_graph(4);
        let cone = ConeInfo::of(&g, &vec![false; g.n_gates()]);
        assert_eq!(cone.n_gates, 0);
        assert!(cone.boundary.is_empty());
        let s = LevelSchedule::restrict(&g, 3, 0, &cone);
        assert_eq!(s.n_levels(), 0);
        assert_eq!(s.n_slots(), 0);
        assert!(s.groups().is_empty());
    }

    proptest::proptest! {
        #![proptest_config(proptest::prelude::ProptestConfig {
            cases: 48,
            .. proptest::prelude::ProptestConfig::default()
        })]

        /// The extracted cone is *exactly* the transitive fan-out of the
        /// changed set (reference: fixpoint iteration over the driver
        /// relation), its signal set is exactly the in-cone outputs, every
        /// in-cone pin is covered by cone signals ∪ boundary (boundary
        /// completeness), and the restricted schedule enumerates exactly
        /// the in-cone gates in relative level order.
        #[test]
        fn cone_is_exact_transitive_fanout(
            seed in 0u64..1 << 48,
            n_gates in 4usize..48,
            bits in proptest::collection::vec(proptest::any::<bool>(), 48..49),
        ) {
            use proptest::prelude::prop_assert_eq;
            let g = random_dag(seed, n_gates);
            let changed: Vec<bool> = (0..g.n_gates()).map(|i| bits[i]).collect();
            let cone = ConeInfo::of(&g, &changed);

            // Reference: iterate "a gate whose pin is driven by an in-cone
            // gate is in-cone" to a fixpoint.
            let mut expect = changed.clone();
            loop {
                let mut progress = false;
                for gate in 0..g.n_gates() {
                    if expect[gate] {
                        continue;
                    }
                    let hit = g.gate_fanin(gate).iter().any(|&p| {
                        g.driver(gatspi_graph::SignalId(p))
                            .is_some_and(|d| expect[d])
                    });
                    if hit {
                        expect[gate] = true;
                        progress = true;
                    }
                }
                if !progress {
                    break;
                }
            }
            prop_assert_eq!(&cone.gates, &expect);
            prop_assert_eq!(cone.n_gates, expect.iter().filter(|&&b| b).count());
            for s in 0..g.n_signals() {
                let driven_in_cone = g
                    .driver(gatspi_graph::SignalId(s as u32))
                    .is_some_and(|d| expect[d]);
                prop_assert_eq!(cone.sigs[s], driven_in_cone);
            }
            // Boundary completeness: every pin an in-cone gate reads is
            // either recomputed in-cone or listed as boundary stimulus —
            // and the boundary holds nothing else.
            let mut want_boundary = Vec::new();
            for (gate, &in_cone) in expect.iter().enumerate().take(g.n_gates()) {
                if !in_cone {
                    continue;
                }
                for &p in g.gate_fanin(gate) {
                    if !cone.sigs[p as usize] {
                        want_boundary.push(p);
                    }
                }
            }
            want_boundary.sort_unstable();
            want_boundary.dedup();
            prop_assert_eq!(&cone.boundary, &want_boundary);

            // The restricted schedule enumerates exactly the in-cone gates,
            // in relative level order.
            let sub = LevelSchedule::restrict(&g, 2, 0, &cone);
            let mut listed: Vec<usize> = (0..sub.n_slots()).map(|s| sub.gate(s)).collect();
            prop_assert_eq!(sub.n_slots(), cone.n_gates);
            let mut last_level = 0u32;
            for &gate in &listed {
                let l = g.gate_level(gate);
                assert!(l >= last_level, "levels stay ordered");
                last_level = l;
            }
            listed.sort_unstable();
            let mut want: Vec<usize> =
                (0..g.n_gates()).filter(|&gate| expect[gate]).collect();
            want.sort_unstable();
            prop_assert_eq!(listed, want);
        }
    }

    #[test]
    fn incremental_ws_matches_direct_sum() {
        let g = chain_graph(3);
        let s = LevelSchedule::build(&g, 2, 0);
        let scratch = s.new_scratch(g.n_signals());
        // Signal 0 (the PI) has 5 words in each of 2 windows.
        scratch.len_sum[0].store(10, Ordering::Relaxed);
        assert_eq!(s.level_ws(&scratch.len_sum, 0), 10);
        assert_eq!(
            s.level_ws(&scratch.len_sum, 1),
            0,
            "level 1 input not stored yet"
        );
        scratch.len_sum[g.gate_output(0).index()].store(6, Ordering::Relaxed);
        assert_eq!(s.level_ws(&scratch.len_sum, 1), 6);
    }

    // ---- structural checker + mutation tests -------------------------
    //
    // `validate` must accept everything the builders produce and flag each
    // invariant class when a plan is deliberately corrupted. These are the
    // firing proofs behind `xtask validate-plans` (pass 5): a checker that
    // accepts everything is indistinguishable from no checker.

    #[test]
    fn validate_accepts_built_plans() {
        let g = chain_graph(10);
        for (nw, fuse) in [(1, 0), (4, 0), (4, 12), (32, 128)] {
            let s = LevelSchedule::build(&g, nw, fuse);
            assert_eq!(
                s.validate(&g, None),
                Vec::<String>::new(),
                "nw={nw} fuse={fuse}"
            );
        }
        let mut changed = vec![false; g.n_gates()];
        changed[4] = true;
        let cone = ConeInfo::of(&g, &changed);
        for (nw, fuse) in [(4, 0), (4, 12)] {
            let s = LevelSchedule::restrict(&g, nw, fuse, &cone);
            assert_eq!(s.validate(&g, Some(&cone)), Vec::<String>::new());
        }
    }

    #[test]
    fn validate_flags_overlapping_fused_slabs() {
        let g = chain_graph(10);
        let mut s = LevelSchedule::build(&g, 4, 12);
        assert!(s.groups[0].fused && s.groups[0].levels.len() == 3);
        // Collapse level 1's slab onto level 0's: the overlapped publish
        // would read bases level 1's count pass is clobbering.
        s.levels[1].col_off = 0;
        let defects = s.validate(&g, None);
        assert!(defects.iter().any(|d| d.contains("overlap")), "{defects:?}");
    }

    #[test]
    fn validate_flags_level_order_violation() {
        let g = chain_graph(3);
        let mut s = LevelSchedule::build(&g, 1, 0);
        // Swap slots 0 and 1 wholesale (gates, descs, outputs, pins — the
        // INV pin CSR is uniform, so the tables stay self-consistent): the
        // plan now runs gate 1 before its producer.
        s.gates.swap(0, 1);
        s.descs.swap(0, 1);
        s.out_sigs.swap(0, 1);
        s.pin_sigs.swap(0, 1);
        s.pin_net_delays.swap(0, 1);
        let defects = s.validate(&g, None);
        assert!(
            defects.iter().any(|d| d.contains("not strictly earlier")),
            "{defects:?}"
        );
    }

    #[test]
    fn validate_flags_corrupted_descriptor_and_duplicate_gate() {
        let g = chain_graph(3);
        let mut s = LevelSchedule::build(&g, 2, 0);
        s.descs[0].tt_base += 1;
        let defects = s.validate(&g, None);
        assert!(
            defects.iter().any(|d| d.contains("descriptor disagrees")),
            "{defects:?}"
        );
        let mut s = LevelSchedule::build(&g, 2, 0);
        s.gates[1] = s.gates[0];
        let defects = s.validate(&g, None);
        assert!(
            defects.iter().any(|d| d.contains("already at slot")),
            "{defects:?}"
        );
        assert!(
            defects
                .iter()
                .any(|d| d.contains("missing from a full plan")),
            "gate 1's consumer lost its producer: {defects:?}"
        );
    }

    #[test]
    fn validate_flags_non_closed_cone() {
        let g = chain_graph(6);
        // Hand-build a cone holding only gate 2: gate 3 consumes gate 2's
        // output but is not in the cone, so the incremental run would
        // recompute a signal its unscheduled consumer never re-reads.
        let mut gates = vec![false; g.n_gates()];
        gates[2] = true;
        let mut sigs = vec![false; g.n_signals()];
        sigs[g.gate_output(2).index()] = true;
        let cone = ConeInfo {
            gates,
            sigs,
            boundary: g.gate_fanin(2).to_vec(),
            n_gates: 1,
        };
        let s = LevelSchedule::restrict(&g, 2, 0, &cone);
        let defects = s.validate(&g, Some(&cone));
        assert!(
            defects
                .iter()
                .any(|d| d.contains("not closed under fanout")),
            "{defects:?}"
        );
    }

    #[test]
    fn validate_flags_boundary_gaps_and_table_shape_damage() {
        let g = chain_graph(6);
        let mut changed = vec![false; g.n_gates()];
        changed[3] = true;
        let mut cone = ConeInfo::of(&g, &changed);
        // Drop the boundary: the cone's first gate now reads a signal no
        // stimulus supplies.
        cone.boundary.clear();
        let s = LevelSchedule::restrict(&g, 2, 0, &cone);
        let defects = s.validate(&g, Some(&cone));
        assert!(
            defects.iter().any(|d| d.contains("boundary stimulus")),
            "{defects:?}"
        );
        // Gross shape damage short-circuits with a table-shape defect.
        let mut s = LevelSchedule::build(&g, 2, 0);
        s.out_sigs.pop();
        let defects = s.validate(&g, None);
        assert_eq!(defects.len(), 1, "{defects:?}");
        assert!(defects[0].contains("table shape"), "{defects:?}");
    }
}
